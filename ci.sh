#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite with the
# coherence-invariant checker enabled everywhere.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (SPP_CHECK=1: coherence checker on)"
SPP_CHECK=1 cargo test --workspace -q

echo "CI OK"
