#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite with the
# coherence-invariant checker enabled everywhere.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test (SPP_CHECK=1: coherence checker on)"
SPP_CHECK=1 cargo test --workspace -q

echo "== repro-all smoke run (1 step, machine-readable report)"
cargo run --release -q -p spp-bench --bin repro-all -- --steps 1 >/dev/null
test -s target/repro/BENCH_repro.json
grep -q '"passed": true' target/repro/BENCH_repro.json
echo "   target/repro/BENCH_repro.json OK"

echo "== repro-chaos smoke run (1 step, fixed-seed grid, checker on)"
SPP_CHECK=1 cargo run --release -q -p spp-bench --bin repro-chaos -- --steps 1 >/dev/null
test -s target/repro/BENCH_chaos.json
grep -q '"passed": true' target/repro/BENCH_chaos.json
echo "   target/repro/BENCH_chaos.json OK"

echo "== repro-trace smoke run (1 step, tracing + reconciliation gates)"
cargo run --release -q -p spp-bench --bin repro-trace -- --steps 1 >/dev/null
test -s target/repro/BENCH_trace.json
grep -q '"passed": true' target/repro/BENCH_trace.json
echo "   target/repro/BENCH_trace.json OK"

echo "== repro-race smoke run (1 step, detector + schedule fuzzing + racy control)"
cargo run --release -q -p spp-bench --bin repro-race -- --steps 1 >/dev/null
test -s target/repro/BENCH_race.json
grep -q '"passed": true' target/repro/BENCH_race.json
test -s target/repro/race_repro.json
echo "   target/repro/BENCH_race.json OK"

echo "== trace determinism (two runs, byte-identical timeline)"
cp target/repro/trace_timeline.json target/repro/trace_timeline.first.json
cargo run --release -q -p spp-bench --bin repro-trace -- --steps 1 >/dev/null
cmp target/repro/trace_timeline.first.json target/repro/trace_timeline.json
rm -f target/repro/trace_timeline.first.json
echo "   trace_timeline.json byte-identical across runs"

echo "CI OK"
