#!/usr/bin/env bash
# Repo CI gate: formatting, lints, and the full test suite with the
# coherence-invariant checker enabled everywhere.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test (SPP_CHECK=1: coherence checker on)"
SPP_CHECK=1 cargo test --workspace -q

echo "== repro-all smoke run (1 step, machine-readable report)"
cargo run --release -q -p spp-bench --bin repro-all -- --steps 1 >/dev/null
test -s target/repro/BENCH_repro.json
grep -q '"passed": true' target/repro/BENCH_repro.json
echo "   target/repro/BENCH_repro.json OK"

echo "== repro-chaos smoke run (1 step, fixed-seed grid, checker on)"
SPP_CHECK=1 cargo run --release -q -p spp-bench --bin repro-chaos -- --steps 1 >/dev/null
test -s target/repro/BENCH_chaos.json
grep -q '"passed": true' target/repro/BENCH_chaos.json
echo "   target/repro/BENCH_chaos.json OK"

echo "== repro-trace smoke run (1 step, tracing + reconciliation gates)"
cargo run --release -q -p spp-bench --bin repro-trace -- --steps 1 >/dev/null
test -s target/repro/BENCH_trace.json
grep -q '"passed": true' target/repro/BENCH_trace.json
echo "   target/repro/BENCH_trace.json OK"

echo "== repro-race smoke run (1 step, detector + schedule fuzzing + racy control)"
cargo run --release -q -p spp-bench --bin repro-race -- --steps 1 >/dev/null
test -s target/repro/BENCH_race.json
grep -q '"passed": true' target/repro/BENCH_race.json
test -s target/repro/race_repro.json
echo "   target/repro/BENCH_race.json OK"

echo "== trace determinism (two runs, byte-identical timeline)"
cp target/repro/trace_timeline.json target/repro/trace_timeline.first.json
cargo run --release -q -p spp-bench --bin repro-trace -- --steps 1 >/dev/null
cmp target/repro/trace_timeline.first.json target/repro/trace_timeline.json
rm -f target/repro/trace_timeline.first.json
echo "   trace_timeline.json byte-identical across runs"

echo "== repro-insight smoke (attribution campaign, 4 apps x 3 protocols, 1 step)"
cargo run --release -q -p spp-bench --bin repro-insight -- --steps 1 >/dev/null
test -s target/repro/BENCH_insight.json
grep -q '"passed": true' target/repro/BENCH_insight.json
# Every one of the 12 cells must carry a passing partition check.
test "$(grep -c '"heat_partition_check": true' target/repro/BENCH_insight.json)" -eq 12
! grep -q '"heat_partition_check": false' target/repro/BENCH_insight.json
! grep -q '"attribution_transparent": false' target/repro/BENCH_insight.json
echo "   target/repro/BENCH_insight.json OK (every cell partitions, attribution transparent)"

echo "== insight report determinism (two runs, byte-identical JSON)"
cp target/repro/BENCH_insight.json target/repro/BENCH_insight.first.json
cargo run --release -q -p spp-bench --bin repro-insight -- --steps 1 >/dev/null
cmp target/repro/BENCH_insight.first.json target/repro/BENCH_insight.json
rm -f target/repro/BENCH_insight.first.json
echo "   BENCH_insight.json byte-identical across runs"

echo "== repro-protocol smoke (DASH+SCI / MESI / Dragon x topology, 1 step)"
cargo run --release -q -p spp-bench --bin repro-protocol -- --steps 1 >/dev/null
test -s target/repro/BENCH_protocol.json
grep -q '"experiment": "protocol"' target/repro/BENCH_protocol.json
grep -q '"protocol": "dragon"' target/repro/BENCH_protocol.json
echo "   target/repro/BENCH_protocol.json OK"

echo "== protocol report determinism (two runs, byte-identical JSON)"
cp target/repro/BENCH_protocol.json target/repro/BENCH_protocol.first.json
cargo run --release -q -p spp-bench --bin repro-protocol -- --steps 1 >/dev/null
cmp target/repro/BENCH_protocol.first.json target/repro/BENCH_protocol.json
rm -f target/repro/BENCH_protocol.first.json
echo "   BENCH_protocol.json byte-identical across runs"

echo "== repro-recovery smoke (protocol x transient fault kind, bit-identical recovery)"
cargo run --release -q -p spp-bench --bin repro-recovery -- --steps 1 >/dev/null
test -s target/repro/BENCH_recovery.json
grep -q '"experiment": "recovery"' target/repro/BENCH_recovery.json
grep -q '"passed": true' target/repro/BENCH_recovery.json
! grep -q '"recoveries": 0[,}]' target/repro/BENCH_recovery.json
echo "   target/repro/BENCH_recovery.json OK (every cell recovered)"

echo "== recovery report determinism (two runs, byte-identical JSON)"
cp target/repro/BENCH_recovery.json target/repro/BENCH_recovery.first.json
cargo run --release -q -p spp-bench --bin repro-recovery -- --steps 1 >/dev/null
cmp target/repro/BENCH_recovery.first.json target/repro/BENCH_recovery.json
rm -f target/repro/BENCH_recovery.first.json
echo "   BENCH_recovery.json byte-identical across runs"

echo "== recovery scenario matrix (one golden-pinned rollback cell per protocol)"
# Each cell seeds transients that always exhaust the scrub budget
# (persistence 1.0), forcing checkpoint rollback-and-replay; the
# golden counters are the fault-free numbers, so recovery must be
# bit-identical and zero-cost, and every cell must actually roll back.
SPP_REPRO_DIR=target/repro/recovery-matrix cargo run --release -q -p spp-bench --bin spp-scenario -- \
  run --workers 3 scenarios/matrix/kernel-recover-dashsci.toml \
  scenarios/matrix/kernel-recover-mesi.toml scenarios/matrix/kernel-recover-dragon.toml >/dev/null
grep -q '"all_as_expected": true' target/repro/recovery-matrix/BENCH_scenarios.json
test "$(grep -c '"rollbacks": [1-9]' target/repro/recovery-matrix/BENCH_scenarios.json)" -eq 3
echo "   all three protocols rolled back and matched their fault-free goldens"

echo "== protocol scenario matrix (one golden-pinned cell per protocol)"
SPP_REPRO_DIR=target/repro/protocol-matrix cargo run --release -q -p spp-bench --bin spp-scenario -- \
  run --workers 3 scenarios/matrix/nbody-dashsci-32.toml \
  scenarios/matrix/kernel-mesi-32.toml scenarios/matrix/fem-dragon-8.toml >/dev/null
grep -q '"all_as_expected": true' target/repro/protocol-matrix/BENCH_scenarios.json
echo "   all three protocols match their golden counters"

echo "== scenario specs validate (every spec under scenarios/)"
cargo run --release -q -p spp-bench --bin spp-scenario -- \
  validate scenarios/experiments scenarios/matrix scenarios/ci >/dev/null
echo "   all specs parse and validate"

echo "== scenario fleet smoke (contained panic + hang + golden mismatch)"
# The ci matrix deliberately includes a panicking cell, a hanging
# cell, and a wrong-golden cell; the fleet must contain and classify
# all three (their specs declare those outcomes, so exit code is 0)
# and still write the report.
SPP_REPRO_DIR=target/repro cargo run --release -q -p spp-bench --bin spp-scenario -- \
  run --workers 4 scenarios/ci >/dev/null
test -s target/repro/BENCH_scenarios.json
grep -q '"all_as_expected": true' target/repro/BENCH_scenarios.json
grep -q '"name": "ci-panic", "status": "fail"' target/repro/BENCH_scenarios.json
grep -q '"name": "ci-hang", "status": "timeout"' target/repro/BENCH_scenarios.json
grep -q '"name": "ci-golden-mismatch", "status": "golden-mismatch"' target/repro/BENCH_scenarios.json
# The live telemetry stream covers every cell (start + end at least).
test -s target/repro/scenarios_heartbeat.jsonl
grep -q '"event": "start"' target/repro/scenarios_heartbeat.jsonl
grep -q '"event": "end"' target/repro/scenarios_heartbeat.jsonl
echo "   panic/hang/golden-mismatch each contained and classified; heartbeats streamed"

echo "== scenario report determinism (two runs, byte-identical JSON)"
cp target/repro/BENCH_scenarios.json target/repro/BENCH_scenarios.first.json
SPP_REPRO_DIR=target/repro cargo run --release -q -p spp-bench --bin spp-scenario -- \
  run --workers 2 scenarios/ci >/dev/null
cmp target/repro/BENCH_scenarios.first.json target/repro/BENCH_scenarios.json
rm -f target/repro/BENCH_scenarios.first.json
echo "   BENCH_scenarios.json byte-identical across runs and worker counts"

echo "CI OK"
