//! A tour of the machine's coherence machinery: watch the directory,
//! SCI reference trees and global cache buffers at work through the
//! event counters — the "hardware supported instrumentation" the paper
//! praises in §6.
//!
//! ```text
//! cargo run --release --example machine_tour
//! ```

use spp1000::prelude::*;

fn scene(m: &mut Machine, title: &str, f: impl FnOnce(&mut Machine)) {
    let before = m.stats;
    f(m);
    let d = m.stats.since(&before);
    println!("--- {title}\n{d}\n");
}

fn main() {
    let mut m = Machine::spp1000(2);

    scene(&mut m, "producer/consumer within a hypernode", |m| {
        let a = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        m.write(CpuId(0), a.addr(0)); // producer owns the line
        m.read(CpuId(1), a.addr(0)); // consumer: cache-to-cache
        m.write(CpuId(0), a.addr(0)); // producer again: invalidate
    });

    scene(
        &mut m,
        "one writer, seven spinning readers (barrier flag)",
        |m| {
            let a = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
            for c in 1..8u16 {
                m.read(CpuId(c), a.addr(0));
            }
            m.write(CpuId(0), a.addr(0)); // seven invalidations
            for c in 1..8u16 {
                m.read(CpuId(c), a.addr(0)); // seven re-fetches
            }
        },
    );

    scene(
        &mut m,
        "cross-hypernode sharing via SCI + global cache buffer",
        |m| {
            let a = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
            m.read(CpuId(8), a.addr(0)); // node 1 fetches over the ring
            m.read(CpuId(9), a.addr(0)); // node-mate hits the GCB
            m.write(CpuId(0), a.addr(0)); // home write walks the SCI list
            m.read(CpuId(8), a.addr(0)); // must re-fetch over the ring
        },
    );

    scene(
        &mut m,
        "remote ownership: node 1 dirties a node-0 line",
        |m| {
            let a = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
            m.write(CpuId(8), a.addr(64));
            m.read(CpuId(0), a.addr(64)); // home reads the dirty copy back
        },
    );

    scene(
        &mut m,
        "capacity sweep through the 1 MB direct-mapped cache",
        |m| {
            let a = m.alloc(MemClass::NearShared { node: NodeId(0) }, 2 << 20);
            for sweep in 0..2 {
                for i in 0..(2 << 20) / 32 {
                    m.read(CpuId(0), a.addr(i * 32));
                }
                let _ = sweep;
            }
        },
    );

    println!("cumulative:\n{}", m.stats);
}
