//! Quickstart: build the paper's 16-processor testbed, poke the
//! memory hierarchy, and time the primitive mechanisms of §4.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spp1000::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The machine: 2 hypernodes x 4 functional units x 2 PA-7100s.
    // ------------------------------------------------------------------
    let mut m = Machine::spp1000(2);
    println!("{}", spp1000::spp_core::system_diagram(m.config()));

    // ------------------------------------------------------------------
    // 2. The NUMA latency spectrum (§2.6 / §6).
    // ------------------------------------------------------------------
    let near = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
    let far = m.alloc(MemClass::NearShared { node: NodeId(1) }, 4096);
    let local_miss = m.read(CpuId(0), near.addr(0));
    let hit = m.read(CpuId(0), near.addr(0));
    let remote_miss = m.read(CpuId(0), far.addr(0));
    let gcb_hit = m.read(CpuId(1), far.addr(0)); // same node, second CPU
    println!("\nlatency spectrum (cycles @ 10 ns):");
    println!("  cache hit                 {hit:>4}");
    println!("  hypernode-local miss      {local_miss:>4}   (paper: 50-60)");
    println!("  remote miss over SCI      {remote_miss:>4}   (paper: ~8x local)");
    println!("  global-cache-buffer hit   {gcb_hit:>4}   (paper: 50-60)");

    // ------------------------------------------------------------------
    // 3. Fork-join and barrier costs (Figures 2 and 3).
    // ------------------------------------------------------------------
    let mut rt = Runtime::spp1000(2);
    println!("\nfork-join of an empty body (us):");
    for n in [2usize, 8, 16] {
        rt.fork_join(n, &Placement::HighLocality, |_| {});
        let t = rt
            .fork_join(n, &Placement::HighLocality, |_| {})
            .elapsed_us();
        println!("  {n:>2} threads, high locality: {t:>6.1}");
    }

    // ------------------------------------------------------------------
    // 4. A parallel loop over simulated shared memory.
    // ------------------------------------------------------------------
    let n = 1 << 16;
    let mut data = SimArray::<f64>::from_elem(&mut rt.machine, MemClass::FarShared, n, 1.0);
    let report = rt.fork_join(16, &Placement::Uniform, |ctx| {
        for i in ctx.chunk(n) {
            let v = ctx.read(&data, i);
            ctx.write(&mut data, i, v * 2.0);
            ctx.flops(1);
        }
    });
    println!(
        "\nparallel doubling of {} far-shared values on 16 CPUs: {:.1} us, {:.1} Mflop/s",
        n,
        report.elapsed_us(),
        report.mflops()
    );
    assert!(data.host().iter().all(|v| *v == 2.0));
    println!("\nmemory-system counters:\n{}", rt.machine.stats);
}
