//! A self-gravitating Plummer sphere with the Barnes-Hut tree code
//! (paper §5.3): energy bookkeeping plus the cross-hypernode scaling
//! behaviour of Figure 8.
//!
//! ```text
//! cargo run --release --example galaxy_collapse
//! ```

use nbody::{host, plummer, NbodyProblem, SharedNbody};
use spp1000::prelude::*;

fn main() {
    let problem = NbodyProblem::with_n(8192);
    println!(
        "Plummer sphere: {} particles, theta = {}, eps = {}",
        problem.n, problem.theta, problem.eps
    );

    // Energy check on the host reference first.
    let mut b = plummer(&problem);
    let e0 = host::total_energy(&b, problem.eps);
    for _ in 0..5 {
        host::step(&problem, &mut b);
    }
    let e1 = host::total_energy(&b, problem.eps);
    println!(
        "leapfrog energy drift over 5 steps: {:.3}% (E {:.5} -> {:.5})",
        100.0 * ((e1 - e0) / e0).abs(),
        e0,
        e1
    );

    // Scaling on the simulated machine: one hypernode vs two.
    println!(
        "\nprocs  config   Mflop/s  speedup   (paper: 27.5 MF/s serial, 2-7% cross-node loss)"
    );
    let mut base = 0.0;
    for (procs, placement, label) in [
        (1usize, Placement::HighLocality, "1 node"),
        (4, Placement::HighLocality, "1 node"),
        (8, Placement::HighLocality, "1 node"),
        (8, Placement::Uniform, "2 nodes"),
        (16, Placement::Uniform, "2 nodes"),
    ] {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), procs, &placement);
        let mut sim = SharedNbody::new(&mut rt, problem.clone(), &team);
        sim.step(&mut rt, &team); // warm-up
        let r = sim.run(&mut rt, &team, 1);
        if base == 0.0 {
            base = r.mflops();
        }
        println!(
            "{procs:>5}  {label:>7}  {:>7.1}  {:>7.2}",
            r.mflops(),
            r.mflops() / base
        );
    }
}
