//! CXpa-style profiling of the PIC code (§6: the paper credits
//! exactly this kind of per-region instrumentation for fast
//! optimization turnaround — "If vendors are going to insist on
//! gambling system performance on latency avoidance through caches,
//! then they should make available the means to observe the
//! consequences of cache operation").
//!
//! ```text
//! cargo run --release --example cxpa_profile
//! ```

use pic::{PicProblem, SharedPic};
use spp1000::prelude::*;
use spp1000::spp_runtime::Profile;

fn main() {
    let problem = PicProblem::with_mesh(16, 16, 16);
    let mut rt = Runtime::spp1000(2);
    let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
    let mut sim = SharedPic::new(&mut rt, problem, &team);

    let mut prof = Profile::new();
    let before = rt.machine.stats;
    for _ in 0..4 {
        sim.step_profiled(&mut rt, &team, Some(&mut prof));
    }
    let mem = rt.machine.stats.since(&before);

    println!("PIC 16x16x16, 8 processors, 4 timesteps — per-phase profile:\n");
    println!("{}", prof.report());
    println!("memory system over the same window:\n{mem}");
    println!(
        "\nreading the table: the particle phases (deposit, gather_push) dominate;\n\
         the strided fft_z pencils have the worst cache behavior per flop; balance\n\
         near 1.0 shows the static particle decomposition is even."
    );
}
