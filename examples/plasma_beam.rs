//! Beam–plasma instability with the PIC code (paper §5.1): a
//! monoenergetic electron beam drives the two-stream instability; we
//! watch the field energy grow while comparing shared-memory and PVM
//! execution on the simulated SPP-1000.
//!
//! ```text
//! cargo run --release --example plasma_beam
//! ```

use pic::pvm::PvmPic;
use pic::{PicProblem, SharedPic};
use spp1000::prelude::*;

fn main() {
    let problem = PicProblem::with_mesh(16, 16, 16);
    println!(
        "beam-plasma: 16x16x16 mesh, {} particles (8 plasma + 1 beam per cell, beam at {}x thermal speed)",
        problem.num_particles(),
        problem.beam_speed
    );

    // Shared-memory run on 8 processors (one hypernode).
    let mut rt = Runtime::spp1000(2);
    let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
    let mut sim = SharedPic::new(&mut rt, problem.clone(), &team);
    println!("\nstep   field energy   (two-stream instability growing from noise)");
    let mut total = 0u64;
    let mut flops = 0u64;
    for step in 1..=12 {
        let r = sim.step(&mut rt, &team);
        total += r.elapsed;
        flops += r.flops;
        if step % 2 == 0 {
            println!("{step:>4}   {:>12.4}", sim.field_energy());
        }
    }
    println!(
        "\nshared memory, 8 procs: {:.1} ms simulated / step, {:.1} Mflop/s",
        total as f64 * 1e-5 / 12.0,
        flops as f64 / (total as f64 * 1e-8) / 1e6
    );

    // The same physics over ConvexPVM-style message passing.
    let cpus: Vec<CpuId> = (0..8u16).map(CpuId).collect();
    let mut pvm = Pvm::spp1000(2, &cpus);
    let mut psim = PvmPic::new(&mut pvm, problem);
    let r = psim.run(&mut pvm, 12);
    println!(
        "PVM (replicated grid), 8 tasks: {:.1} ms simulated / step  ({:.2}x the shared-memory time)",
        r.seconds() * 1e3 / 12.0,
        (r.elapsed as f64 / 12.0) / (total as f64 / 12.0)
    );
    println!(
        "\n(the paper: \"The shared memory version consistently outperforms the pvm version\")"
    );
}
