//! A 2-D blast wave with the PPM hydrodynamics code (paper §5.4):
//! prints an ASCII density map as the shock expands across the tiled,
//! simulated machine.
//!
//! ```text
//! cargo run --release --example blast_wave
//! ```

use ppm::{PpmProblem, SharedPpm};
use spp1000::prelude::*;

fn main() {
    let problem = PpmProblem::table2(48, 48, 4, 4);
    let mut rt = Runtime::spp1000(2);
    let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
    let mut sim = SharedPpm::new(&mut rt, problem.clone(), &team);
    println!(
        "blast wave on a {}x{} grid, {}x{} tiles, 8 processors\n",
        problem.nx, problem.ny, problem.tiles_x, problem.tiles_y
    );

    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut elapsed = 0u64;
    let mut flops = 0u64;
    for frame in 0..3 {
        for _ in 0..8 {
            let (c, f) = sim.step(&mut rt, &team);
            elapsed += c;
            flops += f;
        }
        println!(
            "after {} steps (density, 48x48 downsampled 2x):",
            (frame + 1) * 8
        );
        for y in (0..problem.ny).step_by(2) {
            let mut line = String::new();
            for x in (0..problem.nx).step_by(2) {
                let rho = sim.prim(x, y).rho;
                let idx = (((rho - 0.6) / 0.8).clamp(0.0, 0.999) * shades.len() as f64) as usize;
                line.push(shades[idx]);
            }
            println!("  {line}");
        }
        println!();
    }
    println!(
        "24 steps: {:.2} ms simulated time, {:.1} Mflop/s sustained on 8 CPUs",
        elapsed as f64 * 1e-5,
        flops as f64 / (elapsed as f64 * 1e-8) / 1e6
    );
    println!("mass conserved to {:.2e} (relative)", {
        let m0 = 48.0 * 48.0; // unit density initially
        ((sim.total_mass() - m0) / m0).abs()
    });
}
