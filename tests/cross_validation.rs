//! Cross-implementation validation through the `spp1000` facade:
//! every execution style of every application must agree on the
//! physics, whatever it costs on the simulated machine.

use spp1000::prelude::*;

/// PIC: host reference, shared-memory (1 and 8 threads) and
/// replicated-grid PVM all produce the same field energy.
#[test]
fn pic_all_implementations_agree() {
    use spp1000::pic::{host, load_particles, PicProblem, SharedPic};
    let p = PicProblem::tiny();
    let steps = 2;

    // Host reference.
    let mut parts = load_particles(&p);
    let mut fields = host::Fields::new(&p);
    for _ in 0..steps {
        host::step(&p, &mut parts, &mut fields);
    }
    let reference = fields.field_energy();

    // Shared memory at two team sizes.
    for threads in [1usize, 8] {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), threads, &Placement::HighLocality);
        let mut sim = SharedPic::new(&mut rt, p.clone(), &team);
        for _ in 0..steps {
            sim.step(&mut rt, &team);
        }
        let rel = (sim.field_energy() - reference).abs() / reference;
        assert!(rel < 1e-6, "shared({threads}) field energy off by {rel}");
    }

    // PVM.
    let cpus: Vec<CpuId> = (0..4u16).map(CpuId).collect();
    let mut pvm = Pvm::spp1000(2, &cpus);
    let mut sim = spp1000::pic::pvm::PvmPic::new(&mut pvm, p.clone());
    for _ in 0..steps {
        sim.step(&mut pvm);
    }
    // Compare kinetic energy (the PVM version exposes KE).
    let ke_ref = parts.kinetic_energy();
    let rel = (sim.kinetic_energy() - ke_ref).abs() / ke_ref;
    assert!(rel < 1e-9, "pvm kinetic energy off by {rel}");
}

/// PIC: the slab-decomposed PVM variant also matches.
#[test]
fn pic_slab_pvm_matches_host() {
    use spp1000::pic::{host, load_particles, pvm_slab::SlabPvmPic, PicProblem};
    let p = PicProblem::tiny();
    let cpus: Vec<CpuId> = (0..4u16).map(CpuId).collect();
    let mut pvm = Pvm::spp1000(2, &cpus);
    let mut sim = SlabPvmPic::new(&mut pvm, p.clone());
    let mut parts = load_particles(&p);
    let mut fields = host::Fields::new(&p);
    for _ in 0..2 {
        sim.step(&mut pvm);
        host::step(&p, &mut parts, &mut fields);
    }
    assert_eq!(sim.num_particles(), parts.len());
}

/// N-body: shared memory (different placements) and PVM agree with
/// the host integrator.
#[test]
fn nbody_all_implementations_agree() {
    use spp1000::nbody::{host, plummer, problem::sort_by_morton, NbodyProblem, SharedNbody};
    let p = NbodyProblem::with_n(512);
    let mut b = sort_by_morton(&plummer(&p));
    host::step(&p, &mut b);
    let ke_ref = b.kinetic_energy();

    for placement in [Placement::HighLocality, Placement::Uniform] {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 6, &placement);
        let mut sim = SharedNbody::new(&mut rt, p.clone(), &team);
        sim.step(&mut rt, &team);
        let ke = sim.bodies().kinetic_energy();
        let rel = (ke - ke_ref).abs() / ke_ref;
        assert!(rel < 1e-9, "shared {placement:?} KE off by {rel}");
    }

    let cpus: Vec<CpuId> = (0..2u16).map(CpuId).collect();
    let mut pvm = Pvm::spp1000(2, &cpus);
    let mut sim = spp1000::nbody::pvm::PvmNbody::new(&mut pvm, p.clone());
    sim.step(&mut pvm);
    let rel = (sim.kinetic_energy() - ke_ref).abs() / ke_ref;
    assert!(rel < 1e-9, "pvm KE off by {rel}");
}

/// FEM: both codings, any team size, match the host scheme.
#[test]
fn fem_all_codings_agree() {
    use spp1000::fem::{host, Coding, Mesh, SharedFem};
    let mesh = Mesh::tiny();
    let mut s = host::State::pulse(&mesh);
    for _ in 0..2 {
        let dt = host::timestep(&s, 0.3);
        host::step(&mesh, &mut s, dt);
    }
    let e_ref = s.total_energy(&mesh);

    for coding in [Coding::ScatterAdd, Coding::Gather] {
        for threads in [1usize, 7] {
            let mut rt = Runtime::spp1000(2);
            let team = Team::place(rt.machine.config(), threads, &Placement::HighLocality);
            let mut sim = SharedFem::new(&mut rt, Mesh::tiny(), coding, &team);
            for _ in 0..2 {
                sim.step(&mut rt, &team, 0.3);
            }
            let e = sim.state().total_energy(&mesh);
            let rel = (e - e_ref).abs() / e_ref.abs();
            assert!(rel < 1e-9, "{coding:?}/{threads}: energy off by {rel}");
        }
    }
}

/// PPM: the tiled machine version matches the host grid for several
/// tilings.
#[test]
fn ppm_tilings_agree() {
    use spp1000::ppm::{host::Grid, PpmProblem, SharedPpm};
    let base = PpmProblem::tiny();
    let mut g = Grid::new(&base);
    for _ in 0..3 {
        g.step(base.cfl);
    }
    let m_ref = g.total_mass();
    let p_probe = g.prim(10, 20).p;

    for (tx, ty) in [(2usize, 4usize), (4, 8), (1, 1)] {
        let prob = PpmProblem::table2(base.nx, base.ny, tx, ty);
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
        let mut sim = SharedPpm::new(&mut rt, prob, &team);
        for _ in 0..3 {
            sim.step(&mut rt, &team);
        }
        let rel_m = (sim.total_mass() - m_ref).abs() / m_ref;
        assert!(rel_m < 1e-11, "{tx}x{ty}: mass off by {rel_m}");
        let rel_p = (sim.prim(10, 20).p - p_probe).abs() / p_probe;
        assert!(rel_p < 1e-9, "{tx}x{ty}: pressure off by {rel_p}");
    }
}

/// The tentpole invariant of the port layer: batched run accesses
/// (`read_run`/`write_run`/`fill_run`) must be *bit-identical* in
/// cycles and every `MemStats` counter to elementwise access, on the
/// cycle-accurate backend. Checked end-to-end on a figure benchmark
/// workload (Figure 6's PIC, which batches its field loops) and two
/// application kernels (PPM's 1-D sweep strips, FEM's point update),
/// by running the same simulation with the runtime's batching toggle
/// on and off.
#[test]
fn batched_runs_bit_identical_to_scalar_on_cycle_backend() {
    use spp1000::fem::{structured, Coding, SharedFem};
    use spp1000::pic::{PicProblem, SharedPic};
    use spp1000::ppm::{PpmProblem, SharedPpm};

    fn pic_fig6(batching: bool) -> (Cycles, MemStats) {
        let mut rt = Runtime::spp1000(2).with_batching(batching);
        let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
        let mut sim = SharedPic::new(&mut rt, PicProblem::tiny(), &team);
        let r = sim.run(&mut rt, &team, 2);
        (r.elapsed, rt.machine.stats)
    }
    fn ppm_sweep(batching: bool) -> (Cycles, MemStats) {
        let mut rt = Runtime::spp1000(2).with_batching(batching);
        let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
        let mut sim = SharedPpm::new(&mut rt, PpmProblem::tiny(), &team);
        let r = sim.run(&mut rt, &team, 2);
        (r.elapsed, rt.machine.stats)
    }
    fn fem_update(batching: bool) -> (Cycles, MemStats) {
        let mut rt = Runtime::spp1000(2).with_batching(batching);
        let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
        let mut sim = SharedFem::new(&mut rt, structured(24, 24), Coding::ScatterAdd, &team);
        let r = sim.run(&mut rt, &team, 0.3, 2);
        (r.elapsed, rt.machine.stats)
    }

    for (name, f) in [
        ("pic/fig6", pic_fig6 as fn(bool) -> (Cycles, MemStats)),
        ("ppm/sweep", ppm_sweep),
        ("fem/update", fem_update),
    ] {
        let (batched_cycles, batched_stats) = f(true);
        let (scalar_cycles, scalar_stats) = f(false);
        assert_eq!(batched_cycles, scalar_cycles, "{name}: cycle totals moved");
        assert_eq!(batched_stats, scalar_stats, "{name}: MemStats moved");
        assert!(batched_cycles > 0, "{name}: nothing simulated");
    }
}

/// E11: recording a run through `TracePort` and replaying the trace
/// into a fresh machine reproduces the port cycle total and every
/// `MemStats` counter bit-identically — for a figure benchmark
/// workload (Figure 2's fork-join over shared arrays) and an
/// application kernel (FEM).
#[test]
fn trace_replay_bit_identical_for_figure_and_app_workloads() {
    use spp1000::fem::{structured, Coding, SharedFem};

    // Figure-2-style fork-join workload: spawn costs, barrier
    // traffic, and a strided shared-array sweep all flow through the
    // recording port.
    {
        let mut rt = Runtime::new(TracePort::new(Machine::spp1000(2)));
        let mut arr = SimArray::from_elem(&mut rt.machine, MemClass::FarShared, 4096, 1.0f64);
        for threads in [1usize, 8, 16] {
            rt.fork_join(threads, &Placement::Uniform, |ctx| {
                let r = ctx.chunk(4096);
                for i in r.clone() {
                    let v = ctx.read(&arr, i);
                    ctx.write(&mut arr, i, v + 1.0);
                }
                ctx.flops(r.len() as u64);
            });
        }
        let recorded = rt.machine.total_cycles();
        let (machine, trace) = rt.machine.into_parts();
        assert!(trace.records() > 0);
        let mut fresh = Machine::spp1000(2);
        assert_eq!(trace.replay(&mut fresh), recorded, "fig2 replay cycles");
        assert_eq!(fresh.stats, machine.stats, "fig2 replay stats");
    }

    // Application kernel: one FEM step, batched runs included.
    {
        let mut rt = Runtime::new(TracePort::new(Machine::spp1000(2)));
        let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
        let mut sim = SharedFem::new(&mut rt, structured(16, 16), Coding::ScatterAdd, &team);
        sim.step(&mut rt, &team, 0.3);
        let recorded = rt.machine.total_cycles();
        let (machine, trace) = rt.machine.into_parts();
        let mut fresh = Machine::spp1000(2);
        assert_eq!(trace.replay(&mut fresh), recorded, "fem replay cycles");
        assert_eq!(fresh.stats, machine.stats, "fem replay stats");
    }
}

/// The analytic backend drives the same generic stack: an application
/// runs unmodified on `FastPort`, sees the same access stream (read
/// and write counts match the cycle backend exactly), and produces
/// the same physics.
#[test]
fn apps_run_unmodified_on_the_analytic_backend() {
    use spp1000::pic::{PicProblem, SharedPic};

    let p = PicProblem::tiny();
    let run = |mut rtf: Runtime<FastPort>| {
        let team = Team::place(rtf.machine.config(), 4, &Placement::HighLocality);
        let mut sim = SharedPic::new(&mut rtf, p.clone(), &team);
        let r = sim.run(&mut rtf, &team, 1);
        (r.elapsed, rtf.machine.stats, sim.field_energy())
    };
    let (fast_cycles, fast_stats, fast_energy) = run(Runtime::new(FastPort::spp1000(2)));

    let mut rt = Runtime::spp1000(2);
    let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
    let mut sim = SharedPic::new(&mut rt, p.clone(), &team);
    let r = sim.run(&mut rt, &team, 1);

    assert!(fast_cycles > 0);
    assert_eq!(fast_stats.reads, rt.machine.stats.reads, "same read stream");
    assert_eq!(
        fast_stats.writes, rt.machine.stats.writes,
        "same write stream"
    );
    let rel = (fast_energy - sim.field_energy()).abs() / sim.field_energy().max(1e-30);
    assert!(rel < 1e-12, "physics must not depend on the backend");
    assert!(r.elapsed > 0);
}
