//! Bit-reproducibility across the full stack: every experiment must
//! produce identical results on repeated runs (the property the whole
//! harness depends on).

use spp1000::prelude::*;

#[test]
fn machine_accounting_is_deterministic() {
    let run = || {
        let mut m = Machine::spp1000(2);
        let r = m.alloc(MemClass::FarShared, 1 << 16);
        let mut total = 0u64;
        for i in 0..2048u64 {
            total += m.read(CpuId((i % 16) as u16), r.addr((i * 37) % (1 << 16)));
            if i % 3 == 0 {
                total += m.write(CpuId(((i + 5) % 16) as u16), r.addr((i * 53) % (1 << 16)));
            }
        }
        (total, m.stats)
    };
    let (a, sa) = run();
    let (b, sb) = run();
    assert_eq!(a, b);
    assert_eq!(sa, sb);
}

#[test]
fn fork_join_timing_is_deterministic() {
    let run = || {
        let mut rt = Runtime::spp1000(2);
        (0..4)
            .map(|_| {
                rt.fork_join(16, &Placement::Uniform, |ctx| ctx.flops(100))
                    .elapsed
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn pic_run_is_bit_reproducible() {
    let run = || {
        let p = pic::PicProblem::tiny();
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
        let mut s = pic::SharedPic::new(&mut rt, p, &team);
        let r = s.run(&mut rt, &team, 2);
        (r.elapsed, r.flops, s.field_energy().to_bits())
    };
    assert_eq!(run(), run());
}

#[test]
fn nbody_run_is_bit_reproducible() {
    let run = || {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 8, &Placement::Uniform);
        let mut s = nbody::SharedNbody::new(&mut rt, nbody::NbodyProblem::with_n(1024), &team);
        let (c, f, i) = s.step(&mut rt, &team);
        let b = s.bodies();
        (c, f, i, b.x[17].to_bits(), b.vz[900].to_bits())
    };
    assert_eq!(run(), run());
}

#[test]
fn fem_and_ppm_runs_are_bit_reproducible() {
    let fem_run = || {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
        let mut s = fem::SharedFem::new(&mut rt, fem::Mesh::tiny(), fem::Coding::Gather, &team);
        let (c, p) = s.step(&mut rt, &team, 0.3);
        (c, p, s.state().e[33].to_bits())
    };
    assert_eq!(fem_run(), fem_run());

    let ppm_run = || {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
        let mut s = ppm::SharedPpm::new(&mut rt, ppm::PpmProblem::tiny(), &team);
        let (c, f) = s.step(&mut rt, &team);
        (c, f, s.prim(10, 20).rho.to_bits())
    };
    assert_eq!(ppm_run(), ppm_run());
}

#[test]
fn pvm_sessions_are_deterministic() {
    let run = || {
        let cpus: Vec<CpuId> = (0..4u16).map(CpuId).collect();
        let mut pvm = Pvm::spp1000(2, &cpus);
        let mut s = nbody::pvm::PvmNbody::new(&mut pvm, nbody::NbodyProblem::with_n(512));
        let r = s.run(&mut pvm, 2);
        (r.elapsed, r.flops, s.kinetic_energy().to_bits())
    };
    assert_eq!(run(), run());
}

/// A trace recorded under an active fault plan — transient ring
/// stalls plus hard CPU/link/GCB failures firing mid-stream — replays
/// bit-identically (cycles, MemStats, and degraded-mode state) into a
/// fresh machine carrying the same plan.
#[test]
fn trace_replay_is_bit_identical_under_an_active_fault_plan() {
    let plan = || {
        FaultPlan::new(99)
            .with_ring_stalls(0.2, 400)
            .with_cpu_failure(3, 20_000)
            .with_link_failure(0, 40_000, 700)
            .with_gcb_degrade(1, 60_000)
    };
    let mut p = TracePort::new(Machine::spp1000(2).with_faults(plan()));
    let r = p.alloc(MemClass::FarShared, 1 << 16);
    for i in 0..1024u64 {
        p.read(CpuId((i % 16) as u16), r.addr((i * 37) % (1 << 16)));
        if i % 3 == 0 {
            p.write(CpuId(((i + 5) % 16) as u16), r.addr((i * 53) % (1 << 16)));
        }
        if i % 7 == 0 {
            p.uncached_op(CpuId((i % 16) as u16), r.addr((i * 11) % (1 << 16)));
        }
    }
    // Runs from a dead CPU take the scalar fallback; runs from a live
    // one take the batched fast path — both must replay exactly.
    p.read_run(CpuId(3), r.addr(0), 8, 2048);
    p.write_run(CpuId(9), r.addr(8192), 8, 1024);
    let recorded = p.total_cycles();
    let (m, trace) = p.into_parts();
    assert!(m.is_cpu_dead(CpuId(3)), "cpu hard fault must have fired");
    assert_ne!(m.failed_rings(), 0, "link hard fault must have fired");
    assert_ne!(m.degraded_nodes(), 0, "gcb hard fault must have fired");
    assert!(m.stats.ring_stalls > 0, "transient stalls must have fired");

    let mut fresh = Machine::spp1000(2).with_faults(plan());
    let replayed = trace.replay(&mut fresh);
    assert_eq!(replayed, recorded, "replayed cycles diverged");
    assert_eq!(fresh.stats, m.stats, "replayed MemStats diverged");
    assert_eq!(fresh.dead_cpu_list(), m.dead_cpu_list());
    assert_eq!(fresh.failed_rings(), m.failed_rings());
    assert_eq!(fresh.degraded_nodes(), m.degraded_nodes());
}
