//! Bit-reproducibility across the full stack: every experiment must
//! produce identical results on repeated runs (the property the whole
//! harness depends on).

use spp1000::prelude::*;

#[test]
fn machine_accounting_is_deterministic() {
    let run = || {
        let mut m = Machine::spp1000(2);
        let r = m.alloc(MemClass::FarShared, 1 << 16);
        let mut total = 0u64;
        for i in 0..2048u64 {
            total += m.read(CpuId((i % 16) as u16), r.addr((i * 37) % (1 << 16)));
            if i % 3 == 0 {
                total += m.write(CpuId(((i + 5) % 16) as u16), r.addr((i * 53) % (1 << 16)));
            }
        }
        (total, m.stats)
    };
    let (a, sa) = run();
    let (b, sb) = run();
    assert_eq!(a, b);
    assert_eq!(sa, sb);
}

#[test]
fn fork_join_timing_is_deterministic() {
    let run = || {
        let mut rt = Runtime::spp1000(2);
        (0..4)
            .map(|_| {
                rt.fork_join(16, &Placement::Uniform, |ctx| ctx.flops(100))
                    .elapsed
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn pic_run_is_bit_reproducible() {
    let run = || {
        let p = pic::PicProblem::tiny();
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
        let mut s = pic::SharedPic::new(&mut rt, p, &team);
        let r = s.run(&mut rt, &team, 2);
        (r.elapsed, r.flops, s.field_energy().to_bits())
    };
    assert_eq!(run(), run());
}

#[test]
fn nbody_run_is_bit_reproducible() {
    let run = || {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 8, &Placement::Uniform);
        let mut s = nbody::SharedNbody::new(&mut rt, nbody::NbodyProblem::with_n(1024), &team);
        let (c, f, i) = s.step(&mut rt, &team);
        let b = s.bodies();
        (c, f, i, b.x[17].to_bits(), b.vz[900].to_bits())
    };
    assert_eq!(run(), run());
}

#[test]
fn fem_and_ppm_runs_are_bit_reproducible() {
    let fem_run = || {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
        let mut s = fem::SharedFem::new(&mut rt, fem::Mesh::tiny(), fem::Coding::Gather, &team);
        let (c, p) = s.step(&mut rt, &team, 0.3);
        (c, p, s.state().e[33].to_bits())
    };
    assert_eq!(fem_run(), fem_run());

    let ppm_run = || {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
        let mut s = ppm::SharedPpm::new(&mut rt, ppm::PpmProblem::tiny(), &team);
        let (c, f) = s.step(&mut rt, &team);
        (c, f, s.prim(10, 20).rho.to_bits())
    };
    assert_eq!(ppm_run(), ppm_run());
}

#[test]
fn pvm_sessions_are_deterministic() {
    let run = || {
        let cpus: Vec<CpuId> = (0..4u16).map(CpuId).collect();
        let mut pvm = Pvm::spp1000(2, &cpus);
        let mut s = nbody::pvm::PvmNbody::new(&mut pvm, nbody::NbodyProblem::with_n(512));
        let r = s.run(&mut pvm, 2);
        (r.elapsed, r.flops, s.kinetic_energy().to_bits())
    };
    assert_eq!(run(), run());
}
