//! Robustness features end to end: the coherence checker stays silent
//! on arbitrary legal access streams, typed errors surface at the
//! facade, and seeded fault injection is reproducible.

use proptest::prelude::*;
use spp1000::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random read/write streams over every memory class on the tiny
    /// machine (small caches force constant evictions and rollouts)
    /// never trip a coherence invariant.
    #[test]
    fn checker_is_silent_on_random_access_streams(
        accesses in proptest::collection::vec(
            (0u16..16, 0usize..4, 0u64..512, proptest::bool::ANY), 1..400)
    ) {
        let mut m = Machine::new(MachineConfig::tiny(2)).with_checker();
        let regions = [
            m.alloc(MemClass::FarShared, 16 << 10),
            m.alloc(MemClass::NearShared { node: NodeId(0) }, 16 << 10),
            m.alloc(MemClass::NearShared { node: NodeId(1) }, 16 << 10),
            m.alloc(MemClass::BlockShared { block_bytes: 4096 }, 16 << 10),
        ];
        for (cpu, region, slot, is_write) in accesses {
            let addr = regions[region].addr((slot * 32) % (16 << 10));
            if is_write {
                m.write(CpuId(cpu), addr);
            } else {
                m.read(CpuId(cpu), addr);
            }
        }
        // The per-access hook would have panicked already; the full
        // sweep must agree that the final state is consistent.
        let violations = m.check_all();
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    /// The same seed gives bit-identical costs for the same access
    /// stream under fault injection; the machine state itself (hit
    /// pattern) is fault-independent.
    #[test]
    fn fault_injection_is_seed_deterministic(
        accesses in proptest::collection::vec((0u16..16, 0u64..256), 1..200),
        seed in 0u64..1000,
    ) {
        let run = |plan: Option<FaultPlan>| {
            let mut m = Machine::new(MachineConfig::tiny(2));
            if let Some(p) = plan {
                m = m.with_faults(p);
            }
            let r = m.alloc(MemClass::FarShared, 8 << 10);
            let mut cost = 0u64;
            for (cpu, slot) in &accesses {
                cost += m.read(CpuId(*cpu), r.addr((slot * 32) % (8 << 10)));
            }
            (cost, m.stats.hits, m.stats.ring_stalls)
        };
        let plan = FaultPlan::new(seed).with_ring_stalls(0.1, 500);
        let (cost_a, hits_a, stalls_a) = run(Some(plan.clone()));
        let (cost_b, hits_b, stalls_b) = run(Some(plan));
        let (clean_cost, clean_hits, _) = run(None);
        prop_assert_eq!(cost_a, cost_b);
        prop_assert_eq!(stalls_a, stalls_b);
        // Faults perturb cost, never protocol state.
        prop_assert_eq!(hits_a, hits_b);
        prop_assert_eq!(hits_a, clean_hits);
        prop_assert_eq!(cost_a, clean_cost + stalls_a * 500);
    }
}

/// Typed errors, not aborts, at every facade constructor boundary.
#[test]
fn typed_errors_surface_through_the_facade() {
    assert!(matches!(
        MachineConfig::try_spp1000(0),
        Err(ConfigError::Hypernodes { got: 0 })
    ));
    let mut m = Machine::spp1000(1);
    assert!(matches!(
        m.try_alloc(MemClass::FarShared, 0),
        Err(SimError::ZeroLengthAlloc)
    ));
    assert!(matches!(
        Team::try_place(m.config(), 0, &Placement::HighLocality),
        Err(SimError::EmptyTeam)
    ));
    assert!(matches!(
        Pvm::try_new(Machine::spp1000(1), &[]),
        Err(SimError::NoTasks)
    ));
    // Errors format as readable messages (the old panic strings).
    assert!(SimError::EmptyTeam.to_string().contains("at least one"));
}

/// A seeded fault plan reproduces a full PVM session exactly, and the
/// observable fault counters are stable too.
#[test]
fn pvm_fault_session_is_reproducible() {
    let run = || {
        let m = Machine::spp1000(2).with_faults(FaultPlan::standard(77));
        let cpus: Vec<CpuId> = (0..8u16).map(CpuId).collect();
        let mut pvm = Pvm::new(m, &cpus);
        pvm.allreduce(2048, 10, 1);
        pvm.bcast(0, 4096, 99);
        (pvm.elapsed(), pvm.fault_stats())
    };
    let (elapsed_a, stats_a) = run();
    let (elapsed_b, stats_b) = run();
    assert_eq!(elapsed_a, elapsed_b);
    assert_eq!(stats_a, stats_b);
}
