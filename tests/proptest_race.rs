//! Property tests for the race detector and schedule-permutation
//! fuzzer: the four applications report zero races under arbitrary
//! schedule seeds and team sizes, and the identity `SchedulePolicy`
//! (the default) is cycle- and stats-bit-identical to the
//! pre-SchedulePolicy baselines (fig2 fork/join goldens and a fig8
//! N-body golden captured before the seam was introduced).

use proptest::prelude::*;
use spp1000::prelude::*;

/// The fig2 fork/join overhead table, captured before the schedule
/// seam landed: (threads, elapsed cycles) of an empty region after one
/// warm-up region. Any drift here means the identity policy is no
/// longer the historical, calibrated replay order.
const FIG2_HIGH_LOCALITY: [(usize, u64); 6] = [
    (1, 1500),
    (2, 2465),
    (4, 3740),
    (8, 6340),
    (10, 13810),
    (16, 20710),
];
const FIG2_UNIFORM: [(usize, u64); 6] = [
    (1, 1500),
    (2, 8455),
    (4, 10105),
    (8, 13510),
    (10, 15310),
    (16, 20710),
];

#[test]
fn identity_schedule_keeps_fig2_fork_join_goldens() {
    for (placement, golden) in [
        (Placement::HighLocality, FIG2_HIGH_LOCALITY),
        (Placement::Uniform, FIG2_UNIFORM),
    ] {
        for (n, want) in golden {
            let mut rt = Runtime::spp1000(2).with_schedule(SchedulePolicy::Identity);
            rt.fork_join(n, &placement, |_| {});
            let got = rt.fork_join(n, &placement, |_| {}).elapsed;
            assert_eq!(got, want, "{placement:?} n={n}");
        }
    }
}

/// The fig8 N-body configuration (1024 bodies, 8 CPUs across 2
/// hypernodes, one warm-up step + one measured step), captured before
/// the schedule seam and the race-detector seam landed. The identity
/// policy with detection off must reproduce every number bit-for-bit.
#[test]
fn identity_schedule_keeps_the_fig8_nbody_golden() {
    let mut rt = Runtime::spp1000(2).with_schedule(SchedulePolicy::Identity);
    let team = Team::place(rt.machine.config(), 8, &Placement::Uniform);
    let mut sim = nbody::SharedNbody::new(&mut rt, nbody::NbodyProblem::with_n(1024), &team);
    sim.step(&mut rt, &team);
    let r = sim.run(&mut rt, &team, 1);
    let s = rt.machine.stats;
    assert_eq!(r.elapsed, 5_385_045, "elapsed cycles drifted");
    assert_eq!(r.flops, 11_211_258, "useful flops drifted");
    assert_eq!(s.reads, 7_773_632, "issued reads drifted");
    assert_eq!(s.writes, 441_849, "issued writes drifted");
    assert_eq!(s.hits, 8_189_104, "cache hits drifted");
    assert_eq!(s.upgrades, 6_098, "write upgrades drifted");
    assert_eq!(s.sci_fetches, 4_026, "SCI fetches drifted");
    assert_eq!(s.c2c_transfers, 2_129, "cache-to-cache transfers drifted");
}

fn detecting_runtime(nodes: usize, seed: u64) -> Runtime<Machine> {
    Runtime::new(Machine::spp1000(nodes).with_race_detection())
        .with_schedule(SchedulePolicy::Shuffled { seed })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// PIC stays race-free for any schedule seed and team size.
    #[test]
    fn pic_reports_zero_races(seed in proptest::num::u64::ANY, n in 1usize..9) {
        let mut rt = detecting_runtime(2, seed);
        let team = Team::place(rt.machine.config(), n, &Placement::Uniform);
        let mut sim = pic::SharedPic::new(&mut rt, pic::PicProblem::tiny(), &team);
        sim.step(&mut rt, &team);
        let report = rt.machine.race_report();
        prop_assert!(report.is_clean(), "races under seed {seed}, {n} threads:\n{report}");
    }

    /// The N-body tree code stays race-free for any schedule seed and
    /// team size (the sort's aliased back buffer must not be flagged).
    #[test]
    fn nbody_reports_zero_races(seed in proptest::num::u64::ANY, n in 1usize..9) {
        let mut rt = detecting_runtime(2, seed);
        let team = Team::place(rt.machine.config(), n, &Placement::Uniform);
        let mut sim =
            nbody::SharedNbody::new(&mut rt, nbody::NbodyProblem::with_n(256), &team);
        sim.step(&mut rt, &team);
        let report = rt.machine.race_report();
        prop_assert!(report.is_clean(), "races under seed {seed}, {n} threads:\n{report}");
    }

    /// FEM's colored scatter-add stays race-free for any schedule seed
    /// and team size.
    #[test]
    fn fem_reports_zero_races(seed in proptest::num::u64::ANY, n in 1usize..9) {
        let mut rt = detecting_runtime(2, seed);
        let team = Team::place(rt.machine.config(), n, &Placement::HighLocality);
        let mut sim = fem::SharedFem::new(
            &mut rt,
            fem::structured(12, 9),
            fem::Coding::ScatterAdd,
            &team,
        );
        sim.step(&mut rt, &team, 0.3);
        let report = rt.machine.race_report();
        prop_assert!(report.is_clean(), "races under seed {seed}, {n} threads:\n{report}");
    }

    /// PPM's owner-computes sweeps stay race-free for any schedule
    /// seed and team size.
    #[test]
    fn ppm_reports_zero_races(seed in proptest::num::u64::ANY, n in 1usize..9) {
        let mut rt = detecting_runtime(2, seed);
        let team = Team::place(rt.machine.config(), n, &Placement::HighLocality);
        let mut sim = ppm::SharedPpm::new(&mut rt, ppm::PpmProblem::tiny(), &team);
        sim.step(&mut rt, &team);
        let report = rt.machine.race_report();
        prop_assert!(report.is_clean(), "races under seed {seed}, {n} threads:\n{report}");
    }

    /// Explicitly setting the identity policy is indistinguishable
    /// from the default runtime for any team size: same cycles, same
    /// counters.
    #[test]
    fn identity_policy_matches_the_default_runtime(n in 1usize..17) {
        let mut a = Runtime::spp1000(2);
        let mut b = Runtime::spp1000(2).with_schedule(SchedulePolicy::Identity);
        let ea = a.fork_join(n, &Placement::Uniform, |_| {}).elapsed;
        let eb = b.fork_join(n, &Placement::Uniform, |_| {}).elapsed;
        prop_assert_eq!(ea, eb);
        prop_assert_eq!(a.machine.stats, b.machine.stats);
    }
}
