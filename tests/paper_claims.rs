//! Integration tests of the paper's headline claims, exercised through
//! the full stack (machine + runtime + PVM + applications together).

use spp1000::prelude::*;

/// §6: "Cache miss penalties to global data versus hypernode local
/// data were measured at about a factor of eight on average."
#[test]
fn global_vs_local_miss_factor_eight() {
    let mut m = Machine::spp1000(2);
    let near = m.alloc(MemClass::NearShared { node: NodeId(0) }, 1 << 16);
    let far = m.alloc(MemClass::NearShared { node: NodeId(1) }, 1 << 16);
    let mut local = 0u64;
    let mut remote = 0u64;
    for i in 0..1024u64 {
        local += m.read(CpuId(0), near.addr(i * 64));
        remote += m.read(CpuId(0), far.addr(i * 64));
    }
    let ratio = remote as f64 / local as f64;
    assert!((6.0..=10.0).contains(&ratio), "global:local = {ratio}");
}

/// §4.3: message passing is "truly scalable" — the global:local round
/// trip ratio is ~2.3 under 8 KB.
#[test]
fn message_passing_ratio() {
    let mut local = Pvm::spp1000(2, &[CpuId(0), CpuId(1)]);
    let mut global = Pvm::spp1000(2, &[CpuId(0), CpuId(8)]);
    let rl = local.round_trip(0, 1, 4096, 4);
    let rg = global.round_trip(0, 1, 4096, 4);
    let ratio = rg as f64 / rl as f64;
    assert!((1.9..=2.8).contains(&ratio), "ratio = {ratio}");
    assert!((25.0..=35.0).contains(&cycles_to_us(rl)));
}

/// §4.1: ~50 us one-time penalty once threads span two hypernodes.
#[test]
fn fork_join_cross_node_activation() {
    let mut rt = Runtime::spp1000(2);
    let t8 = rt
        .fork_join(8, &Placement::HighLocality, |_| {})
        .elapsed_us();
    let t9 = rt
        .fork_join(9, &Placement::HighLocality, |_| {})
        .elapsed_us();
    let jump = t9 - t8;
    assert!((40.0..=90.0).contains(&jump), "activation jump = {jump} us");
}

/// §6: "Programming a single hypernode ... returned excellent scaling
/// across eight processors in all cases." Checked for all four
/// applications at reduced sizes.
#[test]
fn all_four_applications_scale_across_one_hypernode() {
    // PIC.
    let pic_speedup = {
        let p = pic::PicProblem::with_mesh(16, 16, 16);
        let run = |procs: usize| {
            let mut rt = Runtime::spp1000(2);
            let team = Team::place(rt.machine.config(), procs, &Placement::HighLocality);
            let mut s = pic::SharedPic::new(&mut rt, p.clone(), &team);
            s.run(&mut rt, &team, 1).elapsed
        };
        run(1) as f64 / run(8) as f64
    };
    assert!(pic_speedup > 5.0, "PIC 8-proc speedup = {pic_speedup}");

    // FEM.
    let fem_speedup = {
        let run = |procs: usize| {
            let mut rt = Runtime::spp1000(2);
            let team = Team::place(rt.machine.config(), procs, &Placement::HighLocality);
            let mut s = fem::SharedFem::new(
                &mut rt,
                fem::structured(48, 48),
                fem::Coding::ScatterAdd,
                &team,
            );
            s.run(&mut rt, &team, 0.3, 1).elapsed
        };
        run(1) as f64 / run(8) as f64
    };
    assert!(fem_speedup > 5.0, "FEM 8-proc speedup = {fem_speedup}");

    // N-body.
    let nb_speedup = {
        let run = |procs: usize| {
            let mut rt = Runtime::spp1000(2);
            let team = Team::place(rt.machine.config(), procs, &Placement::HighLocality);
            let mut s = nbody::SharedNbody::new(&mut rt, nbody::NbodyProblem::with_n(4096), &team);
            s.run(&mut rt, &team, 1).elapsed
        };
        run(1) as f64 / run(8) as f64
    };
    assert!(nb_speedup > 5.0, "N-body 8-proc speedup = {nb_speedup}");

    // PPM.
    let ppm_speedup = {
        let p = ppm::PpmProblem::table2(64, 64, 4, 4);
        let run = |procs: usize| {
            let mut rt = Runtime::spp1000(2);
            let team = Team::place(rt.machine.config(), procs, &Placement::HighLocality);
            let mut s = ppm::SharedPpm::new(&mut rt, p.clone(), &team);
            s.run(&mut rt, &team, 1).elapsed
        };
        run(1) as f64 / run(8) as f64
    };
    assert!(ppm_speedup > 5.0, "PPM 8-proc speedup = {ppm_speedup}");
}

/// §3.1 / Fig. 6: "a PVM implementation of an application can achieve
/// almost one half the performance of a shared memory implementation"
/// — i.e. PVM is slower, by very roughly 2x at scale.
#[test]
fn pvm_pic_costs_roughly_twice_shared() {
    let p = pic::PicProblem::with_mesh(16, 16, 16);
    let mut rt = Runtime::spp1000(2);
    let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
    let mut sh = pic::SharedPic::new(&mut rt, p.clone(), &team);
    let rs = sh.run(&mut rt, &team, 1);

    let cpus: Vec<CpuId> = (0..8u16).map(CpuId).collect();
    let mut pvm = Pvm::spp1000(2, &cpus);
    let mut pv = pic::pvm::PvmPic::new(&mut pvm, p);
    let rp = pv.run(&mut pvm, 1);
    let ratio = rp.elapsed as f64 / rs.elapsed as f64;
    assert!((1.2..=3.5).contains(&ratio), "pvm/shared = {ratio}");
}

/// §5.3.2: the tree code's cross-hypernode degradation is small.
#[test]
fn nbody_cross_node_degradation_small() {
    let run = |placement: Placement| {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 8, &placement);
        let mut s = nbody::SharedNbody::new(&mut rt, nbody::NbodyProblem::with_n(8192), &team);
        s.step(&mut rt, &team);
        s.run(&mut rt, &team, 1).elapsed
    };
    let single = run(Placement::HighLocality);
    let dual = run(Placement::Uniform);
    let degradation = dual as f64 / single as f64 - 1.0;
    assert!(
        (-0.05..=0.25).contains(&degradation),
        "degradation = {:.1}%",
        degradation * 100.0
    );
}

/// Table 2 shape: finer tiles cost throughput; the 240x960 grid at 4
/// procs matches the 120x480 rate (both ~119 Mflop/s in the paper).
#[test]
fn ppm_table2_shape() {
    let run = |nx: usize, ny: usize, tx: usize, ty: usize| {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
        let mut s = ppm::SharedPpm::new(&mut rt, ppm::PpmProblem::table2(nx, ny, tx, ty), &team);
        s.step(&mut rt, &team);
        s.run(&mut rt, &team, 1).mflops()
    };
    let coarse = run(120, 240, 4, 8);
    let fine = run(120, 240, 12, 24);
    assert!(fine < coarse, "fine {fine} vs coarse {coarse}");
    assert!(
        fine > 0.6 * coarse,
        "fine tiles lose too much: {fine} vs {coarse}"
    );
}
