//! Property-based tests over the core data structures and the
//! machine's coherence invariants.

use proptest::prelude::*;
use spp1000::prelude::*;
use spp1000::spp_core::linemap::LineMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LineMap behaves exactly like a reference HashMap under any
    /// sequence of inserts/removes/gets.
    #[test]
    fn linemap_matches_hashmap_model(ops in proptest::collection::vec(
        (0u8..3, 0u64..64, 0u32..1000), 1..200)) {
        let mut sut = LineMap::new();
        let mut model = std::collections::HashMap::new();
        for (op, key, val) in ops {
            match op {
                0 => {
                    prop_assert_eq!(sut.insert(key, val), model.insert(key, val));
                }
                1 => {
                    prop_assert_eq!(sut.remove(key), model.remove(&key));
                }
                _ => {
                    prop_assert_eq!(sut.get(key), model.get(&key));
                }
            }
            prop_assert_eq!(sut.len(), model.len());
        }
    }

    /// Any access sequence preserves the machine's accounting
    /// invariants: hits never exceed accesses, every miss is
    /// classified exactly once, and repeated reads of the same address
    /// by the same CPU eventually hit.
    #[test]
    fn machine_accounting_invariants(
        accesses in proptest::collection::vec(
            (0u16..16, 0u64..4096u64, proptest::bool::ANY), 1..300)
    ) {
        let mut m = Machine::spp1000(2);
        let r = m.alloc(MemClass::FarShared, 128 << 10);
        for (cpu, slot, is_write) in accesses {
            let addr = r.addr((slot * 32) % (128 << 10));
            let c = if is_write {
                m.write(CpuId(cpu), addr)
            } else {
                m.read(CpuId(cpu), addr)
            };
            prop_assert!(c >= 1);
        }
        let s = m.stats;
        prop_assert!(s.hits <= s.accesses());
        prop_assert_eq!(
            s.misses(),
            s.local_misses + s.gcb_hits + s.sci_fetches + s.c2c_transfers
        );
        // Immediate re-read must hit.
        let before = m.stats;
        m.read(CpuId(3), r.addr(0));
        let first = m.read(CpuId(3), r.addr(0));
        prop_assert_eq!(first, 1);
        prop_assert_eq!(m.stats.since(&before).hits >= 1, true);
    }

    /// Every address maps to exactly one home, and that home is stable.
    #[test]
    fn placement_is_total_and_stable(
        len in 1u64..(1 << 20),
        class_sel in 0u8..4,
        offsets in proptest::collection::vec(0u64..(1 << 20), 1..32)
    ) {
        let mut m = Machine::spp1000(2);
        let class = match class_sel {
            0 => MemClass::NearShared { node: NodeId(1) },
            1 => MemClass::FarShared,
            2 => MemClass::BlockShared { block_bytes: 8192 },
            _ => MemClass::NodePrivate { node: NodeId(0) },
        };
        let r = m.alloc(class, len);
        for o in offsets {
            let addr = r.addr(o % len);
            let h1 = m.home_of(addr);
            let h2 = m.home_of(addr);
            prop_assert_eq!(h1, h2);
            let (node, fu) = h1;
            prop_assert!((node.0 as usize) < 2);
            prop_assert_eq!(m.config().node_of_fu(fu), node);
        }
    }

    /// chunk_range always partitions 0..n exactly, for any n and parts.
    #[test]
    fn chunking_partitions(n in 0usize..10_000, parts in 1usize..64) {
        let mut next = 0;
        for p in 0..parts {
            let r = spp1000::spp_runtime::chunk_range(n, parts, p);
            prop_assert_eq!(r.start, next);
            next = r.end;
        }
        prop_assert_eq!(next, n);
    }

    /// Radix sort sorts any input and is a permutation.
    #[test]
    fn radix_sort_sorts(mut keys in proptest::collection::vec(proptest::num::u64::ANY, 0..500)) {
        let mut payload: Vec<u32> = (0..keys.len() as u32).collect();
        let original = keys.clone();
        spp1000::spp_kernels::radix_sort_by_key(&mut keys, &mut payload);
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        for (rank, &orig) in payload.iter().enumerate() {
            prop_assert_eq!(keys[rank], original[orig as usize]);
        }
    }

    /// FFT round trip is the identity for any signal.
    #[test]
    fn fft_round_trips(re in proptest::collection::vec(-100.0f64..100.0, 1..5)) {
        // Use a fixed power-of-two length; fill from the generated data.
        let n = 64;
        let mut z: Vec<Complex> = (0..n)
            .map(|i| Complex::new(re[i % re.len()] + i as f64 * 0.01, -(i as f64) * 0.02))
            .collect();
        let orig = z.clone();
        spp1000::spp_kernels::fft_inplace(&mut z, false);
        spp1000::spp_kernels::fft_inplace(&mut z, true);
        for (a, b) in z.iter().zip(&orig) {
            prop_assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
        }
    }

    /// Morton keys round-trip any coordinates.
    #[test]
    fn morton_round_trips(x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21)) {
        let (a, b, c) = spp1000::spp_kernels::demorton3(spp1000::spp_kernels::morton3(x, y, z));
        prop_assert_eq!((a, b, c), (x, y, z));
    }

    /// The n-th decision at each fault site depends only on
    /// (seed, site, n) — never on how draws at the other sites
    /// interleave with it. This is what makes fault schedules survive
    /// refactors that reorder unrelated instrumentation.
    #[test]
    fn fault_sites_are_interleaving_invariant(
        seed in proptest::num::u64::ANY,
        schedule in proptest::collection::vec(0u8..4, 1..300)
    ) {
        let plan = || {
            FaultPlan::new(seed)
                .with_ring_stalls(0.3, 100)
                .with_message_faults(0.3, 0.3)
                .with_spawn_failures(0.3)
        };
        let draw = |p: &mut FaultPlan, site: u8| match site {
            0 => p.ring_stall().is_some(),
            1 => p.drops_message(),
            2 => p.duplicates_message(),
            _ => p.spawn_fails(),
        };
        // Reference streams: each site drawn alone on a fresh plan.
        let mut counts = [0usize; 4];
        for &s in &schedule {
            counts[s as usize] += 1;
        }
        let reference: Vec<Vec<bool>> = (0u8..4)
            .map(|site| {
                let mut p = plan();
                (0..counts[site as usize]).map(|_| draw(&mut p, site)).collect()
            })
            .collect();
        // One plan draws the whole interleaved schedule.
        let mut p = plan();
        let mut seen: Vec<Vec<bool>> = vec![Vec::new(); 4];
        for &s in &schedule {
            let d = draw(&mut p, s);
            seen[s as usize].push(d);
        }
        for site in 0..4 {
            prop_assert_eq!(&seen[site], &reference[site], "site {}", site);
        }
    }

    /// The barrier never releases a thread before the last arrival,
    /// and lilo >= lifo, for any arrival pattern.
    #[test]
    fn barrier_ordering_invariants(
        arrivals in proptest::collection::vec(0u64..10_000, 1..16)
    ) {
        let mut m = Machine::spp1000(2);
        let bar = SimBarrier::new(&mut m, NodeId(0));
        let cost = spp1000::spp_runtime::RuntimeCostModel::spp1000();
        let parts: Vec<(CpuId, Cycles)> = arrivals
            .iter()
            .enumerate()
            .map(|(i, t)| (CpuId(i as u16), *t))
            .collect();
        let r = bar.simulate(&mut m, &cost, &parts);
        let last = parts.iter().map(|p| p.1).max().unwrap();
        for rel in &r.release {
            prop_assert!(*rel > last);
        }
        prop_assert!(r.lilo() >= r.lifo());
    }
}
