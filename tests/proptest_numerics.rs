//! Property-based tests on the application numerics: the Riemann
//! solver, PPM reconstruction, CIC interpolation and the octree.

use proptest::prelude::*;
use spp1000::ppm::euler::{flux, riemann, Prim};

fn arb_state() -> impl Strategy<Value = Prim> {
    (0.05f64..10.0, -3.0f64..3.0, -3.0f64..3.0, 0.05f64..10.0).prop_map(|(rho, u, v, p)| Prim {
        rho,
        u,
        v,
        p,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The two-shock Riemann solver always returns a physical state.
    #[test]
    fn riemann_states_stay_physical(l in arb_state(), r in arb_state()) {
        let s = riemann(&l, &r);
        prop_assert!(s.rho > 0.0, "rho = {}", s.rho);
        prop_assert!(s.p > 0.0, "p = {}", s.p);
        prop_assert!(s.u.is_finite() && s.v.is_finite());
        let f = flux(&s);
        prop_assert!(f.rho.is_finite() && f.e.is_finite());
    }

    /// Mirror symmetry: swapping sides and negating normal velocities
    /// negates the resolved normal velocity and preserves rho/p.
    #[test]
    fn riemann_mirror_symmetry(l in arb_state(), r in arb_state()) {
        let a = riemann(&l, &r);
        let lm = Prim { u: -r.u, ..r };
        let rm = Prim { u: -l.u, ..l };
        let b = riemann(&lm, &rm);
        prop_assert!((a.rho - b.rho).abs() < 1e-9 * a.rho.max(1.0));
        prop_assert!((a.u + b.u).abs() < 1e-9 * (a.u.abs() + 1.0));
        prop_assert!((a.p - b.p).abs() < 1e-9 * a.p.max(1.0));
    }

    /// Identical states resolve to themselves (consistency).
    #[test]
    fn riemann_consistency(s in arb_state()) {
        let res = riemann(&s, &s);
        prop_assert!((res.rho - s.rho).abs() < 1e-6 * s.rho);
        prop_assert!((res.u - s.u).abs() < 1e-6 * (s.u.abs() + 1.0));
        prop_assert!((res.p - s.p).abs() < 1e-6 * s.p);
    }

    /// CIC weights are a partition of unity and the deposited charge
    /// equals the particle charge, wherever the particle sits.
    #[test]
    fn cic_deposit_conserves_charge(
        x in 0.0f64..8.0, y in 0.0f64..8.0, z in 0.0f64..8.0, q in -5.0f64..5.0
    ) {
        use spp1000::pic::{host, PicProblem, Particles};
        let p = PicProblem::tiny();
        let parts = Particles {
            x: vec![x], y: vec![y], z: vec![z],
            vx: vec![0.0], vy: vec![0.0], vz: vec![0.0],
            q: vec![q],
            ex: vec![0.0], ey: vec![0.0], ez: vec![0.0], aux: vec![0.0],
        };
        let mut rho = vec![0.0; p.cells()];
        host::deposit(&p, &parts, &mut rho);
        let total: f64 = rho.iter().sum();
        prop_assert!((total - q).abs() < 1e-12 * q.abs().max(1.0));
        // No negative deposits for positive charge.
        if q > 0.0 {
            prop_assert!(rho.iter().all(|r| *r >= -1e-15));
        }
    }

    /// Octree invariants hold for any particle cloud: the root owns
    /// everything, children partition parents, mass is conserved.
    #[test]
    fn octree_invariants(
        coords in proptest::collection::vec((8.0f64..24.0, 8.0f64..24.0, 8.0f64..24.0), 1..200)
    ) {
        use spp1000::nbody::{build, Bodies};
        let n = coords.len();
        let b = Bodies {
            x: coords.iter().map(|c| c.0).collect(),
            y: coords.iter().map(|c| c.1).collect(),
            z: coords.iter().map(|c| c.2).collect(),
            vx: vec![0.0; n], vy: vec![0.0; n], vz: vec![0.0; n],
            m: vec![1.0 / n as f64; n],
        };
        let t = build(&b, 8);
        prop_assert_eq!(t.nodes[0].pcount as usize, n);
        prop_assert!((t.nodes[0].mass - 1.0).abs() < 1e-9);
        for node in &t.nodes {
            if node.nchild > 0 {
                let covered: u32 = (node.child_start..node.child_start + node.nchild)
                    .map(|c| t.nodes[c as usize].pcount)
                    .sum();
                prop_assert_eq!(covered, node.pcount);
            } else {
                prop_assert!(node.pcount <= 8 || node.size < 1e-3);
            }
        }
        // The Morton order is a permutation.
        let mut seen = vec![false; n];
        for o in &t.order {
            prop_assert!(!std::mem::replace(&mut seen[*o as usize], true));
        }
    }

    /// Tree forces approximate direct summation for any small cloud.
    #[test]
    fn tree_forces_approximate_direct(
        coords in proptest::collection::vec((10.0f64..22.0, 10.0f64..22.0, 10.0f64..22.0), 16..64)
    ) {
        use spp1000::nbody::{build, host, Bodies};
        let n = coords.len();
        let b = Bodies {
            x: coords.iter().map(|c| c.0).collect(),
            y: coords.iter().map(|c| c.1).collect(),
            z: coords.iter().map(|c| c.2).collect(),
            vx: vec![0.0; n], vy: vec![0.0; n], vz: vec![0.0; n],
            m: vec![1.0; n],
        };
        let t = build(&b, 4);
        let eps = 0.1;
        let (at, _) = host::tree_accel(&b, &t, 0, 0.6, eps);
        let ad = host::direct_accel(&b, b.x[0], b.y[0], b.z[0], 0, eps);
        let mag = (ad[0].powi(2) + ad[1].powi(2) + ad[2].powi(2)).sqrt();
        let err = ((at[0] - ad[0]).powi(2) + (at[1] - ad[1]).powi(2) + (at[2] - ad[2]).powi(2))
            .sqrt();
        prop_assert!(err <= 0.1 * mag.max(1e-9), "rel err = {}", err / mag.max(1e-9));
    }

    /// FEM element residuals of a uniform state are pure pressure
    /// terms that cancel over interior points (discrete conservation).
    #[test]
    fn fem_uniform_residuals_cancel(rho in 0.2f64..5.0, p in 0.2f64..5.0) {
        use spp1000::fem::{host, structured};
        let mesh = structured(8, 8);
        let n = mesh.num_points();
        let s = host::State {
            rho: vec![rho; n],
            mu: vec![0.0; n],
            mv: vec![0.0; n],
            e: vec![p / (host::GAMMA - 1.0); n],
        };
        let mut r = vec![[0.0f64; 4]; n];
        for e in 0..mesh.num_elements() {
            let c = host::element_residual(&mesh, &s, e, 1.0);
            for (v, cc) in mesh.tri[e].iter().zip(c) {
                for k in 0..4 {
                    r[*v as usize][k] += cc[k];
                }
            }
        }
        for (i, ri) in r.iter().enumerate().take(n) {
            // Interior points: flux sums cancel exactly.
            if mesh.bnormal[i] == [0.0, 0.0] {
                for (k, rk) in ri.iter().enumerate() {
                    prop_assert!(rk.abs() < 1e-9, "point {i} component {k}: {rk}");
                }
            }
        }
    }
}
