//! # spp1000 — a simulator-based reproduction of the SC'95 Convex
//! SPP-1000 performance evaluation
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`spp_core`] — the machine: topology, caches, DASH-style
//!   intra-hypernode directory, SCI inter-hypernode coherence, memory
//!   classes, latency model;
//! * [`spp_runtime`] — CPSlib-style threads, fork-join, barriers,
//!   placement;
//! * [`spp_pvm`] — ConvexPVM-style message passing;
//! * [`spp_kernels`] — FFT, Morton, sorting, RNG substrates;
//! * [`c90_model`] — the Cray C90 vector baseline;
//! * the four applications: [`pic`], [`fem`], [`nbody`], [`ppm`].
//!
//! ```
//! use spp1000::prelude::*;
//!
//! // The paper's 16-processor testbed.
//! let mut rt = Runtime::spp1000(2);
//! let report = rt.fork_join(16, &Placement::Uniform, |ctx| {
//!     ctx.flops(10_000);
//! });
//! assert!(report.elapsed_us() > 100.0); // fork-join isn't free (Fig. 2)
//! ```
//!
//! See `DESIGN.md` for the system inventory, `EXPERIMENTS.md` for the
//! paper-vs-measured record, and `crates/bench` for the `repro-*`
//! binaries that regenerate every table and figure.

#![warn(missing_docs)]

pub use c90_model;
pub use fem;
pub use nbody;
pub use pic;
pub use ppm;
pub use spp_core;
pub use spp_kernels;
pub use spp_pvm;
pub use spp_runtime;

/// The most common imports in one place.
pub mod prelude {
    pub use c90_model::{LoopSpec, C90};
    pub use spp_core::{
        cycles_to_us, CoherenceChecker, ConfigError, CpuId, Cycles, FastPort, FaultPlan,
        LatencyModel, Machine, MachineConfig, MemClass, MemPort, MemStats, NodeId, SimArray,
        SimError, Trace, TracePort, Violation,
    };
    pub use spp_kernels::{Complex, Rng64};
    pub use spp_pvm::Pvm;
    pub use spp_runtime::{Placement, Runtime, SchedulePolicy, SimBarrier, Team, ThreadCtx};
}
