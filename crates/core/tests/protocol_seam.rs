//! Properties of the pluggable-protocol seam.
//!
//! The DASH+SCI logic was extracted from `Machine::read`/`write` into
//! a `CoherenceProtocol` backend; the fixed-config golden tests pin
//! its absolute numbers, and these properties pin the rest of the
//! contract over *arbitrary* seeds, topologies, and team sizes:
//!
//! * the seam's default dispatch and an explicit
//!   `with_protocol(DashSci)` are the same machine, cycle- and
//!   counter-bit-identical;
//! * the batched `read_run`/`write_run` paths equal their scalar
//!   loops under every protocol (MESI batches writes like DASH;
//!   Dragon's shared-write broadcast forces its write path scalar —
//!   either way the observable numbers must agree);
//! * every protocol is deterministic, passes the coherence checker,
//!   and keeps the miss partition exact;
//! * `peek_read_cost` predicts the next read's charge exactly on a
//!   fault-free machine, under every protocol.

use proptest::prelude::*;
use proptest::TestRng;
use spp_core::{CpuId, Machine, MemClass, MemStats, ProtocolKind};

/// A random mixed access stream: (cpu, line-aligned offset, is_write).
fn stream(rng: &mut TestRng, cpus: u64, ops: usize) -> Vec<(u16, u64, bool)> {
    (0..ops)
        .map(|_| {
            (
                rng.below(cpus) as u16,
                rng.below(1 << 11) * 8,
                rng.below(3) == 0,
            )
        })
        .collect()
}

/// Drive a stream through the scalar entry points; returns total
/// cycles charged.
fn drive(m: &mut Machine, base: u64, ops: &[(u16, u64, bool)]) -> u64 {
    let mut t = 0;
    for &(cpu, off, w) in ops {
        t += if w {
            m.write(CpuId(cpu), base + off)
        } else {
            m.read(CpuId(cpu), base + off)
        };
    }
    t
}

fn machine(kind: ProtocolKind, hypernodes: usize) -> (Machine, u64) {
    let mut m = Machine::spp1000(hypernodes).with_protocol(kind);
    let base = m.alloc(MemClass::FarShared, 1 << 14).base;
    (m, base)
}

fn observables(m: &Machine) -> (u64, MemStats) {
    (m.clock(), m.stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn default_dispatch_is_dash_sci_bit_for_bit(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let h = [1, 2, 4][rng.below(3) as usize];
        let ops = stream(&mut rng, 8 * h as u64, 250);

        let mut dflt = Machine::spp1000(h);
        let dbase = dflt.alloc(MemClass::FarShared, 1 << 14).base;
        let (mut explicit, ebase) = machine(ProtocolKind::DashSci, h);

        let a = drive(&mut dflt, dbase, &ops);
        let b = drive(&mut explicit, ebase, &ops);
        prop_assert_eq!(a, b);
        prop_assert_eq!(observables(&dflt), observables(&explicit));
        prop_assert_eq!(dflt.protocol(), ProtocolKind::DashSci);
    }

    #[test]
    fn batched_runs_equal_scalar_loops_under_every_protocol(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let h = [1, 2][rng.below(2) as usize];
        // Run-shaped traffic: (cpu, start, stride, count) chunks.
        let runs: Vec<(u16, u64, u64, u64)> = (0..12)
            .map(|_| {
                (
                    rng.below(8 * h as u64) as u16,
                    rng.below(1 << 10) * 8,
                    8 << rng.below(3),
                    1 + rng.below(48),
                )
            })
            .collect();

        for kind in ProtocolKind::ALL {
            let (mut scalar, sb) = machine(kind, h);
            let (mut batched, bb) = machine(kind, h);
            let mut ts = 0;
            let mut tb = 0;
            for (i, &(cpu, start, stride, count)) in runs.iter().enumerate() {
                let write = i % 2 == 1;
                for k in 0..count {
                    let a = sb + (start + k * stride) % (1 << 14);
                    ts += if write {
                        scalar.write(CpuId(cpu), a)
                    } else {
                        scalar.read(CpuId(cpu), a)
                    };
                }
                // read_run/write_run demand in-bounds contiguous runs;
                // wrap-around chunks get the same scalar treatment on
                // both machines.
                if start + (count - 1) * stride < (1 << 14) {
                    tb += if write {
                        batched.write_run(CpuId(cpu), bb + start, stride, count as usize)
                    } else {
                        batched.read_run(CpuId(cpu), bb + start, stride, count as usize)
                    };
                } else {
                    for k in 0..count {
                        let a = bb + (start + k * stride) % (1 << 14);
                        tb += if write {
                            batched.write(CpuId(cpu), a)
                        } else {
                            batched.read(CpuId(cpu), a)
                        };
                    }
                }
            }
            prop_assert_eq!(ts, tb, "{} cycles diverged", kind);
            prop_assert_eq!(observables(&scalar), observables(&batched));
        }
    }

    #[test]
    fn every_protocol_is_deterministic_and_checker_clean(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let h = [1, 2, 4][rng.below(3) as usize];
        let ops = stream(&mut rng, 8 * h as u64, 250);

        for kind in ProtocolKind::ALL {
            let (mut a, ab) = machine(kind, h);
            let (mut b, bb) = machine(kind, h);
            let ta = drive(&mut a, ab, &ops);
            let tb = drive(&mut b, bb, &ops);
            prop_assert_eq!(ta, tb, "{} non-deterministic", kind);
            prop_assert_eq!(observables(&a), observables(&b));
            prop_assert!(a.check_all().is_empty(), "{} checker violations", kind);
            prop_assert!(a.stats.miss_partition_check(), "{} miss partition broken", kind);
        }
    }

    #[test]
    fn peek_read_cost_predicts_the_read_exactly(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let h = [1, 2][rng.below(2) as usize];
        let ops = stream(&mut rng, 8 * h as u64, 150);

        for kind in ProtocolKind::ALL {
            let (mut m, base) = machine(kind, h);
            for &(cpu, off, w) in &ops {
                let a = base + off;
                if w {
                    m.write(CpuId(cpu), a);
                } else {
                    let peek = m.peek_read_cost(CpuId(cpu), a);
                    let paid = m.read(CpuId(cpu), a);
                    prop_assert_eq!(peek, paid, "{} peek diverged at {:#x}", kind, a);
                }
            }
        }
    }
}
