//! Properties of the transient-fault recovery path.
//!
//! Two contracts over *arbitrary* seeds, probabilities, and access
//! streams:
//!
//! * **stream independence** — the seven transient fault streams are
//!   counter-indexed sites of their own, so enabling them must never
//!   perturb an existing site's n-th decision: a plan with legacy
//!   chaos events plus transients draws the legacy sites exactly as
//!   often as the legacy-only plan, and (because recovery is
//!   bit-identical and charges zero cycles) the two runs agree on
//!   every observable except the recovery counters;
//! * **no silent wrong data** — any mix of injected transients either
//!   ends in full recovery (run completes bit-identical to the
//!   fault-free twin) or in the typed `RecoveryExhausted` escalation;
//!   in both cases the machine passes the coherence checker, so a
//!   corrupted line is never left behind for a later access to read.

use proptest::prelude::*;
use proptest::TestRng;
use spp_core::{CpuId, FaultPlan, Machine, MemClass, ProtocolKind, SimError};

/// A random mixed access stream: (cpu, line-aligned offset, is_write).
fn stream(rng: &mut TestRng, cpus: u64, ops: usize) -> Vec<(u16, u64, bool)> {
    (0..ops)
        .map(|_| {
            (
                rng.below(cpus) as u16,
                rng.below(1 << 11) * 8,
                rng.below(3) == 0,
            )
        })
        .collect()
}

fn machine(kind: ProtocolKind, plan: Option<FaultPlan>) -> (Machine, u64) {
    let mut m = Machine::spp1000(2).with_protocol(kind);
    if let Some(p) = plan {
        m = m.with_faults(p);
    }
    let base = m.alloc(MemClass::FarShared, 1 << 14).base;
    (m, base)
}

/// Layer every transient stream applicable to `kind` onto `plan` with
/// probabilities drawn from `rng` (up to ~0.3 each). `persist` is the
/// per-scrub persistence probability; at 0.1 escalation is
/// vanishingly rare (needs the full scrub budget of consecutive
/// persists), while values near 1.0 force it.
fn with_random_transients(
    mut plan: FaultPlan,
    kind: ProtocolKind,
    rng: &mut TestRng,
    persist: f64,
) -> FaultPlan {
    let p = |rng: &mut TestRng| rng.below(30) as f64 / 100.0;
    plan = plan
        .with_inval_drops(p(rng))
        .with_inval_dups(p(rng))
        .with_inval_delays(p(rng))
        .with_line_corruption(p(rng));
    plan = match kind {
        ProtocolKind::Dragon => plan.with_update_loss(p(rng)),
        ProtocolKind::DashSci => plan.with_ack_stale(p(rng)),
        ProtocolKind::Mesi => plan,
    };
    plan.with_transient_persistence(persist)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transient_streams_never_perturb_existing_sites(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let kind = ProtocolKind::ALL[rng.below(3) as usize];
        let ops = stream(&mut rng, 16, 300);
        // Legacy soft-chaos plan: ring stalls + message drop/dup draw
        // the three pre-existing per-access sites.
        let legacy = FaultPlan::new(rng.below(1 << 20))
            .with_ring_stalls(0.1, 40)
            .with_message_faults(0.05, 0.05);
        let both = with_random_transients(legacy.clone(), kind, &mut rng, 0.1);

        let (mut a, ab) = machine(kind, Some(legacy));
        let (mut b, bb) = machine(kind, Some(both));
        let mut ta = 0;
        let mut tb = 0;
        for &(cpu, off, w) in &ops {
            let (cpu, aa, ba) = (CpuId(cpu), ab + off, bb + off);
            if w {
                ta += a.write(cpu, aa);
                tb += b.write(cpu, ba);
            } else {
                ta += a.read(cpu, aa);
                tb += b.read(cpu, ba);
            }
        }

        // The legacy sites (0..4: ring-stall, msg-drop, msg-dup,
        // spawn-fail) drew identically often — the transient streams
        // (4..) consumed only their own counters.
        let da = a.fault_plan().unwrap().draws();
        let db = b.fault_plan().unwrap().draws();
        prop_assert_eq!(&da[..4], &db[..4], "{} legacy draws perturbed", kind);
        prop_assert_eq!(&da[4..], [0u64; 7], "legacy plan drew transient sites");

        // And because recovery is bit-identical at zero cost, every
        // observable except the recovery counters agrees.
        prop_assert_eq!(ta, tb, "{} cycles diverged", kind);
        prop_assert_eq!(a.clock(), b.clock());
        prop_assert!(a.stats.eq_modulo_recovery(&b.stats), "{} stats diverged", kind);
        prop_assert_eq!(a.coherence_digest(), b.coherence_digest());
    }

    #[test]
    fn transients_end_in_recovery_or_a_typed_error_never_silent(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let kind = ProtocolKind::ALL[rng.below(3) as usize];
        let ops = stream(&mut rng, 16, 300);
        let persist = rng.below(101) as f64 / 100.0;
        let plan = with_random_transients(FaultPlan::new(rng.below(1 << 20)), kind, &mut rng, persist);

        let (mut clean, cb) = machine(kind, None);
        let (mut faulty, fb) = machine(kind, Some(plan));
        let mut outcome: Result<(), SimError> = Ok(());
        let mut tc = 0;
        let mut tf = 0;
        for &(cpu, off, w) in &ops {
            let (cpu, ca, fa) = (CpuId(cpu), cb + off, fb + off);
            tc += if w { clean.write(cpu, ca) } else { clean.read(cpu, ca) };
            let r = if w {
                faulty.try_write(cpu, fa)
            } else {
                faulty.try_read(cpu, fa)
            };
            match r {
                Ok(c) => tf += c,
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }

        match outcome {
            // Every injected transient was scrubbed: the run must be
            // bit-identical to the fault-free twin.
            Ok(()) => {
                prop_assert_eq!(tc, tf, "{} recovered run diverged", kind);
                prop_assert_eq!(clean.clock(), faulty.clock());
                prop_assert!(clean.stats.eq_modulo_recovery(&faulty.stats));
                prop_assert_eq!(clean.coherence_digest(), faulty.coherence_digest());
            }
            // Scrub budget exhausted: the only legal failure is the
            // typed escalation, and it must carry the access context.
            Err(SimError::RecoveryExhausted { attempts, .. }) => {
                prop_assert!(attempts > 0);
            }
            Err(other) => prop_assert!(false, "untyped failure: {}", other),
        }

        // Either way no corrupted line survives for a later access to
        // read silently: the checker stays clean.
        prop_assert!(
            faulty.check_all().is_empty(),
            "{} checker violations after {:?}",
            kind,
            faulty.check_all()
        );
    }
}
