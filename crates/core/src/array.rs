//! Typed arrays in simulated memory.
//!
//! A [`SimArray<T>`] owns real host data (a `Vec<T>`) *and* a range of
//! simulated addresses with a placement class. Application kernels
//! compute on the real data while every indexed access is priced by
//! the machine model — the simulator sees the genuine address stream
//! of the genuine algorithm. All pricing goes through the pluggable
//! [`MemPort`], so the same kernel can run against the cycle-accurate
//! machine, the analytic fast model, or a trace recorder.

use crate::config::CpuId;
use crate::latency::Cycles;
use crate::mem::{MemClass, Region};
use crate::port::MemPort;

/// A typed array living in simulated memory.
#[derive(Debug, Clone)]
pub struct SimArray<T> {
    data: Vec<T>,
    region: Region,
    elem_bytes: u64,
}

impl<T: Copy> SimArray<T> {
    /// Allocate simulated backing for `data` with the given placement.
    pub fn new<P: MemPort>(m: &mut P, class: MemClass, data: Vec<T>) -> Self {
        let elem_bytes = std::mem::size_of::<T>() as u64;
        let bytes = (data.len() as u64 * elem_bytes).max(1);
        let region = m.alloc(class, bytes);
        SimArray {
            data,
            region,
            elem_bytes,
        }
    }

    /// Allocate a `len`-element array filled with `v`.
    pub fn from_elem<P: MemPort>(m: &mut P, class: MemClass, len: usize, v: T) -> Self {
        Self::new(m, class, vec![v; len])
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Simulated address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!(i < self.data.len());
        self.region.base + i as u64 * self.elem_bytes
    }

    /// The allocation this array occupies.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Name this array for observability: registers the label in the
    /// backend's region registry (heatmap/report region names, see
    /// [`crate::heat`]) and, when a race detector is mounted, refines
    /// its default `alloc@...` registration with the real label and
    /// element size so findings read `rho[42]` instead of a raw
    /// address.
    pub fn set_label<P: MemPort>(&self, m: &mut P, label: &str) {
        m.label_region(self.region.base, label);
        if m.racing() {
            m.race(crate::race::RaceEvent::Register {
                base: self.region.base,
                len: self.region.len,
                elem_bytes: self.elem_bytes,
                label: label.to_string(),
            });
        }
    }

    /// Priced read of element `i` as `cpu`.
    #[inline]
    pub fn read<P: MemPort>(&self, m: &mut P, cpu: CpuId, i: usize) -> (T, Cycles) {
        let c = m.read(cpu, self.addr(i));
        (self.data[i], c)
    }

    /// Priced write of element `i` as `cpu`.
    #[inline]
    pub fn write<P: MemPort>(&mut self, m: &mut P, cpu: CpuId, i: usize, v: T) -> Cycles {
        let c = m.write(cpu, self.addr(i));
        self.data[i] = v;
        c
    }

    /// Priced streaming read of `range`, appended to `out`. One
    /// batched port run; cycle- and stats-equivalent to elementwise
    /// [`SimArray::read`]s (the run-equivalence invariant of
    /// [`crate::port`]).
    pub fn read_run<P: MemPort>(
        &self,
        m: &mut P,
        cpu: CpuId,
        range: std::ops::Range<usize>,
        out: &mut Vec<T>,
    ) -> Cycles {
        if range.is_empty() {
            return 0;
        }
        debug_assert!(range.end <= self.data.len());
        let c = m.read_run(cpu, self.addr(range.start), self.elem_bytes, range.len());
        out.extend_from_slice(&self.data[range]);
        c
    }

    /// Priced streaming write of `vals` into `start..start + vals.len()`.
    /// One batched port run; same equivalence contract as
    /// [`SimArray::read_run`].
    pub fn write_run<P: MemPort>(
        &mut self,
        m: &mut P,
        cpu: CpuId,
        start: usize,
        vals: &[T],
    ) -> Cycles {
        if vals.is_empty() {
            return 0;
        }
        debug_assert!(start + vals.len() <= self.data.len());
        let c = m.write_run(cpu, self.addr(start), self.elem_bytes, vals.len());
        self.data[start..start + vals.len()].copy_from_slice(vals);
        c
    }

    /// Priced streaming fill of `range` with `v`; the constant-value
    /// form of [`SimArray::write_run`].
    pub fn fill_run<P: MemPort>(
        &mut self,
        m: &mut P,
        cpu: CpuId,
        range: std::ops::Range<usize>,
        v: T,
    ) -> Cycles {
        if range.is_empty() {
            return 0;
        }
        debug_assert!(range.end <= self.data.len());
        let c = m.write_run(cpu, self.addr(range.start), self.elem_bytes, range.len());
        self.data[range].fill(v);
        c
    }

    /// Unpriced access to the host data (initialization, verification
    /// — *not* for simulated kernels).
    pub fn host(&self) -> &[T] {
        &self.data
    }

    /// Unpriced mutable access to the host data.
    pub fn host_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the array, returning the host data.
    pub fn into_host(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeId;
    use crate::fastport::FastPort;
    use crate::machine::Machine;

    #[test]
    fn addresses_are_contiguous_and_typed() {
        let mut m = Machine::spp1000(1);
        let a =
            SimArray::<f64>::from_elem(&mut m, MemClass::NearShared { node: NodeId(0) }, 16, 0.0);
        assert_eq!(a.addr(1) - a.addr(0), 8);
        assert_eq!(a.len(), 16);
        assert!(!a.is_empty());
    }

    #[test]
    fn read_write_round_trip_with_costs() {
        let mut m = Machine::spp1000(1);
        let mut a =
            SimArray::<f64>::from_elem(&mut m, MemClass::NearShared { node: NodeId(0) }, 8, 0.0);
        let c_w = a.write(&mut m, CpuId(0), 3, 2.5);
        assert!(c_w > 1, "first write misses");
        let (v, c_r) = a.read(&mut m, CpuId(0), 3);
        assert_eq!(v, 2.5);
        assert_eq!(c_r, 1, "read after write hits in cache");
    }

    #[test]
    fn four_f64_per_line() {
        let mut m = Machine::spp1000(1);
        let a =
            SimArray::<f64>::from_elem(&mut m, MemClass::NearShared { node: NodeId(0) }, 8, 0.0);
        let (_, c0) = a.read(&mut m, CpuId(0), 0);
        let (_, c1) = a.read(&mut m, CpuId(0), 1);
        let (_, c2) = a.read(&mut m, CpuId(0), 3);
        let (_, c4) = a.read(&mut m, CpuId(0), 4);
        assert!(c0 > 1);
        assert_eq!(c1, 1);
        assert_eq!(c2, 1);
        assert!(c4 > 1, "element 4 starts a new 32 B line");
    }

    #[test]
    fn distinct_arrays_do_not_alias() {
        let mut m = Machine::spp1000(1);
        let a = SimArray::<u32>::from_elem(&mut m, MemClass::NearShared { node: NodeId(0) }, 4, 0);
        let b = SimArray::<u32>::from_elem(&mut m, MemClass::NearShared { node: NodeId(0) }, 4, 0);
        assert!(a.addr(3) < b.addr(0));
    }

    #[test]
    fn host_access_bypasses_simulation() {
        let mut m = Machine::spp1000(1);
        let mut a =
            SimArray::<u32>::from_elem(&mut m, MemClass::NearShared { node: NodeId(0) }, 4, 7);
        let before = m.stats;
        a.host_mut()[2] = 9;
        assert_eq!(a.host()[2], 9);
        assert_eq!(m.stats, before);
        assert_eq!(a.into_host(), vec![7, 7, 9, 7]);
    }

    #[test]
    fn run_helpers_move_data_and_match_scalar_costs() {
        let run = |batched: bool| {
            let mut m = Machine::spp1000(2);
            let mut a = SimArray::<f64>::from_elem(&mut m, MemClass::FarShared, 4096, 0.0);
            let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
            let mut total;
            let mut out = Vec::new();
            if batched {
                total = a.write_run(&mut m, CpuId(0), 10, &vals);
                total += a.fill_run(&mut m, CpuId(1), 2000..3000, 7.0);
                total += a.read_run(&mut m, CpuId(2), 10..1010, &mut out);
            } else {
                total = 0;
                for (k, v) in vals.iter().enumerate() {
                    total += a.write(&mut m, CpuId(0), 10 + k, *v);
                }
                for i in 2000..3000 {
                    total += a.write(&mut m, CpuId(1), i, 7.0);
                }
                for i in 10..1010 {
                    let (v, c) = a.read(&mut m, CpuId(2), i);
                    out.push(v);
                    total += c;
                }
            }
            assert_eq!(out.len(), 1000);
            assert_eq!(out[5], 5.0);
            assert_eq!(a.host()[2500], 7.0);
            (total, m.stats)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn empty_runs_cost_nothing() {
        let mut m = Machine::spp1000(1);
        let mut a =
            SimArray::<f64>::from_elem(&mut m, MemClass::NearShared { node: NodeId(0) }, 8, 0.0);
        let before = m.stats;
        let mut out = Vec::new();
        assert_eq!(a.read_run(&mut m, CpuId(0), 3..3, &mut out), 0);
        assert_eq!(a.write_run(&mut m, CpuId(0), 0, &[]), 0);
        assert_eq!(a.fill_run(&mut m, CpuId(0), 0..0, 1.0), 0);
        assert_eq!(m.stats, before);
    }

    #[test]
    fn arrays_work_on_the_analytic_backend() {
        let mut p = FastPort::spp1000(2);
        let mut a = SimArray::<f64>::from_elem(&mut p, MemClass::FarShared, 64, 0.0);
        let c_w = a.write(&mut p, CpuId(0), 0, 3.0);
        let (v, c_r) = a.read(&mut p, CpuId(0), 0);
        assert_eq!(v, 3.0);
        assert!(c_w > c_r);
    }
}
