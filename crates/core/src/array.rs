//! Typed arrays in simulated memory.
//!
//! A [`SimArray<T>`] owns real host data (a `Vec<T>`) *and* a range of
//! simulated addresses with a placement class. Application kernels
//! compute on the real data while every indexed access is priced by
//! the machine model — the simulator sees the genuine address stream
//! of the genuine algorithm.

use crate::config::CpuId;
use crate::latency::Cycles;
use crate::machine::Machine;
use crate::mem::{MemClass, Region};

/// A typed array living in simulated memory.
#[derive(Debug, Clone)]
pub struct SimArray<T> {
    data: Vec<T>,
    region: Region,
    elem_bytes: u64,
}

impl<T: Copy> SimArray<T> {
    /// Allocate simulated backing for `data` with the given placement.
    pub fn new(m: &mut Machine, class: MemClass, data: Vec<T>) -> Self {
        let elem_bytes = std::mem::size_of::<T>() as u64;
        let bytes = (data.len() as u64 * elem_bytes).max(1);
        let region = m.alloc(class, bytes);
        SimArray {
            data,
            region,
            elem_bytes,
        }
    }

    /// Allocate a `len`-element array filled with `v`.
    pub fn from_elem(m: &mut Machine, class: MemClass, len: usize, v: T) -> Self {
        Self::new(m, class, vec![v; len])
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Simulated address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!(i < self.data.len());
        self.region.base + i as u64 * self.elem_bytes
    }

    /// The allocation this array occupies.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Priced read of element `i` as `cpu`.
    #[inline]
    pub fn read(&self, m: &mut Machine, cpu: CpuId, i: usize) -> (T, Cycles) {
        let c = m.read(cpu, self.addr(i));
        (self.data[i], c)
    }

    /// Priced write of element `i` as `cpu`.
    #[inline]
    pub fn write(&mut self, m: &mut Machine, cpu: CpuId, i: usize, v: T) -> Cycles {
        let c = m.write(cpu, self.addr(i));
        self.data[i] = v;
        c
    }

    /// Unpriced access to the host data (initialization, verification
    /// — *not* for simulated kernels).
    pub fn host(&self) -> &[T] {
        &self.data
    }

    /// Unpriced mutable access to the host data.
    pub fn host_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the array, returning the host data.
    pub fn into_host(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeId;

    #[test]
    fn addresses_are_contiguous_and_typed() {
        let mut m = Machine::spp1000(1);
        let a =
            SimArray::<f64>::from_elem(&mut m, MemClass::NearShared { node: NodeId(0) }, 16, 0.0);
        assert_eq!(a.addr(1) - a.addr(0), 8);
        assert_eq!(a.len(), 16);
        assert!(!a.is_empty());
    }

    #[test]
    fn read_write_round_trip_with_costs() {
        let mut m = Machine::spp1000(1);
        let mut a =
            SimArray::<f64>::from_elem(&mut m, MemClass::NearShared { node: NodeId(0) }, 8, 0.0);
        let c_w = a.write(&mut m, CpuId(0), 3, 2.5);
        assert!(c_w > 1, "first write misses");
        let (v, c_r) = a.read(&mut m, CpuId(0), 3);
        assert_eq!(v, 2.5);
        assert_eq!(c_r, 1, "read after write hits in cache");
    }

    #[test]
    fn four_f64_per_line() {
        let mut m = Machine::spp1000(1);
        let a =
            SimArray::<f64>::from_elem(&mut m, MemClass::NearShared { node: NodeId(0) }, 8, 0.0);
        let (_, c0) = a.read(&mut m, CpuId(0), 0);
        let (_, c1) = a.read(&mut m, CpuId(0), 1);
        let (_, c2) = a.read(&mut m, CpuId(0), 3);
        let (_, c4) = a.read(&mut m, CpuId(0), 4);
        assert!(c0 > 1);
        assert_eq!(c1, 1);
        assert_eq!(c2, 1);
        assert!(c4 > 1, "element 4 starts a new 32 B line");
    }

    #[test]
    fn distinct_arrays_do_not_alias() {
        let mut m = Machine::spp1000(1);
        let a = SimArray::<u32>::from_elem(&mut m, MemClass::NearShared { node: NodeId(0) }, 4, 0);
        let b = SimArray::<u32>::from_elem(&mut m, MemClass::NearShared { node: NodeId(0) }, 4, 0);
        assert!(a.addr(3) < b.addr(0));
    }

    #[test]
    fn host_access_bypasses_simulation() {
        let mut m = Machine::spp1000(1);
        let mut a =
            SimArray::<u32>::from_elem(&mut m, MemClass::NearShared { node: NodeId(0) }, 4, 7);
        let before = m.stats;
        a.host_mut()[2] = 9;
        assert_eq!(a.host()[2], 9);
        assert_eq!(m.stats, before);
        assert_eq!(a.into_host(), vec![7, 7, 9, 7]);
    }
}
