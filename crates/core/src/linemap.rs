//! `LineMap` — a fast open-addressing hash map keyed by cache-line
//! addresses.
//!
//! Directory and SCI state only exists for lines that are actually
//! cached somewhere, so a sparse map is the right structure. This map
//! sits on the miss path of every simulated access; `std::HashMap`'s
//! SipHash is needless overhead for 64-bit integer keys, so we use a
//! Fibonacci multiply hash with linear probing and tombstone-free
//! backshift deletion.

/// Sparse map from line address to `V`.
#[derive(Debug, Clone)]
pub struct LineMap<V> {
    // slots: key is line+1 (0 = empty) so line address 0 is usable.
    keys: Vec<u64>,
    vals: Vec<V>,
    len: usize,
    mask: usize,
}

const EMPTY: u64 = 0;

#[inline]
fn hash(key: u64) -> u64 {
    // Fibonacci hashing: multiply by 2^64/phi, use high bits via mask
    // after a xor-fold so low bits are well mixed.
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^ (h >> 32)
}

impl<V: Clone> LineMap<V> {
    /// Create an empty map.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// Create a map pre-sized for roughly `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        let n = (cap.max(8) * 2).next_power_of_two();
        LineMap {
            keys: vec![EMPTY; n],
            vals: Vec::new(),
            len: 0,
            mask: n - 1,
        }
        .init_vals()
    }

    fn init_vals(mut self) -> Self {
        self.vals.clear();
        self
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_of(&self, key: u64) -> Option<usize> {
        let k = key + 1;
        let mut i = (hash(k) as usize) & self.mask;
        loop {
            let s = self.keys[i];
            if s == EMPTY {
                return None;
            }
            if s == k {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Get a reference to the value for `line`.
    #[inline]
    pub fn get(&self, line: u64) -> Option<&V> {
        self.slot_of(line).map(|i| &self.vals[i])
    }

    /// Get a mutable reference to the value for `line`.
    #[inline]
    pub fn get_mut(&mut self, line: u64) -> Option<&mut V> {
        match self.slot_of(line) {
            Some(i) => Some(&mut self.vals[i]),
            None => None,
        }
    }

    /// Insert or overwrite; returns the previous value if present.
    pub fn insert(&mut self, line: u64, v: V) -> Option<V> {
        if (self.len + 1) * 10 >= self.keys.len() * 7 {
            self.grow();
        }
        let k = line + 1;
        let mut i = (hash(k) as usize) & self.mask;
        loop {
            let s = self.keys[i];
            if s == EMPTY {
                self.keys[i] = k;
                // vals is kept dense-parallel with keys via index map:
                // we store values in a parallel Vec the same length as
                // keys, grown lazily.
                if self.vals.len() < self.keys.len() {
                    // Fill with clones of v as placeholder only up to
                    // needed index — instead keep vals same length.
                    self.vals.resize(self.keys.len(), v.clone());
                }
                self.vals[i] = v;
                self.len += 1;
                return None;
            }
            if s == k {
                if self.vals.len() < self.keys.len() {
                    self.vals.resize(self.keys.len(), v.clone());
                }
                return Some(std::mem::replace(&mut self.vals[i], v));
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Get the value for `line`, inserting `default()` if absent.
    pub fn entry_or_insert_with(&mut self, line: u64, default: impl FnOnce() -> V) -> &mut V {
        if self.slot_of(line).is_none() {
            self.insert(line, default());
        }
        let i = self.slot_of(line).expect("just inserted");
        &mut self.vals[i]
    }

    /// Remove the entry for `line`, returning its value.
    pub fn remove(&mut self, line: u64) -> Option<V> {
        let mut i = self.slot_of(line)?;
        let out = self.vals[i].clone();
        // Backshift deletion keeps probe chains intact without
        // tombstones.
        self.keys[i] = EMPTY;
        self.len -= 1;
        let mut j = (i + 1) & self.mask;
        while self.keys[j] != EMPTY {
            let k = self.keys[j];
            let home = (hash(k) as usize) & self.mask;
            // Can slot j's entry legally move to the hole at i?
            let between = if i <= j {
                home <= i || home > j
            } else {
                home <= i && home > j
            };
            if between {
                self.keys[i] = k;
                self.vals[i] = self.vals[j].clone();
                self.keys[j] = EMPTY;
                i = j;
            }
            j = (j + 1) & self.mask;
        }
        Some(out)
    }

    fn grow(&mut self) {
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; (self.mask + 1) * 2]);
        let old_vals = std::mem::take(&mut self.vals);
        self.mask = self.keys.len() - 1;
        self.len = 0;
        for (i, k) in old_keys.iter().enumerate() {
            if *k != EMPTY {
                self.insert(*k - 1, old_vals[i].clone());
            }
        }
    }

    /// Iterate over `(line, &value)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.keys
            .iter()
            .enumerate()
            .filter(|(_, k)| **k != EMPTY)
            .map(move |(i, k)| (*k - 1, &self.vals[i]))
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.keys.iter_mut().for_each(|k| *k = EMPTY);
        self.len = 0;
    }
}

impl<V: Clone> Default for LineMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut m = LineMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(42, "a"), None);
        assert_eq!(m.insert(42, "b"), Some("a"));
        assert_eq!(m.get(42), Some(&"b"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(42), Some("b"));
        assert_eq!(m.get(42), None);
        assert!(m.is_empty());
    }

    #[test]
    fn line_zero_is_a_valid_key() {
        let mut m = LineMap::new();
        m.insert(0, 7u32);
        assert_eq!(m.get(0), Some(&7));
        assert_eq!(m.remove(0), Some(7));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = LineMap::with_capacity(4);
        for i in 0..10_000u64 {
            m.insert(i * 32, i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(i * 32), Some(&i), "key {i}");
        }
    }

    #[test]
    fn entry_or_insert_with() {
        let mut m = LineMap::new();
        *m.entry_or_insert_with(5, || 10) += 1;
        *m.entry_or_insert_with(5, || 10) += 1;
        assert_eq!(m.get(5), Some(&12));
    }

    #[test]
    fn backshift_deletion_preserves_probe_chains() {
        // Force collisions by using a tiny map and many keys.
        let mut m = LineMap::with_capacity(8);
        let keys: Vec<u64> = (0..64).map(|i| i * 1024).collect();
        for &k in &keys {
            m.insert(k, k);
        }
        // Remove every other key, then verify the rest still resolve.
        for &k in keys.iter().step_by(2) {
            assert_eq!(m.remove(k), Some(k));
        }
        for &k in keys.iter().skip(1).step_by(2) {
            assert_eq!(m.get(k), Some(&k), "key {k} lost after deletions");
        }
    }

    #[test]
    fn iter_visits_every_entry_once() {
        let mut m = LineMap::new();
        for i in 0..100u64 {
            m.insert(i, i * 2);
        }
        let mut seen: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clear_empties_the_map() {
        let mut m = LineMap::new();
        for i in 0..50u64 {
            m.insert(i, ());
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(10), None);
        m.insert(10, ());
        assert_eq!(m.len(), 1);
    }
}
