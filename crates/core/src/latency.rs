//! The latency/cost model, in CPU cycles (10 ns at the PA-7100's
//! 100 MHz clock).
//!
//! Constants are calibrated against the paper's own published numbers
//! (§2.6 and §4): cache throughput of one access per cycle; a cache
//! miss serviced anywhere within the hypernode — FU-local memory,
//! another FU's memory through the crossbar, or a global-cache-buffer
//! hit — costs "approximately 50 to 60 cycles"; a miss that must cross
//! the SCI interconnect costs "about a factor of eight" more on
//! average (§6).

/// Simulated time in CPU cycles. One cycle is 10 ns.
pub type Cycles = u64;

/// Convert cycles to microseconds at the 100 MHz clock.
pub fn cycles_to_us(c: Cycles) -> f64 {
    c as f64 / 100.0
}

/// Convert microseconds to cycles at the 100 MHz clock.
pub fn us_to_cycles(us: f64) -> Cycles {
    (us * 100.0).round() as Cycles
}

/// Per-mechanism costs of the memory system, in cycles.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// A load/store that hits in the CPU's own cache (§2.6: one data
    /// access per cycle).
    pub cache_hit: Cycles,
    /// A miss serviced within the hypernode: FU-local memory, remote-FU
    /// memory through the crossbar, or a hit in the global cache
    /// buffer. The paper gives 50-60 cycles; we use the midpoint.
    pub local_miss: Cycles,
    /// Extra cycles when the line must be supplied by another CPU's
    /// dirty cache within the same hypernode (cache-to-cache via the
    /// directory).
    pub c2c_extra: Cycles,
    /// Directory bookkeeping folded into each miss (tag read/update in
    /// the CCMC).
    pub dir_op: Cycles,
    /// Sending one invalidation to one sharer within the hypernode.
    /// Invalidations to distinct sharers are serialized at the
    /// directory.
    pub inv_local: Cycles,
    /// Serialization delay at the directory/crossbar when several CPUs
    /// re-fetch the same line after an invalidation (hot-spot service
    /// rate; drives the per-thread barrier release cost of Fig. 3).
    pub hot_line_service: Cycles,
    /// Fixed overhead of an SCI transaction (agent processing at the
    /// requester, home and any forwarding node).
    pub sci_base: Cycles,
    /// One hop on an SCI ring (GaAs link + node pass-through).
    pub ring_hop: Cycles,
    /// DRAM access at the home memory bank.
    pub mem_access: Cycles,
    /// Installing/updating one entry of an SCI distributed reference
    /// list (prepend, detach, or invalidate-forward at one node).
    pub sci_list_op: Cycles,
    /// Writing back or rolling out a dirty line (local memory or GCB).
    pub writeback: Cycles,
    /// An uncached (semaphore) access to memory in the local hypernode.
    pub uncached_local: Cycles,
    /// Extra cost for an uncached access to a remote hypernode.
    pub uncached_remote_extra: Cycles,
}

impl LatencyModel {
    /// The calibrated SPP-1000 model.
    pub fn spp1000() -> Self {
        LatencyModel {
            cache_hit: 1,
            local_miss: 55,
            c2c_extra: 25,
            dir_op: 8,
            inv_local: 30,
            hot_line_service: 150,
            sci_base: 180,
            ring_hop: 40,
            mem_access: 55,
            sci_list_op: 30,
            writeback: 20,
            uncached_local: 55,
            // Uncached semaphore ops to a remote hypernode ride the
            // SCI request channel without caching; the paper's +1 us
            // cross-node barrier penalty (§4.2) pins this down.
            uncached_remote_extra: 100,
        }
    }

    /// An idealized flat model used by ablation benches: remote costs
    /// equal local costs (what a perfect UMA machine of the same
    /// technology would do).
    pub fn uma_ideal() -> Self {
        LatencyModel {
            sci_base: 0,
            ring_hop: 0,
            sci_list_op: 0,
            uncached_remote_extra: 0,
            ..Self::spp1000()
        }
    }

    /// Cost of fetching a line across the SCI interconnect, given the
    /// round-trip hop count (see
    /// [`MachineConfig::ring_round_trip_hops`](crate::MachineConfig::ring_round_trip_hops)).
    pub fn sci_fetch(&self, round_trip_hops: u64) -> Cycles {
        self.sci_base + round_trip_hops * self.ring_hop + self.mem_access + self.sci_list_op
    }

    /// Cost, at the *writer*, of invalidating one remote sharing node:
    /// the invalidation is forwarded along the distributed list, so
    /// each sharer costs a list operation plus ring transit.
    pub fn sci_invalidate_one(&self, round_trip_hops: u64) -> Cycles {
        self.sci_list_op + round_trip_hops * self.ring_hop / 2
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::spp1000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        assert_eq!(cycles_to_us(100), 1.0);
        assert_eq!(us_to_cycles(1.0), 100);
        assert_eq!(us_to_cycles(cycles_to_us(5500)), 5500);
    }

    #[test]
    fn local_miss_in_papers_range() {
        let m = LatencyModel::spp1000();
        assert!((50..=60).contains(&m.local_miss));
    }

    #[test]
    fn remote_fetch_roughly_8x_local_on_2_nodes() {
        // Paper §6: global-vs-hypernode-local miss "about a factor of
        // eight on average" on the 2-hypernode testbed.
        let m = LatencyModel::spp1000();
        // A remote miss = GCB lookup miss (local_miss) + SCI fetch with
        // a 2-hop round trip on the 2-node ring.
        let remote = m.local_miss + m.sci_fetch(2);
        let ratio = remote as f64 / m.local_miss as f64;
        assert!((6.0..=10.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn uma_ideal_has_no_global_penalty() {
        let m = LatencyModel::uma_ideal();
        assert_eq!(m.sci_fetch(16), m.mem_access);
    }
}
