//! Simulated virtual memory: the five Convex memory classes and the
//! page-placement rules that decide which hypernode/FU is *home* for
//! every address (paper §3.2).
//!
//! * **Thread private** — one copy per thread, homed at the owning
//!   thread's FU.
//! * **Node private** — one copy per hypernode, homed there.
//! * **Near shared** — a single copy, all pages on one hypernode
//!   (interleaved across its FUs).
//! * **Far shared** — pages distributed round-robin across all
//!   hypernodes (and interleaved across FUs within each).
//! * **Block shared** — like far shared, but distributed in
//!   user-specified blocks rather than pages.

use crate::config::{FuId, MachineConfig, NodeId};
use crate::error::SimError;

/// Placement class for a simulated allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemClass {
    /// Private to one thread; homed where that thread runs.
    ThreadPrivate {
        /// FU of the owning thread.
        home: FuId,
    },
    /// Private to (one copy per) a hypernode.
    NodePrivate {
        /// The owning hypernode.
        node: NodeId,
    },
    /// One shared copy, hosted entirely by a single hypernode.
    NearShared {
        /// The hosting hypernode.
        node: NodeId,
    },
    /// One shared copy, pages round-robin across all hypernodes.
    FarShared,
    /// One shared copy, fixed-size blocks round-robin across all
    /// hypernodes.
    BlockShared {
        /// Distribution unit in bytes (must be a multiple of the page
        /// size).
        block_bytes: usize,
    },
}

/// A simulated allocation: a contiguous range of simulated virtual
/// addresses with a placement rule.
#[derive(Debug, Clone, Copy)]
pub struct Region {
    /// First simulated address of the region (line-aligned).
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
    /// Placement class.
    pub class: MemClass,
}

impl Region {
    /// Address of byte `offset` within the region.
    #[inline]
    pub fn addr(&self, offset: u64) -> u64 {
        debug_assert!(offset < self.len, "offset {offset} >= len {}", self.len);
        self.base + offset
    }
}

/// The region table: allocates address space and answers "who is home
/// for this address".
#[derive(Debug, Clone)]
pub struct AddressSpace {
    regions: Vec<Region>,
    /// Observability-only labels, parallel to `regions`. Names never
    /// influence placement, snapshots, or digests, and are lost on
    /// snapshot restore (replay goes through `try_alloc`).
    names: Vec<Option<String>>,
    cursor: u64,
    page: u64,
    fus_per_node: usize,
    hypernodes: usize,
}

impl AddressSpace {
    /// Create an address space for the given machine.
    pub fn new(cfg: &MachineConfig) -> Self {
        AddressSpace {
            regions: Vec::new(),
            names: Vec::new(),
            // Start above 0 so address 0 stays invalid, and keep
            // allocations page-aligned.
            cursor: cfg.page_bytes as u64,
            page: cfg.page_bytes as u64,
            fus_per_node: cfg.fus_per_node,
            hypernodes: cfg.hypernodes,
        }
    }

    /// Allocate `len` bytes with the given class. Allocations are
    /// page-aligned so placement rules operate on whole pages.
    ///
    /// Panics on a zero-length or malformed block-shared request; use
    /// [`AddressSpace::try_alloc`] to get the typed error instead.
    pub fn alloc(&mut self, class: MemClass, len: u64) -> Region {
        self.try_alloc(class, len).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`AddressSpace::alloc`].
    pub fn try_alloc(&mut self, class: MemClass, len: u64) -> Result<Region, SimError> {
        if len == 0 {
            return Err(SimError::ZeroLengthAlloc);
        }
        if let MemClass::BlockShared { block_bytes } = class {
            if block_bytes == 0 || !(block_bytes as u64).is_multiple_of(self.page) {
                return Err(SimError::BadBlockSize {
                    page: self.page,
                    got: block_bytes,
                });
            }
        }
        let base = self.cursor;
        let padded = len.div_ceil(self.page) * self.page;
        // Guard page between regions: staggers equal-sized arrays so
        // they don't land at exact multiples of the (power-of-two)
        // cache size and alias to the same direct-mapped slot — the
        // padding every performance-aware allocator/code applies.
        self.cursor += padded + self.page;
        let r = Region { base, len, class };
        self.regions.push(r);
        self.names.push(None);
        Ok(r)
    }

    /// Find the region containing `addr`.
    pub fn region_of(&self, addr: u64) -> Option<&Region> {
        self.region_index_of(addr).map(|i| &self.regions[i])
    }

    /// Index (allocation order) of the region containing `addr`.
    pub fn region_index_of(&self, addr: u64) -> Option<usize> {
        // Regions are allocated in ascending order; binary search.
        let i = self.regions.partition_point(|r| r.base <= addr);
        if i == 0 {
            return None;
        }
        let r = &self.regions[i - 1];
        (addr < r.base + r.len.max(1).div_ceil(self.page) * self.page).then_some(i - 1)
    }

    /// Label the region whose base address is `base` (no-op for an
    /// address that is not a region base). Labels exist purely for
    /// observability — reports, heatmaps, traces.
    pub fn set_region_name(&mut self, base: u64, name: &str) {
        if let Some(i) = self.region_index_of(base) {
            if self.regions[i].base == base {
                self.names[i] = Some(name.to_string());
            }
        }
    }

    /// The label of the region containing `addr`, if any was set.
    pub fn region_name(&self, addr: u64) -> Option<&str> {
        self.region_index_of(addr)
            .and_then(|i| self.names[i].as_deref())
    }

    /// The label of region `index` (allocation order), if any was set.
    pub fn region_name_at(&self, index: usize) -> Option<&str> {
        self.names.get(index).and_then(|n| n.as_deref())
    }

    /// Base address of region `index` (allocation order).
    ///
    /// Panics if `index` is out of range.
    pub fn region_base_at(&self, index: usize) -> u64 {
        self.regions[index].base
    }

    /// The home (hypernode, FU) of `addr`: the memory bank that
    /// physically hosts the containing page.
    ///
    /// Panics on an unmapped address; use
    /// [`AddressSpace::try_home_of`] to get the typed error instead.
    pub fn home_of(&self, addr: u64) -> (NodeId, FuId) {
        self.try_home_of(addr).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`AddressSpace::home_of`].
    pub fn try_home_of(&self, addr: u64) -> Result<(NodeId, FuId), SimError> {
        let r = self
            .region_of(addr)
            .ok_or(SimError::UnmappedAddress { addr })?;
        let page_in_region = (addr - r.base) / self.page;
        Ok(match r.class {
            MemClass::ThreadPrivate { home } => {
                (NodeId((home.0 as usize / self.fus_per_node) as u8), home)
            }
            MemClass::NodePrivate { node } | MemClass::NearShared { node } => {
                // Interleave pages across the node's FUs.
                let fu_in_node = (page_in_region as usize) % self.fus_per_node;
                (
                    node,
                    FuId((node.0 as usize * self.fus_per_node + fu_in_node) as u16),
                )
            }
            MemClass::FarShared => self.round_robin(page_in_region),
            MemClass::BlockShared { block_bytes } => {
                let block = (addr - r.base) / block_bytes as u64;
                self.round_robin(block)
            }
        })
    }

    /// Round-robin a distribution unit across hypernodes, interleaving
    /// across FUs within each node as units wrap around.
    fn round_robin(&self, unit: u64) -> (NodeId, FuId) {
        let node = (unit as usize) % self.hypernodes;
        let fu_in_node = (unit as usize / self.hypernodes) % self.fus_per_node;
        (
            NodeId(node as u8),
            FuId((node * self.fus_per_node + fu_in_node) as u16),
        )
    }

    /// Total bytes of simulated address space allocated so far.
    pub fn allocated_bytes(&self) -> u64 {
        self.cursor - self.page
    }

    /// Number of regions allocated.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// All regions in allocation order (checkpoint support: replaying
    /// the sequence through [`AddressSpace::try_alloc`] reproduces the
    /// layout bit-identically).
    pub(crate) fn regions(&self) -> &[Region] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(&MachineConfig::spp1000(2))
    }

    #[test]
    fn allocations_are_disjoint_and_page_aligned() {
        let mut s = space();
        let a = s.alloc(MemClass::FarShared, 100);
        let b = s.alloc(MemClass::FarShared, 5000);
        assert_eq!(a.base % 4096, 0);
        assert_eq!(b.base % 4096, 0);
        assert!(b.base >= a.base + 4096);
        assert_eq!(s.num_regions(), 2);
    }

    #[test]
    fn region_lookup_finds_the_right_region() {
        let mut s = space();
        let a = s.alloc(MemClass::FarShared, 8192);
        let b = s.alloc(MemClass::NearShared { node: NodeId(1) }, 64);
        assert_eq!(s.region_of(a.addr(0)).unwrap().base, a.base);
        assert_eq!(s.region_of(a.addr(8191)).unwrap().base, a.base);
        assert_eq!(s.region_of(b.addr(0)).unwrap().base, b.base);
        assert!(s.region_of(0).is_none());
    }

    #[test]
    fn near_shared_stays_on_its_node() {
        let mut s = space();
        let r = s.alloc(MemClass::NearShared { node: NodeId(1) }, 64 * 4096);
        for p in 0..64u64 {
            let (node, fu) = s.home_of(r.addr(p * 4096));
            assert_eq!(node, NodeId(1));
            // Interleaved over the node's four FUs (4..8 on node 1).
            assert!((4..8).contains(&fu.0));
        }
    }

    #[test]
    fn far_shared_round_robins_across_nodes() {
        let mut s = space();
        let r = s.alloc(MemClass::FarShared, 8 * 4096);
        let homes: Vec<u8> = (0..8).map(|p| s.home_of(r.addr(p * 4096)).0 .0).collect();
        assert_eq!(homes, vec![0, 1, 0, 1, 0, 1, 0, 1]);
        // FU interleave advances once per node wrap.
        let fus: Vec<u16> = (0..8).map(|p| s.home_of(r.addr(p * 4096)).1 .0).collect();
        assert_eq!(fus, vec![0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    fn block_shared_distributes_in_blocks() {
        let mut s = space();
        let r = s.alloc(
            MemClass::BlockShared {
                block_bytes: 2 * 4096,
            },
            8 * 4096,
        );
        let homes: Vec<u8> = (0..8).map(|p| s.home_of(r.addr(p * 4096)).0 .0).collect();
        assert_eq!(homes, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn thread_private_homed_at_owner() {
        let mut s = space();
        let r = s.alloc(MemClass::ThreadPrivate { home: FuId(5) }, 4096);
        let (node, fu) = s.home_of(r.addr(100));
        assert_eq!(fu, FuId(5));
        assert_eq!(node, NodeId(1));
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn block_shared_requires_page_multiple() {
        let mut s = space();
        s.alloc(MemClass::BlockShared { block_bytes: 100 }, 4096);
    }

    #[test]
    #[should_panic(expected = "not in any simulated region")]
    fn home_of_unmapped_address_panics() {
        let s = space();
        s.home_of(0x10_0000_0000);
    }

    #[test]
    fn block_shared_with_block_equal_to_page_matches_far_shared() {
        // A one-page block degenerates to page-granular round-robin:
        // the placement must agree with FarShared page for page.
        let mut s = space();
        let blk = s.alloc(MemClass::BlockShared { block_bytes: 4096 }, 8 * 4096);
        let far = s.alloc(MemClass::FarShared, 8 * 4096);
        for p in 0..8u64 {
            assert_eq!(
                s.home_of(blk.addr(p * 4096)),
                s.home_of(far.addr(p * 4096)),
                "page {p}"
            );
        }
    }

    #[test]
    fn block_shared_accepts_any_page_multiple() {
        let mut s = space();
        for mult in [1usize, 2, 3, 8] {
            let block_bytes = mult * 4096;
            let r = s.alloc(MemClass::BlockShared { block_bytes }, 16 * 4096);
            // Every page of one block is homed identically, and
            // consecutive blocks alternate nodes.
            for b in 0..(16 / mult as u64) {
                let first = s.home_of(r.addr(b * block_bytes as u64));
                for p in 1..mult as u64 {
                    assert_eq!(
                        first,
                        s.home_of(r.addr(b * block_bytes as u64 + p * 4096)),
                        "block {b} page {p} (mult {mult})"
                    );
                }
                assert_eq!(first.0, NodeId((b % 2) as u8), "block {b} (mult {mult})");
            }
        }
    }

    #[test]
    fn region_boundaries_resolve_at_line_granularity() {
        // Lines at the very start, the last line before a page break,
        // and the first line after it must resolve inside the region;
        // one line past the padded end must not leak into a neighbour.
        let mut s = space();
        let a = s.alloc(MemClass::FarShared, 2 * 4096);
        let b = s.alloc(MemClass::NearShared { node: NodeId(1) }, 32);
        for off in [0u64, 32, 4096 - 32, 4096, 2 * 4096 - 32] {
            assert_eq!(
                s.region_of(a.addr(off)).unwrap().base,
                a.base,
                "offset {off}"
            );
        }
        // Page straddle: last line of page 0 and first line of page 1
        // have different homes under FarShared.
        assert_ne!(s.home_of(a.addr(4096 - 32)), s.home_of(a.addr(4096)));
        // A short region still owns its whole padded page, but not the
        // guard page after it.
        assert_eq!(s.region_of(b.base + 4095).unwrap().base, b.base);
        assert!(
            s.region_of(b.base + 4096).is_none(),
            "guard page is unmapped"
        );
        assert!(s.try_home_of(b.base + 4096).is_err());
    }

    #[test]
    fn try_alloc_error_paths_leave_the_space_usable() {
        let mut s = space();
        assert!(matches!(
            s.try_alloc(MemClass::BlockShared { block_bytes: 0 }, 4096),
            Err(SimError::BadBlockSize { page: 4096, got: 0 })
        ));
        assert!(matches!(
            s.try_alloc(MemClass::BlockShared { block_bytes: 4095 }, 4096),
            Err(SimError::BadBlockSize { .. })
        ));
        assert!(matches!(
            s.try_alloc(MemClass::NearShared { node: NodeId(0) }, 0),
            Err(SimError::ZeroLengthAlloc)
        ));
        // Failed attempts must not consume address space or regions.
        assert_eq!(s.num_regions(), 0);
        assert_eq!(s.allocated_bytes(), 0);
        let ok = s.try_alloc(MemClass::FarShared, 4096).unwrap();
        assert_eq!(s.home_of(ok.addr(0)).0, NodeId(0));
        assert_eq!(s.num_regions(), 1);
    }

    #[test]
    fn try_variants_return_typed_errors() {
        let mut s = space();
        assert!(matches!(
            s.try_alloc(MemClass::FarShared, 0),
            Err(SimError::ZeroLengthAlloc)
        ));
        assert!(matches!(
            s.try_alloc(MemClass::BlockShared { block_bytes: 100 }, 4096),
            Err(SimError::BadBlockSize {
                page: 4096,
                got: 100
            })
        ));
        assert!(matches!(
            s.try_home_of(0x10_0000_0000),
            Err(SimError::UnmappedAddress { .. })
        ));
    }
}
