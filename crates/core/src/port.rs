//! The pluggable memory-port abstraction.
//!
//! [`MemPort`] is the seam between workload *drivers* (the runtime's
//! fork-join layer, the PVM layer, and the application kernels) and
//! the memory-system *cost model*. Everything above spp-core is
//! generic over it, so the same genuine address stream can be priced
//! by different backends:
//!
//! * [`crate::Machine`] — the cycle-accurate coherence model. The
//!   trait impl delegates to the inherent methods, so a
//!   `Runtime<Machine>` is bit-identical to the pre-trait code and
//!   the paper anchors do not move.
//! * [`crate::FastPort`] — an analytic hit/miss counter with no
//!   coherence state, for quick parameter sweeps.
//! * [`crate::TracePort`] — wraps a `Machine`, charging real costs
//!   while recording a compact binary trace that can be replayed into
//!   a fresh cycle-accurate machine ([`crate::Trace::replay`]).
//!
//! ## Batched runs
//!
//! [`MemPort::read_run`] / [`MemPort::write_run`] price `n`
//! consecutive `elem_bytes`-strided accesses starting at `addr` in
//! one call. The **run-equivalence invariant** every backend must
//! uphold: a run call returns exactly the total cycles, and produces
//! exactly the [`crate::MemStats`] delta, of the equivalent scalar
//! loop. The default implementations *are* the scalar loop; `Machine`
//! overrides them with a fast path that performs one coherence
//! transaction per cache line and prices the rest as hits — valid
//! because the model is single-threaded, so after the first access of
//! a run the line deterministically stays resident for the remainder
//! of that line's elements. `tests/cross_validation.rs` enforces the
//! invariant bit-for-bit.

use crate::config::{CpuId, FuId, MachineConfig, NodeId};
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::latency::Cycles;
use crate::machine::Machine;
use crate::mem::{MemClass, Region};
use crate::race::RaceEvent;
use crate::stats::MemStats;
use crate::trace::TraceRecord;

/// A memory system that allocates simulated addresses and prices
/// accesses in cycles. See the [module docs](self) for the contract.
pub trait MemPort {
    /// The machine topology and latency model this port prices
    /// against (line geometry lives here).
    fn config(&self) -> &MachineConfig;

    /// A cached read of the line containing `addr` by `cpu`; returns
    /// the latency the issuing CPU observes.
    fn read(&mut self, cpu: CpuId, addr: u64) -> Cycles;

    /// A cached write to the line containing `addr` by `cpu`.
    fn write(&mut self, cpu: CpuId, addr: u64) -> Cycles;

    /// An uncached atomic operation (counting semaphores, §4.2).
    fn uncached_op(&mut self, cpu: CpuId, addr: u64) -> Cycles;

    /// Allocate simulated memory with the given placement class.
    fn try_alloc(&mut self, class: MemClass, bytes: u64) -> Result<Region, SimError>;

    /// Panicking variant of [`MemPort::try_alloc`].
    fn alloc(&mut self, class: MemClass, bytes: u64) -> Region {
        self.try_alloc(class, bytes)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Home (node, FU) of an address under the port's placement rules.
    fn home_of(&self, addr: u64) -> (NodeId, FuId);

    /// Event counters accumulated so far.
    fn stats(&self) -> &MemStats;

    /// Drop all cached state (between benchmark repetitions);
    /// counters are left untouched.
    fn flush_all_caches(&mut self);

    /// Cache line size in bytes.
    fn line_bytes(&self) -> u64 {
        self.config().line_bytes as u64
    }

    /// Price `n` reads at `addr, addr + elem_bytes, ...` as `cpu`.
    ///
    /// Must be cycle- and stats-equivalent to the scalar loop (the
    /// run-equivalence invariant, see the [module docs](self)).
    fn read_run(&mut self, cpu: CpuId, addr: u64, elem_bytes: u64, n: usize) -> Cycles {
        let mut total = 0;
        for i in 0..n {
            total += self.read(cpu, addr + i as u64 * elem_bytes);
        }
        total
    }

    /// Price `n` writes at `addr, addr + elem_bytes, ...` as `cpu`.
    /// Same equivalence contract as [`MemPort::read_run`].
    fn write_run(&mut self, cpu: CpuId, addr: u64, elem_bytes: u64, n: usize) -> Cycles {
        let mut total = 0;
        for i in 0..n {
            total += self.write(cpu, addr + i as u64 * elem_bytes);
        }
        total
    }

    /// True if `cpu` has been taken offline by a hard fault (see
    /// [`crate::HardFault::CpuFail`]). Backends without a hard-failure
    /// model always answer `false`; the runtime watchdog consults this
    /// to distinguish a dead participant from a slow one.
    fn is_cpu_dead(&self, cpu: CpuId) -> bool {
        let _ = cpu;
        false
    }

    /// The deterministic fault schedule, if this backend models one.
    /// The runtime and PVM layers draw spawn/message decisions here.
    fn fault_plan(&self) -> Option<&FaultPlan> {
        None
    }

    /// Mutable access to the fault schedule, if any.
    fn faults_mut(&mut self) -> Option<&mut FaultPlan> {
        None
    }

    /// True when this backend has a trace sink mounted. Layers above
    /// the machine (runtime, PVM) guard their event construction on
    /// this so tracing off costs them a single branch per sync point.
    fn tracing(&self) -> bool {
        false
    }

    /// Deliver one externally-stamped trace record (see
    /// [`crate::trace`]); dropped by backends without a sink.
    fn trace(&mut self, rec: TraceRecord) {
        let _ = rec;
    }

    /// True when this backend has a race detector mounted (see
    /// [`crate::race`]). The runtime guards its segment-boundary
    /// event construction on this, so detection off costs one branch
    /// per sync point — the same contract as [`MemPort::tracing`].
    fn racing(&self) -> bool {
        false
    }

    /// Deliver one segment-boundary event to the race detector;
    /// dropped by backends without one.
    fn race(&mut self, ev: RaceEvent) {
        let _ = ev;
    }

    /// Label the region based at `base` for observability (heatmap
    /// and report region names); dropped by backends without a region
    /// registry.
    fn label_region(&mut self, base: u64, label: &str) {
        let _ = (base, label);
    }
}

impl MemPort for Machine {
    fn config(&self) -> &MachineConfig {
        Machine::config(self)
    }

    fn read(&mut self, cpu: CpuId, addr: u64) -> Cycles {
        Machine::read(self, cpu, addr)
    }

    fn write(&mut self, cpu: CpuId, addr: u64) -> Cycles {
        Machine::write(self, cpu, addr)
    }

    fn uncached_op(&mut self, cpu: CpuId, addr: u64) -> Cycles {
        Machine::uncached_op(self, cpu, addr)
    }

    fn try_alloc(&mut self, class: MemClass, bytes: u64) -> Result<Region, SimError> {
        Machine::try_alloc(self, class, bytes)
    }

    fn home_of(&self, addr: u64) -> (NodeId, FuId) {
        Machine::home_of(self, addr)
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn flush_all_caches(&mut self) {
        Machine::flush_all_caches(self)
    }

    fn read_run(&mut self, cpu: CpuId, addr: u64, elem_bytes: u64, n: usize) -> Cycles {
        Machine::read_run(self, cpu, addr, elem_bytes, n)
    }

    fn write_run(&mut self, cpu: CpuId, addr: u64, elem_bytes: u64, n: usize) -> Cycles {
        Machine::write_run(self, cpu, addr, elem_bytes, n)
    }

    fn is_cpu_dead(&self, cpu: CpuId) -> bool {
        Machine::is_cpu_dead(self, cpu)
    }

    fn fault_plan(&self) -> Option<&FaultPlan> {
        Machine::fault_plan(self)
    }

    fn faults_mut(&mut self) -> Option<&mut FaultPlan> {
        Machine::faults_mut(self)
    }

    fn tracing(&self) -> bool {
        Machine::tracing_enabled(self)
    }

    fn trace(&mut self, rec: TraceRecord) {
        if let Some(t) = self.tracer_mut() {
            t.record(rec);
        }
    }

    fn racing(&self) -> bool {
        Machine::race_detection_enabled(self)
    }

    fn race(&mut self, ev: RaceEvent) {
        if let Some(r) = self.race_sink_mut() {
            r.handle(ev);
        }
    }

    fn label_region(&mut self, base: u64, label: &str) {
        Machine::label_region(self, base, label)
    }
}
