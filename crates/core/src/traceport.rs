//! Trace recording and replay for the cycle-accurate backend.
//!
//! [`TracePort`] wraps a [`Machine`]: every port operation is charged
//! its real cycle-accurate cost *and* appended to a compact binary
//! [`Trace`]. Replaying the trace into a fresh, identically
//! configured machine ([`Trace::replay`]) re-executes the identical
//! port-level operation stream, so the replay's total cycles and
//! [`crate::MemStats`] are bit-identical to the recording run — the
//! E11 cross-validation of EXPERIMENTS.md.
//!
//! The trace records the *port-level* stream: allocations (which
//! rebuild the identical deterministic address-space layout), cache
//! flushes, scalar and batched reads/writes, and uncached ops.
//! Driver-level costs above the port (fork/join software costs, PVM
//! packing, flop accounting) are not memory traffic and are not
//! recorded. Fault-plan draws happen *inside* the replayed
//! operations, so installing the same seeded plan on the replay
//! machine reproduces them exactly.
//!
//! Record encoding (little-endian, byte-packed): an opcode byte, then
//! the operands of that opcode. Runs store `(cpu: u16, addr: u64,
//! elem_bytes: u32, n: u32)` — a 2M-access PPM sweep strip costs 19
//! bytes, not 2M records.

use crate::config::{CpuId, FuId, MachineConfig, NodeId};
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::latency::Cycles;
use crate::machine::Machine;
use crate::mem::{MemClass, Region};
use crate::port::MemPort;
use crate::stats::MemStats;

const OP_READ: u8 = 0;
const OP_WRITE: u8 = 1;
const OP_UNCACHED: u8 = 2;
const OP_READ_RUN: u8 = 3;
const OP_WRITE_RUN: u8 = 4;
const OP_ALLOC: u8 = 5;
const OP_FLUSH: u8 = 6;

const CLASS_THREAD_PRIVATE: u8 = 0;
const CLASS_NODE_PRIVATE: u8 = 1;
const CLASS_NEAR_SHARED: u8 = 2;
const CLASS_FAR_SHARED: u8 = 3;
const CLASS_BLOCK_SHARED: u8 = 4;

/// A recorded port-operation stream (compact binary form).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    bytes: Vec<u8>,
    records: u64,
}

impl Trace {
    fn op(&mut self, op: u8) {
        self.bytes.push(op);
        self.records += 1;
    }

    fn u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn access(&mut self, op: u8, cpu: CpuId, addr: u64) {
        self.op(op);
        self.u16(cpu.0);
        self.u64(addr);
    }

    fn run(&mut self, op: u8, cpu: CpuId, addr: u64, elem_bytes: u64, n: usize) {
        debug_assert!(elem_bytes <= u32::MAX as u64 && n <= u32::MAX as usize);
        self.op(op);
        self.u16(cpu.0);
        self.u64(addr);
        self.u32(elem_bytes as u32);
        self.u32(n as u32);
    }

    fn alloc(&mut self, class: MemClass, bytes: u64) {
        self.op(OP_ALLOC);
        match class {
            MemClass::ThreadPrivate { home } => {
                self.bytes.push(CLASS_THREAD_PRIVATE);
                self.u16(home.0);
            }
            MemClass::NodePrivate { node } => {
                self.bytes.push(CLASS_NODE_PRIVATE);
                self.bytes.push(node.0);
            }
            MemClass::NearShared { node } => {
                self.bytes.push(CLASS_NEAR_SHARED);
                self.bytes.push(node.0);
            }
            MemClass::FarShared => self.bytes.push(CLASS_FAR_SHARED),
            MemClass::BlockShared { block_bytes } => {
                self.bytes.push(CLASS_BLOCK_SHARED);
                self.u64(block_bytes as u64);
            }
        }
        self.u64(bytes);
    }

    /// Number of records (one run counts once, however long).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Encoded size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Re-execute the recorded stream against `m`, returning the total
    /// cycles charged. `m` must be freshly built with the same
    /// configuration (and fault plan, if any) as the recording
    /// machine; the replay then reproduces cycles and stats
    /// bit-identically.
    ///
    /// # Panics
    /// On a malformed or truncated trace (traces are only produced by
    /// [`TracePort`], so this indicates corruption).
    pub fn replay(&self, m: &mut Machine) -> Cycles {
        let b = &self.bytes;
        let mut p = 0usize;
        let mut total: Cycles = 0;
        let u16_at = |p: &mut usize| {
            let v = u16::from_le_bytes(
                b[*p..*p + 2]
                    .try_into()
                    .expect("record framing guarantees 2 bytes"),
            );
            *p += 2;
            v
        };
        let u32_at = |p: &mut usize| {
            let v = u32::from_le_bytes(
                b[*p..*p + 4]
                    .try_into()
                    .expect("record framing guarantees 4 bytes"),
            );
            *p += 4;
            v
        };
        let u64_at = |p: &mut usize| {
            let v = u64::from_le_bytes(
                b[*p..*p + 8]
                    .try_into()
                    .expect("record framing guarantees 8 bytes"),
            );
            *p += 8;
            v
        };
        while p < b.len() {
            let op = b[p];
            p += 1;
            match op {
                OP_READ | OP_WRITE | OP_UNCACHED => {
                    let cpu = CpuId(u16_at(&mut p));
                    let addr = u64_at(&mut p);
                    total += match op {
                        OP_READ => m.read(cpu, addr),
                        OP_WRITE => m.write(cpu, addr),
                        _ => m.uncached_op(cpu, addr),
                    };
                }
                OP_READ_RUN | OP_WRITE_RUN => {
                    let cpu = CpuId(u16_at(&mut p));
                    let addr = u64_at(&mut p);
                    let elem = u32_at(&mut p) as u64;
                    let n = u32_at(&mut p) as usize;
                    total += if op == OP_READ_RUN {
                        m.read_run(cpu, addr, elem, n)
                    } else {
                        m.write_run(cpu, addr, elem, n)
                    };
                }
                OP_ALLOC => {
                    let class = match b[p] {
                        CLASS_THREAD_PRIVATE => {
                            p += 1;
                            MemClass::ThreadPrivate {
                                home: FuId(u16_at(&mut p)),
                            }
                        }
                        CLASS_NODE_PRIVATE => {
                            let node = NodeId(b[p + 1]);
                            p += 2;
                            MemClass::NodePrivate { node }
                        }
                        CLASS_NEAR_SHARED => {
                            let node = NodeId(b[p + 1]);
                            p += 2;
                            MemClass::NearShared { node }
                        }
                        CLASS_FAR_SHARED => {
                            p += 1;
                            MemClass::FarShared
                        }
                        CLASS_BLOCK_SHARED => {
                            p += 1;
                            MemClass::BlockShared {
                                block_bytes: u64_at(&mut p) as usize,
                            }
                        }
                        other => panic!("corrupt trace: unknown class tag {other}"),
                    };
                    let bytes = u64_at(&mut p);
                    let _ = m.alloc(class, bytes);
                }
                OP_FLUSH => m.flush_all_caches(),
                other => panic!("corrupt trace: unknown opcode {other}"),
            }
        }
        total
    }
}

/// The recording backend: a cycle-accurate [`Machine`] plus a
/// [`Trace`] of every port operation it priced.
#[derive(Debug, Clone)]
pub struct TracePort {
    inner: Machine,
    trace: Trace,
    total: Cycles,
}

impl TracePort {
    /// Wrap a machine; all port traffic is charged by it and recorded.
    pub fn new(inner: Machine) -> Self {
        TracePort {
            inner,
            trace: Trace::default(),
            total: 0,
        }
    }

    /// The wrapped cycle-accurate machine.
    pub fn inner(&self) -> &Machine {
        &self.inner
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Total cycles charged through this port so far (the number
    /// [`Trace::replay`] must reproduce).
    pub fn total_cycles(&self) -> Cycles {
        self.total
    }

    /// Unwrap into the machine and the recorded trace.
    pub fn into_parts(self) -> (Machine, Trace) {
        (self.inner, self.trace)
    }
}

impl MemPort for TracePort {
    fn config(&self) -> &MachineConfig {
        self.inner.config()
    }

    fn read(&mut self, cpu: CpuId, addr: u64) -> Cycles {
        self.trace.access(OP_READ, cpu, addr);
        let c = self.inner.read(cpu, addr);
        self.total += c;
        c
    }

    fn write(&mut self, cpu: CpuId, addr: u64) -> Cycles {
        self.trace.access(OP_WRITE, cpu, addr);
        let c = self.inner.write(cpu, addr);
        self.total += c;
        c
    }

    fn uncached_op(&mut self, cpu: CpuId, addr: u64) -> Cycles {
        self.trace.access(OP_UNCACHED, cpu, addr);
        let c = self.inner.uncached_op(cpu, addr);
        self.total += c;
        c
    }

    fn try_alloc(&mut self, class: MemClass, bytes: u64) -> Result<Region, SimError> {
        let r = self.inner.try_alloc(class, bytes)?;
        self.trace.alloc(class, bytes);
        Ok(r)
    }

    fn home_of(&self, addr: u64) -> (NodeId, FuId) {
        self.inner.home_of(addr)
    }

    fn stats(&self) -> &MemStats {
        &self.inner.stats
    }

    fn flush_all_caches(&mut self) {
        self.trace.op(OP_FLUSH);
        self.inner.flush_all_caches();
    }

    fn read_run(&mut self, cpu: CpuId, addr: u64, elem_bytes: u64, n: usize) -> Cycles {
        self.trace.run(OP_READ_RUN, cpu, addr, elem_bytes, n);
        let c = self.inner.read_run(cpu, addr, elem_bytes, n);
        self.total += c;
        c
    }

    fn write_run(&mut self, cpu: CpuId, addr: u64, elem_bytes: u64, n: usize) -> Cycles {
        self.trace.run(OP_WRITE_RUN, cpu, addr, elem_bytes, n);
        let c = self.inner.write_run(cpu, addr, elem_bytes, n);
        self.total += c;
        c
    }

    fn fault_plan(&self) -> Option<&FaultPlan> {
        self.inner.fault_plan()
    }

    fn faults_mut(&mut self) -> Option<&mut FaultPlan> {
        self.inner.faults_mut()
    }

    // Labels are observability-only: pass them through to the inner
    // machine's registry, but keep them out of the recorded op stream
    // (replay reproduces cycles and stats, not report strings).
    fn label_region(&mut self, base: u64, label: &str) {
        self.inner.label_region(base, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stream touching every opcode: allocs in several classes,
    /// scalar and batched traffic from multiple CPUs, uncached ops,
    /// and a mid-stream flush.
    fn drive<P: MemPort>(p: &mut P) -> Cycles {
        let near = p.alloc(MemClass::NearShared { node: NodeId(0) }, 8192);
        let far = p.alloc(MemClass::FarShared, 1 << 14);
        let blk = p.alloc(MemClass::BlockShared { block_bytes: 4096 }, 1 << 14);
        let mut t = 0;
        for i in 0..256u64 {
            t += p.read(CpuId((i % 16) as u16), near.addr((i * 32) % 8192));
            t += p.write(CpuId(0), far.addr(i * 8));
        }
        t += p.read_run(CpuId(3), blk.addr(0), 8, 2048);
        t += p.write_run(CpuId(9), blk.addr(0), 8, 2048);
        t += p.uncached_op(CpuId(0), near.addr(0));
        t += p.uncached_op(CpuId(8), near.addr(0));
        p.flush_all_caches();
        t += p.read_run(CpuId(3), blk.addr(0), 8, 512);
        t
    }

    #[test]
    fn replay_reproduces_cycles_and_stats_bit_identically() {
        let mut rec = TracePort::new(Machine::spp1000(2));
        let total = drive(&mut rec);
        assert_eq!(total, rec.total_cycles());
        let (machine, trace) = rec.into_parts();
        assert!(trace.records() > 0);

        let mut fresh = Machine::spp1000(2);
        let replayed = trace.replay(&mut fresh);
        assert_eq!(replayed, total);
        assert_eq!(fresh.stats, machine.stats);
    }

    #[test]
    fn replay_reproduces_fault_draws_with_same_seed() {
        let plan = FaultPlan::new(7).with_ring_stalls(0.3, 400);
        let mut rec = TracePort::new(Machine::spp1000(2).with_faults(plan.clone()));
        let total = drive(&mut rec);
        let (machine, trace) = rec.into_parts();
        assert!(machine.stats.ring_stalls > 0, "stream must cross the ring");

        let mut fresh = Machine::spp1000(2).with_faults(plan);
        let replayed = trace.replay(&mut fresh);
        assert_eq!(replayed, total);
        assert_eq!(fresh.stats, machine.stats);
    }

    #[test]
    fn runs_are_recorded_compactly() {
        let mut rec = TracePort::new(Machine::spp1000(1));
        let r = rec.alloc(MemClass::NearShared { node: NodeId(0) }, 1 << 20);
        let before = rec.trace().len_bytes();
        rec.read_run(CpuId(0), r.addr(0), 8, 100_000);
        let grew = rec.trace().len_bytes() - before;
        assert!(grew < 32, "one run record, got {grew} bytes");
    }

    #[test]
    #[should_panic(expected = "corrupt trace")]
    fn corrupt_traces_are_rejected() {
        let t = Trace {
            bytes: vec![200],
            records: 1,
        };
        t.replay(&mut Machine::spp1000(1));
    }
}
