//! Happens-before race detection for the simulated runtime.
//!
//! The simulator replays parallel regions as a sequential trace
//! interleaving (DESIGN.md §2), so a data race in an application
//! kernel can never corrupt anything at run time — it silently
//! becomes "whatever order the replay happened to use". This module
//! makes those latent races *visible*: a [`RaceSink`] mounted on the
//! [`crate::Machine`] records every priced read and write together
//! with the logical **segment** it happened in, and at the end of
//! each parallel region a happens-before pass flags unordered
//! conflicting accesses.
//!
//! ## Segment model
//!
//! Segments are delimited by the runtime's structured synchronization
//! points, which the fork-join layer reports as [`RaceEvent`]s:
//!
//! * `RegionBegin` / `RegionEnd` — fork and join. The join barrier
//!   orders *everything* in the region before everything after it, so
//!   analysis is per-region and cross-region pairs are never races.
//! * `BodyBegin { tid, .. }` / `BodyEnd` — one simulated thread's
//!   body (or one phase of it). Accesses outside a body (barrier
//!   flags, protocol traffic) belong to the runtime, not the
//!   application, and are not recorded.
//! * `PhaseBarrier` — an in-region barrier every thread crosses. It
//!   bumps a region-wide phase counter: with structured fork-join
//!   teams the general vector clock degenerates to the pair
//!   *(region, phase)* — two accesses are ordered iff they are in
//!   different phases (or the same thread), which is exactly what a
//!   vector-clock comparison would conclude for this topology.
//! * `GateEnter { gate }` / `GateExit` — a critical section. Two
//!   accesses both made under the *same* gate are mutually exclusive
//!   (not a race, though the order is still schedule-dependent);
//!   a gated access still races with an ungated one.
//!
//! A **race** is two accesses to the same element from different
//! threads in the same phase, at least one a write, not both under
//! one gate. Accesses to *different* elements of the same cache line
//! from different threads (one writing) are reported as line-
//! granularity **false-sharing warnings** — correct but slow, the
//! coherence pathology §5 of the paper keeps running into.
//!
//! ## Contract
//!
//! Same deal as [`crate::trace`]: recording never changes simulated
//! cycles or [`crate::MemStats`], and with no sink mounted every hook
//! site is a single branch on an `Option`.

use std::collections::HashMap;
use std::fmt;

use crate::latency::Cycles;

/// A segment-boundary event delivered to the mounted [`RaceSink`] by
/// the runtime layer (via [`crate::MemPort::race`]).
#[derive(Debug, Clone, PartialEq)]
pub enum RaceEvent {
    /// Name an address range so findings resolve to `array[index]`
    /// instead of raw addresses (see `SimArray::set_label`).
    Register {
        /// First simulated address of the range.
        base: u64,
        /// Length in bytes.
        len: u64,
        /// Element size for index resolution.
        elem_bytes: u64,
        /// Human-readable array name.
        label: String,
    },
    /// A parallel region forked.
    RegionBegin,
    /// A simulated thread's body (or one phase of it) starts.
    BodyBegin {
        /// Thread index within the team.
        tid: u32,
        /// The CPU the thread runs on.
        cpu: u16,
    },
    /// The current thread body ends.
    BodyEnd,
    /// An in-region barrier every thread crosses; orders all earlier
    /// accesses in the region before all later ones.
    PhaseBarrier,
    /// The current thread entered the critical section guarded by the
    /// semaphore at `gate`.
    GateEnter {
        /// Gate semaphore address (identity of the critical section).
        gate: u64,
    },
    /// The current thread left the innermost critical section.
    GateExit {
        /// Gate semaphore address.
        gate: u64,
    },
    /// Subsequent accesses by the current thread target the logical
    /// *back buffer* of a double-buffered structure whose pricing
    /// deliberately aliases both buffers onto one address range (the
    /// N-body permutation sort does this — the priced traffic of the
    /// real two-buffer sort is the same, so the model saves the second
    /// allocation). Back-buffer accesses conflict with other
    /// back-buffer accesses at the same element, not with front-buffer
    /// ones.
    AliasBegin,
    /// Back to the default (front-buffer) address space.
    AliasEnd,
    /// The region joined: analyze and fold findings into the report.
    RegionEnd,
}

/// What kind of conflict a [`RaceFinding`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// Two unordered writes.
    WriteWrite,
    /// An unordered read/write pair.
    ReadWrite,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceKind::WriteWrite => write!(f, "write-write"),
            RaceKind::ReadWrite => write!(f, "read-write"),
        }
    }
}

/// One detected race: an unordered conflicting access pair.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceFinding {
    /// Resolved array name (or `@0x…` when the range is unnamed).
    pub array: String,
    /// Element index within the array.
    pub index: u64,
    /// Simulated address of the element.
    pub addr: u64,
    /// Cache line number.
    pub line: u64,
    /// Phase within the region (0 before any in-region barrier).
    pub phase: u32,
    /// Conflict kind.
    pub kind: RaceKind,
    /// One side: (tid, machine-clock cycle stamp of its first
    /// conflicting access).
    pub first: (u32, Cycles),
    /// The other side, same shape.
    pub second: (u32, Cycles),
}

impl fmt::Display for RaceFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} race on {}[{}] (addr {:#x}, phase {}): tid {} @cycle {} vs tid {} @cycle {}",
            self.kind,
            self.array,
            self.index,
            self.addr,
            self.phase,
            self.first.0,
            self.first.1,
            self.second.0,
            self.second.1
        )
    }
}

/// A line-granularity false-sharing warning: different threads touch
/// different elements of one cache line in the same phase, at least
/// one writing.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingWarning {
    /// Resolved array name of the first element seen on the line.
    pub array: String,
    /// Cache line number.
    pub line: u64,
    /// Phase within the region.
    pub phase: u32,
    /// The threads mixing on the line (sorted, deduped).
    pub tids: Vec<u32>,
}

impl fmt::Display for SharingWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "false sharing on line {:#x} ({}) phase {}: tids {:?}",
            self.line, self.array, self.phase, self.tids
        )
    }
}

/// Accumulated findings across all analyzed regions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RaceReport {
    /// Detected races, oldest first (capped at
    /// [`RaceReport::MAX_STORED`]; `total_races` keeps counting).
    pub races: Vec<RaceFinding>,
    /// Total races detected, including any beyond the cap.
    pub total_races: u64,
    /// False-sharing warnings (same cap discipline).
    pub warnings: Vec<SharingWarning>,
    /// Total warnings, including any beyond the cap.
    pub total_warnings: u64,
    /// Parallel regions analyzed.
    pub regions: u64,
    /// Application accesses recorded.
    pub accesses: u64,
}

impl RaceReport {
    /// How many findings of each kind are stored verbatim.
    pub const MAX_STORED: usize = 64;

    /// True when no races were detected (warnings don't count — false
    /// sharing is slow, not wrong).
    pub fn is_clean(&self) -> bool {
        self.total_races == 0
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} region(s), {} access(es): {} race(s), {} false-sharing warning(s)",
            self.regions, self.accesses, self.total_races, self.total_warnings
        )
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for r in &self.races {
            writeln!(f, "  {r}")?;
        }
        for w in &self.warnings {
            writeln!(f, "  {w}")?;
        }
        Ok(())
    }
}

/// Per-(addr, tid, phase, gate) access summary within one region.
#[derive(Debug, Clone, Copy)]
struct Cell {
    read_at: Option<Cycles>,
    wrote_at: Option<Cycles>,
}

/// The segment key one [`Cell`] is indexed by: (address, thread,
/// phase, innermost gate).
type CellKey = (u64, u32, u32, Option<u64>);

/// The detector: collects access records between `RegionBegin` and
/// `RegionEnd`, runs the happens-before pass at each `RegionEnd`, and
/// accumulates a [`RaceReport`]. Mounted on the machine with
/// `Machine::with_race_detection`.
#[derive(Debug, Clone, Default)]
pub struct RaceSink {
    /// Sorted (base, len, elem_bytes, label) reverse map.
    names: Vec<(u64, u64, u64, String)>,
    /// Whether a thread body is executing (accesses outside bodies
    /// are runtime protocol traffic and are not application state).
    armed: bool,
    /// Whether the current thread is inside an [`RaceEvent::AliasBegin`]
    /// window (accesses land in the back-buffer address space).
    alias: bool,
    tid: u32,
    phase: u32,
    gates: Vec<u64>,
    /// Current region's access table.
    cells: HashMap<CellKey, Cell>,
    report: RaceReport,
}

impl RaceSink {
    /// A fresh detector.
    pub fn new() -> Self {
        RaceSink::default()
    }

    /// The accumulated findings.
    pub fn report(&self) -> &RaceReport {
        &self.report
    }

    /// Name an address range for finding resolution. A later
    /// registration overlapping an earlier one replaces it (labels
    /// refine the automatic per-allocation entries).
    pub fn register(&mut self, base: u64, len: u64, elem_bytes: u64, label: String) {
        self.names
            .retain(|(b, l, _, _)| *b + *l <= base || base + len <= *b);
        let at = self.names.partition_point(|(b, _, _, _)| *b < base);
        self.names.insert(at, (base, len, elem_bytes, label));
    }

    /// Resolve an address to `(label, element index)`.
    fn resolve(&self, addr: u64) -> (String, u64) {
        let addr = addr & !ALIAS_BIT;
        let i = self.names.partition_point(|(b, _, _, _)| *b <= addr);
        if i > 0 {
            let (base, len, elem, label) = &self.names[i - 1];
            if addr < base + len {
                return (label.clone(), (addr - base) / (*elem).max(1));
            }
        }
        (format!("@{addr:#x}"), 0)
    }

    /// Deliver a segment-boundary event.
    pub fn handle(&mut self, ev: RaceEvent) {
        match ev {
            RaceEvent::Register {
                base,
                len,
                elem_bytes,
                label,
            } => self.register(base, len, elem_bytes, label),
            RaceEvent::RegionBegin => {
                self.cells.clear();
                self.phase = 0;
                self.armed = false;
                self.alias = false;
                self.gates.clear();
            }
            RaceEvent::BodyBegin { tid, .. } => {
                self.armed = true;
                self.alias = false;
                self.tid = tid;
                self.gates.clear();
            }
            RaceEvent::BodyEnd => {
                self.armed = false;
                self.alias = false;
                self.gates.clear();
            }
            RaceEvent::AliasBegin => self.alias = true,
            RaceEvent::AliasEnd => self.alias = false,
            RaceEvent::PhaseBarrier => self.phase += 1,
            RaceEvent::GateEnter { gate } => self.gates.push(gate),
            RaceEvent::GateExit { .. } => {
                self.gates.pop();
            }
            RaceEvent::RegionEnd => self.analyze_region(),
        }
    }

    /// Record one priced application access (called by the machine's
    /// read/write paths when a body is executing).
    pub fn record_access(&mut self, addr: u64, is_write: bool, at: Cycles) {
        if !self.armed {
            return;
        }
        self.report.accesses += 1;
        let addr = if self.alias { addr | ALIAS_BIT } else { addr };
        let key = (addr, self.tid, self.phase, self.gates.last().copied());
        let cell = self.cells.entry(key).or_insert(Cell {
            read_at: None,
            wrote_at: None,
        });
        if is_write {
            cell.wrote_at.get_or_insert(at);
        } else {
            cell.read_at.get_or_insert(at);
        }
    }

    /// True when a region is mid-flight and a body is executing.
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// The happens-before pass over one region's table.
    fn analyze_region(&mut self) {
        self.report.regions += 1;
        // Deterministic analysis order regardless of hash iteration.
        let mut entries: Vec<(CellKey, Cell)> = self.cells.drain().collect();
        entries.sort_by_key(|((addr, tid, phase, gate), _)| (*addr, *phase, *tid, *gate));

        // Group by address: element-level races.
        let mut racy_lines: Vec<(u64, u32)> = Vec::new();
        let mut i = 0;
        while i < entries.len() {
            let addr = entries[i].0 .0;
            let mut j = i;
            while j < entries.len() && entries[j].0 .0 == addr {
                j += 1;
            }
            self.races_at(&entries[i..j], &mut racy_lines);
            i = j;
        }

        // Group by line: false-sharing warnings (skip lines that
        // already carry an element-level race in that phase).
        let line_of = |addr: u64| addr >> LINE_SHIFT;
        let mut by_line: HashMap<(u64, u32), Vec<&(CellKey, Cell)>> = HashMap::new();
        for e in &entries {
            by_line
                .entry((line_of(e.0 .0), e.0 .2))
                .or_default()
                .push(e);
        }
        let mut keys: Vec<(u64, u32)> = by_line.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            if racy_lines.contains(&key) {
                continue;
            }
            let group = &by_line[&key];
            let mut tids: Vec<u32> = group.iter().map(|e| e.0 .1).collect();
            tids.sort_unstable();
            tids.dedup();
            let wrote = group.iter().any(|(_, c)| c.wrote_at.is_some());
            let addrs: Vec<u64> = {
                let mut a: Vec<u64> = group.iter().map(|e| e.0 .0).collect();
                a.sort_unstable();
                a.dedup();
                a
            };
            // A real cross-thread mix: at least two threads, at least
            // two elements, somebody writing, and no thread pair on a
            // *common* element (that would be a race, handled above).
            if tids.len() >= 2 && addrs.len() >= 2 && wrote {
                let cross = group.iter().any(|(ka, ca)| {
                    ca.wrote_at.is_some()
                        && group.iter().any(|(kb, _)| kb.1 != ka.1 && kb.0 != ka.0)
                });
                if cross {
                    self.report.total_warnings += 1;
                    if self.report.warnings.len() < RaceReport::MAX_STORED {
                        let (array, _) = self.resolve(addrs[0]);
                        self.report.warnings.push(SharingWarning {
                            array,
                            line: key.0 & !(ALIAS_BIT >> LINE_SHIFT),
                            phase: key.1,
                            tids,
                        });
                    }
                }
            }
        }
    }

    /// Element-level pass over all entries for one address.
    fn races_at(&mut self, entries: &[(CellKey, Cell)], racy_lines: &mut Vec<(u64, u32)>) {
        for (a, ((addr, tid_a, phase_a, gate_a), ca)) in entries.iter().enumerate() {
            for ((_, tid_b, phase_b, gate_b), cb) in entries.iter().skip(a + 1) {
                if tid_a == tid_b || phase_a != phase_b {
                    continue;
                }
                // Both under the same gate: mutually exclusive.
                if let (Some(ga), Some(gb)) = (gate_a, gate_b) {
                    if ga == gb {
                        continue;
                    }
                }
                let kind = match (ca.wrote_at, cb.wrote_at) {
                    (Some(_), Some(_)) => RaceKind::WriteWrite,
                    (Some(_), None) | (None, Some(_)) => RaceKind::ReadWrite,
                    (None, None) => continue,
                };
                self.report.total_races += 1;
                let line = addr >> LINE_SHIFT;
                if !racy_lines.contains(&(line, *phase_a)) {
                    racy_lines.push((line, *phase_a));
                }
                if self.report.races.len() < RaceReport::MAX_STORED {
                    let (array, index) = self.resolve(*addr);
                    let stamp = |c: &Cell| c.wrote_at.or(c.read_at).unwrap_or(0);
                    self.report.races.push(RaceFinding {
                        array,
                        index,
                        addr: *addr & !ALIAS_BIT,
                        line: (*addr & !ALIAS_BIT) >> LINE_SHIFT,
                        phase: *phase_a,
                        kind,
                        first: (*tid_a, stamp(ca)),
                        second: (*tid_b, stamp(cb)),
                    });
                }
            }
        }
    }
}

/// The SPP-1000's 32 B line, as a shift. The detector reports
/// line-granularity findings against the paper's fixed geometry; the
/// machine's own pricing still honours whatever `line_bytes` its
/// configuration carries.
const LINE_SHIFT: u32 = 5;

/// High bit distinguishing the back-buffer address space opened by
/// [`RaceEvent::AliasBegin`]. Simulated addresses never use it.
const ALIAS_BIT: u64 = 1 << 63;

#[cfg(test)]
mod tests {
    use super::*;

    fn sink_with_region() -> RaceSink {
        let mut s = RaceSink::new();
        s.register(0x1000, 0x800, 8, "a".into());
        s.handle(RaceEvent::RegionBegin);
        s
    }

    fn body(s: &mut RaceSink, tid: u32, accesses: &[(u64, bool)]) {
        s.handle(RaceEvent::BodyBegin {
            tid,
            cpu: tid as u16,
        });
        for (i, (addr, w)) in accesses.iter().enumerate() {
            s.record_access(*addr, *w, i as u64);
        }
        s.handle(RaceEvent::BodyEnd);
    }

    #[test]
    fn disjoint_writes_are_clean() {
        let mut s = sink_with_region();
        body(&mut s, 0, &[(0x1000, true), (0x1008, true)]);
        body(&mut s, 1, &[(0x1400, true), (0x1408, true)]);
        s.handle(RaceEvent::RegionEnd);
        assert!(s.report().is_clean(), "{}", s.report());
        assert_eq!(s.report().accesses, 4);
        assert_eq!(s.report().regions, 1);
    }

    #[test]
    fn write_write_conflict_is_flagged_and_resolved() {
        let mut s = sink_with_region();
        body(&mut s, 0, &[(0x1010, true)]);
        body(&mut s, 1, &[(0x1010, true)]);
        s.handle(RaceEvent::RegionEnd);
        let r = s.report();
        assert_eq!(r.total_races, 1);
        let f = &r.races[0];
        assert_eq!(f.kind, RaceKind::WriteWrite);
        assert_eq!(f.array, "a");
        assert_eq!(f.index, 2);
        assert_eq!((f.first.0, f.second.0), (0, 1));
    }

    #[test]
    fn read_write_conflict_is_flagged() {
        let mut s = sink_with_region();
        body(&mut s, 0, &[(0x1000, false)]);
        body(&mut s, 2, &[(0x1000, true)]);
        s.handle(RaceEvent::RegionEnd);
        assert_eq!(s.report().total_races, 1);
        assert_eq!(s.report().races[0].kind, RaceKind::ReadWrite);
    }

    #[test]
    fn shared_reads_are_not_races() {
        let mut s = sink_with_region();
        body(&mut s, 0, &[(0x1000, false)]);
        body(&mut s, 1, &[(0x1000, false)]);
        s.handle(RaceEvent::RegionEnd);
        assert!(s.report().is_clean());
    }

    #[test]
    fn phase_barrier_orders_accesses() {
        let mut s = sink_with_region();
        body(&mut s, 0, &[(0x1000, true)]);
        s.handle(RaceEvent::PhaseBarrier);
        body(&mut s, 1, &[(0x1000, true)]);
        s.handle(RaceEvent::RegionEnd);
        assert!(s.report().is_clean(), "{}", s.report());
    }

    #[test]
    fn join_orders_across_regions() {
        let mut s = sink_with_region();
        body(&mut s, 0, &[(0x1000, true)]);
        s.handle(RaceEvent::RegionEnd);
        s.handle(RaceEvent::RegionBegin);
        body(&mut s, 1, &[(0x1000, true)]);
        s.handle(RaceEvent::RegionEnd);
        assert!(s.report().is_clean(), "{}", s.report());
        assert_eq!(s.report().regions, 2);
    }

    #[test]
    fn common_gate_is_mutual_exclusion_but_mixed_gating_races() {
        let mut s = sink_with_region();
        s.handle(RaceEvent::BodyBegin { tid: 0, cpu: 0 });
        s.handle(RaceEvent::GateEnter { gate: 0x9000 });
        s.record_access(0x1000, true, 1);
        s.handle(RaceEvent::GateExit { gate: 0x9000 });
        s.handle(RaceEvent::BodyEnd);
        s.handle(RaceEvent::BodyBegin { tid: 1, cpu: 1 });
        s.handle(RaceEvent::GateEnter { gate: 0x9000 });
        s.record_access(0x1000, true, 2);
        s.handle(RaceEvent::GateExit { gate: 0x9000 });
        s.handle(RaceEvent::BodyEnd);
        s.handle(RaceEvent::RegionEnd);
        assert!(s.report().is_clean(), "same gate: {}", s.report());

        // Same pattern, but tid 1 skips the gate: race.
        s.handle(RaceEvent::RegionBegin);
        s.handle(RaceEvent::BodyBegin { tid: 0, cpu: 0 });
        s.handle(RaceEvent::GateEnter { gate: 0x9000 });
        s.record_access(0x1000, true, 1);
        s.handle(RaceEvent::GateExit { gate: 0x9000 });
        s.handle(RaceEvent::BodyEnd);
        body(&mut s, 1, &[(0x1000, true)]);
        s.handle(RaceEvent::RegionEnd);
        assert_eq!(s.report().total_races, 1);
    }

    #[test]
    fn false_sharing_warns_without_a_race() {
        let mut s = sink_with_region();
        // Same 32 B line (0x1000..0x1020), different elements.
        body(&mut s, 0, &[(0x1000, true)]);
        body(&mut s, 1, &[(0x1008, false)]);
        s.handle(RaceEvent::RegionEnd);
        let r = s.report();
        assert!(r.is_clean());
        assert_eq!(r.total_warnings, 1);
        assert_eq!(r.warnings[0].tids, vec![0, 1]);
    }

    #[test]
    fn racy_line_suppresses_the_duplicate_warning() {
        let mut s = sink_with_region();
        body(&mut s, 0, &[(0x1000, true), (0x1008, true)]);
        body(&mut s, 1, &[(0x1000, true)]);
        s.handle(RaceEvent::RegionEnd);
        let r = s.report();
        assert_eq!(r.total_races, 1);
        assert_eq!(r.total_warnings, 0, "{r}");
    }

    #[test]
    fn accesses_outside_bodies_are_ignored() {
        let mut s = sink_with_region();
        s.record_access(0x1000, true, 0);
        body(&mut s, 1, &[(0x1000, true)]);
        s.record_access(0x1000, true, 9);
        s.handle(RaceEvent::RegionEnd);
        assert!(s.report().is_clean());
        assert_eq!(s.report().accesses, 1);
    }

    #[test]
    fn unnamed_addresses_resolve_to_hex() {
        let mut s = RaceSink::new();
        s.handle(RaceEvent::RegionBegin);
        body(&mut s, 0, &[(0x7777, true)]);
        body(&mut s, 1, &[(0x7777, true)]);
        s.handle(RaceEvent::RegionEnd);
        assert!(s.report().races[0].array.starts_with("@0x"));
    }

    #[test]
    fn report_caps_stored_findings_but_counts_all() {
        let mut s = sink_with_region();
        let a: Vec<(u64, bool)> = (0..100).map(|i| (0x1000 + 8 * i, true)).collect();
        body(&mut s, 0, &a);
        body(&mut s, 1, &a);
        s.handle(RaceEvent::RegionEnd);
        let r = s.report();
        assert_eq!(r.total_races, 100);
        assert_eq!(r.races.len(), RaceReport::MAX_STORED);
        assert!(r.summary().contains("100 race(s)"));
    }

    #[test]
    fn back_buffer_writes_do_not_race_with_front_reads() {
        let mut s = sink_with_region();
        // The double-buffered permutation-sort shape: tid 0 reads
        // element 2 (front) while tid 1 writes the same priced address
        // inside an alias window (back buffer).
        body(&mut s, 0, &[(0x1010, false)]);
        s.handle(RaceEvent::BodyBegin { tid: 1, cpu: 1 });
        s.handle(RaceEvent::AliasBegin);
        s.record_access(0x1010, true, 5);
        s.handle(RaceEvent::AliasEnd);
        s.handle(RaceEvent::BodyEnd);
        s.handle(RaceEvent::RegionEnd);
        assert!(s.report().is_clean(), "{}", s.report());
    }

    #[test]
    fn back_buffer_conflicts_still_race_and_resolve_cleanly() {
        let mut s = sink_with_region();
        for tid in 0..2 {
            s.handle(RaceEvent::BodyBegin {
                tid,
                cpu: tid as u16,
            });
            s.handle(RaceEvent::AliasBegin);
            s.record_access(0x1010, true, tid as u64);
            s.handle(RaceEvent::AliasEnd);
            s.handle(RaceEvent::BodyEnd);
        }
        s.handle(RaceEvent::RegionEnd);
        let r = s.report();
        assert_eq!(r.total_races, 1);
        // Findings report the true priced address, not the alias.
        assert_eq!(r.races[0].array, "a");
        assert_eq!(r.races[0].index, 2);
        assert_eq!(r.races[0].addr, 0x1010);
    }

    #[test]
    fn alias_window_closes_at_body_end() {
        let mut s = sink_with_region();
        s.handle(RaceEvent::BodyBegin { tid: 0, cpu: 0 });
        s.handle(RaceEvent::AliasBegin);
        s.record_access(0x1010, true, 1);
        s.handle(RaceEvent::BodyEnd); // alias window left open
        body(&mut s, 1, &[(0x1010, true)]);
        s.handle(RaceEvent::RegionEnd);
        // tid 1's write is front-buffer: no conflict with the aliased
        // write, proving the window did not leak across bodies.
        assert!(s.report().is_clean(), "{}", s.report());
    }

    #[test]
    fn relabeling_replaces_overlapping_ranges() {
        let mut s = RaceSink::new();
        s.register(0x1000, 0x100, 1, "auto".into());
        s.register(0x1000, 0x100, 8, "rho".into());
        s.handle(RaceEvent::RegionBegin);
        body(&mut s, 0, &[(0x1008, true)]);
        body(&mut s, 1, &[(0x1008, true)]);
        s.handle(RaceEvent::RegionEnd);
        let f = &s.report().races[0];
        assert_eq!(f.array, "rho");
        assert_eq!(f.index, 1);
    }
}
