//! Typed errors for constructor and API boundaries across the
//! simulator stack.
//!
//! The simulator distinguishes two failure families:
//!
//! * [`ConfigError`] — a [`crate::MachineConfig`] that describes a
//!   machine the SPP-1000 could not be (bad hypernode count, non-
//!   power-of-two geometry). Returned by
//!   [`crate::MachineConfig::validate`] and [`crate::Machine::try_new`].
//! * [`SimError`] — a bad request made *to* a valid machine: an
//!   unmapped address, an impossible team placement, a malformed PVM
//!   task set, or a fault-injection retry budget exhausted at runtime.
//!
//! Every layer keeps its historical panicking entry points (`alloc`,
//! `Team::place`, `Pvm::send`, ...) as thin wrappers that format the
//! typed error into the panic message, so existing callers and
//! `#[should_panic]` expectations are unchanged; the `try_*` variants
//! return these errors for callers that want to degrade gracefully.
//! Internal protocol invariants stay `debug_assert!`s — they indicate
//! simulator bugs, not user errors.

use std::fmt;

/// A [`crate::MachineConfig`] that cannot describe an SPP-1000.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Hypernode count outside the simulator's
    /// 1..=[`crate::config::MAX_HYPERNODES`] range.
    Hypernodes {
        /// The rejected count.
        got: usize,
    },
    /// A geometry field that must be a power of two is not.
    NotPowerOfTwo {
        /// Which field.
        field: &'static str,
        /// The rejected value.
        got: usize,
    },
    /// A field that must be nonzero is zero.
    Zero {
        /// Which field.
        field: &'static str,
    },
    /// The cache line does not fit in a virtual-memory page.
    LineExceedsPage {
        /// Configured line size in bytes.
        line: usize,
        /// Configured page size in bytes.
        page: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Hypernodes { got } => {
                write!(
                    f,
                    "the simulator supports 1..=128 hypernodes (SPP-1000 hardware: 16), got {got}"
                )
            }
            ConfigError::NotPowerOfTwo { field, got } => {
                write!(f, "{field} must be a power of two, got {got}")
            }
            ConfigError::Zero { field } => write!(f, "{field} must be nonzero"),
            ConfigError::LineExceedsPage { line, page } => {
                write!(f, "line size {line} B exceeds the {page} B page")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A bad request made to a valid simulated machine, runtime, or PVM
/// session — or a fault-injection retry budget exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The machine configuration itself was invalid.
    Config(ConfigError),
    /// An allocation of zero bytes.
    ZeroLengthAlloc,
    /// A block-shared allocation whose block is not a whole number of
    /// pages.
    BadBlockSize {
        /// Page size in bytes.
        page: u64,
        /// The rejected block size.
        got: usize,
    },
    /// An address outside every simulated region.
    UnmappedAddress {
        /// The offending address.
        addr: u64,
    },
    /// A team of zero threads.
    EmptyTeam,
    /// More threads than the machine has CPUs.
    TeamTooLarge {
        /// Requested thread count.
        threads: usize,
        /// CPUs available.
        cpus: usize,
    },
    /// Uniform placement ran out of CPU slots on a hypernode.
    PlacementOverflow {
        /// Requested thread count.
        threads: usize,
        /// The node that overflowed.
        node: usize,
    },
    /// An explicit placement list of the wrong length.
    PlacementLengthMismatch {
        /// Team size requested.
        threads: usize,
        /// Length of the CPU list supplied.
        cpus: usize,
    },
    /// A placement named a CPU the machine does not have.
    CpuOutOfRange {
        /// The offending CPU id.
        cpu: u16,
        /// CPUs available.
        cpus: usize,
    },
    /// A placement named the same CPU twice.
    CpuReused {
        /// The repeated CPU id.
        cpu: u16,
    },
    /// A PVM session with no tasks.
    NoTasks,
    /// A PVM task index outside the session.
    TaskOutOfRange {
        /// The offending task index.
        task: usize,
        /// Tasks in the session.
        tasks: usize,
    },
    /// A PVM task sending a message to itself.
    SelfSend {
        /// The offending task.
        task: usize,
    },
    /// A butterfly collective over a non-power-of-two task count.
    NotPowerOfTwoTasks {
        /// Tasks in the session.
        tasks: usize,
    },
    /// A message send exhausted its retry budget under fault injection.
    MessageTimeout {
        /// Sending task.
        from: usize,
        /// Receiving task.
        to: usize,
        /// Message tag.
        tag: u32,
        /// Send attempts made (including the first).
        attempts: u32,
    },
    /// A thread spawn exhausted its retry budget under fault injection.
    SpawnFailed {
        /// The CPU the spawn targeted.
        cpu: u16,
        /// Spawn attempts made (including the first).
        attempts: u32,
    },
    /// A checkpoint byte stream that is malformed or truncated.
    SnapshotCorrupt {
        /// What was wrong with the stream.
        detail: String,
    },
    /// A checkpoint restored against a machine configuration or fault
    /// plan that does not match the one it was captured under.
    SnapshotMismatch {
        /// What disagreed.
        detail: String,
    },
    /// A barrier simulated with no participants at all.
    EmptyBarrier,
    /// A barrier simulated with a participant count different from
    /// the team size it was built for.
    BarrierParticipants {
        /// The team size the barrier expects.
        expected: usize,
        /// Participants actually supplied.
        got: usize,
    },
    /// A thread entered a critical section it already holds (gates do
    /// not nest on themselves; on real hardware this deadlocks).
    GateReentered {
        /// Gate semaphore address (identity of the critical section).
        gate: u64,
        /// The re-entering thread.
        tid: usize,
    },
    /// A transient coherence fault persisted through the machine's
    /// entire scrub-and-retry budget. The access never returns wrong
    /// data — the caller escalates (checkpoint rollback-and-replay,
    /// or abort).
    RecoveryExhausted {
        /// The CPU whose access hit the unrecoverable transient.
        cpu: u16,
        /// The corrupted cache line index.
        line: u64,
        /// Scrub attempts spent before giving up.
        attempts: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => e.fmt(f),
            SimError::ZeroLengthAlloc => write!(f, "zero-length allocation"),
            SimError::BadBlockSize { page, got } => write!(
                f,
                "block size must be a positive multiple of the {page} B page, got {got}"
            ),
            SimError::UnmappedAddress { addr } => {
                write!(f, "address {addr:#x} not in any simulated region")
            }
            SimError::EmptyTeam => write!(f, "a team needs at least one thread"),
            SimError::TeamTooLarge { threads, cpus } => {
                write!(f, "team of {threads} exceeds {cpus} CPUs")
            }
            SimError::PlacementOverflow { threads, node } => write!(
                f,
                "uniform placement of {threads} threads overflows node {node}"
            ),
            SimError::PlacementLengthMismatch { threads, cpus } => write!(
                f,
                "explicit placement length mismatch: {cpus} CPUs for a team of {threads}"
            ),
            SimError::CpuOutOfRange { cpu, cpus } => {
                write!(f, "cpu {cpu} out of range (machine has {cpus} CPUs)")
            }
            SimError::CpuReused { cpu } => write!(f, "cpu {cpu} used twice"),
            SimError::NoTasks => write!(f, "PVM needs at least one task"),
            SimError::TaskOutOfRange { task, tasks } => {
                write!(f, "task {task} out of range (session has {tasks} tasks)")
            }
            SimError::SelfSend { task } => write!(f, "task {task} sending to itself"),
            SimError::NotPowerOfTwoTasks { tasks } => {
                write!(f, "butterfly needs a power-of-two task count, got {tasks}")
            }
            SimError::MessageTimeout {
                from,
                to,
                tag,
                attempts,
            } => write!(
                f,
                "message from task {from} to task {to} (tag {tag}) timed out after {attempts} attempts"
            ),
            SimError::SpawnFailed { cpu, attempts } => {
                write!(f, "thread spawn on cpu {cpu} failed after {attempts} attempts")
            }
            SimError::SnapshotCorrupt { detail } => write!(f, "snapshot corrupt: {detail}"),
            SimError::SnapshotMismatch { detail } => write!(f, "snapshot mismatch: {detail}"),
            SimError::EmptyBarrier => write!(f, "barrier with no participants"),
            SimError::BarrierParticipants { expected, got } => write!(
                f,
                "barrier expects {expected} participants (the team size), got {got}"
            ),
            SimError::GateReentered { gate, tid } => {
                write!(f, "gate {gate:#x} re-entered by thread {tid} (self-deadlock)")
            }
            SimError::RecoveryExhausted {
                cpu,
                line,
                attempts,
            } => write!(
                f,
                "transient coherence fault on line {line:#x} (cpu {cpu}) persisted \
                 through {attempts} scrub attempts; escalate to checkpoint rollback"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_historical_panic_substrings() {
        // The `try_*` wrappers panic with these Displays; the repo's
        // `#[should_panic(expected = ...)]` tests match substrings of
        // the original assert messages, which must therefore survive.
        assert!(ConfigError::Hypernodes { got: 129 }
            .to_string()
            .contains("1..=128"));
        assert!(SimError::EmptyTeam
            .to_string()
            .contains("a team needs at least one thread"));
        assert!(SimError::TeamTooLarge {
            threads: 17,
            cpus: 16
        }
        .to_string()
        .contains("exceeds"));
        assert!(SimError::CpuReused { cpu: 3 }
            .to_string()
            .contains("used twice"));
        assert!(SimError::SelfSend { task: 0 }
            .to_string()
            .contains("sending to itself"));
        assert!(SimError::NotPowerOfTwoTasks { tasks: 3 }
            .to_string()
            .contains("power-of-two"));
        assert!(SimError::ZeroLengthAlloc
            .to_string()
            .contains("zero-length allocation"));
        assert!(SimError::BadBlockSize {
            page: 4096,
            got: 100
        }
        .to_string()
        .contains("multiple of"));
        assert!(SimError::UnmappedAddress { addr: 0x10 }
            .to_string()
            .contains("not in any simulated region"));
        assert!(SimError::NoTasks
            .to_string()
            .contains("PVM needs at least one task"));
        // The barrier's historical `assert!` message, verbatim.
        assert_eq!(
            SimError::EmptyBarrier.to_string(),
            "barrier with no participants"
        );
        assert!(SimError::BarrierParticipants {
            expected: 8,
            got: 3
        }
        .to_string()
        .contains("expects 8 participants"));
        assert!(SimError::GateReentered { gate: 0x40, tid: 2 }
            .to_string()
            .contains("re-entered"));
        let s = SimError::RecoveryExhausted {
            cpu: 3,
            line: 0x40,
            attempts: 8,
        }
        .to_string();
        assert!(
            s.contains("persisted") && s.contains("8 scrub attempts"),
            "{s}"
        );
    }

    #[test]
    fn config_error_converts_into_sim_error() {
        let e: SimError = ConfigError::Zero {
            field: "line_bytes",
        }
        .into();
        assert_eq!(
            e,
            SimError::Config(ConfigError::Zero {
                field: "line_bytes"
            })
        );
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
