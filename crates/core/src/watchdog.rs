//! Simulation watchdog: progress monitoring by *simulated-cycle*
//! deadlines.
//!
//! The simulator is single-threaded and deterministic, so a "hang" is
//! never a host-level deadlock — it is a protocol-level stall the
//! model would faithfully reproduce forever: a barrier some
//! participant can no longer reach (its CPU died), a receive whose
//! matching send was dropped past the retry budget, or a retry loop
//! that can never succeed. The watchdog turns those into structured
//! diagnostics instead of wrong numbers or non-terminating sweeps.
//!
//! A [`Watchdog`] holds a deadline in simulated cycles. The runtime
//! layers (barrier, fork/join, PVM) offer `*_watched` variants of
//! their blocking operations that consult it and return a
//! [`WatchdogReport`] — per-CPU clocks, the barrier arrival bitmap,
//! in-flight PVM sequence numbers — when progress stalls past the
//! deadline. The plain variants keep their historical behavior.

use crate::latency::{cycles_to_us, Cycles};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// What kind of progress stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// A barrier some participant will never arrive at (dead CPU) or
    /// whose arrival spread exceeded the deadline.
    Barrier,
    /// A receive with no matching in-flight message, or whose message
    /// arrives past the deadline.
    Receive,
    /// A retry loop (spawn, send) that exhausted its budget or can
    /// never succeed under the installed fault plan.
    RetryLoop,
}

impl StallKind {
    /// Short stable label (`"barrier"`, `"receive"`, `"retry-loop"`).
    pub fn label(&self) -> &'static str {
        match self {
            StallKind::Barrier => "barrier",
            StallKind::Receive => "receive",
            StallKind::RetryLoop => "retry-loop",
        }
    }
}

/// A progress deadline in simulated cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    deadline: Cycles,
}

impl Watchdog {
    /// A watchdog that trips when an operation's observed simulated
    /// time exceeds `deadline` cycles.
    pub fn new(deadline: Cycles) -> Self {
        Watchdog { deadline }
    }

    /// The configured deadline in cycles.
    pub fn deadline(&self) -> Cycles {
        self.deadline
    }

    /// True if `observed` simulated cycles exceed the deadline.
    pub fn expired(&self, observed: Cycles) -> bool {
        observed > self.deadline
    }

    /// Start a diagnostic report for a stall of `kind` observed at
    /// `observed` simulated cycles.
    pub fn trip(
        &self,
        kind: StallKind,
        observed: Cycles,
        detail: impl Into<String>,
    ) -> WatchdogReport {
        WatchdogReport {
            kind,
            deadline: self.deadline,
            observed,
            cpu_clocks: Vec::new(),
            arrival_bitmap: None,
            in_flight: Vec::new(),
            detail: detail.into(),
        }
    }
}

/// Structured diagnostic dump produced when a watchdog trips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogReport {
    /// What stalled.
    pub kind: StallKind,
    /// The deadline that was exceeded, in simulated cycles.
    pub deadline: Cycles,
    /// The observed simulated time (or spread) that exceeded it.
    pub observed: Cycles,
    /// Per-CPU simulated clocks at trip time (`(cpu, cycles)`).
    pub cpu_clocks: Vec<(u16, Cycles)>,
    /// For barrier stalls: bit `i` set means participant `i` arrived.
    pub arrival_bitmap: Option<u64>,
    /// For receive stalls: in-flight messages as
    /// `(from_task, tag, seq)`.
    pub in_flight: Vec<(usize, u32, u64)>,
    /// Human-readable specifics.
    pub detail: String,
}

impl WatchdogReport {
    /// Attach per-CPU clocks to the report (builder style).
    pub fn with_cpu_clocks(mut self, clocks: Vec<(u16, Cycles)>) -> Self {
        self.cpu_clocks = clocks;
        self
    }

    /// Attach a barrier arrival bitmap to the report.
    pub fn with_arrival_bitmap(mut self, bitmap: u64) -> Self {
        self.arrival_bitmap = Some(bitmap);
        self
    }

    /// Attach the in-flight message set to the report.
    pub fn with_in_flight(mut self, msgs: Vec<(usize, u32, u64)>) -> Self {
        self.in_flight = msgs;
        self
    }
}

impl fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "watchdog trip [{}]: {} (observed {} cycles ≈ {:.1} µs, deadline {})",
            self.kind.label(),
            self.detail,
            self.observed,
            cycles_to_us(self.observed),
            self.deadline
        )?;
        if let Some(bm) = self.arrival_bitmap {
            writeln!(f, "  arrivals: {bm:#018b}")?;
        }
        if !self.cpu_clocks.is_empty() {
            write!(f, "  cpu clocks:")?;
            for (cpu, clk) in &self.cpu_clocks {
                write!(f, " {cpu}:{clk}")?;
            }
            writeln!(f)?;
        }
        if !self.in_flight.is_empty() {
            write!(f, "  in-flight:")?;
            for (from, tag, seq) in &self.in_flight {
                write!(f, " (task {from}, tag {tag}, seq {seq})")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl std::error::Error for WatchdogReport {}

/// Render a caught panic payload (the `&str`/`String` forms `panic!`
/// and `assert!` produce; anything else gets a generic label).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Exponential retry backoff: `base << retry`, with the exponent
/// clamped at 16 and the product saturating, so pathological retry
/// counts can neither overflow nor wrap. `retry` is zero-based: the
/// wait *after* the first failed attempt is `retry_backoff(base, 0) ==
/// base`, after the second `2 * base`, and so on. Shared by every
/// retry loop in the workspace (host-level scenario retries in
/// milliseconds, simulated spawn retries in cycles) so the doubling
/// discipline cannot drift between layers.
pub fn retry_backoff(base: u64, retry: u32) -> u64 {
    base.saturating_mul(1u64 << retry.min(16))
}

/// Cloneable cooperative-cancellation flag shared between a
/// [`HostSupervisor`] and the work it supervises. Long step loops
/// poll [`CancelToken::is_cancelled`] between steps and bail out
/// promptly once the supervisor gives up on them; code that never
/// polls is simply left detached after a timeout.
///
/// The token also carries the *watchdog clock made host-visible*: the
/// supervised simulation publishes its simulated-cycle clock with
/// [`CancelToken::note_progress`] at the same loop boundaries where it
/// polls for cancellation, and telemetry on the supervisor side reads
/// it back with [`CancelToken::progress`]. A timed-out cell therefore
/// reports *where* (in simulated time) it wedged, not just that it
/// did. The clock is advisory — it never influences simulation
/// results.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    clock: Arc<AtomicU64>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation (idempotent).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Publish the simulation's current clock for host-side telemetry.
    pub fn note_progress(&self, cycles: Cycles) {
        self.clock.store(cycles, Ordering::Relaxed);
    }

    /// The last simulated clock published via [`note_progress`]
    /// (zero if the work never reported).
    ///
    /// [`note_progress`]: CancelToken::note_progress
    pub fn progress(&self) -> Cycles {
        self.clock.load(Ordering::Relaxed)
    }
}

/// How a [`HostSupervisor`]-supervised unit of work ended.
#[derive(Debug)]
pub enum Supervised<T> {
    /// The work returned normally.
    Finished(T),
    /// The work panicked; the payload is rendered via
    /// [`panic_message`].
    Panicked(String),
    /// The work neither returned nor panicked within the timeout. The
    /// cancel token was set and the worker thread left detached — a
    /// cooperative worker exits soon after; a truly hung one keeps its
    /// thread but can no longer affect the supervisor.
    TimedOut {
        /// How long the supervisor waited.
        waited: Duration,
    },
}

impl<T> Supervised<T> {
    /// Short stable label (`"finished"`, `"panicked"`, `"timed-out"`).
    pub fn label(&self) -> &'static str {
        match self {
            Supervised::Finished(_) => "finished",
            Supervised::Panicked(_) => "panicked",
            Supervised::TimedOut { .. } => "timed-out",
        }
    }
}

/// The simulated-cycle [`Watchdog`] promoted to the host level: a
/// per-scenario *wall-clock* supervisor with a configurable timeout.
///
/// Where [`Watchdog`] turns protocol-level stalls inside one
/// deterministic simulation into structured reports, `HostSupervisor`
/// protects a *fleet* of simulations from each other: each scenario
/// runs on its own crash-isolated host thread (`catch_unwind`), and a
/// scenario that panics or wedges is contained, classified, and
/// reported without taking the fleet down.
#[derive(Debug, Clone, Copy)]
pub struct HostSupervisor {
    timeout: Duration,
}

impl HostSupervisor {
    /// A supervisor that gives up on work after `timeout` of wall
    /// clock.
    pub fn new(timeout: Duration) -> Self {
        HostSupervisor { timeout }
    }

    /// The configured wall-clock timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Run `f` on a dedicated thread and wait up to the timeout for it
    /// to finish. Panics are caught and rendered; on timeout the
    /// `cancel` token is set and the thread is detached (see
    /// [`Supervised::TimedOut`]).
    pub fn supervise<T: Send + 'static>(
        &self,
        cancel: &CancelToken,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> Supervised<T> {
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            // The receiver may have timed out and gone away; a failed
            // send just drops the late result.
            let _ = tx.send(out.map_err(panic_message));
        });
        let started = Instant::now();
        match rx.recv_timeout(self.timeout) {
            Ok(Ok(v)) => {
                let _ = handle.join();
                Supervised::Finished(v)
            }
            Ok(Err(msg)) => {
                let _ = handle.join();
                Supervised::Panicked(msg)
            }
            Err(_) => {
                cancel.cancel();
                Supervised::TimedOut {
                    waited: started.elapsed(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry_is_strict() {
        let wd = Watchdog::new(1_000);
        assert!(!wd.expired(1_000));
        assert!(wd.expired(1_001));
    }

    #[test]
    fn report_display_is_structured() {
        let wd = Watchdog::new(500);
        let rep = wd
            .trip(StallKind::Barrier, 900, "cpu 3 never arrived")
            .with_arrival_bitmap(0b0111)
            .with_cpu_clocks(vec![(0, 100), (1, 120), (2, 90), (3, 0)])
            .with_in_flight(vec![(2, 7, 41)]);
        let s = rep.to_string();
        assert!(s.contains("barrier"), "{s}");
        assert!(s.contains("cpu 3 never arrived"), "{s}");
        assert!(s.contains("0b0000000000000111"), "{s}");
        assert!(s.contains("3:0"), "{s}");
        assert!(s.contains("seq 41"), "{s}");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StallKind::Barrier.label(), "barrier");
        assert_eq!(StallKind::Receive.label(), "receive");
        assert_eq!(StallKind::RetryLoop.label(), "retry-loop");
    }

    #[test]
    fn supervisor_passes_results_through() {
        let sup = HostSupervisor::new(Duration::from_secs(5));
        match sup.supervise(&CancelToken::new(), || 41 + 1) {
            Supervised::Finished(v) => assert_eq!(v, 42),
            other => panic!("expected Finished, got {}", other.label()),
        }
    }

    #[test]
    fn supervisor_contains_panics() {
        let sup = HostSupervisor::new(Duration::from_secs(5));
        match sup.supervise::<()>(&CancelToken::new(), || panic!("boom in the cell")) {
            Supervised::Panicked(msg) => assert!(msg.contains("boom in the cell"), "{msg}"),
            other => panic!("expected Panicked, got {}", other.label()),
        }
    }

    #[test]
    fn supervisor_times_out_and_cancels_cooperative_hangs() {
        let sup = HostSupervisor::new(Duration::from_millis(50));
        let cancel = CancelToken::new();
        let seen = cancel.clone();
        let out = sup.supervise(&cancel, move || {
            // A cooperative hang: spins until cancelled.
            while !seen.is_cancelled() {
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        match out {
            Supervised::TimedOut { waited } => {
                assert!(waited >= Duration::from_millis(50));
                assert!(cancel.is_cancelled());
            }
            other => panic!("expected TimedOut, got {}", other.label()),
        }
    }

    #[test]
    fn retry_backoff_doubles_then_saturates() {
        assert_eq!(retry_backoff(100, 0), 100);
        assert_eq!(retry_backoff(100, 1), 200);
        assert_eq!(retry_backoff(100, 3), 800);
        // Exponent clamps at 16...
        assert_eq!(retry_backoff(100, 40), 100 << 16);
        // ...and the product saturates instead of wrapping.
        assert_eq!(retry_backoff(u64::MAX / 2, 4), u64::MAX);
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn progress_clock_is_shared_and_starts_at_zero() {
        let t = CancelToken::new();
        let u = t.clone();
        assert_eq!(u.progress(), 0);
        t.note_progress(123_456);
        assert_eq!(u.progress(), 123_456);
    }
}
