//! Simulation watchdog: progress monitoring by *simulated-cycle*
//! deadlines.
//!
//! The simulator is single-threaded and deterministic, so a "hang" is
//! never a host-level deadlock — it is a protocol-level stall the
//! model would faithfully reproduce forever: a barrier some
//! participant can no longer reach (its CPU died), a receive whose
//! matching send was dropped past the retry budget, or a retry loop
//! that can never succeed. The watchdog turns those into structured
//! diagnostics instead of wrong numbers or non-terminating sweeps.
//!
//! A [`Watchdog`] holds a deadline in simulated cycles. The runtime
//! layers (barrier, fork/join, PVM) offer `*_watched` variants of
//! their blocking operations that consult it and return a
//! [`WatchdogReport`] — per-CPU clocks, the barrier arrival bitmap,
//! in-flight PVM sequence numbers — when progress stalls past the
//! deadline. The plain variants keep their historical behavior.

use crate::latency::{cycles_to_us, Cycles};
use std::fmt;

/// What kind of progress stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// A barrier some participant will never arrive at (dead CPU) or
    /// whose arrival spread exceeded the deadline.
    Barrier,
    /// A receive with no matching in-flight message, or whose message
    /// arrives past the deadline.
    Receive,
    /// A retry loop (spawn, send) that exhausted its budget or can
    /// never succeed under the installed fault plan.
    RetryLoop,
}

impl StallKind {
    /// Short stable label (`"barrier"`, `"receive"`, `"retry-loop"`).
    pub fn label(&self) -> &'static str {
        match self {
            StallKind::Barrier => "barrier",
            StallKind::Receive => "receive",
            StallKind::RetryLoop => "retry-loop",
        }
    }
}

/// A progress deadline in simulated cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    deadline: Cycles,
}

impl Watchdog {
    /// A watchdog that trips when an operation's observed simulated
    /// time exceeds `deadline` cycles.
    pub fn new(deadline: Cycles) -> Self {
        Watchdog { deadline }
    }

    /// The configured deadline in cycles.
    pub fn deadline(&self) -> Cycles {
        self.deadline
    }

    /// True if `observed` simulated cycles exceed the deadline.
    pub fn expired(&self, observed: Cycles) -> bool {
        observed > self.deadline
    }

    /// Start a diagnostic report for a stall of `kind` observed at
    /// `observed` simulated cycles.
    pub fn trip(
        &self,
        kind: StallKind,
        observed: Cycles,
        detail: impl Into<String>,
    ) -> WatchdogReport {
        WatchdogReport {
            kind,
            deadline: self.deadline,
            observed,
            cpu_clocks: Vec::new(),
            arrival_bitmap: None,
            in_flight: Vec::new(),
            detail: detail.into(),
        }
    }
}

/// Structured diagnostic dump produced when a watchdog trips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogReport {
    /// What stalled.
    pub kind: StallKind,
    /// The deadline that was exceeded, in simulated cycles.
    pub deadline: Cycles,
    /// The observed simulated time (or spread) that exceeded it.
    pub observed: Cycles,
    /// Per-CPU simulated clocks at trip time (`(cpu, cycles)`).
    pub cpu_clocks: Vec<(u16, Cycles)>,
    /// For barrier stalls: bit `i` set means participant `i` arrived.
    pub arrival_bitmap: Option<u64>,
    /// For receive stalls: in-flight messages as
    /// `(from_task, tag, seq)`.
    pub in_flight: Vec<(usize, u32, u64)>,
    /// Human-readable specifics.
    pub detail: String,
}

impl WatchdogReport {
    /// Attach per-CPU clocks to the report (builder style).
    pub fn with_cpu_clocks(mut self, clocks: Vec<(u16, Cycles)>) -> Self {
        self.cpu_clocks = clocks;
        self
    }

    /// Attach a barrier arrival bitmap to the report.
    pub fn with_arrival_bitmap(mut self, bitmap: u64) -> Self {
        self.arrival_bitmap = Some(bitmap);
        self
    }

    /// Attach the in-flight message set to the report.
    pub fn with_in_flight(mut self, msgs: Vec<(usize, u32, u64)>) -> Self {
        self.in_flight = msgs;
        self
    }
}

impl fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "watchdog trip [{}]: {} (observed {} cycles ≈ {:.1} µs, deadline {})",
            self.kind.label(),
            self.detail,
            self.observed,
            cycles_to_us(self.observed),
            self.deadline
        )?;
        if let Some(bm) = self.arrival_bitmap {
            writeln!(f, "  arrivals: {bm:#018b}")?;
        }
        if !self.cpu_clocks.is_empty() {
            write!(f, "  cpu clocks:")?;
            for (cpu, clk) in &self.cpu_clocks {
                write!(f, " {cpu}:{clk}")?;
            }
            writeln!(f)?;
        }
        if !self.in_flight.is_empty() {
            write!(f, "  in-flight:")?;
            for (from, tag, seq) in &self.in_flight {
                write!(f, " (task {from}, tag {tag}, seq {seq})")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl std::error::Error for WatchdogReport {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry_is_strict() {
        let wd = Watchdog::new(1_000);
        assert!(!wd.expired(1_000));
        assert!(wd.expired(1_001));
    }

    #[test]
    fn report_display_is_structured() {
        let wd = Watchdog::new(500);
        let rep = wd
            .trip(StallKind::Barrier, 900, "cpu 3 never arrived")
            .with_arrival_bitmap(0b0111)
            .with_cpu_clocks(vec![(0, 100), (1, 120), (2, 90), (3, 0)])
            .with_in_flight(vec![(2, 7, 41)]);
        let s = rep.to_string();
        assert!(s.contains("barrier"), "{s}");
        assert!(s.contains("cpu 3 never arrived"), "{s}");
        assert!(s.contains("0b0000000000000111"), "{s}");
        assert!(s.contains("3:0"), "{s}");
        assert!(s.contains("seq 41"), "{s}");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StallKind::Barrier.label(), "barrier");
        assert_eq!(StallKind::Receive.label(), "receive");
        assert_eq!(StallKind::RetryLoop.label(), "retry-loop");
    }
}
