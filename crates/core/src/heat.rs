//! `spp-insight`: opt-in cycle attribution and contention heatmaps.
//!
//! The paper's analysis method is *attribution*: every figure's shape
//! is explained by decomposing latency into the SPP-1000's service
//! levels — CPU cache hit, hypernode-local memory, the global cache
//! buffer, an SCI ring transaction, an intra-node cache-to-cache
//! transfer — and blaming specific structures for the remote traffic.
//! [`MemStats`] reproduces the *totals*; this module reproduces the
//! *blame*: an opt-in [`HeatMap`] mounted on the
//! [`crate::Machine`] accumulates, per cache line, the cycles
//! and protocol events of every access, classified by the service
//! level that priced it. Joined with the named-region registry on
//! [`crate::AddressSpace`] (apps label their arrays at alloc time via
//! `SimArray::set_label`), the heatmap answers "which array, which
//! lines, which service level" for every simulated cycle.
//!
//! ## Partition invariant
//!
//! The heatmap is a *decomposition*, not an estimate: from the moment
//! it is mounted, every cycle the machine clock advances is attributed
//! to exactly one (line, service level) cell, and every attributed
//! protocol counter matches the global [`MemStats`] delta it
//! decomposes. [`HeatMap::partition_check`] (surfaced as
//! `Machine::heat_partition_check`) enforces this bit-exactly,
//! alongside the existing [`MemStats::miss_partition_check`].
//!
//! ## Zero overhead when off
//!
//! Same contract as [`crate::trace`] and [`crate::race`]: with no
//! heatmap mounted every access site pays a single `Option`
//! discriminant test, and mounting one never changes simulated cycles
//! or [`MemStats`] — attribution-on runs are bit-identical to
//! attribution-off runs (the machine's unit tests hold it to that).

use crate::latency::Cycles;
use crate::linemap::LineMap;
use crate::machine::Machine;
use crate::stats::MemStats;

/// Which level of the memory hierarchy serviced an access. The six
/// levels partition all priced traffic: every access is classified by
/// the *furthest* service it required (an SCI fetch that also missed
/// locally is `Sci`, not `Local`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServiceLevel {
    /// Serviced by the issuing CPU's cache.
    Hit,
    /// Serviced by memory within the hypernode.
    Local,
    /// Serviced by the hypernode's global cache buffer.
    Gcb,
    /// Required an SCI ring transaction.
    Sci,
    /// Cache-to-cache transfer within the hypernode.
    C2c,
    /// An uncached (semaphore) operation; bypasses all caches.
    Uncached,
}

/// Number of [`ServiceLevel`] variants.
pub const N_SERVICE_LEVELS: usize = 6;

impl ServiceLevel {
    /// All levels, in [`ServiceLevel::index`] order.
    pub const ALL: [ServiceLevel; N_SERVICE_LEVELS] = [
        ServiceLevel::Hit,
        ServiceLevel::Local,
        ServiceLevel::Gcb,
        ServiceLevel::Sci,
        ServiceLevel::C2c,
        ServiceLevel::Uncached,
    ];

    /// Dense index into a `[_; N_SERVICE_LEVELS]` array.
    pub fn index(self) -> usize {
        match self {
            ServiceLevel::Hit => 0,
            ServiceLevel::Local => 1,
            ServiceLevel::Gcb => 2,
            ServiceLevel::Sci => 3,
            ServiceLevel::C2c => 4,
            ServiceLevel::Uncached => 5,
        }
    }

    /// Stable short label (exporters and reports).
    pub fn label(self) -> &'static str {
        match self {
            ServiceLevel::Hit => "hit",
            ServiceLevel::Local => "local",
            ServiceLevel::Gcb => "gcb",
            ServiceLevel::Sci => "sci",
            ServiceLevel::C2c => "c2c",
            ServiceLevel::Uncached => "uncached",
        }
    }

    /// Classify one access from its bracketed [`MemStats`] delta: the
    /// furthest service level whose counter moved, or [`Hit`] when
    /// none did.
    ///
    /// [`Hit`]: ServiceLevel::Hit
    pub fn of_delta(delta: &MemStats) -> ServiceLevel {
        if delta.uncached_ops > 0 {
            ServiceLevel::Uncached
        } else if delta.c2c_transfers > 0 {
            ServiceLevel::C2c
        } else if delta.sci_fetches > 0 {
            ServiceLevel::Sci
        } else if delta.gcb_hits > 0 {
            ServiceLevel::Gcb
        } else if delta.local_misses > 0 {
            ServiceLevel::Local
        } else {
            ServiceLevel::Hit
        }
    }

    /// The dominant *miss* level of a bracketed delta: the miss kind
    /// with the highest count (`Hit` when there were no misses). Ties
    /// go to the nearer level. Used by the barrier-interval critical
    /// path analysis to name a straggler's bottleneck.
    pub fn dominant_miss(delta: &MemStats) -> ServiceLevel {
        let kinds = [
            (ServiceLevel::Local, delta.local_misses),
            (ServiceLevel::Gcb, delta.gcb_hits),
            (ServiceLevel::Sci, delta.sci_fetches),
            (ServiceLevel::C2c, delta.c2c_transfers),
        ];
        let mut best = (ServiceLevel::Hit, 0u64);
        for (lvl, n) in kinds {
            if n > best.1 {
                best = (lvl, n);
            }
        }
        best.0
    }
}

/// Per-cache-line attribution cell: cycles by service level plus the
/// protocol-event counters charged to the line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeatCell {
    /// Cycles attributed to the line, by [`ServiceLevel::index`].
    pub cycles: [Cycles; N_SERVICE_LEVELS],
    /// Priced accesses (cached reads/writes plus uncached ops).
    pub accesses: u64,
    /// Misses serviced by hypernode-local memory.
    pub local_misses: u64,
    /// Misses serviced by the global cache buffer.
    pub gcb_hits: u64,
    /// Misses requiring an SCI ring transaction.
    pub sci_fetches: u64,
    /// Intra-node cache-to-cache transfers.
    pub c2c_transfers: u64,
    /// Write upgrades (Shared -> Modified).
    pub upgrades: u64,
    /// Remote hypernodes invalidated via SCI list walks triggered by
    /// accesses to this line.
    pub inval_walks: u64,
    /// Uncached (semaphore) operations.
    pub uncached_ops: u64,
}

impl HeatCell {
    /// Total cycles attributed to the line across all service levels.
    pub fn total_cycles(&self) -> Cycles {
        self.cycles.iter().sum()
    }

    /// The service level that consumed the most cycles on this line
    /// (ties go to the nearer level).
    pub fn dominant_level(&self) -> ServiceLevel {
        let mut best = ServiceLevel::Hit;
        let mut best_c = self.cycles[0];
        for lvl in ServiceLevel::ALL {
            if self.cycles[lvl.index()] > best_c {
                best_c = self.cycles[lvl.index()];
                best = lvl;
            }
        }
        best
    }

    fn merge(&mut self, other: &HeatCell) {
        for (a, b) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *a += b;
        }
        self.accesses += other.accesses;
        self.local_misses += other.local_misses;
        self.gcb_hits += other.gcb_hits;
        self.sci_fetches += other.sci_fetches;
        self.c2c_transfers += other.c2c_transfers;
        self.upgrades += other.upgrades;
        self.inval_walks += other.inval_walks;
        self.uncached_ops += other.uncached_ops;
    }
}

/// The cycle-attribution accumulator, keyed by cache line. Mounted
/// with `Machine::with_heatmap`; see the [module docs](self) for the
/// partition invariant and the zero-overhead contract.
#[derive(Debug, Clone)]
pub struct HeatMap {
    /// Machine clock at mount time: the attribution origin.
    start_clock: Cycles,
    /// Global counters at mount time.
    start_stats: MemStats,
    cells: LineMap<HeatCell>,
}

impl HeatMap {
    /// A heatmap whose attribution origin is the given clock/stats
    /// snapshot (the machine's state at mount time).
    pub fn new(start_clock: Cycles, start_stats: MemStats) -> Self {
        HeatMap {
            start_clock,
            start_stats,
            cells: LineMap::new(),
        }
    }

    /// Machine clock at mount time.
    pub fn start_clock(&self) -> Cycles {
        self.start_clock
    }

    /// Attribute one priced access: `cost` cycles on `line`, with the
    /// access's bracketed [`MemStats`] delta deciding the service
    /// level and the counter charges.
    pub fn note(&mut self, line: u64, cost: Cycles, delta: &MemStats) {
        let level = ServiceLevel::of_delta(delta);
        let cell = self.cells.entry_or_insert_with(line, HeatCell::default);
        cell.cycles[level.index()] += cost;
        cell.accesses += delta.reads + delta.writes + delta.uncached_ops;
        cell.local_misses += delta.local_misses;
        cell.gcb_hits += delta.gcb_hits;
        cell.sci_fetches += delta.sci_fetches;
        cell.c2c_transfers += delta.c2c_transfers;
        cell.upgrades += delta.upgrades;
        cell.inval_walks += delta.sci_invalidations;
        cell.uncached_ops += delta.uncached_ops;
    }

    /// Number of distinct lines attributed so far.
    pub fn touched_lines(&self) -> usize {
        self.cells.len()
    }

    /// Sum of every cell, as one aggregate cell.
    pub fn totals(&self) -> HeatCell {
        let mut t = HeatCell::default();
        for (_, c) in self.cells.iter() {
            t.merge(c);
        }
        t
    }

    /// The partition invariant: heatmap cycles sum exactly to the
    /// machine clock advance since mount, and every attributed counter
    /// sums exactly to the global [`MemStats`] delta it decomposes.
    /// `clock` and `stats` are the machine's *current* clock and
    /// global counters.
    pub fn partition_check(&self, clock: Cycles, stats: &MemStats) -> bool {
        let t = self.totals();
        let d = stats.since(&self.start_stats);
        t.total_cycles() == clock.saturating_sub(self.start_clock)
            && t.accesses == d.reads + d.writes + d.uncached_ops
            && t.local_misses == d.local_misses
            && t.gcb_hits == d.gcb_hits
            && t.sci_fetches == d.sci_fetches
            && t.c2c_transfers == d.c2c_transfers
            && t.upgrades == d.upgrades
            && t.inval_walks == d.sci_invalidations
            && t.uncached_ops == d.uncached_ops
    }

    /// The `n` hottest lines by attributed cycles, hottest first
    /// (ties broken by line index, so the order is deterministic).
    pub fn hottest(&self, n: usize) -> Vec<(u64, HeatCell)> {
        let mut all: Vec<(u64, HeatCell)> = self.cells.iter().map(|(l, c)| (l, *c)).collect();
        all.sort_by(|a, b| {
            b.1.total_cycles()
                .cmp(&a.1.total_cycles())
                .then(a.0.cmp(&b.0))
        });
        all.truncate(n);
        all
    }

    /// Every attributed line in ascending line order (deterministic
    /// full dump for exporters).
    pub fn lines(&self) -> Vec<(u64, HeatCell)> {
        let mut all: Vec<(u64, HeatCell)> = self.cells.iter().map(|(l, c)| (l, *c)).collect();
        all.sort_by_key(|(l, _)| *l);
        all
    }
}

/// One region's aggregate in a [`heat_by_region`] rollup.
#[derive(Debug, Clone)]
pub struct RegionHeat {
    /// The region's label (from `Machine::label_region` /
    /// `SimArray::set_label`), or `alloc#<index>` when unnamed.
    pub name: String,
    /// Base address of the region, for disambiguation.
    pub base: u64,
    /// Aggregate cell over the region's lines.
    pub cell: HeatCell,
    /// Lines of this region carrying a false-sharing warning from the
    /// race detector (empty when detection is off).
    pub false_shared_lines: u64,
}

/// Roll the heatmap up by named region, hottest region first. Lines
/// outside any region (there should be none) aggregate under `"?"`.
/// False-sharing flags are joined from the mounted race detector's
/// line-granularity warnings.
pub fn heat_by_region(m: &Machine) -> Vec<RegionHeat> {
    let Some(h) = m.heatmap() else {
        return Vec::new();
    };
    let line_shift = m.config().line_bytes.trailing_zeros();
    let warned = warned_lines(m);
    let space = m.address_space();
    // index into out, keyed by region index (+1; slot 0 = unmapped).
    let mut slots: Vec<Option<usize>> = vec![None; space.num_regions() + 1];
    let mut out: Vec<RegionHeat> = Vec::new();
    for (line, cell) in h.lines() {
        let addr = line << line_shift;
        let idx = space.region_index_of(addr).map(|i| i + 1).unwrap_or(0);
        let slot = match slots[idx] {
            Some(s) => s,
            None => {
                let name = if idx == 0 {
                    "?".to_string()
                } else {
                    space
                        .region_name_at(idx - 1)
                        .map(|n| n.to_string())
                        .unwrap_or_else(|| format!("alloc#{}", idx - 1))
                };
                let base = if idx == 0 {
                    0
                } else {
                    space.region_base_at(idx - 1)
                };
                out.push(RegionHeat {
                    name,
                    base,
                    cell: HeatCell::default(),
                    false_shared_lines: 0,
                });
                slots[idx] = Some(out.len() - 1);
                out.len() - 1
            }
        };
        out[slot].cell.merge(&cell);
        if warned.contains(&line) {
            out[slot].false_shared_lines += 1;
        }
    }
    out.sort_by(|a, b| {
        b.cell
            .total_cycles()
            .cmp(&a.cell.total_cycles())
            .then(a.base.cmp(&b.base))
    });
    out
}

/// Lines flagged with false-sharing warnings by the mounted race
/// detector (empty set when detection is off).
fn warned_lines(m: &Machine) -> std::collections::HashSet<u64> {
    m.race_report().warnings.iter().map(|w| w.line).collect()
}

/// Resolve a line to `region_name` (or `alloc#i`, or `?`).
fn line_region_name(m: &Machine, line: u64) -> String {
    let addr = line << m.config().line_bytes.trailing_zeros();
    let space = m.address_space();
    match space.region_index_of(addr) {
        Some(i) => space
            .region_name_at(i)
            .map(|n| n.to_string())
            .unwrap_or_else(|| format!("alloc#{i}")),
        None => "?".to_string(),
    }
}

/// Human-readable top-`n` hottest lines and regions report (the
/// `spp-top` of attribution). Deterministic for a deterministic run.
pub fn heat_report(m: &Machine, n: usize) -> String {
    let Some(h) = m.heatmap() else {
        return "heatmap: not mounted\n".to_string();
    };
    let warned = warned_lines(m);
    let mut out = String::new();
    let t = h.totals();
    out.push_str(&format!(
        "heat: {} lines attributed, {} cycles, partition {}\n",
        h.touched_lines(),
        t.total_cycles(),
        if m.heat_partition_check() {
            "ok"
        } else {
            "VIOLATED"
        }
    ));
    out.push_str("cycles by service level:");
    for lvl in ServiceLevel::ALL {
        out.push_str(&format!(" {}={}", lvl.label(), t.cycles[lvl.index()]));
    }
    out.push('\n');
    out.push_str(
        "line             region            cycles  dominant accesses    local      gcb      sci      c2c upgrades    walks\n",
    );
    for (line, cell) in h.hottest(n) {
        let fs = if warned.contains(&line) { " FS" } else { "" };
        out.push_str(&format!(
            "{:<16x} {:<16} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}{}\n",
            line,
            line_region_name(m, line),
            cell.total_cycles(),
            cell.dominant_level().label(),
            cell.accesses,
            cell.local_misses,
            cell.gcb_hits,
            cell.sci_fetches,
            cell.c2c_transfers,
            cell.upgrades,
            cell.inval_walks,
            fs,
        ));
    }
    out.push_str("regions by cycles:\n");
    for r in heat_by_region(m) {
        out.push_str(&format!(
            "  {:<20} cycles {:>10}  accesses {:>8}  dominant {}  false-shared-lines {}\n",
            r.name,
            r.cell.total_cycles(),
            r.cell.accesses,
            r.cell.dominant_level().label(),
            r.false_shared_lines,
        ));
    }
    out
}

fn cell_json(cell: &HeatCell) -> String {
    let mut out = String::from("{\"cycles\": {");
    for (i, lvl) in ServiceLevel::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "\"{}\": {}",
            lvl.label(),
            cell.cycles[lvl.index()]
        ));
    }
    out.push_str(&format!(
        "}}, \"accesses\": {}, \"local\": {}, \"gcb\": {}, \"sci\": {}, \"c2c\": {}, \
         \"upgrades\": {}, \"inval_walks\": {}, \"uncached\": {}, \"dominant\": \"{}\"",
        cell.accesses,
        cell.local_misses,
        cell.gcb_hits,
        cell.sci_fetches,
        cell.c2c_transfers,
        cell.upgrades,
        cell.inval_walks,
        cell.uncached_ops,
        cell.dominant_level().label(),
    ));
    out.push('}');
    out
}

/// Machine-readable attribution snapshot: clock, partition verdict,
/// service-level totals, the per-region rollup, and the `top` hottest
/// lines. Integers, strings and booleans only — no floats — so the
/// output is byte-stable and CI can `cmp` double runs directly.
pub fn insight_json(m: &Machine, top: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"clock\": {},\n", m.clock()));
    match m.heatmap() {
        None => {
            out.push_str("  \"heatmap\": false\n}\n");
            return out;
        }
        Some(h) => {
            let warned = warned_lines(m);
            out.push_str("  \"heatmap\": true,\n");
            out.push_str(&format!(
                "  \"attributed_cycles\": {},\n",
                h.totals().total_cycles()
            ));
            out.push_str(&format!(
                "  \"heat_partition_check\": {},\n",
                m.heat_partition_check()
            ));
            out.push_str(&format!("  \"touched_lines\": {},\n", h.touched_lines()));
            out.push_str(&format!("  \"totals\": {},\n", cell_json(&h.totals())));
            out.push_str("  \"regions\": [\n");
            let regions = heat_by_region(m);
            for (i, r) in regions.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"name\": \"{}\", \"false_shared_lines\": {}, \"heat\": {}}}{}\n",
                    crate::trace::json_escape(&r.name),
                    r.false_shared_lines,
                    cell_json(&r.cell),
                    if i + 1 < regions.len() { "," } else { "" }
                ));
            }
            out.push_str("  ],\n  \"top_lines\": [\n");
            let lines = h.hottest(top);
            for (i, (line, cell)) in lines.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"line\": {}, \"region\": \"{}\", \"false_sharing\": {}, \"heat\": {}}}{}\n",
                    line,
                    crate::trace::json_escape(&line_region_name(m, *line)),
                    warned.contains(line),
                    cell_json(cell),
                    if i + 1 < lines.len() { "," } else { "" }
                ));
            }
            out.push_str("  ]\n}\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_level_classification_prefers_the_furthest_level() {
        let mut d = MemStats {
            reads: 1,
            local_misses: 1,
            ..Default::default()
        };
        assert_eq!(ServiceLevel::of_delta(&d), ServiceLevel::Local);
        d.gcb_hits = 1;
        assert_eq!(ServiceLevel::of_delta(&d), ServiceLevel::Gcb);
        d.sci_fetches = 1;
        assert_eq!(ServiceLevel::of_delta(&d), ServiceLevel::Sci);
        d.c2c_transfers = 1;
        assert_eq!(ServiceLevel::of_delta(&d), ServiceLevel::C2c);
        d.uncached_ops = 1;
        assert_eq!(ServiceLevel::of_delta(&d), ServiceLevel::Uncached);
        assert_eq!(
            ServiceLevel::of_delta(&MemStats::default()),
            ServiceLevel::Hit
        );
    }

    #[test]
    fn dominant_miss_picks_the_largest_kind() {
        let d = MemStats {
            local_misses: 2,
            sci_fetches: 5,
            gcb_hits: 1,
            ..Default::default()
        };
        assert_eq!(ServiceLevel::dominant_miss(&d), ServiceLevel::Sci);
        assert_eq!(
            ServiceLevel::dominant_miss(&MemStats::default()),
            ServiceLevel::Hit
        );
    }

    #[test]
    fn note_accumulates_and_partition_checks() {
        let mut h = HeatMap::new(100, MemStats::default());
        let miss = MemStats {
            reads: 1,
            local_misses: 1,
            ..Default::default()
        };
        let hit = MemStats {
            reads: 1,
            hits: 1,
            ..Default::default()
        };
        h.note(7, 40, &miss);
        h.note(7, 1, &hit);
        h.note(9, 1, &hit);
        let global = MemStats {
            reads: 3,
            hits: 2,
            local_misses: 1,
            ..Default::default()
        };
        assert!(h.partition_check(142, &global));
        assert!(!h.partition_check(143, &global), "one cycle unattributed");
        let cell = h.hottest(1)[0];
        assert_eq!(cell.0, 7);
        assert_eq!(cell.1.total_cycles(), 41);
        assert_eq!(cell.1.dominant_level(), ServiceLevel::Local);
        assert_eq!(h.touched_lines(), 2);
    }

    #[test]
    fn hottest_order_is_deterministic_under_ties() {
        let mut h = HeatMap::new(0, MemStats::default());
        let hit = MemStats {
            reads: 1,
            hits: 1,
            ..Default::default()
        };
        for line in [42u64, 3, 17] {
            h.note(line, 5, &hit);
        }
        let order: Vec<u64> = h.hottest(3).iter().map(|(l, _)| *l).collect();
        assert_eq!(order, vec![3, 17, 42], "ties break by line index");
    }
}
