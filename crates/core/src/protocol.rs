//! Pluggable cache-coherence protocols behind one seam.
//!
//! [`Machine::read`] / [`Machine::write`] wrap every access in the
//! protocol-independent machinery — hard-fault triggering, access
//! counters, ring-stall/reroute injection, the clock, the per-access
//! checker and tracer — and dispatch the coherence decision itself
//! (hit classification, miss service, state transitions, pricing) to
//! the machine's selected [`ProtocolKind`]:
//!
//! * [`DashSci`] — the SPP-1000's real stack: DASH-style intra-node
//!   directories, per-(node, ring) global cache buffers, and SCI
//!   linked-list sharing between hypernodes (paper §2.4–2.6). The
//!   default, and bit-identical — cycles and [`crate::MemStats`] —
//!   to the historical hardwired access paths it was extracted from.
//! * [`Mesi`] — a bus-snooping invalidation protocol with the
//!   Exclusive optimization: misses broadcast to every cache, a dirty
//!   peer supplies data cache-to-cache, and a write to a Shared line
//!   invalidates the other holders. The counterfactual the paper's
//!   §2.4 comparison with bus-based SMPs gestures at.
//! * [`Dragon`] — a write-update protocol: a write to a shared line
//!   broadcasts the new data to the other holders instead of
//!   invalidating them, leaving the writer in the owned-shared `Sm`
//!   state ([`LineState::OwnedShared`]).
//!
//! MESI and Dragon model a flat snooping interconnect spanning the
//! whole machine. Holders are tracked sparsely by a `SnoopFilter`
//! (a line → holder-list map), so a 128-hypernode, 1024-CPU machine
//! allocates memory proportional to its touched lines, never to CPU
//! count × capacity. Remote-homed memory still pays the SCI distance
//! of the latency model (`sci_fetch` over the home's ring hops), so
//! NUMA topology effects survive the protocol swap; the hypernode
//! GCBs and DASH directories sit idle under both snooping backends
//! and their counters stay zero. Conversely [`crate::MemStats::snoops`]
//! and [`crate::MemStats::updates`] stay zero under DASH+SCI, and the
//! miss-partition invariant (`local + gcb + sci + c2c == misses`)
//! holds under every backend.

use crate::cache::{Evicted, LineState};
use crate::config::CpuId;
use crate::latency::Cycles;
use crate::linemap::LineMap;
use crate::machine::Machine;
use crate::trace::{MissKind, TraceEvent};

/// Which coherence protocol a [`Machine`] runs (see the
/// [module docs](self)). Select one with [`Machine::with_protocol`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// DASH-style directories + SCI rings (the SPP-1000 hardware).
    #[default]
    DashSci,
    /// Bus-snooping MESI invalidation protocol.
    Mesi,
    /// Dragon write-update protocol.
    Dragon,
}

impl ProtocolKind {
    /// All protocols, in tag order (sweep order for experiments).
    pub const ALL: [ProtocolKind; 3] = [
        ProtocolKind::DashSci,
        ProtocolKind::Mesi,
        ProtocolKind::Dragon,
    ];

    /// Stable lowercase label (scenario TOML, reports, CLI).
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolKind::DashSci => "dash-sci",
            ProtocolKind::Mesi => "mesi",
            ProtocolKind::Dragon => "dragon",
        }
    }

    /// Parse a [`ProtocolKind::label`] back; `None` for unknown names.
    pub fn from_label(s: &str) -> Option<ProtocolKind> {
        match s {
            "dash-sci" => Some(ProtocolKind::DashSci),
            "mesi" => Some(ProtocolKind::Mesi),
            "dragon" => Some(ProtocolKind::Dragon),
            _ => None,
        }
    }

    /// Stable one-byte tag (snapshot streams).
    pub fn tag(&self) -> u8 {
        match self {
            ProtocolKind::DashSci => 0,
            ProtocolKind::Mesi => 1,
            ProtocolKind::Dragon => 2,
        }
    }

    /// Parse a [`ProtocolKind::tag`] back; `None` for unknown tags.
    pub fn from_tag(t: u8) -> Option<ProtocolKind> {
        match t {
            0 => Some(ProtocolKind::DashSci),
            1 => Some(ProtocolKind::Mesi),
            2 => Some(ProtocolKind::Dragon),
            _ => None,
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The seam every backend implements. The machine's access wrappers
/// call exactly one of these per cached access, with the line address
/// already computed; implementations mutate coherence state, bump the
/// relevant [`crate::MemStats`] counters (hit or exactly one miss
/// class per access — the conservation invariant), and return the
/// cycles the issuing CPU observes.
pub trait CoherenceProtocol {
    /// Service a cached read of `line` (containing `addr`) by `cpu`.
    fn read_access(m: &mut Machine, cpu: CpuId, addr: u64, line: u64) -> Cycles;
    /// Service a cached write to `line` by `cpu`.
    fn write_access(m: &mut Machine, cpu: CpuId, addr: u64, line: u64) -> Cycles;
    /// Price a read of `line` against the current state without
    /// mutating anything (the twin of [`Machine::peek_read_cost`]).
    fn peek_read(m: &Machine, cpu: CpuId, addr: u64, line: u64) -> Cycles;
}

/// Sparse holder tracking for the snooping backends: which CPUs hold
/// each line, so a "bus broadcast" touches the actual holders instead
/// of scanning every cache. Empty under DASH+SCI (the directories and
/// SCI lists carry that information there).
#[derive(Debug, Clone)]
pub(crate) struct SnoopFilter {
    holders: LineMap<Vec<u16>>,
}

impl SnoopFilter {
    /// An empty filter.
    pub(crate) fn new() -> Self {
        SnoopFilter {
            holders: LineMap::new(),
        }
    }

    /// Record that `cpu` now holds `line` (idempotent).
    pub(crate) fn add(&mut self, line: u64, cpu: u16) {
        let v = self.holders.entry_or_insert_with(line, Vec::new);
        if !v.contains(&cpu) {
            v.push(cpu);
        }
    }

    /// Drop `cpu` from `line`'s holder list; empty lists are removed.
    pub(crate) fn remove(&mut self, line: u64, cpu: u16) {
        let empty = match self.holders.get_mut(line) {
            Some(v) => {
                v.retain(|c| *c != cpu);
                v.is_empty()
            }
            None => false,
        };
        if empty {
            self.holders.remove(line);
        }
    }

    /// The holders of `line` other than `cpu` (the caches a broadcast
    /// from `cpu` reaches).
    pub(crate) fn others(&self, line: u64, cpu: u16) -> Vec<u16> {
        self.holders
            .get(line)
            .map(|v| v.iter().copied().filter(|c| *c != cpu).collect())
            .unwrap_or_default()
    }

    /// All holders of `line`.
    pub(crate) fn holders(&self, line: u64) -> &[u16] {
        self.holders.get(line).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of lines with at least one holder (the touched-line
    /// footprint the sparse representation pays for).
    pub(crate) fn live_lines(&self) -> usize {
        self.holders.len()
    }

    /// Iterate over the lines with holders (checker sweep).
    pub(crate) fn lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.holders.iter().map(|(l, _)| l)
    }

    /// Drop everything (cache flush between benchmark repetitions).
    pub(crate) fn clear(&mut self) {
        self.holders.clear();
    }
}

/// The SPP-1000's DASH + SCI stack (see the [module docs](self)).
///
/// The implementation bodies live in [`crate::machine`]'s historical
/// `read_miss` / `invalidate_others` helpers; this backend is the
/// extraction of the pre-seam hardwired dispatch, verbatim, and is
/// pinned bit-identical by the fig2/fig8 goldens and the
/// scalar/batched cross-validation suite.
#[derive(Debug, Clone, Copy, Default)]
pub struct DashSci;

impl CoherenceProtocol for DashSci {
    fn read_access(m: &mut Machine, cpu: CpuId, addr: u64, line: u64) -> Cycles {
        let cost = match m.caches[cpu.0 as usize].lookup(line) {
            LineState::Invalid => m.read_miss(cpu, addr, line),
            // Shared | Modified; the MESI/Dragon states cannot occur
            // under DASH+SCI and would be owning hits regardless.
            _ => {
                m.stats.hits += 1;
                m.cfg.latency.cache_hit
            }
        };
        m.inject_transient(cpu, addr, line);
        cost
    }

    fn write_access(m: &mut Machine, cpu: CpuId, addr: u64, line: u64) -> Cycles {
        let cost = match m.caches[cpu.0 as usize].lookup(line) {
            LineState::Shared => {
                // Write upgrade: the data is present (a hit), but
                // exclusivity must be obtained.
                m.stats.hits += 1;
                let cost = m.invalidate_others(cpu, addr, line);
                m.stats.upgrades += 1;
                m.emit(cpu, TraceEvent::Upgrade { line });
                let my_node = m.cfg.node_of_cpu(cpu);
                let in_node = m.cfg.cpu_index_in_node(cpu) as u8;
                m.caches[cpu.0 as usize].set_state(line, LineState::Modified);
                m.dirs[my_node.0 as usize].set_owner(line, in_node);
                m.mark_dirty_if_remote(cpu, addr, line);
                m.cfg.latency.cache_hit + m.cfg.latency.dir_op + cost
            }
            LineState::Invalid => {
                // Read-exclusive: fetch + invalidate + own.
                let fetch = m.read_miss(cpu, addr, line);
                let inv = m.invalidate_others(cpu, addr, line);
                m.stats.upgrades += 1;
                m.emit(cpu, TraceEvent::Upgrade { line });
                // A dead CPU's drained store is serviced by the node
                // controller (write-through): it never takes
                // ownership, so the line ends up Shared at node level
                // with no CPU copy.
                if !m.is_cpu_dead(cpu) {
                    let my_node = m.cfg.node_of_cpu(cpu);
                    let in_node = m.cfg.cpu_index_in_node(cpu) as u8;
                    m.caches[cpu.0 as usize].set_state(line, LineState::Modified);
                    m.dirs[my_node.0 as usize].set_owner(line, in_node);
                    m.mark_dirty_if_remote(cpu, addr, line);
                }
                fetch + inv
            }
            // Modified; E/Sm cannot occur under DASH+SCI.
            _ => {
                m.stats.hits += 1;
                m.cfg.latency.cache_hit
            }
        };
        m.inject_transient(cpu, addr, line);
        cost
    }

    fn peek_read(m: &Machine, cpu: CpuId, addr: u64, line: u64) -> Cycles {
        let lat = &m.cfg.latency;
        match m.caches[cpu.0 as usize].lookup(line) {
            LineState::Invalid => {}
            _ => return lat.cache_hit,
        }
        let my_node = m.cfg.node_of_cpu(cpu);
        let in_node = m.cfg.cpu_index_in_node(cpu) as u8;
        let (hnode, hfu) = m.space.home_of(addr);
        let mut cost;

        let local_owner = m.dirs[my_node.0 as usize]
            .get(line)
            .and_then(|e| e.owner)
            .filter(|o| *o != in_node);

        if local_owner.is_some() {
            cost = lat.local_miss + lat.c2c_extra;
        } else if hnode == my_node {
            if let Some(d) = m.sci.dirty_node(line).filter(|d| *d != my_node.0) {
                let hops = m
                    .cfg
                    .ring_round_trip_hops(my_node, crate::config::NodeId(d));
                cost = lat.local_miss + lat.sci_fetch(hops);
            } else {
                cost = lat.local_miss;
            }
        } else {
            let ring = m.cfg.ring_of_fu(hfu);
            let g = m.gcb_index(my_node, ring);
            match m.gcbs[g].lookup(line) {
                LineState::Invalid => {
                    let hops = m.cfg.ring_round_trip_hops(my_node, hnode);
                    cost = lat.local_miss + lat.sci_fetch(hops);
                    if let Some(d) = m
                        .sci
                        .dirty_node(line)
                        .filter(|d| *d != my_node.0 && *d != hnode.0)
                    {
                        cost += lat.sci_list_op
                            + m.cfg.ring_round_trip_hops(hnode, crate::config::NodeId(d))
                                * lat.ring_hop
                                / 2;
                    }
                    if m.dirs[hnode.0 as usize]
                        .get(line)
                        .and_then(|e| e.owner)
                        .is_some()
                    {
                        cost += lat.c2c_extra;
                    }
                    if let Some(victim) = m.gcbs[g].peek_victim(line) {
                        cost += m.peek_gcb_rollout_cost(my_node, victim);
                    }
                }
                _ => {
                    cost = lat.local_miss;
                }
            }
        }

        if let Some(victim) = m.caches[cpu.0 as usize].peek_victim(line) {
            if victim.state == LineState::Modified {
                cost += lat.writeback;
            }
        }
        cost
    }
}

/// A CPU cache eviction under the snooping backends: drop the victim
/// from the holder filter; dirty victims (`M` or `Sm`) write back.
fn snoop_evict(m: &mut Machine, cpu: CpuId, victim: Evicted) -> Cycles {
    m.stats.evictions += 1;
    m.snoop.remove(victim.line, cpu.0);
    if victim.state.is_dirty() {
        m.stats.writebacks += 1;
        m.cfg.latency.writeback
    } else {
        0
    }
}

/// The read-miss pricing both snooping backends share: a dirty peer
/// supplies cache-to-cache, otherwise memory supplies at home-local
/// or SCI-remote cost; a displaced dirty victim writes back. Pure —
/// the peek twin of the mutating miss paths.
fn snoop_peek_read(m: &Machine, cpu: CpuId, addr: u64, line: u64) -> Cycles {
    let lat = &m.cfg.latency;
    if m.caches[cpu.0 as usize].lookup(line) != LineState::Invalid {
        return lat.cache_hit;
    }
    let others = m.snoop.others(line, cpu.0);
    let dirty = others
        .iter()
        .any(|&c| m.caches[c as usize].lookup(line).is_dirty());
    let mut cost = if dirty {
        lat.local_miss + lat.c2c_extra
    } else {
        let my_node = m.cfg.node_of_cpu(cpu);
        let (hnode, _) = m.space.home_of(addr);
        if hnode == my_node {
            lat.local_miss
        } else {
            lat.local_miss + lat.sci_fetch(m.cfg.ring_round_trip_hops(my_node, hnode))
        }
    };
    if let Some(victim) = m.caches[cpu.0 as usize].peek_victim(line) {
        if victim.state.is_dirty() {
            cost += lat.writeback;
        }
    }
    cost
}

/// Bus-snooping MESI (see the [module docs](self)).
#[derive(Debug, Clone, Copy, Default)]
pub struct Mesi;

impl Mesi {
    /// Service a miss: broadcast a snoop, take data from a dirty peer
    /// or from memory, transition the other holders (`for_write`
    /// invalidates them; a read demotes `M`/`E` to `S`), and install
    /// the line — `M` for writes, `E` when this is the sole copy, `S`
    /// otherwise.
    fn miss_fetch(m: &mut Machine, cpu: CpuId, addr: u64, line: u64, for_write: bool) -> Cycles {
        let lat = m.cfg.latency.clone();
        m.stats.snoops += 1;
        m.emit(cpu, TraceEvent::Snoop { line });
        let others = m.snoop.others(line, cpu.0);
        let dirty = others
            .iter()
            .copied()
            .find(|&c| m.caches[c as usize].lookup(line).is_dirty());
        let mut cost;
        if let Some(owner) = dirty {
            // Dirty peer supplies cache-to-cache (and writes back).
            cost = lat.local_miss + lat.c2c_extra;
            m.stats.c2c_transfers += 1;
            m.emit(
                cpu,
                TraceEvent::Miss {
                    kind: MissKind::C2c,
                    line,
                },
            );
            if !for_write {
                m.caches[owner as usize].set_state(line, LineState::Shared);
            }
        } else {
            let my_node = m.cfg.node_of_cpu(cpu);
            let (hnode, _) = m.space.home_of(addr);
            if hnode == my_node {
                cost = lat.local_miss;
                m.stats.local_misses += 1;
                m.emit(
                    cpu,
                    TraceEvent::Miss {
                        kind: MissKind::Local,
                        line,
                    },
                );
            } else {
                let hops = m.cfg.ring_round_trip_hops(my_node, hnode);
                cost = lat.local_miss + lat.sci_fetch(hops);
                m.stats.sci_fetches += 1;
                m.emit(
                    cpu,
                    TraceEvent::Miss {
                        kind: MissKind::Sci,
                        line,
                    },
                );
            }
        }
        if for_write {
            for &h in &others {
                m.caches[h as usize].invalidate(line);
                m.snoop.remove(line, h);
                m.stats.invalidations += 1;
                cost += lat.inv_local;
            }
        } else {
            for &h in &others {
                if m.caches[h as usize].lookup(line) == LineState::Exclusive {
                    m.caches[h as usize].set_state(line, LineState::Shared);
                }
            }
        }
        // A dead CPU's drained request is serviced but never refills
        // the dead cache (as under DASH+SCI).
        if m.is_cpu_dead(cpu) {
            return cost;
        }
        let state = if for_write {
            LineState::Modified
        } else if others.is_empty() {
            LineState::Exclusive
        } else {
            LineState::Shared
        };
        if let Some(victim) = m.caches[cpu.0 as usize].fill(line, state) {
            cost += snoop_evict(m, cpu, victim);
        }
        m.snoop.add(line, cpu.0);
        cost
    }
}

impl CoherenceProtocol for Mesi {
    fn read_access(m: &mut Machine, cpu: CpuId, addr: u64, line: u64) -> Cycles {
        let cost = match m.caches[cpu.0 as usize].lookup(line) {
            LineState::Invalid => Self::miss_fetch(m, cpu, addr, line, false),
            _ => {
                m.stats.hits += 1;
                m.cfg.latency.cache_hit
            }
        };
        m.inject_transient(cpu, addr, line);
        cost
    }

    fn write_access(m: &mut Machine, cpu: CpuId, addr: u64, line: u64) -> Cycles {
        let lat = m.cfg.latency.clone();
        let cost = match m.caches[cpu.0 as usize].lookup(line) {
            LineState::Exclusive => {
                // The MESI payoff: sole clean copy upgrades silently.
                m.stats.hits += 1;
                m.caches[cpu.0 as usize].set_state(line, LineState::Modified);
                lat.cache_hit
            }
            LineState::Shared => {
                // Upgrade: data present (a hit), broadcast invalidates
                // the other holders.
                m.stats.hits += 1;
                m.stats.snoops += 1;
                m.emit(cpu, TraceEvent::Snoop { line });
                let mut cost = lat.cache_hit + lat.dir_op;
                for h in m.snoop.others(line, cpu.0) {
                    m.caches[h as usize].invalidate(line);
                    m.snoop.remove(line, h);
                    m.stats.invalidations += 1;
                    cost += lat.inv_local;
                }
                m.stats.upgrades += 1;
                m.emit(cpu, TraceEvent::Upgrade { line });
                m.caches[cpu.0 as usize].set_state(line, LineState::Modified);
                cost
            }
            LineState::Invalid => {
                let cost = Self::miss_fetch(m, cpu, addr, line, true);
                m.stats.upgrades += 1;
                m.emit(cpu, TraceEvent::Upgrade { line });
                cost
            }
            // Modified (Sm cannot occur under MESI).
            _ => {
                m.stats.hits += 1;
                lat.cache_hit
            }
        };
        m.inject_transient(cpu, addr, line);
        cost
    }

    fn peek_read(m: &Machine, cpu: CpuId, addr: u64, line: u64) -> Cycles {
        snoop_peek_read(m, cpu, addr, line)
    }
}

/// Write-update Dragon (see the [module docs](self)).
#[derive(Debug, Clone, Copy, Default)]
pub struct Dragon;

impl Dragon {
    /// Broadcast the written word to the other holders; the previous
    /// owner (if any) demotes to plain Shared — the writer owns the
    /// line after the update.
    fn update_others(m: &mut Machine, cpu: CpuId, line: u64, others: &[u16]) -> Cycles {
        let lat = m.cfg.latency.clone();
        m.stats.updates += 1;
        m.emit(
            cpu,
            TraceEvent::Update {
                line,
                sharers: u8::try_from(others.len()).unwrap_or(u8::MAX),
            },
        );
        let mut cost = lat.dir_op;
        for &h in others {
            let s = m.caches[h as usize].lookup(line);
            if s.is_dirty() || s == LineState::Exclusive {
                m.caches[h as usize].set_state(line, LineState::Shared);
            }
            cost += lat.inv_local;
        }
        cost
    }

    /// Fetch a missing line: dirty peer supplies (an `M` supplier
    /// moves to `Sm`), otherwise memory at home-local or SCI cost.
    fn fetch(m: &mut Machine, cpu: CpuId, addr: u64, line: u64, others: &[u16]) -> Cycles {
        let lat = m.cfg.latency.clone();
        let dirty = others
            .iter()
            .copied()
            .find(|&c| m.caches[c as usize].lookup(line).is_dirty());
        let cost;
        if let Some(owner) = dirty {
            cost = lat.local_miss + lat.c2c_extra;
            m.stats.c2c_transfers += 1;
            m.emit(
                cpu,
                TraceEvent::Miss {
                    kind: MissKind::C2c,
                    line,
                },
            );
            if m.caches[owner as usize].lookup(line) == LineState::Modified {
                m.caches[owner as usize].set_state(line, LineState::OwnedShared);
            }
        } else {
            let my_node = m.cfg.node_of_cpu(cpu);
            let (hnode, _) = m.space.home_of(addr);
            if hnode == my_node {
                cost = lat.local_miss;
                m.stats.local_misses += 1;
                m.emit(
                    cpu,
                    TraceEvent::Miss {
                        kind: MissKind::Local,
                        line,
                    },
                );
            } else {
                let hops = m.cfg.ring_round_trip_hops(my_node, hnode);
                cost = lat.local_miss + lat.sci_fetch(hops);
                m.stats.sci_fetches += 1;
                m.emit(
                    cpu,
                    TraceEvent::Miss {
                        kind: MissKind::Sci,
                        line,
                    },
                );
            }
            for &h in others {
                if m.caches[h as usize].lookup(line) == LineState::Exclusive {
                    m.caches[h as usize].set_state(line, LineState::Shared);
                }
            }
        }
        cost
    }
}

impl CoherenceProtocol for Dragon {
    fn read_access(m: &mut Machine, cpu: CpuId, addr: u64, line: u64) -> Cycles {
        let cost = match m.caches[cpu.0 as usize].lookup(line) {
            LineState::Invalid => {
                let others = m.snoop.others(line, cpu.0);
                let mut cost = Self::fetch(m, cpu, addr, line, &others);
                // A dead CPU's drained request never refills its
                // cache (and the transient seam skips dead issuers).
                if m.is_cpu_dead(cpu) {
                    return cost;
                }
                let state = if others.is_empty() {
                    LineState::Exclusive
                } else {
                    LineState::Shared
                };
                if let Some(victim) = m.caches[cpu.0 as usize].fill(line, state) {
                    cost += snoop_evict(m, cpu, victim);
                }
                m.snoop.add(line, cpu.0);
                cost
            }
            _ => {
                m.stats.hits += 1;
                m.cfg.latency.cache_hit
            }
        };
        m.inject_transient(cpu, addr, line);
        cost
    }

    fn write_access(m: &mut Machine, cpu: CpuId, addr: u64, line: u64) -> Cycles {
        let lat = m.cfg.latency.clone();
        let cost = match m.caches[cpu.0 as usize].lookup(line) {
            LineState::Modified => {
                m.stats.hits += 1;
                lat.cache_hit
            }
            LineState::Exclusive => {
                m.stats.hits += 1;
                m.caches[cpu.0 as usize].set_state(line, LineState::Modified);
                lat.cache_hit
            }
            LineState::Shared | LineState::OwnedShared => {
                // The Dragon signature: a write to a shared line is a
                // hit that broadcasts the new data instead of
                // invalidating; the writer becomes the owner (`Sm`).
                m.stats.hits += 1;
                let others = m.snoop.others(line, cpu.0);
                if others.is_empty() {
                    m.caches[cpu.0 as usize].set_state(line, LineState::Modified);
                    lat.cache_hit
                } else {
                    let cost = lat.cache_hit + Self::update_others(m, cpu, line, &others);
                    m.caches[cpu.0 as usize].set_state(line, LineState::OwnedShared);
                    cost
                }
            }
            LineState::Invalid => {
                let others = m.snoop.others(line, cpu.0);
                let mut cost = Self::fetch(m, cpu, addr, line, &others);
                // The bus write reaches surviving holders even when
                // the issuing CPU is dead (drained write-through).
                if !others.is_empty() {
                    cost += Self::update_others(m, cpu, line, &others);
                }
                if m.is_cpu_dead(cpu) {
                    return cost;
                }
                let state = if others.is_empty() {
                    LineState::Modified
                } else {
                    LineState::OwnedShared
                };
                if let Some(victim) = m.caches[cpu.0 as usize].fill(line, state) {
                    cost += snoop_evict(m, cpu, victim);
                }
                m.snoop.add(line, cpu.0);
                cost
            }
        };
        m.inject_transient(cpu, addr, line);
        cost
    }

    fn peek_read(m: &Machine, cpu: CpuId, addr: u64, line: u64) -> Cycles {
        snoop_peek_read(m, cpu, addr, line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_tags_round_trip() {
        for p in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::from_label(p.label()), Some(p));
            assert_eq!(ProtocolKind::from_tag(p.tag()), Some(p));
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(ProtocolKind::from_label("moesi"), None);
        assert_eq!(ProtocolKind::from_tag(3), None);
        assert_eq!(ProtocolKind::default(), ProtocolKind::DashSci);
    }

    #[test]
    fn snoop_filter_tracks_holders_sparsely() {
        let mut f = SnoopFilter::new();
        f.add(10, 3);
        f.add(10, 7);
        f.add(10, 3); // idempotent
        assert_eq!(f.holders(10), &[3, 7]);
        assert_eq!(f.others(10, 3), vec![7]);
        assert_eq!(f.live_lines(), 1);
        f.remove(10, 3);
        f.remove(10, 7);
        assert_eq!(f.live_lines(), 0);
        assert!(f.holders(10).is_empty());
    }
}
