//! Event counters, mirroring the hardware instrumentation the paper
//! praises in §6 ("counters for cache miss enumeration and timing").

/// Memory-system event counters. All counts are cumulative since the
/// machine was created or [`MemStats::reset`] was called.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Cached read accesses issued.
    pub reads: u64,
    /// Cached write accesses issued.
    pub writes: u64,
    /// Accesses that hit in the issuing CPU's cache.
    pub hits: u64,
    /// Misses serviced by memory within the hypernode.
    pub local_misses: u64,
    /// Misses serviced by the hypernode's global cache buffer.
    pub gcb_hits: u64,
    /// Misses requiring an SCI ring transaction.
    pub sci_fetches: u64,
    /// Fetches that had to be forwarded to a dirty remote node.
    pub remote_dirty_fetches: u64,
    /// Cache-to-cache transfers within a hypernode.
    pub c2c_transfers: u64,
    /// Write upgrades (Shared -> Modified) that invalidated sharers.
    pub upgrades: u64,
    /// Invalidations delivered to CPU caches.
    pub invalidations: u64,
    /// Remote hypernodes invalidated via SCI list walks.
    pub sci_invalidations: u64,
    /// CPU cache evictions (capacity/conflict).
    pub evictions: u64,
    /// Dirty-line writebacks (CPU cache or GCB rollout).
    pub writebacks: u64,
    /// GCB rollouts (remote lines displaced from the network cache).
    pub gcb_rollouts: u64,
    /// Uncached (semaphore) operations.
    pub uncached_ops: u64,
    /// Injected SCI ring stalls (fault injection; see
    /// [`crate::FaultPlan`]). Zero unless a fault plan is installed.
    pub ring_stalls: u64,
    /// SCI transactions rerouted around a hard link failure (see
    /// [`crate::HardFault`]). Zero unless a link failure has fired.
    pub link_reroutes: u64,
    /// Bus snoop transactions broadcast by the snooping MESI
    /// protocol. Zero under DASH+SCI and Dragon.
    pub snoops: u64,
    /// Write-update broadcasts issued by the Dragon protocol. Zero
    /// under DASH+SCI and MESI.
    pub updates: u64,
    /// Transient coherence faults detected and repaired by the
    /// machine's scrub-and-retry path. Zero unless a fault plan with
    /// transient coherence faults is installed.
    pub recoveries: u64,
    /// Scrub attempts spent repairing transient coherence faults
    /// (>= `recoveries`; the excess counts faults that persisted
    /// across scrubs).
    pub recovery_retries: u64,
}

impl MemStats {
    /// Total cached accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total misses of any kind.
    pub fn misses(&self) -> u64 {
        self.accesses() - self.hits
    }

    /// Fraction of accesses that hit, in [0, 1]. Returns 1.0 for an
    /// idle machine.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Fraction of misses that left the hypernode.
    pub fn global_miss_fraction(&self) -> f64 {
        let m = self.misses();
        if m == 0 {
            0.0
        } else {
            self.sci_fetches as f64 / m as f64
        }
    }

    /// Zero all counters.
    pub fn reset(&mut self) {
        *self = MemStats::default();
    }

    /// Per-field difference (`self - earlier`); use to bracket a
    /// region of interest. Saturating: if counters were [`reset`]
    /// between the two snapshots the delta clamps to zero instead of
    /// panicking in debug builds (or wrapping in release).
    ///
    /// [`reset`]: MemStats::reset
    pub fn since(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            hits: self.hits.saturating_sub(earlier.hits),
            local_misses: self.local_misses.saturating_sub(earlier.local_misses),
            gcb_hits: self.gcb_hits.saturating_sub(earlier.gcb_hits),
            sci_fetches: self.sci_fetches.saturating_sub(earlier.sci_fetches),
            remote_dirty_fetches: self
                .remote_dirty_fetches
                .saturating_sub(earlier.remote_dirty_fetches),
            c2c_transfers: self.c2c_transfers.saturating_sub(earlier.c2c_transfers),
            upgrades: self.upgrades.saturating_sub(earlier.upgrades),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
            sci_invalidations: self
                .sci_invalidations
                .saturating_sub(earlier.sci_invalidations),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            writebacks: self.writebacks.saturating_sub(earlier.writebacks),
            gcb_rollouts: self.gcb_rollouts.saturating_sub(earlier.gcb_rollouts),
            uncached_ops: self.uncached_ops.saturating_sub(earlier.uncached_ops),
            ring_stalls: self.ring_stalls.saturating_sub(earlier.ring_stalls),
            link_reroutes: self.link_reroutes.saturating_sub(earlier.link_reroutes),
            snoops: self.snoops.saturating_sub(earlier.snoops),
            updates: self.updates.saturating_sub(earlier.updates),
            recoveries: self.recoveries.saturating_sub(earlier.recoveries),
            recovery_retries: self
                .recovery_retries
                .saturating_sub(earlier.recovery_retries),
        }
    }

    /// Per-field accumulation (`self += other`); the merge the
    /// per-hypernode rollups use.
    pub fn merge(&mut self, other: &MemStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.hits += other.hits;
        self.local_misses += other.local_misses;
        self.gcb_hits += other.gcb_hits;
        self.sci_fetches += other.sci_fetches;
        self.remote_dirty_fetches += other.remote_dirty_fetches;
        self.c2c_transfers += other.c2c_transfers;
        self.upgrades += other.upgrades;
        self.invalidations += other.invalidations;
        self.sci_invalidations += other.sci_invalidations;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.gcb_rollouts += other.gcb_rollouts;
        self.uncached_ops += other.uncached_ops;
        self.ring_stalls += other.ring_stalls;
        self.link_reroutes += other.link_reroutes;
        self.snoops += other.snoops;
        self.updates += other.updates;
        self.recoveries += other.recoveries;
        self.recovery_retries += other.recovery_retries;
    }

    /// Equality modulo the recovery counters. A run that injected and
    /// repaired transient coherence faults must end with every *other*
    /// counter bit-identical to the fault-free run — the recovery
    /// bit-identity invariant `repro-recovery` and the recovering
    /// scenario goldens enforce.
    pub fn eq_modulo_recovery(&self, other: &MemStats) -> bool {
        let scrub = |s: &MemStats| MemStats {
            recoveries: 0,
            recovery_retries: 0,
            ..*s
        };
        scrub(self) == scrub(other)
    }

    /// Check that the miss-kind counters partition [`MemStats::misses`]
    /// exactly: every miss is serviced by exactly one of local memory,
    /// the GCB, an SCI fetch, or an intra-node cache-to-cache transfer
    /// (`remote_dirty_fetches` annotates SCI fetches rather than
    /// forming a fifth kind). Holds for any bracketed delta of a
    /// cycle-accurate machine's counters.
    pub fn miss_partition_check(&self) -> bool {
        self.local_misses + self.gcb_hits + self.sci_fetches + self.c2c_transfers == self.misses()
    }
}

impl std::fmt::Display for MemStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "accesses {} (r {} / w {})  hit rate {:.4}",
            self.accesses(),
            self.reads,
            self.writes,
            self.hit_rate()
        )?;
        writeln!(
            f,
            "misses: local {}  gcb {}  sci {} (dirty {})  c2c {}",
            self.local_misses,
            self.gcb_hits,
            self.sci_fetches,
            self.remote_dirty_fetches,
            self.c2c_transfers
        )?;
        write!(
            f,
            "coherence: upgrades {}  inv {}  sci-inv {}  evict {}  wb {}  rollout {}  uncached {}",
            self.upgrades,
            self.invalidations,
            self.sci_invalidations,
            self.evictions,
            self.writebacks,
            self.gcb_rollouts,
            self.uncached_ops
        )?;
        if self.ring_stalls > 0 || self.link_reroutes > 0 {
            write!(
                f,
                "\nfaults: ring stalls {}  link reroutes {}",
                self.ring_stalls, self.link_reroutes
            )?;
        }
        if self.snoops > 0 || self.updates > 0 {
            write!(
                f,
                "\nprotocol traffic: snoops {}  updates {}",
                self.snoops, self.updates
            )?;
        }
        if self.recoveries > 0 || self.recovery_retries > 0 {
            write!(
                f,
                "\nrecovery: recovered {}  scrub retries {}",
                self.recoveries, self.recovery_retries
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_of_idle_machine_is_one() {
        assert_eq!(MemStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn since_subtracts_fieldwise() {
        let a = MemStats {
            reads: 10,
            hits: 8,
            ..Default::default()
        };
        let b = MemStats {
            reads: 25,
            hits: 20,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.reads, 15);
        assert_eq!(d.hits, 12);
        assert_eq!(d.misses(), 3);
    }

    #[test]
    fn since_saturates_across_a_reset() {
        let mut s = MemStats {
            reads: 100,
            writes: 40,
            hits: 120,
            ..Default::default()
        };
        let bracket = s; // snapshot taken before...
        s.reset(); // ...someone resets between the brackets
        s.reads = 5;
        let d = s.since(&bracket);
        assert_eq!(d.reads, 0, "clamped, not wrapped");
        assert_eq!(d.writes, 0);
        assert_eq!(d.hits, 0);
    }

    #[test]
    fn merge_accumulates_fieldwise() {
        let mut a = MemStats {
            reads: 10,
            sci_fetches: 2,
            ..Default::default()
        };
        let b = MemStats {
            reads: 5,
            writes: 7,
            sci_fetches: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.reads, 15);
        assert_eq!(a.writes, 7);
        assert_eq!(a.sci_fetches, 3);
    }

    #[test]
    fn miss_partition_check_accepts_partitioned_counters() {
        let s = MemStats {
            reads: 100,
            hits: 90,
            local_misses: 4,
            gcb_hits: 2,
            sci_fetches: 3,
            c2c_transfers: 1,
            remote_dirty_fetches: 2, // annotates sci fetches; not a kind
            ..Default::default()
        };
        assert!(s.miss_partition_check());
        let bad = MemStats {
            local_misses: 5,
            ..s
        };
        assert!(!bad.miss_partition_check());
    }

    #[test]
    fn misses_partition() {
        let s = MemStats {
            reads: 100,
            writes: 0,
            hits: 90,
            local_misses: 6,
            gcb_hits: 2,
            sci_fetches: 2,
            ..Default::default()
        };
        assert_eq!(s.misses(), 10);
        assert!((s.global_miss_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn eq_modulo_recovery_ignores_only_the_recovery_counters() {
        let base = MemStats {
            reads: 10,
            hits: 9,
            local_misses: 1,
            ..Default::default()
        };
        let recovered = MemStats {
            recoveries: 3,
            recovery_retries: 5,
            ..base
        };
        assert_ne!(base, recovered);
        assert!(base.eq_modulo_recovery(&recovered));
        let diverged = MemStats {
            hits: 8,
            ..recovered
        };
        assert!(!base.eq_modulo_recovery(&diverged));
    }

    #[test]
    fn display_is_reasonable() {
        let s = MemStats::default();
        let out = format!("{s}");
        assert!(out.contains("hit rate"));
        assert!(out.contains("coherence"));
    }
}
