//! Runtime verification of the coherence protocol's invariants.
//!
//! Every number the repo reproduces rests on the directory/SCI state
//! machines in [`crate::machine`]; this module checks, after each
//! simulated access (opt-in) or on demand ([`Machine::check_all`]),
//! that the global state still satisfies the protocol's invariants:
//!
//! 1. **Single writer / multiple readers** — at most one CPU holds a
//!    line Modified, and a Modified copy coexists with no other valid
//!    CPU copy.
//! 2. **Directory–cache agreement** — each hypernode directory's
//!    sharer mask equals the exact set of node CPUs caching the line;
//!    its owner field is set iff that CPU holds the line Modified;
//!    emptied entries are dropped.
//! 3. **GCB inclusion** — a CPU caching a remotely-homed line implies
//!    its node's global cache buffer (on the home FU's ring) holds it.
//! 4. **SCI list well-formedness** — the sharing list has no
//!    duplicates (acyclic by construction), never names the home node,
//!    names exactly the nodes whose GCBs hold the line (consistent
//!    head), contains the dirty node when one is marked, and a dirty
//!    marker implies a Modified copy (GCB or CPU) on that node.
//! 5. **Counter conservation** — hits plus every miss class equals
//!    accesses, and every access costs at least one cycle (per-CPU
//!    clocks strictly increase).
//! 6. **Dead-CPU exclusion** — a CPU taken down by a hard fault
//!    ([`crate::HardFault::CpuFail`]) holds no valid lines and appears
//!    in no directory sharer mask (degraded-mode invariant).
//!
//! The line-local checks are parameterized by the machine's
//! [`crate::ProtocolKind`]: invariants (2)–(4) are DASH+SCI-specific
//! and under the snooping backends (MESI, Dragon) are replaced by
//! *snoop-filter agreement* — the filter's holder set for each line
//! equals the exact set of CPUs caching it valid — plus the
//! single-writer rule restated over the snooping states (`M`/`E`
//! exclusive, at most one `Sm` owner). Each protocol also rejects the
//! states foreign to it (`E`/`Sm` under DASH+SCI, `Sm` under MESI,
//! any DASH directory/SCI residue under either snooping backend) as
//! `"protocol-state"` violations. Invariants (5) and (6) hold under
//! every protocol.
//!
//! Enable per-access checking with [`Machine::with_checker`] or the
//! `SPP_CHECK=1` environment variable (any value but `0`); spp-core's
//! own unit tests enable it unconditionally. A violation panics by
//! default (the simulator's state is wrong — results downstream would
//! be meaningless); set [`CoherenceChecker::panic_on_violation`] to
//! `false` to collect violations instead.

use crate::cache::LineState;
use crate::config::CpuId;
use crate::latency::Cycles;
use crate::machine::Machine;
use std::collections::BTreeSet;
use std::fmt;

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant (short stable label, e.g. `"single-writer"`).
    pub invariant: &'static str,
    /// The line the violation concerns, if line-specific.
    pub line: Option<u64>,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    /// True if this violation is *recoverable*: a line-local metadata
    /// disagreement the machine's scrub-and-retry path can repair by
    /// restoring the line's coherence footprint (transient-fault
    /// recovery). Clock, counter, and dead-CPU violations are not —
    /// they mean simulation history is already wrong, not just one
    /// line's state.
    pub fn recoverable(&self) -> bool {
        self.line.is_some()
            && !matches!(
                self.invariant,
                "clock-monotonicity" | "stats-conservation" | "dead-cpu"
            )
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(l) => write!(f, "[{}] line {:#x}: {}", self.invariant, l, self.detail),
            None => write!(f, "[{}] {}", self.invariant, self.detail),
        }
    }
}

/// Per-access invariant checker state (see the module docs).
#[derive(Debug, Clone)]
pub struct CoherenceChecker {
    /// Panic on the first violation (default). When `false`,
    /// violations accumulate in [`CoherenceChecker::violations`].
    pub panic_on_violation: bool,
    /// Cumulative per-CPU access cost — strictly increasing by
    /// construction; retained so tests can assert monotonic progress.
    clocks: Vec<Cycles>,
    violations: Vec<Violation>,
    checks: u64,
}

impl CoherenceChecker {
    /// A checker for a machine with `num_cpus` CPUs.
    pub fn new(num_cpus: usize) -> Self {
        CoherenceChecker {
            panic_on_violation: true,
            clocks: vec![0; num_cpus],
            violations: Vec::new(),
            checks: 0,
        }
    }

    /// Violations collected so far (only populated when
    /// `panic_on_violation` is `false`).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of per-access checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// The cumulative checked cost charged to `cpu`.
    pub fn clock(&self, cpu: CpuId) -> Cycles {
        self.clocks[cpu.0 as usize]
    }

    /// Verify the machine after one access by `cpu` to `line` that
    /// cost `cost` cycles. Called by the machine's access paths; the
    /// checker is temporarily detached from the machine, so `m` is the
    /// post-access state.
    pub(crate) fn after_access(&mut self, m: &Machine, cpu: CpuId, line: u64, cost: Cycles) {
        self.checks += 1;
        let mut found = Vec::new();
        if cost == 0 {
            found.push(Violation {
                invariant: "clock-monotonicity",
                line: Some(line),
                detail: format!("access by cpu {} cost 0 cycles", cpu.0),
            });
        }
        self.clocks[cpu.0 as usize] += cost;
        m.check_line(line, &mut found);
        m.check_stats(&mut found);
        if found.is_empty() {
            return;
        }
        if self.panic_on_violation {
            let list: Vec<String> = found.iter().map(|v| v.to_string()).collect();
            panic!(
                "coherence invariant violated after access #{} (cpu {}):\n  {}",
                self.checks,
                cpu.0,
                list.join("\n  ")
            );
        }
        self.violations.extend(found);
    }
}

impl Machine {
    /// Check every invariant over the machine's entire state,
    /// returning all violations (empty means the state is consistent).
    /// Unlike the per-access hook, this never panics.
    pub fn check_all(&self) -> Vec<Violation> {
        let mut lines = BTreeSet::new();
        for c in &self.caches {
            lines.extend(c.entries().map(|(l, _)| l));
        }
        for g in &self.gcbs {
            lines.extend(g.entries().map(|(l, _)| l));
        }
        for d in &self.dirs {
            lines.extend(d.lines());
        }
        lines.extend(self.sci.lines());
        lines.extend(self.snoop.lines());
        let mut v = Vec::new();
        for line in lines {
            self.check_line(line, &mut v);
        }
        self.check_stats(&mut v);
        v
    }

    /// Conservation of the event counters: every cached access is a
    /// hit or exactly one class of miss.
    pub(crate) fn check_stats(&self, v: &mut Vec<Violation>) {
        let s = &self.stats;
        let serviced = s.hits + s.local_misses + s.gcb_hits + s.sci_fetches + s.c2c_transfers;
        if serviced != s.accesses() {
            v.push(Violation {
                invariant: "stats-conservation",
                line: None,
                detail: format!(
                    "hits {} + local {} + gcb {} + sci {} + c2c {} = {} != accesses {}",
                    s.hits,
                    s.local_misses,
                    s.gcb_hits,
                    s.sci_fetches,
                    s.c2c_transfers,
                    serviced,
                    s.accesses()
                ),
            });
        }
    }

    /// Check the line-local invariants for one line, as the machine's
    /// protocol defines them (see the module docs). Also the detection
    /// audit of the transient-fault recovery path in `machine.rs`.
    pub(crate) fn check_line(&self, line: u64, v: &mut Vec<Violation>) {
        match self.protocol {
            crate::ProtocolKind::DashSci => self.check_line_dash(line, v),
            crate::ProtocolKind::Mesi | crate::ProtocolKind::Dragon => {
                self.check_line_snoop(line, v)
            }
        }
    }

    /// Line-local invariants (1)–(4) under DASH+SCI.
    fn check_line_dash(&self, line: u64, v: &mut Vec<Violation>) {
        let cpn = self.cfg.cpus_per_node();
        let mut modified_cpus: Vec<usize> = Vec::new();
        let mut valid_cpus: Vec<usize> = Vec::new();

        // (2) Directory-vs-cache agreement, per node.
        for node in 0..self.cfg.hypernodes {
            let mut mask: u8 = 0;
            let mut cache_owner: Option<u8> = None;
            for b in 0..cpn {
                let cpu = node * cpn + b;
                match self.caches[cpu].lookup(line) {
                    LineState::Invalid => {}
                    LineState::Shared => {
                        mask |= 1 << b;
                        valid_cpus.push(cpu);
                    }
                    LineState::Modified => {
                        mask |= 1 << b;
                        cache_owner = Some(b as u8);
                        valid_cpus.push(cpu);
                        modified_cpus.push(cpu);
                    }
                    s @ (LineState::Exclusive | LineState::OwnedShared) => {
                        v.push(Violation {
                            invariant: "protocol-state",
                            line: Some(line),
                            detail: format!(
                                "cpu {cpu} holds MESI/Dragon state {s:?} under DASH+SCI"
                            ),
                        });
                        mask |= 1 << b;
                        valid_cpus.push(cpu);
                    }
                }
            }
            match self.dirs[node].get(line) {
                None => {
                    if mask != 0 {
                        v.push(Violation {
                            invariant: "dir-cache-agreement",
                            line: Some(line),
                            detail: format!(
                                "node {node}: caches hold mask {mask:#010b} but no dir entry"
                            ),
                        });
                    }
                }
                Some(e) => {
                    if e.is_empty() {
                        v.push(Violation {
                            invariant: "dir-cache-agreement",
                            line: Some(line),
                            detail: format!("node {node}: empty dir entry retained"),
                        });
                    }
                    if e.sharers != mask {
                        v.push(Violation {
                            invariant: "dir-cache-agreement",
                            line: Some(line),
                            detail: format!(
                                "node {node}: dir sharers {:#010b} != cache mask {mask:#010b}",
                                e.sharers
                            ),
                        });
                    }
                    if e.owner != cache_owner {
                        v.push(Violation {
                            invariant: "dir-cache-agreement",
                            line: Some(line),
                            detail: format!(
                                "node {node}: dir owner {:?} != cache Modified holder {:?}",
                                e.owner, cache_owner
                            ),
                        });
                    }
                }
            }
        }

        // (1) Single writer / multiple readers, globally.
        if modified_cpus.len() > 1 {
            v.push(Violation {
                invariant: "single-writer",
                line: Some(line),
                detail: format!("CPUs {modified_cpus:?} all hold the line Modified"),
            });
        }
        if modified_cpus.len() == 1 && valid_cpus.len() > 1 {
            v.push(Violation {
                invariant: "single-writer",
                line: Some(line),
                detail: format!(
                    "cpu {} holds the line Modified while CPUs {valid_cpus:?} hold copies",
                    modified_cpus[0]
                ),
            });
        }

        // (6) Dead CPUs hold no valid lines and appear in no masks.
        if self.dead_cpus.iter().any(|w| *w != 0) {
            for &cpu in &valid_cpus {
                if self.is_cpu_dead(CpuId(cpu as u16)) {
                    v.push(Violation {
                        invariant: "dead-cpu",
                        line: Some(line),
                        detail: format!("dead cpu {cpu} still holds a valid copy"),
                    });
                }
            }
            for node in 0..self.cfg.hypernodes {
                if let Some(e) = self.dirs[node].get(line) {
                    for b in 0..cpn {
                        let cpu = node * cpn + b;
                        if e.sharers & (1 << b) != 0 && self.is_cpu_dead(CpuId(cpu as u16)) {
                            v.push(Violation {
                                invariant: "dead-cpu",
                                line: Some(line),
                                detail: format!(
                                    "dead cpu {cpu} named in node {node}'s sharer mask"
                                ),
                            });
                        }
                    }
                }
            }
        }

        // The remaining invariants need the line's home; a line no
        // region maps (possible only for corrupted state) is reported.
        let addr = line << self.line_shift;
        let (hnode, hfu) = match self.space.try_home_of(addr) {
            Ok(h) => h,
            Err(_) => {
                v.push(Violation {
                    invariant: "sci-well-formed",
                    line: Some(line),
                    detail: "cached line maps to no simulated region".into(),
                });
                return;
            }
        };
        let ring = self.cfg.ring_of_fu(hfu);

        // (3) GCB inclusion for remotely-homed cached lines.
        for &cpu in &valid_cpus {
            let node = self.cfg.node_of_cpu(CpuId(cpu as u16));
            if node != hnode {
                let g = self.gcb_index(node, ring);
                if self.gcbs[g].lookup(line) == LineState::Invalid {
                    v.push(Violation {
                        invariant: "gcb-inclusion",
                        line: Some(line),
                        detail: format!(
                            "cpu {cpu} caches remote-homed line but node {}'s GCB does not",
                            node.0
                        ),
                    });
                }
            }
        }

        // (4) SCI sharing-list well-formedness vs. the GCBs.
        let gcb_nodes: BTreeSet<u8> = (0..self.cfg.hypernodes as u8)
            .filter(|n| {
                let g = self.gcb_index(crate::config::NodeId(*n), ring);
                self.gcbs[g].lookup(line) != LineState::Invalid
            })
            .collect();
        match self.sci.get(line) {
            None => {
                if !gcb_nodes.is_empty() {
                    v.push(Violation {
                        invariant: "sci-well-formed",
                        line: Some(line),
                        detail: format!("GCBs of nodes {gcb_nodes:?} hold line with no SCI entry"),
                    });
                }
            }
            Some(e) => {
                if e.list.is_empty() && e.dirty.is_none() {
                    v.push(Violation {
                        invariant: "sci-well-formed",
                        line: Some(line),
                        detail: "empty SCI entry retained".into(),
                    });
                }
                let set: BTreeSet<u8> = e.list.iter().copied().collect();
                if set.len() != e.list.len() {
                    v.push(Violation {
                        invariant: "sci-well-formed",
                        line: Some(line),
                        detail: format!("sharing list has duplicates: {:?}", e.list),
                    });
                }
                if set.contains(&hnode.0) {
                    v.push(Violation {
                        invariant: "sci-well-formed",
                        line: Some(line),
                        detail: format!("home node {} appears in its own sharing list", hnode.0),
                    });
                }
                if let Some(d) = e.dirty {
                    if !set.contains(&d) {
                        v.push(Violation {
                            invariant: "sci-well-formed",
                            line: Some(line),
                            detail: format!(
                                "dirty node {d} missing from sharing list {:?}",
                                e.list
                            ),
                        });
                    }
                    // Dirty means home memory is stale: a Modified copy
                    // must exist on that node (GCB or CPU cache).
                    let g = self.gcb_index(crate::config::NodeId(d), ring);
                    let gcb_dirty = self.gcbs[g].lookup(line) == LineState::Modified;
                    let cpu_dirty = modified_cpus
                        .iter()
                        .any(|c| self.cfg.node_of_cpu(CpuId(*c as u16)).0 == d);
                    if !gcb_dirty && !cpu_dirty {
                        v.push(Violation {
                            invariant: "sci-well-formed",
                            line: Some(line),
                            detail: format!("dirty node {d} holds no Modified copy"),
                        });
                    }
                }
                if set != gcb_nodes {
                    v.push(Violation {
                        invariant: "sci-well-formed",
                        line: Some(line),
                        detail: format!(
                            "sharing list {set:?} disagrees with GCB holders {gcb_nodes:?}"
                        ),
                    });
                }
            }
        }
    }

    /// Line-local invariants under the snooping backends (MESI and
    /// Dragon): single writer over the snooping states, snoop-filter
    /// agreement, no DASH/SCI residue, and dead-CPU exclusion.
    fn check_line_snoop(&self, line: u64, v: &mut Vec<Violation>) {
        let mut valid_cpus: Vec<usize> = Vec::new();
        let mut owners: Vec<usize> = Vec::new();
        let mut exclusive_cpus: Vec<usize> = Vec::new();
        for cpu in 0..self.cfg.num_cpus() {
            let s = self.caches[cpu].lookup(line);
            if s == LineState::Invalid {
                continue;
            }
            valid_cpus.push(cpu);
            match s {
                LineState::Modified | LineState::Exclusive => {
                    owners.push(cpu);
                    exclusive_cpus.push(cpu);
                }
                LineState::OwnedShared => {
                    owners.push(cpu);
                    if self.protocol == crate::ProtocolKind::Mesi {
                        v.push(Violation {
                            invariant: "protocol-state",
                            line: Some(line),
                            detail: format!("cpu {cpu} holds Dragon state Sm under MESI"),
                        });
                    }
                }
                _ => {}
            }
        }

        // (1) Single writer: at most one owning copy, and an M/E copy
        // coexists with no other valid copy.
        if owners.len() > 1 {
            v.push(Violation {
                invariant: "single-writer",
                line: Some(line),
                detail: format!("CPUs {owners:?} all own the line"),
            });
        }
        if let (Some(&e), true) = (exclusive_cpus.first(), valid_cpus.len() > 1) {
            v.push(Violation {
                invariant: "single-writer",
                line: Some(line),
                detail: format!(
                    "cpu {e} holds the line exclusively while CPUs {valid_cpus:?} hold copies"
                ),
            });
        }

        // Snoop-filter agreement: the filter's holders are exactly the
        // CPUs caching the line valid.
        let mut holders: Vec<usize> = self
            .snoop
            .holders(line)
            .iter()
            .map(|c| *c as usize)
            .collect();
        holders.sort_unstable();
        if holders != valid_cpus {
            v.push(Violation {
                invariant: "snoop-filter-agreement",
                line: Some(line),
                detail: format!("filter holders {holders:?} != caching CPUs {valid_cpus:?}"),
            });
        }

        // The DASH directories, GCBs and SCI lists sit idle under the
        // snooping backends; any entry for this line is residue.
        for node in 0..self.cfg.hypernodes {
            if self.dirs[node].get(line).is_some() {
                v.push(Violation {
                    invariant: "protocol-state",
                    line: Some(line),
                    detail: format!("node {node} has DASH directory residue under snooping"),
                });
            }
        }
        if self.sci.get(line).is_some() {
            v.push(Violation {
                invariant: "protocol-state",
                line: Some(line),
                detail: "SCI sharing-list residue under snooping".into(),
            });
        }

        // (6) Dead CPUs hold no valid lines.
        if self.dead_cpus.iter().any(|w| *w != 0) {
            for &cpu in &valid_cpus {
                if self.is_cpu_dead(CpuId(cpu as u16)) {
                    v.push(Violation {
                        invariant: "dead-cpu",
                        line: Some(line),
                        detail: format!("dead cpu {cpu} still holds a valid copy"),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineConfig, NodeId};
    use crate::mem::MemClass;

    fn exercised_machine() -> Machine {
        // tiny(2) provokes evictions and rollouts; the mixed access
        // pattern crosses nodes, upgrades, and invalidates.
        let mut m = Machine::new(MachineConfig::tiny(2)).with_checker();
        let near = m.alloc(MemClass::NearShared { node: NodeId(0) }, 64 * 32);
        let far = m.alloc(MemClass::NearShared { node: NodeId(1) }, 64 * 32);
        for i in 0..64u64 {
            m.read(CpuId(0), near.addr(i * 32));
            m.read(CpuId(1), near.addr(i * 32));
            m.write(CpuId(2), near.addr(i * 32));
            m.read(CpuId(8), far.addr(i * 32));
            m.write(CpuId(0), far.addr(i * 32));
            m.read(CpuId(9), far.addr(i * 32));
        }
        m
    }

    #[test]
    fn clean_protocol_run_has_no_violations() {
        let m = exercised_machine();
        let v = m.check_all();
        assert!(v.is_empty(), "violations: {v:?}");
        assert!(m.checker().unwrap().checks() > 0);
    }

    #[test]
    fn corrupted_cache_state_is_detected() {
        let mut m = exercised_machine();
        // Sabotage: grant CPU 3 a Modified copy behind the directory's
        // back (crate-internal access; no public API can do this).
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        m.read(CpuId(0), r.addr(0));
        let line = r.addr(0) >> m.line_shift;
        m.caches[3].fill(line, LineState::Modified);
        let v = m.check_all();
        assert!(
            v.iter().any(|x| x.invariant == "dir-cache-agreement"),
            "expected a dir-cache-agreement violation, got {v:?}"
        );
        assert!(
            v.iter().any(|x| x.invariant == "single-writer"),
            "expected a single-writer violation, got {v:?}"
        );
    }

    #[test]
    fn corrupted_stats_are_detected() {
        let mut m = exercised_machine();
        m.stats.hits += 1;
        let v = m.check_all();
        assert!(v.iter().any(|x| x.invariant == "stats-conservation"));
    }

    #[test]
    fn corrupted_sci_list_is_detected() {
        let mut m = exercised_machine();
        let r = m.alloc(MemClass::NearShared { node: NodeId(1) }, 4096);
        m.read(CpuId(0), r.addr(0)); // node 0 fetches over SCI
        let line = r.addr(0) >> m.line_shift;
        // Sabotage: claim the home node shares its own line.
        m.sci.add_sharer(line, 1);
        let v = m.check_all();
        assert!(
            v.iter().any(|x| x.invariant == "sci-well-formed"),
            "expected an sci-well-formed violation, got {v:?}"
        );
    }

    #[test]
    fn dead_cpu_with_valid_copy_is_detected() {
        use crate::fault::FaultPlan;
        let mut m = Machine::new(MachineConfig::tiny(2))
            .with_faults(FaultPlan::new(1).with_cpu_failure(3, 0))
            .with_checker();
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        m.read(CpuId(0), r.addr(0)); // fires the fault: CPU 3 is dead
        let line = r.addr(0) >> m.line_shift;
        // Sabotage: hand the dead CPU a copy behind the model's back.
        m.caches[3].fill(line, LineState::Shared);
        m.dirs[0].add_sharer(line, 3);
        let v = m.check_all();
        assert!(
            v.iter().any(|x| x.invariant == "dead-cpu"),
            "expected a dead-cpu violation, got {v:?}"
        );
    }

    #[test]
    fn per_access_hook_panics_on_violation() {
        let mut m = exercised_machine();
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        m.read(CpuId(0), r.addr(0));
        let line = r.addr(0) >> m.line_shift;
        m.caches[5].fill(line, LineState::Modified);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.read(CpuId(0), r.addr(0));
        }));
        assert!(err.is_err(), "checker should have panicked");
    }

    #[test]
    fn violation_display_names_the_invariant() {
        let v = Violation {
            invariant: "single-writer",
            line: Some(0x40),
            detail: "two writers".into(),
        };
        let s = v.to_string();
        assert!(s.contains("single-writer") && s.contains("0x40"));
    }

    #[test]
    fn recoverability_splits_line_local_from_history_violations() {
        let line_local = |invariant| Violation {
            invariant,
            line: Some(0x40),
            detail: String::new(),
        };
        for inv in [
            "single-writer",
            "dir-cache-agreement",
            "gcb-inclusion",
            "sci-well-formed",
            "snoop-filter-agreement",
            "protocol-state",
        ] {
            assert!(line_local(inv).recoverable(), "{inv}");
        }
        for inv in ["clock-monotonicity", "dead-cpu"] {
            assert!(!line_local(inv).recoverable(), "{inv}");
        }
        let global = Violation {
            invariant: "stats-conservation",
            line: None,
            detail: String::new(),
        };
        assert!(!global.recoverable());
    }
}
