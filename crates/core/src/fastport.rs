//! An analytic hit/miss-counting backend for quick parameter sweeps.
//!
//! [`FastPort`] prices accesses with the same cache geometry and the
//! same placement rules as [`crate::Machine`] but keeps **no
//! coherence state**: no node directories, no SCI reference trees, no
//! global cache buffers. A miss costs `local_miss` when the address
//! is homed on the issuing CPU's hypernode and `local_miss +
//! sci_fetch(hops)` otherwise — the two headline latencies of the
//! paper's Table 1 — so sweeps over placement, problem size, and
//! thread count run at host-memory speed while preserving the
//! hit/miss structure of the workload.
//!
//! ## Documented tolerance vs. the cycle-accurate backend
//!
//! For single-writer streaming workloads the per-CPU caches see the
//! same fills and conflicts as the cycle model, so `hits`,
//! `local_misses` + `sci_fetches`, and `evictions` agree *exactly*.
//! Divergence appears only where coherence actions change occupancy:
//! cross-CPU invalidations (a re-read the cycle model counts as a
//! miss can count as a hit here), GCB hits (counted as plain local
//! misses here since there is no GCB), and cache-to-cache supplies.
//! The backend-validation experiment (`repro-all --backend fast`)
//! asserts total hit and miss counts stay within 10% of the
//! cycle-accurate backend on the workloads it sweeps.

use crate::cache::{Cache, LineState};
use crate::config::{CpuId, FuId, MachineConfig, NodeId};
use crate::error::{ConfigError, SimError};
use crate::latency::Cycles;
use crate::mem::{AddressSpace, MemClass, Region};
use crate::port::MemPort;
use crate::stats::MemStats;

/// The analytic backend: per-CPU tag arrays plus closed-form miss
/// pricing. See the [module docs](self) for the accuracy contract.
#[derive(Debug, Clone)]
pub struct FastPort {
    cfg: MachineConfig,
    space: AddressSpace,
    caches: Vec<Cache>,
    /// Event counters (hits, misses, evictions; coherence counters
    /// that require directory state stay zero).
    pub stats: MemStats,
    line_shift: u32,
}

impl FastPort {
    /// Build the analytic model of a machine configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`FastPort::new`].
    pub fn try_new(cfg: MachineConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let caches = (0..cfg.num_cpus())
            .map(|_| Cache::new(cfg.cache_lines()))
            .collect();
        Ok(FastPort {
            space: AddressSpace::new(&cfg),
            caches,
            stats: MemStats::default(),
            line_shift: cfg.line_bytes.trailing_zeros(),
            cfg,
        })
    }

    /// The paper's testbed geometry, analytically priced.
    pub fn spp1000(hypernodes: usize) -> Self {
        Self::new(MachineConfig::spp1000(hypernodes))
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Closed-form miss price: local or one SCI round trip.
    #[inline]
    fn miss_cost(&mut self, cpu: CpuId, addr: u64) -> Cycles {
        let my_node = self.cfg.node_of_cpu(cpu);
        let (hnode, _) = self.space.home_of(addr);
        if hnode == my_node {
            self.stats.local_misses += 1;
            self.cfg.latency.local_miss
        } else {
            self.stats.sci_fetches += 1;
            let hops = self.cfg.ring_round_trip_hops(my_node, hnode);
            self.cfg.latency.local_miss + self.cfg.latency.sci_fetch(hops)
        }
    }

    /// Account for the victim a fill displaced.
    #[inline]
    fn evict(&mut self, victim: Option<crate::cache::Evicted>) -> Cycles {
        match victim {
            Some(v) => {
                self.stats.evictions += 1;
                if v.state == LineState::Modified {
                    self.stats.writebacks += 1;
                    self.cfg.latency.writeback
                } else {
                    0
                }
            }
            None => 0,
        }
    }
}

impl MemPort for FastPort {
    fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    fn read(&mut self, cpu: CpuId, addr: u64) -> Cycles {
        self.stats.reads += 1;
        let line = self.line_of(addr);
        match self.caches[cpu.0 as usize].lookup(line) {
            LineState::Invalid => {
                let mut cost = self.miss_cost(cpu, addr);
                let victim = self.caches[cpu.0 as usize].fill(line, LineState::Shared);
                cost += self.evict(victim);
                cost
            }
            // Shared | Modified (this backend installs nothing else).
            _ => {
                self.stats.hits += 1;
                self.cfg.latency.cache_hit
            }
        }
    }

    fn write(&mut self, cpu: CpuId, addr: u64) -> Cycles {
        self.stats.writes += 1;
        let line = self.line_of(addr);
        match self.caches[cpu.0 as usize].lookup(line) {
            LineState::Shared => {
                self.stats.hits += 1;
                self.stats.upgrades += 1;
                self.caches[cpu.0 as usize].set_state(line, LineState::Modified);
                self.cfg.latency.cache_hit + self.cfg.latency.dir_op
            }
            LineState::Invalid => {
                self.stats.upgrades += 1;
                let mut cost = self.miss_cost(cpu, addr);
                let victim = self.caches[cpu.0 as usize].fill(line, LineState::Modified);
                cost += self.evict(victim);
                cost
            }
            // Modified (this backend installs nothing else).
            _ => {
                self.stats.hits += 1;
                self.cfg.latency.cache_hit
            }
        }
    }

    fn uncached_op(&mut self, cpu: CpuId, addr: u64) -> Cycles {
        self.stats.uncached_ops += 1;
        let (hnode, _) = self.space.home_of(addr);
        let local = self.cfg.latency.uncached_local;
        if hnode == self.cfg.node_of_cpu(cpu) {
            local
        } else {
            local + self.cfg.latency.uncached_remote_extra
        }
    }

    fn try_alloc(&mut self, class: MemClass, bytes: u64) -> Result<Region, SimError> {
        self.space.try_alloc(class, bytes)
    }

    fn home_of(&self, addr: u64) -> (NodeId, FuId) {
        self.space.home_of(addr)
    }

    fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn flush_all_caches(&mut self) {
        for c in &mut self.caches {
            c.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::port::MemPort;

    #[test]
    fn streaming_hit_miss_structure_matches_machine_exactly() {
        // A single-CPU stride-8 stream over far-shared memory: no
        // coherence actions, so FastPort's counters must agree exactly
        // with the cycle-accurate machine.
        let mut fast = FastPort::spp1000(2);
        let mut cycle = Machine::spp1000(2);
        let rf = fast.alloc(MemClass::FarShared, 1 << 16);
        let rc = Machine::alloc(&mut cycle, MemClass::FarShared, 1 << 16);
        for i in 0..(1u64 << 13) {
            fast.read(CpuId(0), rf.addr(i * 8));
            cycle.read(CpuId(0), rc.addr(i * 8));
        }
        assert_eq!(fast.stats.reads, cycle.stats.reads);
        assert_eq!(fast.stats.hits, cycle.stats.hits);
        assert_eq!(
            fast.stats.local_misses + fast.stats.sci_fetches,
            cycle.stats.local_misses + cycle.stats.sci_fetches + cycle.stats.gcb_hits
        );
    }

    #[test]
    fn remote_miss_still_about_8x_local() {
        let mut p = FastPort::spp1000(2);
        let near = p.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        let far = p.alloc(MemClass::NearShared { node: NodeId(1) }, 4096);
        let local = p.read(CpuId(0), near.addr(0));
        let remote = p.read(CpuId(0), far.addr(0));
        let ratio = remote as f64 / local as f64;
        assert!((6.0..=10.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn second_read_hits_and_flush_forgets() {
        let mut p = FastPort::spp1000(1);
        let r = p.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        assert!(p.read(CpuId(0), r.addr(0)) > 1);
        assert_eq!(p.read(CpuId(0), r.addr(0)), 1);
        p.flush_all_caches();
        assert!(p.read(CpuId(0), r.addr(0)) > 1);
    }

    #[test]
    fn default_run_methods_equal_scalar_loops() {
        let scalar = {
            let mut p = FastPort::spp1000(2);
            let r = p.alloc(MemClass::FarShared, 1 << 14);
            let mut t = 0;
            for i in 0..2048u64 {
                t += p.read(CpuId(0), r.addr(i * 8));
            }
            for i in 0..2048u64 {
                t += p.write(CpuId(1), r.addr(i * 8));
            }
            (t, p.stats)
        };
        let batched = {
            let mut p = FastPort::spp1000(2);
            let r = p.alloc(MemClass::FarShared, 1 << 14);
            let mut t = p.read_run(CpuId(0), r.addr(0), 8, 2048);
            t += p.write_run(CpuId(1), r.addr(0), 8, 2048);
            (t, p.stats)
        };
        assert_eq!(scalar, batched);
    }

    #[test]
    fn no_fault_plan_on_the_analytic_backend() {
        let mut p = FastPort::spp1000(1);
        assert!(p.fault_plan().is_none());
        assert!(p.faults_mut().is_none());
    }
}
