//! `spp-trace`: structured event tracing and exporters.
//!
//! The paper's §6 credits the SPP-1000's hardware event counters and
//! the CXpa profiler for making the applications tunable "rapidly and
//! to good effect". Aggregate [`MemStats`] totals reproduce the
//! *counters*; this module reproduces the *event view*: a typed,
//! bounded, deterministic stream of protocol events — coherence
//! misses, SCI invalidation walks, GCB rollouts, barrier arrivals and
//! releases, fork/join spans, PVM message traffic, fault and watchdog
//! firings — each stamped with simulated cycles, the issuing CPU and
//! its hypernode.
//!
//! ## Determinism contract
//!
//! The simulator is single-threaded and deterministic, and the trace
//! layer preserves that: no wall-clock time, host addresses or
//! randomness ever enter a [`TraceRecord`], and events are recorded in
//! the exact order the simulation produces them. Running the same
//! seeded workload twice therefore yields **byte-identical** exported
//! streams ([`perfetto_json`] output included), which CI diffs
//! directly. Timestamps are *simulated* cycles: machine-level events
//! carry the machine's cumulative access clock at the start of the
//! triggering access; runtime and PVM events carry the emitting
//! layer's own simulated clock (region start times, task clocks).
//!
//! ## Zero overhead when off
//!
//! Tracing is off by default. The machine's hot paths pay exactly one
//! `Option` discriminant test per *event site* (miss service,
//! invalidation walk, rollout — never per hit), and the batched run
//! fast path is untouched for the hit-priced remainder of each line,
//! so simulated cycle counts are bit-identical with tracing on or off
//! and host-time overhead with tracing off is below the noise floor
//! (`repro-trace` measures it).

use crate::config::NodeId;
use crate::fault::HardFault;
use crate::latency::Cycles;
use crate::machine::Machine;
use crate::stats::MemStats;
use crate::watchdog::StallKind;
use std::collections::VecDeque;

/// Sentinel CPU id for events not attributable to a single CPU
/// (asynchronous GCB rollouts, link failures).
pub const NO_CPU: u16 = u16::MAX;

/// Sentinel node id for events not attributable to a hypernode.
pub const NO_NODE: u8 = u8::MAX;

/// Which service path a cache miss took. The four kinds partition
/// [`MemStats::misses`] exactly (see
/// [`MemStats::miss_partition_check`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissKind {
    /// Serviced by memory within the hypernode.
    Local,
    /// Serviced by the hypernode's global cache buffer.
    Gcb,
    /// Required an SCI ring transaction (including remote-dirty
    /// forwarding).
    Sci,
    /// Cache-to-cache transfer within the hypernode.
    C2c,
}

impl MissKind {
    /// Stable short label.
    pub fn label(&self) -> &'static str {
        match self {
            MissKind::Local => "local",
            MissKind::Gcb => "gcb",
            MissKind::Sci => "sci",
            MissKind::C2c => "c2c",
        }
    }
}

/// One typed simulation event. All payloads are plain integers so
/// records are `Copy` and serialize deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A cache miss was serviced (one per miss; `kind` selects the
    /// protocol path — a coherence transition out of Invalid).
    Miss {
        /// Service path.
        kind: MissKind,
        /// Cache line index (address >> line_shift).
        line: u64,
    },
    /// A write upgrade (Shared/Invalid -> Modified) by the stamped CPU.
    Upgrade {
        /// Cache line index.
        line: u64,
    },
    /// A serial SCI invalidation walk over remote sharing nodes.
    SciInvalWalk {
        /// Cache line index.
        line: u64,
        /// Remote hypernodes invalidated in the walk.
        nodes: u8,
    },
    /// A line was displaced from a global cache buffer.
    GcbRollout {
        /// The displaced line.
        line: u64,
    },
    /// A thread arrived at a barrier (stamp is the arrival time).
    BarrierArrive,
    /// A thread resumed past a barrier (stamp is the release time).
    BarrierRelease,
    /// One fork-join parallel region (stamp is the region start in
    /// runtime time; `dur` is fork-to-join elapsed).
    ForkSpan {
        /// Team size.
        threads: u16,
        /// Fork-to-join elapsed cycles.
        dur: Cycles,
    },
    /// A PVM message left the sender (stamp is its arrival time at
    /// the receiver's inbox, in the sender's task clock).
    PvmSend {
        /// Sending task index.
        from: u16,
        /// Receiving task index.
        to: u16,
        /// Message length.
        bytes: u64,
        /// User tag.
        tag: u32,
    },
    /// A PVM message was consumed by a receive (stamp is the
    /// receiver's clock after the receive path).
    PvmRecv {
        /// Sending task index.
        from: u16,
        /// Receiving task index.
        to: u16,
        /// Message length.
        bytes: u64,
        /// User tag.
        tag: u32,
    },
    /// A dropped send was retried after the retry timeout.
    PvmRetry {
        /// Sending task index.
        from: u16,
        /// Receiving task index.
        to: u16,
        /// User tag.
        tag: u32,
    },
    /// A scheduled hard fault fired.
    Fault(HardFault),
    /// A watchdog tripped on a protocol-level stall.
    Watchdog {
        /// What stalled.
        kind: StallKind,
    },
    /// A snoop transaction broadcast by the MESI backend (one per
    /// miss or upgrade that had to interrogate the other caches).
    Snoop {
        /// Cache line index.
        line: u64,
    },
    /// A write-update broadcast by the Dragon backend (one per write
    /// to a line with remote sharers).
    Update {
        /// Cache line index.
        line: u64,
        /// Caches whose copy was refreshed.
        sharers: u8,
    },
    /// A transient coherence fault was injected on a line (one per
    /// injection; `site` is the [`crate::FaultPlan`] decision-stream
    /// index of the fault kind).
    TransientFault {
        /// The corrupted cache line index.
        line: u64,
        /// Fault-site index (4..10; see `spp_core::fault`).
        site: u8,
    },
    /// The scrub-and-retry path repaired a transient coherence fault
    /// (one per recovery; `attempts` counts the scrubs it took).
    Recovery {
        /// The repaired cache line index.
        line: u64,
        /// Scrub attempts spent (>= 1).
        attempts: u32,
    },
    /// The stamped CPU was the straggler of a barrier interval: the
    /// last arrival, holding every other thread for `stall` cycles in
    /// total (see `spp_runtime::interval`).
    Straggler {
        /// Sum of the other threads' wait for this straggler.
        stall: Cycles,
    },
    /// A liveness heartbeat from a supervised fleet cell (see the
    /// scenario engine): `seq` increments per beat, `progress` is the
    /// watchdog clock's simulated-cycle progress at the beat.
    Heartbeat {
        /// Beat sequence number within the cell.
        seq: u32,
        /// Simulated cycles of progress at the beat.
        progress: Cycles,
    },
}

/// Number of distinct event-kind slots in [`TraceSink::counts`]
/// (misses occupy one slot per [`MissKind`]).
pub const N_EVENT_KINDS: usize = 21;

impl TraceEvent {
    /// Dense kind index into a `[u64; N_EVENT_KINDS]` count array.
    pub fn kind_index(&self) -> usize {
        match self {
            TraceEvent::Miss {
                kind: MissKind::Local,
                ..
            } => 0,
            TraceEvent::Miss {
                kind: MissKind::Gcb,
                ..
            } => 1,
            TraceEvent::Miss {
                kind: MissKind::Sci,
                ..
            } => 2,
            TraceEvent::Miss {
                kind: MissKind::C2c,
                ..
            } => 3,
            TraceEvent::Upgrade { .. } => 4,
            TraceEvent::SciInvalWalk { .. } => 5,
            TraceEvent::GcbRollout { .. } => 6,
            TraceEvent::BarrierArrive => 7,
            TraceEvent::BarrierRelease => 8,
            TraceEvent::ForkSpan { .. } => 9,
            TraceEvent::PvmSend { .. } => 10,
            TraceEvent::PvmRecv { .. } => 11,
            TraceEvent::PvmRetry { .. } => 12,
            TraceEvent::Fault(_) => 13,
            TraceEvent::Watchdog { .. } => 14,
            TraceEvent::Snoop { .. } => 15,
            TraceEvent::Update { .. } => 16,
            TraceEvent::TransientFault { .. } => 17,
            TraceEvent::Recovery { .. } => 18,
            TraceEvent::Straggler { .. } => 19,
            TraceEvent::Heartbeat { .. } => 20,
        }
    }

    /// Stable label for a kind index (exporters and reports).
    pub fn kind_label(index: usize) -> &'static str {
        const LABELS: [&str; N_EVENT_KINDS] = [
            "miss-local",
            "miss-gcb",
            "miss-sci",
            "miss-c2c",
            "upgrade",
            "sci-inval-walk",
            "gcb-rollout",
            "barrier-arrive",
            "barrier-release",
            "fork-span",
            "pvm-send",
            "pvm-recv",
            "pvm-retry",
            "hard-fault",
            "watchdog",
            "snoop",
            "update",
            "transient-fault",
            "recovery",
            "straggler",
            "heartbeat",
        ];
        LABELS[index]
    }

    /// This event's label.
    pub fn label(&self) -> &'static str {
        Self::kind_label(self.kind_index())
    }
}

/// One stamped event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Simulated-cycle stamp (see the module docs for which clock).
    pub at: Cycles,
    /// Issuing CPU, or [`NO_CPU`].
    pub cpu: u16,
    /// Issuing CPU's hypernode, or [`NO_NODE`].
    pub node: u8,
    /// The event.
    pub event: TraceEvent,
}

/// Where trace records go. Implementations must be deterministic:
/// recording the same sequence twice must leave the sink in the same
/// observable state.
pub trait TraceSink: std::fmt::Debug {
    /// Accept one record.
    fn record(&mut self, rec: TraceRecord);
    /// Snapshot of retained records, oldest first.
    fn events(&self) -> Vec<TraceRecord>;
    /// Total records seen per kind index — counted even when the
    /// bounded buffer had to drop the record itself, so counts always
    /// reconcile with [`MemStats`] deltas.
    fn counts(&self) -> [u64; N_EVENT_KINDS];
    /// Records dropped because the buffer was full.
    fn dropped(&self) -> u64;
    /// Forget all retained records and counts.
    fn clear(&mut self);
    /// Clone into a box (lets `Machine` stay `Clone`).
    fn box_clone(&self) -> Box<dyn TraceSink>;
}

impl Clone for Box<dyn TraceSink> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// A sink that discards everything (mounting it is equivalent to
/// tracing being off, minus the per-site branch).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: TraceRecord) {}
    fn events(&self) -> Vec<TraceRecord> {
        Vec::new()
    }
    fn counts(&self) -> [u64; N_EVENT_KINDS] {
        [0; N_EVENT_KINDS]
    }
    fn dropped(&self) -> u64 {
        0
    }
    fn clear(&mut self) {}
    fn box_clone(&self) -> Box<dyn TraceSink> {
        Box::new(*self)
    }
}

/// A bounded ring of the most recent records plus total per-kind
/// counts (the counts are exact even past capacity).
#[derive(Debug, Clone)]
pub struct RingSink {
    cap: usize,
    buf: VecDeque<TraceRecord>,
    counts: [u64; N_EVENT_KINDS],
    dropped: u64,
}

impl RingSink {
    /// Default capacity (enough for the repro workloads' full streams).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A ring retaining the most recent `capacity` records.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            cap: capacity.max(1),
            buf: VecDeque::new(),
            counts: [0; N_EVENT_KINDS],
            dropped: 0,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: TraceRecord) {
        self.counts[rec.event.kind_index()] += 1;
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }
    fn events(&self) -> Vec<TraceRecord> {
        self.buf.iter().copied().collect()
    }
    fn counts(&self) -> [u64; N_EVENT_KINDS] {
        self.counts
    }
    fn dropped(&self) -> u64 {
        self.dropped
    }
    fn clear(&mut self) {
        self.buf.clear();
        self.counts = [0; N_EVENT_KINDS];
        self.dropped = 0;
    }
    fn box_clone(&self) -> Box<dyn TraceSink> {
        Box::new(self.clone())
    }
}

/// Format a cycle stamp as microseconds with two decimals (100 cycles
/// = 1 µs at the SPP-1000's 100 MHz), in pure integer arithmetic so
/// the output is byte-stable.
fn ts_us(cycles: Cycles) -> String {
    format!("{}.{:02}", cycles / 100, cycles % 100)
}

fn json_args(ev: &TraceEvent) -> String {
    match ev {
        TraceEvent::Miss { kind, line } => {
            format!("{{\"kind\":\"{}\",\"line\":{}}}", kind.label(), line)
        }
        TraceEvent::Upgrade { line } => format!("{{\"line\":{line}}}"),
        TraceEvent::SciInvalWalk { line, nodes } => {
            format!("{{\"line\":{line},\"nodes\":{nodes}}}")
        }
        TraceEvent::GcbRollout { line } => format!("{{\"line\":{line}}}"),
        TraceEvent::BarrierArrive | TraceEvent::BarrierRelease => "{}".to_string(),
        TraceEvent::ForkSpan { threads, dur } => {
            format!("{{\"threads\":{threads},\"dur_cycles\":{dur}}}")
        }
        TraceEvent::PvmSend {
            from,
            to,
            bytes,
            tag,
        }
        | TraceEvent::PvmRecv {
            from,
            to,
            bytes,
            tag,
        } => format!("{{\"from\":{from},\"to\":{to},\"bytes\":{bytes},\"tag\":{tag}}}"),
        TraceEvent::PvmRetry { from, to, tag } => {
            format!("{{\"from\":{from},\"to\":{to},\"tag\":{tag}}}")
        }
        TraceEvent::Fault(h) => format!("{{\"fault\":\"{}\"}}", h.label()),
        TraceEvent::Watchdog { kind } => format!("{{\"stall\":\"{}\"}}", kind.label()),
        TraceEvent::Snoop { line } => format!("{{\"line\":{line}}}"),
        TraceEvent::Update { line, sharers } => {
            format!("{{\"line\":{line},\"sharers\":{sharers}}}")
        }
        TraceEvent::TransientFault { line, site } => {
            format!("{{\"line\":{line},\"site\":{site}}}")
        }
        TraceEvent::Recovery { line, attempts } => {
            format!("{{\"line\":{line},\"attempts\":{attempts}}}")
        }
        TraceEvent::Straggler { stall } => format!("{{\"stall_cycles\":{stall}}}"),
        TraceEvent::Heartbeat { seq, progress } => {
            format!("{{\"seq\":{seq},\"progress\":{progress}}}")
        }
    }
}

/// Escape a string for embedding inside a JSON string literal:
/// quotes, backslashes, and every control or non-ASCII character
/// become escape sequences (`\uXXXX` with UTF-16 surrogate pairs for
/// astral code points), so exporter output stays well-formed and
/// byte-stable no matter what labels callers pick.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (' '..='\u{7e}').contains(&c) => out.push(c),
            c => {
                let mut units = [0u16; 2];
                for u in c.encode_utf16(&mut units) {
                    out.push_str(&format!("\\u{:04x}", u));
                }
            }
        }
    }
    out
}

/// Export records as Chrome/Perfetto `trace_event` JSON (load the
/// output directly in `ui.perfetto.dev` or `chrome://tracing`).
///
/// Track mapping: `pid` is the hypernode (255 = machine-level), `tid`
/// the global CPU id (65535 = node-level). [`TraceEvent::ForkSpan`]
/// becomes a complete (`"X"`) slice; everything else is an instant
/// (`"i"`) event. Timestamps are simulated microseconds. The output
/// is byte-deterministic for a deterministic record stream.
pub fn perfetto_json(records: &[TraceRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        // All built-in labels are plain ASCII, so escaping changes no
        // bytes for them — it exists for externally supplied names.
        let name = json_escape(r.event.label());
        let args = json_args(&r.event);
        match r.event {
            TraceEvent::ForkSpan { dur, .. } => {
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":{},\"tid\":{},\"args\":{args}}}",
                    ts_us(r.at),
                    ts_us(dur),
                    r.node,
                    r.cpu
                ));
            }
            _ => {
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                     \"pid\":{},\"tid\":{},\"args\":{args}}}",
                    ts_us(r.at),
                    r.node,
                    r.cpu
                ));
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Like [`perfetto_json`], with Perfetto counter (`"C"`) tracks
/// riding the same timeline: cumulative miss-mix counters (one track
/// per [`MissKind`]) plus upgrades, emitted at every record whose
/// event moves them. Counter events live on pid 255 (machine level)
/// so they render as machine-wide tracks above the per-node rows. A
/// single pass, byte-deterministic for a deterministic record stream.
pub fn perfetto_json_with_counters(records: &[TraceRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut miss = [0u64; 4];
    let mut upgrades = 0u64;
    let mut first = true;
    let mut push = |out: &mut String, s: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&s);
    };
    for r in records {
        let name = json_escape(r.event.label());
        let args = json_args(&r.event);
        match r.event {
            TraceEvent::ForkSpan { dur, .. } => {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                         \"pid\":{},\"tid\":{},\"args\":{args}}}",
                        ts_us(r.at),
                        ts_us(dur),
                        r.node,
                        r.cpu
                    ),
                );
            }
            _ => {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                         \"pid\":{},\"tid\":{},\"args\":{args}}}",
                        ts_us(r.at),
                        r.node,
                        r.cpu
                    ),
                );
            }
        }
        let counter = match r.event {
            TraceEvent::Miss { kind, .. } => {
                let i = match kind {
                    MissKind::Local => 0,
                    MissKind::Gcb => 1,
                    MissKind::Sci => 2,
                    MissKind::C2c => 3,
                };
                miss[i] += 1;
                Some((format!("miss-{}", kind.label()), miss[i]))
            }
            TraceEvent::Upgrade { .. } => {
                upgrades += 1;
                Some(("upgrades".to_string(), upgrades))
            }
            _ => None,
        };
        if let Some((track, value)) = counter {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{track}\",\"ph\":\"C\",\"ts\":{},\"pid\":255,\
                     \"args\":{{\"count\":{value}}}}}",
                    ts_us(r.at)
                ),
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

/// The single source of truth mapping every [`MemStats`] field to its
/// exported name, in struct-declaration order. Exporters iterate this
/// table, and the `exporters_cover_every_memstats_field` test fails
/// whenever a field is added to the struct without a row here — the
/// audit that keeps [`memstats_json`] and [`spp_top`] complete.
#[allow(clippy::type_complexity)]
pub const MEMSTATS_FIELDS: [(&str, fn(&MemStats) -> u64); 21] = [
    ("reads", |s| s.reads),
    ("writes", |s| s.writes),
    ("hits", |s| s.hits),
    ("local_misses", |s| s.local_misses),
    ("gcb_hits", |s| s.gcb_hits),
    ("sci_fetches", |s| s.sci_fetches),
    ("remote_dirty_fetches", |s| s.remote_dirty_fetches),
    ("c2c_transfers", |s| s.c2c_transfers),
    ("upgrades", |s| s.upgrades),
    ("invalidations", |s| s.invalidations),
    ("sci_invalidations", |s| s.sci_invalidations),
    ("evictions", |s| s.evictions),
    ("writebacks", |s| s.writebacks),
    ("gcb_rollouts", |s| s.gcb_rollouts),
    ("uncached_ops", |s| s.uncached_ops),
    ("ring_stalls", |s| s.ring_stalls),
    ("link_reroutes", |s| s.link_reroutes),
    ("snoops", |s| s.snoops),
    ("updates", |s| s.updates),
    ("recoveries", |s| s.recoveries),
    ("recovery_retries", |s| s.recovery_retries),
];

/// One `MemStats` as a flat JSON object (hand-rolled: the workspace
/// has no serde). Fields come from [`MEMSTATS_FIELDS`], so the output
/// always covers the whole struct.
pub fn memstats_json(s: &MemStats) -> String {
    let mut out = String::from("{");
    for (i, (name, get)) in MEMSTATS_FIELDS.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {}", name, get(s)));
    }
    out.push('}');
    out
}

/// Flat metrics snapshot of a machine as JSON: clock, global stats,
/// the per-hypernode and per-CPU breakdowns, and (when a tracer is
/// mounted) the per-kind event counts. Consumed by the repro binaries.
pub fn metrics_json(m: &Machine) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"clock\": {},\n", m.clock()));
    out.push_str(&format!("  \"global\": {},\n", memstats_json(&m.stats)));
    out.push_str("  \"nodes\": [\n");
    for n in 0..m.config().hypernodes {
        let s = m.node_stats(NodeId(n as u8));
        out.push_str(&format!(
            "    {}{}\n",
            memstats_json(&s),
            if n + 1 < m.config().hypernodes {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n  \"cpus\": [\n");
    let per_cpu = m.per_cpu_stats();
    for (c, s) in per_cpu.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            memstats_json(s),
            if c + 1 < per_cpu.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]");
    if let Some(t) = m.tracer() {
        let counts = t.counts();
        out.push_str(",\n  \"events\": {");
        for (i, c) in counts.iter().enumerate() {
            out.push_str(&format!(
                "\"{}\": {}{}",
                TraceEvent::kind_label(i),
                c,
                if i + 1 < counts.len() { ", " } else { "" }
            ));
        }
        out.push_str(&format!("}},\n  \"events_dropped\": {}", t.dropped()));
    }
    out.push_str("\n}\n");
    out
}

/// A human `spp-top`-style summary: per-hypernode and per-CPU miss
/// mix, plus event totals when tracing is on.
pub fn spp_top(m: &Machine) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "machine: {} hypernode(s), {} cpus, clock {} cycles ({:.1} ms)\n",
        m.config().hypernodes,
        m.config().num_cpus(),
        m.clock(),
        m.clock() as f64 * 1e-5,
    ));
    out.push_str(
        "unit     accesses     hit%    local      gcb      sci      c2c  rollout\n\
         -----------------------------------------------------------------------\n",
    );
    let mut row = |label: String, s: &MemStats| {
        out.push_str(&format!(
            "{:<8} {:>8} {:>8.2} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
            label,
            s.accesses(),
            100.0 * s.hit_rate(),
            s.local_misses,
            s.gcb_hits,
            s.sci_fetches,
            s.c2c_transfers,
            s.gcb_rollouts
        ));
    };
    row("machine".to_string(), &m.stats);
    for n in 0..m.config().hypernodes {
        let s = m.node_stats(NodeId(n as u8));
        row(format!("node {n}"), &s);
    }
    for (c, s) in m.per_cpu_stats().iter().enumerate() {
        if s.accesses() == 0 && s.uncached_ops == 0 {
            continue;
        }
        row(format!("cpu {c}"), s);
    }
    out.push_str("counters:");
    for (name, get) in MEMSTATS_FIELDS.iter() {
        out.push_str(&format!(" {}={}", name, get(&m.stats)));
    }
    out.push('\n');
    if let Some(t) = m.tracer() {
        out.push_str("events:");
        for (i, c) in t.counts().iter().enumerate() {
            if *c > 0 {
                out.push_str(&format!(" {}={}", TraceEvent::kind_label(i), c));
            }
        }
        if t.dropped() > 0 {
            out.push_str(&format!(" (dropped={})", t.dropped()));
        }
        out.push('\n');
    }
    out
}

/// Convenience: a record stamped from a machine-external layer. Takes
/// raw ids so the [`NO_CPU`]/[`NO_NODE`] sentinels can be passed
/// directly for system-level events.
pub fn record(at: Cycles, cpu: u16, node: u8, event: TraceEvent) -> TraceRecord {
    TraceRecord {
        at,
        cpu,
        node,
        event,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: Cycles, ev: TraceEvent) -> TraceRecord {
        TraceRecord {
            at,
            cpu: 0,
            node: 0,
            event: ev,
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_past_capacity() {
        let mut ring = RingSink::new(4);
        for i in 0..10 {
            ring.record(rec(
                i,
                TraceEvent::Miss {
                    kind: MissKind::Local,
                    line: i,
                },
            ));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.counts()[0], 10, "counts are exact past capacity");
        let evs = ring.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].at, 6, "oldest retained record");
        assert_eq!(evs[3].at, 9);
    }

    #[test]
    fn null_sink_retains_nothing() {
        let mut s = NullSink;
        s.record(rec(1, TraceEvent::BarrierArrive));
        assert!(s.events().is_empty());
        assert_eq!(s.counts(), [0; N_EVENT_KINDS]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut ring = RingSink::new(8);
        ring.record(rec(1, TraceEvent::Upgrade { line: 3 }));
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.counts(), [0; N_EVENT_KINDS]);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn kind_labels_are_distinct_and_total() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..N_EVENT_KINDS {
            assert!(seen.insert(TraceEvent::kind_label(i)));
        }
    }

    #[test]
    fn timestamps_are_integer_formatted_microseconds() {
        assert_eq!(ts_us(0), "0.00");
        assert_eq!(ts_us(150), "1.50");
        assert_eq!(ts_us(12_345), "123.45");
    }

    #[test]
    fn ring_counts_stay_exact_when_the_kind_mix_changes_mid_run() {
        let mut ring = RingSink::new(8);
        // Phase 1: misses and upgrades well past capacity.
        for i in 0..20 {
            ring.record(rec(
                i,
                TraceEvent::Miss {
                    kind: MissKind::Sci,
                    line: i,
                },
            ));
            ring.record(rec(i, TraceEvent::Upgrade { line: i }));
        }
        // Phase 2: the mix changes — new insight/telemetry kinds.
        for i in 0..15 {
            ring.record(rec(100 + i, TraceEvent::Straggler { stall: 10 * i }));
            ring.record(rec(
                100 + i,
                TraceEvent::Heartbeat {
                    seq: i as u32,
                    progress: i,
                },
            ));
        }
        let c = ring.counts();
        assert_eq!(c[2], 20, "sci misses exact past capacity");
        assert_eq!(c[4], 20, "upgrades exact past capacity");
        assert_eq!(c[19], 15, "stragglers exact");
        assert_eq!(c[20], 15, "heartbeats exact");
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.dropped(), 70 - 8);
        // The retained window is the newest records only.
        assert!(ring.events().iter().all(|r| matches!(
            r.event,
            TraceEvent::Straggler { .. } | TraceEvent::Heartbeat { .. }
        )));
    }

    #[test]
    fn json_escape_handles_quotes_controls_and_non_ascii() {
        assert_eq!(json_escape("plain-ascii_42"), "plain-ascii_42");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("café"), "caf\\u00e9");
        // Astral code point: UTF-16 surrogate pair.
        assert_eq!(json_escape("𝕏"), "\\ud835\\udd4f");
    }

    #[test]
    fn exporters_cover_every_memstats_field() {
        // Exhaustive destructuring: adding a MemStats field without
        // updating this test (and MEMSTATS_FIELDS) fails to compile.
        let s = MemStats {
            reads: 1,
            writes: 2,
            hits: 3,
            local_misses: 4,
            gcb_hits: 5,
            sci_fetches: 6,
            remote_dirty_fetches: 7,
            c2c_transfers: 8,
            upgrades: 9,
            invalidations: 10,
            sci_invalidations: 11,
            evictions: 12,
            writebacks: 13,
            gcb_rollouts: 14,
            uncached_ops: 15,
            ring_stalls: 16,
            link_reroutes: 17,
            snoops: 18,
            updates: 19,
            recoveries: 20,
            recovery_retries: 21,
        };
        let MemStats {
            reads,
            writes,
            hits,
            local_misses,
            gcb_hits,
            sci_fetches,
            remote_dirty_fetches,
            c2c_transfers,
            upgrades,
            invalidations,
            sci_invalidations,
            evictions,
            writebacks,
            gcb_rollouts,
            uncached_ops,
            ring_stalls,
            link_reroutes,
            snoops,
            updates,
            recoveries,
            recovery_retries,
        } = s;
        let values = [
            reads,
            writes,
            hits,
            local_misses,
            gcb_hits,
            sci_fetches,
            remote_dirty_fetches,
            c2c_transfers,
            upgrades,
            invalidations,
            sci_invalidations,
            evictions,
            writebacks,
            gcb_rollouts,
            uncached_ops,
            ring_stalls,
            link_reroutes,
            snoops,
            updates,
            recoveries,
            recovery_retries,
        ];
        assert_eq!(
            values.len(),
            MEMSTATS_FIELDS.len(),
            "MEMSTATS_FIELDS must cover every MemStats field"
        );
        // The table's accessors read the fields in declaration order.
        for ((name, get), v) in MEMSTATS_FIELDS.iter().zip(values.iter()) {
            assert_eq!(get(&s), *v, "accessor for {name} reads the wrong field");
        }
        // And both exporters surface every field by name.
        let json = memstats_json(&s);
        let m = Machine::spp1000(1);
        let top = spp_top(&m);
        for (name, _) in MEMSTATS_FIELDS.iter() {
            assert!(
                json.contains(&format!("\"{name}\": ")),
                "{name} not in json"
            );
            assert!(top.contains(&format!(" {name}=")), "{name} not in spp_top");
        }
    }

    #[test]
    fn counter_tracks_ride_the_timeline() {
        let records = vec![
            rec(
                10,
                TraceEvent::Miss {
                    kind: MissKind::Sci,
                    line: 1,
                },
            ),
            rec(20, TraceEvent::Upgrade { line: 1 }),
            rec(
                30,
                TraceEvent::Miss {
                    kind: MissKind::Sci,
                    line: 2,
                },
            ),
            rec(40, TraceEvent::BarrierArrive),
        ];
        let a = perfetto_json_with_counters(&records);
        let b = perfetto_json_with_counters(&records);
        assert_eq!(a, b, "byte-deterministic");
        assert!(a.contains("\"ph\":\"C\""));
        assert!(a.contains("\"name\":\"miss-sci\",\"ph\":\"C\""));
        assert!(a.contains("\"count\":2"), "cumulative counter: {a}");
        assert!(a.contains("\"name\":\"upgrades\",\"ph\":\"C\""));
        // The plain instant events are still all present.
        assert_eq!(a.matches("\"ph\":\"i\"").count(), 4);
    }

    #[test]
    fn perfetto_export_is_deterministic_and_wellformed() {
        let records = vec![
            rec(
                100,
                TraceEvent::Miss {
                    kind: MissKind::Sci,
                    line: 42,
                },
            ),
            rec(
                250,
                TraceEvent::ForkSpan {
                    threads: 8,
                    dur: 1_000,
                },
            ),
            rec(
                300,
                TraceEvent::Watchdog {
                    kind: StallKind::Barrier,
                },
            ),
        ];
        let a = perfetto_json(&records);
        let b = perfetto_json(&records);
        assert_eq!(a, b);
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"miss-sci\""));
        assert!(a.contains("\"ph\":\"X\""), "fork span is a slice: {a}");
        assert!(a.contains("\"dur\":10.00"));
        assert!(a.ends_with("]}\n"));
    }
}
