//! System topology: processors, functional units, hypernodes, rings.
//!
//! The SPP-1000 is a three-level structure (paper §2.1):
//!
//! * **Functional unit (FU)** — two HP PA-RISC 7100 CPUs, two memory
//!   banks (up to 16 MB each), the CCMC coherence logic and the
//!   communication "agent".
//! * **Hypernode** — four FUs joined by a five-port crossbar (the fifth
//!   port is I/O).
//! * **System** — up to 16 hypernodes joined by four parallel SCI
//!   rings; FU *i* of every hypernode sits on ring *i*.
//!
//! The simulator accepts topologies beyond the paper's hardware: up
//! to [`MAX_HYPERNODES`] hypernodes (1024 CPUs), the SPP-2000 /
//! Exemplar X-class scale the ROADMAP's protocol sweeps target.
//! Sparse directory and cache state keeps those machines cheap to
//! build (allocation is proportional to touched lines).

use crate::error::ConfigError;
use crate::latency::LatencyModel;

/// Largest hypernode count the simulator models (128 hypernodes ×
/// 8 CPUs = 1024 CPUs). The paper's hardware tops out at 16.
pub const MAX_HYPERNODES: usize = 128;

/// Identifies one CPU globally (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpuId(pub u16);

/// Identifies one functional unit globally (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuId(pub u16);

/// Identifies one hypernode (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u8);

/// Identifies one of the four SCI rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RingId(pub u8);

/// Static machine description. [`MachineConfig::spp1000`] builds the
/// configuration of the paper's testbed (2 hypernodes, 16 CPUs).
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of hypernodes (1..=[`MAX_HYPERNODES`]).
    pub hypernodes: usize,
    /// Functional units per hypernode (4 on the SPP-1000).
    pub fus_per_node: usize,
    /// CPUs per functional unit (2 on the SPP-1000).
    pub cpus_per_fu: usize,
    /// Per-CPU external data cache size in bytes (1 MB).
    pub cache_bytes: usize,
    /// Cache line size in bytes (32).
    pub line_bytes: usize,
    /// Virtual-memory page size in bytes (4 KB).
    pub page_bytes: usize,
    /// Global cache buffer (SCI network cache) partition per FU, bytes.
    pub gcb_bytes: usize,
    /// Latency/cost model, in 10 ns CPU cycles.
    pub latency: LatencyModel,
}

impl MachineConfig {
    /// The configuration measured in the paper: two hypernodes of
    /// 4 FUs x 2 CPUs (16 processors), 1 MB direct-mapped data caches
    /// with 32-byte lines, and a 4 MB global cache buffer per FU.
    pub fn spp1000(hypernodes: usize) -> Self {
        Self::try_spp1000(hypernodes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`MachineConfig::spp1000`]: returns
    /// [`ConfigError::Hypernodes`] instead of panicking on a count
    /// outside 1..=[`MAX_HYPERNODES`].
    pub fn try_spp1000(hypernodes: usize) -> Result<Self, ConfigError> {
        if !(1..=MAX_HYPERNODES).contains(&hypernodes) {
            return Err(ConfigError::Hypernodes { got: hypernodes });
        }
        Ok(MachineConfig {
            hypernodes,
            fus_per_node: 4,
            cpus_per_fu: 2,
            cache_bytes: 1 << 20,
            line_bytes: 32,
            page_bytes: 4096,
            gcb_bytes: 4 << 20,
            latency: LatencyModel::spp1000(),
        })
    }

    /// Check that this configuration describes a machine the simulator
    /// can model: 1..=[`MAX_HYPERNODES`] hypernodes, nonzero
    /// power-of-two geometry, and cache lines that fit in a page.
    /// [`crate::Machine::try_new`] calls this before building any
    /// state.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(1..=MAX_HYPERNODES).contains(&self.hypernodes) {
            return Err(ConfigError::Hypernodes {
                got: self.hypernodes,
            });
        }
        for (field, got) in [
            ("fus_per_node", self.fus_per_node),
            ("cpus_per_fu", self.cpus_per_fu),
        ] {
            if got == 0 {
                return Err(ConfigError::Zero { field });
            }
        }
        for (field, got) in [
            ("line_bytes", self.line_bytes),
            ("page_bytes", self.page_bytes),
        ] {
            if got == 0 {
                return Err(ConfigError::Zero { field });
            }
            if !got.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo { field, got });
            }
        }
        for (field, got) in [
            ("cache_lines", self.cache_bytes / self.line_bytes),
            ("gcb_lines", self.gcb_bytes / self.line_bytes),
        ] {
            if got == 0 {
                return Err(ConfigError::Zero { field });
            }
            if !got.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo { field, got });
            }
        }
        if self.line_bytes > self.page_bytes {
            return Err(ConfigError::LineExceedsPage {
                line: self.line_bytes,
                page: self.page_bytes,
            });
        }
        Ok(())
    }

    /// A deliberately tiny configuration for unit tests: small caches
    /// make capacity/conflict behaviour easy to provoke.
    pub fn tiny(hypernodes: usize) -> Self {
        MachineConfig {
            cache_bytes: 1 << 10,
            gcb_bytes: 2 << 10,
            ..Self::spp1000(hypernodes)
        }
    }

    /// Total CPUs in the system.
    pub fn num_cpus(&self) -> usize {
        self.hypernodes * self.fus_per_node * self.cpus_per_fu
    }

    /// Total functional units in the system.
    pub fn num_fus(&self) -> usize {
        self.hypernodes * self.fus_per_node
    }

    /// CPUs per hypernode.
    pub fn cpus_per_node(&self) -> usize {
        self.fus_per_node * self.cpus_per_fu
    }

    /// Cache lines per CPU cache.
    pub fn cache_lines(&self) -> usize {
        self.cache_bytes / self.line_bytes
    }

    /// Lines per FU global cache buffer.
    pub fn gcb_lines(&self) -> usize {
        self.gcb_bytes / self.line_bytes
    }

    /// The hypernode a CPU belongs to.
    pub fn node_of_cpu(&self, cpu: CpuId) -> NodeId {
        NodeId((cpu.0 as usize / self.cpus_per_node()) as u8)
    }

    /// The functional unit a CPU belongs to.
    pub fn fu_of_cpu(&self, cpu: CpuId) -> FuId {
        FuId(cpu.0 / self.cpus_per_fu as u16)
    }

    /// The hypernode a functional unit belongs to.
    pub fn node_of_fu(&self, fu: FuId) -> NodeId {
        NodeId((fu.0 as usize / self.fus_per_node) as u8)
    }

    /// The SCI ring a functional unit is attached to. FU *i* within
    /// each hypernode connects to ring *i*, so the ring joins one
    /// quarter of the system's memory.
    pub fn ring_of_fu(&self, fu: FuId) -> RingId {
        RingId((fu.0 as usize % self.fus_per_node) as u8)
    }

    /// The functional unit in `node` that sits on `ring` (the local
    /// gateway through which that node reaches remote memory on the
    /// ring).
    pub fn gateway_fu(&self, node: NodeId, ring: RingId) -> FuId {
        FuId((node.0 as usize * self.fus_per_node + ring.0 as usize) as u16)
    }

    /// CPU index within its hypernode (0..cpus_per_node).
    pub fn cpu_index_in_node(&self, cpu: CpuId) -> usize {
        cpu.0 as usize % self.cpus_per_node()
    }

    /// Iterator over every CPU id.
    pub fn cpus(&self) -> impl Iterator<Item = CpuId> {
        (0..self.num_cpus() as u16).map(CpuId)
    }

    /// Round-trip hop count for an SCI ring transaction. On a
    /// unidirectional ring of `n` stations the request travels
    /// `(dst - src) mod n` hops and the response `(src - dst) mod n`,
    /// so any remote round trip traverses the full ring.
    pub fn ring_round_trip_hops(&self, src: NodeId, dst: NodeId) -> u64 {
        if src == dst {
            0
        } else {
            self.hypernodes as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_has_16_cpus() {
        let c = MachineConfig::spp1000(2);
        assert_eq!(c.num_cpus(), 16);
        assert_eq!(c.num_fus(), 8);
        assert_eq!(c.cpus_per_node(), 8);
    }

    #[test]
    fn full_system_has_128_cpus() {
        let c = MachineConfig::spp1000(16);
        assert_eq!(c.num_cpus(), 128);
    }

    #[test]
    fn cache_geometry_matches_paper() {
        let c = MachineConfig::spp1000(2);
        assert_eq!(c.cache_lines(), 32768); // 1 MB / 32 B
        assert_eq!(c.line_bytes, 32);
    }

    #[test]
    fn cpu_fu_node_mapping() {
        let c = MachineConfig::spp1000(2);
        // CPUs 0..8 on node 0, 8..16 on node 1.
        assert_eq!(c.node_of_cpu(CpuId(0)), NodeId(0));
        assert_eq!(c.node_of_cpu(CpuId(7)), NodeId(0));
        assert_eq!(c.node_of_cpu(CpuId(8)), NodeId(1));
        assert_eq!(c.fu_of_cpu(CpuId(0)), FuId(0));
        assert_eq!(c.fu_of_cpu(CpuId(1)), FuId(0));
        assert_eq!(c.fu_of_cpu(CpuId(2)), FuId(1));
        assert_eq!(c.fu_of_cpu(CpuId(15)), FuId(7));
        assert_eq!(c.node_of_fu(FuId(7)), NodeId(1));
    }

    #[test]
    fn ring_attachment() {
        let c = MachineConfig::spp1000(2);
        assert_eq!(c.ring_of_fu(FuId(0)), RingId(0));
        assert_eq!(c.ring_of_fu(FuId(3)), RingId(3));
        assert_eq!(c.ring_of_fu(FuId(4)), RingId(0)); // node 1, FU 0
        assert_eq!(c.gateway_fu(NodeId(1), RingId(2)), FuId(6));
    }

    #[test]
    fn ring_round_trip_is_full_ring() {
        let c = MachineConfig::spp1000(4);
        assert_eq!(c.ring_round_trip_hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(c.ring_round_trip_hops(NodeId(0), NodeId(3)), 4);
        assert_eq!(c.ring_round_trip_hops(NodeId(3), NodeId(1)), 4);
    }

    #[test]
    #[should_panic(expected = "1..=128")]
    fn rejects_oversize_system() {
        MachineConfig::spp1000(MAX_HYPERNODES + 1);
    }

    #[test]
    fn extended_topologies_up_to_1024_cpus() {
        let c = MachineConfig::spp1000(MAX_HYPERNODES);
        assert_eq!(c.num_cpus(), 1024);
        assert_eq!(c.num_fus(), 512);
        assert!(c.validate().is_ok());
        assert_eq!(c.ring_round_trip_hops(NodeId(0), NodeId(127)), 128);
    }

    #[test]
    fn validate_accepts_the_shipped_configs() {
        assert!(MachineConfig::spp1000(2).validate().is_ok());
        assert!(MachineConfig::spp1000(16).validate().is_ok());
        assert!(MachineConfig::tiny(4).validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        assert!(matches!(
            MachineConfig::try_spp1000(0),
            Err(ConfigError::Hypernodes { got: 0 })
        ));
        let mut c = MachineConfig::spp1000(2);
        c.line_bytes = 48;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NotPowerOfTwo {
                field: "line_bytes",
                got: 48
            })
        ));
        let mut c = MachineConfig::spp1000(2);
        c.line_bytes = 8192;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::LineExceedsPage { .. })
        ));
        let mut c = MachineConfig::spp1000(2);
        c.cpus_per_fu = 0;
        assert!(matches!(c.validate(), Err(ConfigError::Zero { .. })));
    }
}
