//! Per-CPU external data cache model: direct-mapped, 1 MB, 32-byte
//! lines (paper §2.2).
//!
//! The PA-7100's caches are physically external SRAM; the SPP-1000's
//! CCMC keeps them coherent. We model the data cache only — the paper
//! folds instruction fetch into its "one data access and one
//! instruction fetch per cycle" throughput statement, which we absorb
//! into the per-flop compute cost.
//!
//! Line states cover all three pluggable protocols: the DASH+SCI
//! stack uses the MSI subset, the snooping MESI backend adds
//! [`LineState::Exclusive`], and the update-based Dragon backend adds
//! [`LineState::OwnedShared`] (its `Sm` state).
//!
//! Storage is *sparse*: a [`LineMap`] keyed by the direct-mapped slot
//! index holds only the touched lines, so a 128-hypernode ×
//! 1024-CPU machine allocates memory proportional to its working
//! set, not to aggregate cache capacity. The sparse form is
//! observationally identical to the historical dense tag/state
//! arrays: an invalidated slot behaves exactly like a removed one
//! (lookup misses, a refill is not an eviction, `entries` skips it),
//! and [`Cache::entries`] reports lines in ascending slot order — the
//! dense iteration order every downstream consumer (checker sweep,
//! snapshot capture, GCB degrade) was built on.

use crate::linemap::LineMap;

/// Coherence state of a cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Not present (or invalidated).
    Invalid,
    /// Present, read-only, possibly shared by other caches.
    Shared,
    /// Present, writable, this cache holds the only valid copy.
    Modified,
    /// Present, clean, sole cached copy system-wide (MESI `E`): a
    /// write promotes it to [`LineState::Modified`] silently.
    Exclusive,
    /// Present, dirty, shared with other caches (Dragon `Sm`): this
    /// cache owns the line and supplies/updates the other copies.
    OwnedShared,
}

impl LineState {
    /// True when the line holds a dirty copy that must be written
    /// back on displacement ([`LineState::Modified`] or
    /// [`LineState::OwnedShared`]).
    #[inline]
    pub fn is_dirty(&self) -> bool {
        matches!(self, LineState::Modified | LineState::OwnedShared)
    }
}

/// What a lookup found, and which victim (if any) a fill would evict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line address of the evicted victim.
    pub line: u64,
    /// Victim state at eviction (never `Invalid`).
    pub state: LineState,
}

/// A direct-mapped cache: a sparse slot → `(line, state)` map indexed
/// by `line_addr % num_lines`.
#[derive(Debug, Clone)]
pub struct Cache {
    lines: LineMap<(u64, LineState)>,
    num_lines: usize,
    mask: u64,
}

impl Cache {
    /// Create a cache of `num_lines` lines (must be a power of two).
    pub fn new(num_lines: usize) -> Self {
        assert!(num_lines.is_power_of_two(), "cache lines must be 2^k");
        Cache {
            lines: LineMap::new(),
            num_lines,
            mask: num_lines as u64 - 1,
        }
    }

    #[inline]
    fn idx(&self, line: u64) -> u64 {
        line & self.mask
    }

    /// State of `line` in this cache.
    #[inline]
    pub fn lookup(&self, line: u64) -> LineState {
        match self.lines.get(self.idx(line)) {
            Some((tag, state)) if *tag == line => *state,
            _ => LineState::Invalid,
        }
    }

    /// Install `line` with `state`, returning the victim this fill
    /// displaced (if the slot held a different valid line).
    #[inline]
    pub fn fill(&mut self, line: u64, state: LineState) -> Option<Evicted> {
        debug_assert_ne!(state, LineState::Invalid);
        let i = self.idx(line);
        let victim = match self.lines.get(i) {
            Some((tag, s)) if *tag != line => Some(Evicted {
                line: *tag,
                state: *s,
            }),
            _ => None,
        };
        self.lines.insert(i, (line, state));
        victim
    }

    /// The victim a [`Cache::fill`] of `line` would displace, without
    /// changing any state (used by cost peeking).
    #[inline]
    pub fn peek_victim(&self, line: u64) -> Option<Evicted> {
        match self.lines.get(self.idx(line)) {
            Some((tag, s)) if *tag != line => Some(Evicted {
                line: *tag,
                state: *s,
            }),
            _ => None,
        }
    }

    /// Change the state of a resident line (e.g. Shared -> Modified on
    /// a write upgrade, Modified -> Shared on a downgrade).
    #[inline]
    pub fn set_state(&mut self, line: u64, state: LineState) {
        debug_assert_ne!(state, LineState::Invalid, "use invalidate instead");
        let i = self.idx(line);
        match self.lines.get_mut(i) {
            Some(entry) if entry.0 == line => entry.1 = state,
            _ => debug_assert!(false, "set_state on non-resident line"),
        }
    }

    /// Invalidate `line` if resident; returns its prior state.
    #[inline]
    pub fn invalidate(&mut self, line: u64) -> LineState {
        let i = self.idx(line);
        match self.lines.get(i) {
            Some((tag, _)) if *tag == line => {
                self.lines.remove(i).map_or(LineState::Invalid, |(_, s)| s)
            }
            _ => LineState::Invalid,
        }
    }

    /// Drop every line (used between benchmark repetitions).
    pub fn flush(&mut self) {
        self.lines.clear();
    }

    /// Number of currently valid lines (O(1); also the touched-line
    /// footprint the sparse representation actually allocates for).
    pub fn valid_lines(&self) -> usize {
        self.lines.len()
    }

    /// Total line slots.
    pub fn capacity(&self) -> usize {
        self.num_lines
    }

    /// Iterate over the valid `(line, state)` pairs in ascending slot
    /// order — the historical dense-array order the checker sweep,
    /// snapshot capture, and GCB degrade path rely on for determinism.
    pub fn entries(&self) -> impl Iterator<Item = (u64, LineState)> + '_ {
        let mut v: Vec<(u64, (u64, LineState))> =
            self.lines.iter().map(|(slot, e)| (slot, *e)).collect();
        v.sort_unstable_by_key(|(slot, _)| *slot);
        v.into_iter().map(|(_, (line, state))| (line, state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_lookup_hits() {
        let mut c = Cache::new(8);
        assert_eq!(c.lookup(3), LineState::Invalid);
        assert_eq!(c.fill(3, LineState::Shared), None);
        assert_eq!(c.lookup(3), LineState::Shared);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = Cache::new(8);
        c.fill(3, LineState::Modified);
        // Line 11 maps to the same slot (11 % 8 == 3).
        let ev = c.fill(11, LineState::Shared).expect("conflict eviction");
        assert_eq!(ev.line, 3);
        assert_eq!(ev.state, LineState::Modified);
        assert_eq!(c.lookup(3), LineState::Invalid);
        assert_eq!(c.lookup(11), LineState::Shared);
    }

    #[test]
    fn refill_same_line_is_not_an_eviction() {
        let mut c = Cache::new(8);
        c.fill(5, LineState::Shared);
        assert_eq!(c.fill(5, LineState::Modified), None);
        assert_eq!(c.lookup(5), LineState::Modified);
    }

    #[test]
    fn invalidate_reports_prior_state() {
        let mut c = Cache::new(8);
        c.fill(2, LineState::Modified);
        assert_eq!(c.invalidate(2), LineState::Modified);
        assert_eq!(c.invalidate(2), LineState::Invalid);
        assert_eq!(c.lookup(2), LineState::Invalid);
    }

    #[test]
    fn fill_over_invalidated_slot_is_not_an_eviction() {
        let mut c = Cache::new(8);
        c.fill(3, LineState::Shared);
        c.invalidate(3);
        assert_eq!(c.fill(11, LineState::Shared), None);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = Cache::new(8);
        for l in 0..8 {
            c.fill(l, LineState::Shared);
        }
        assert_eq!(c.valid_lines(), 8);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn capacity_distinct_lines_coexist() {
        let mut c = Cache::new(16);
        for l in 0..16 {
            assert!(c.fill(l, LineState::Shared).is_none());
        }
        for l in 0..16 {
            assert_eq!(c.lookup(l), LineState::Shared);
        }
    }

    #[test]
    fn entries_are_slot_sorted() {
        let mut c = Cache::new(64);
        for l in [37, 5, 61, 12, 40] {
            c.fill(l, LineState::Shared);
        }
        let slots: Vec<u64> = c.entries().map(|(l, _)| l % 64).collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        assert_eq!(slots, sorted, "entries must come out in slot order");
        assert_eq!(c.entries().count(), 5);
    }

    #[test]
    fn mesi_and_dragon_states_behave_like_valid_lines() {
        let mut c = Cache::new(8);
        c.fill(1, LineState::Exclusive);
        assert_eq!(c.lookup(1), LineState::Exclusive);
        assert!(!LineState::Exclusive.is_dirty());
        c.set_state(1, LineState::OwnedShared);
        assert!(LineState::OwnedShared.is_dirty());
        // An Sm victim is dirty, so a conflicting fill reports it.
        let ev = c.fill(9, LineState::Shared).expect("conflict eviction");
        assert_eq!(ev.state, LineState::OwnedShared);
    }

    #[test]
    fn sparse_footprint_tracks_touched_lines_only() {
        let mut c = Cache::new(1 << 15); // 32768 slots, as spp1000
        assert_eq!(c.valid_lines(), 0);
        for l in 0..100u64 {
            c.fill(l, LineState::Shared);
        }
        assert_eq!(c.valid_lines(), 100);
        assert_eq!(c.capacity(), 1 << 15);
    }
}
