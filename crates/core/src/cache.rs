//! Per-CPU external data cache model: direct-mapped, 1 MB, 32-byte
//! lines (paper §2.2), with MSI line states.
//!
//! The PA-7100's caches are physically external SRAM; the SPP-1000's
//! CCMC keeps them coherent. We model the data cache only — the paper
//! folds instruction fetch into its "one data access and one
//! instruction fetch per cycle" throughput statement, which we absorb
//! into the per-flop compute cost.

/// Coherence state of a cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Not present (or invalidated).
    Invalid,
    /// Present, read-only, possibly shared by other caches.
    Shared,
    /// Present, writable, this cache holds the only valid copy.
    Modified,
}

/// What a lookup found, and which victim (if any) a fill would evict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line address of the evicted victim.
    pub line: u64,
    /// Victim state at eviction (never `Invalid`).
    pub state: LineState,
}

/// A direct-mapped cache: parallel tag/state arrays indexed by
/// `line_addr % num_lines`.
#[derive(Debug, Clone)]
pub struct Cache {
    tags: Vec<u64>,
    states: Vec<LineState>,
    mask: u64,
}

const NO_TAG: u64 = u64::MAX;

impl Cache {
    /// Create a cache of `num_lines` lines (must be a power of two).
    pub fn new(num_lines: usize) -> Self {
        assert!(num_lines.is_power_of_two(), "cache lines must be 2^k");
        Cache {
            tags: vec![NO_TAG; num_lines],
            states: vec![LineState::Invalid; num_lines],
            mask: num_lines as u64 - 1,
        }
    }

    #[inline]
    fn idx(&self, line: u64) -> usize {
        (line & self.mask) as usize
    }

    /// State of `line` in this cache.
    #[inline]
    pub fn lookup(&self, line: u64) -> LineState {
        let i = self.idx(line);
        if self.tags[i] == line {
            self.states[i]
        } else {
            LineState::Invalid
        }
    }

    /// Install `line` with `state`, returning the victim this fill
    /// displaced (if the slot held a different valid line).
    #[inline]
    pub fn fill(&mut self, line: u64, state: LineState) -> Option<Evicted> {
        debug_assert_ne!(state, LineState::Invalid);
        let i = self.idx(line);
        let victim = if self.tags[i] != NO_TAG
            && self.tags[i] != line
            && self.states[i] != LineState::Invalid
        {
            Some(Evicted {
                line: self.tags[i],
                state: self.states[i],
            })
        } else {
            None
        };
        self.tags[i] = line;
        self.states[i] = state;
        victim
    }

    /// The victim a [`Cache::fill`] of `line` would displace, without
    /// changing any state (used by cost peeking).
    #[inline]
    pub fn peek_victim(&self, line: u64) -> Option<Evicted> {
        let i = self.idx(line);
        if self.tags[i] != NO_TAG && self.tags[i] != line && self.states[i] != LineState::Invalid {
            Some(Evicted {
                line: self.tags[i],
                state: self.states[i],
            })
        } else {
            None
        }
    }

    /// Change the state of a resident line (e.g. Shared -> Modified on
    /// a write upgrade, Modified -> Shared on a downgrade).
    #[inline]
    pub fn set_state(&mut self, line: u64, state: LineState) {
        let i = self.idx(line);
        debug_assert_eq!(self.tags[i], line, "set_state on non-resident line");
        self.states[i] = state;
    }

    /// Invalidate `line` if resident; returns its prior state.
    #[inline]
    pub fn invalidate(&mut self, line: u64) -> LineState {
        let i = self.idx(line);
        if self.tags[i] == line {
            let s = self.states[i];
            self.states[i] = LineState::Invalid;
            s
        } else {
            LineState::Invalid
        }
    }

    /// Drop every line (used between benchmark repetitions).
    pub fn flush(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = NO_TAG);
        self.states.iter_mut().for_each(|s| *s = LineState::Invalid);
    }

    /// Number of currently valid lines (O(n); diagnostics only).
    pub fn valid_lines(&self) -> usize {
        self.states
            .iter()
            .filter(|s| **s != LineState::Invalid)
            .count()
    }

    /// Total line slots.
    pub fn capacity(&self) -> usize {
        self.tags.len()
    }

    /// Iterate over the valid `(line, state)` pairs (O(n); used by the
    /// coherence checker's full-state sweep).
    pub fn entries(&self) -> impl Iterator<Item = (u64, LineState)> + '_ {
        self.tags
            .iter()
            .zip(self.states.iter())
            .filter(|(t, s)| **t != NO_TAG && **s != LineState::Invalid)
            .map(|(t, s)| (*t, *s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_lookup_hits() {
        let mut c = Cache::new(8);
        assert_eq!(c.lookup(3), LineState::Invalid);
        assert_eq!(c.fill(3, LineState::Shared), None);
        assert_eq!(c.lookup(3), LineState::Shared);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = Cache::new(8);
        c.fill(3, LineState::Modified);
        // Line 11 maps to the same slot (11 % 8 == 3).
        let ev = c.fill(11, LineState::Shared).expect("conflict eviction");
        assert_eq!(ev.line, 3);
        assert_eq!(ev.state, LineState::Modified);
        assert_eq!(c.lookup(3), LineState::Invalid);
        assert_eq!(c.lookup(11), LineState::Shared);
    }

    #[test]
    fn refill_same_line_is_not_an_eviction() {
        let mut c = Cache::new(8);
        c.fill(5, LineState::Shared);
        assert_eq!(c.fill(5, LineState::Modified), None);
        assert_eq!(c.lookup(5), LineState::Modified);
    }

    #[test]
    fn invalidate_reports_prior_state() {
        let mut c = Cache::new(8);
        c.fill(2, LineState::Modified);
        assert_eq!(c.invalidate(2), LineState::Modified);
        assert_eq!(c.invalidate(2), LineState::Invalid);
        assert_eq!(c.lookup(2), LineState::Invalid);
    }

    #[test]
    fn fill_over_invalidated_slot_is_not_an_eviction() {
        let mut c = Cache::new(8);
        c.fill(3, LineState::Shared);
        c.invalidate(3);
        assert_eq!(c.fill(11, LineState::Shared), None);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = Cache::new(8);
        for l in 0..8 {
            c.fill(l, LineState::Shared);
        }
        assert_eq!(c.valid_lines(), 8);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn capacity_distinct_lines_coexist() {
        let mut c = Cache::new(16);
        for l in 0..16 {
            assert!(c.fill(l, LineState::Shared).is_none());
        }
        for l in 0..16 {
            assert_eq!(c.lookup(l), LineState::Shared);
        }
    }
}
