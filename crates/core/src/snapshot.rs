//! Versioned, deterministic checkpoint/restart for the simulator.
//!
//! [`Snapshot::capture`] serializes a [`Machine`]'s complete mutable
//! state — the address-space layout, every cache/GCB/directory/SCI
//! entry, the [`crate::MemStats`] counters, the cumulative clock, the
//! hard-fault progress, and the fault plan's draw counters — into a
//! compact little-endian byte stream (the same encoding idiom as
//! [`crate::TracePort`]'s traces). [`Snapshot::restore`] rebuilds a
//! machine that continues **bit-identically**: a run snapshotted
//! mid-stream and resumed produces exactly the cycles and stats of
//! the uninterrupted run (asserted by this module's equivalence
//! tests and `tests/checkpoint.rs`).
//!
//! The stream is versioned (magic `SPPSNAP1`) and fingerprints the
//! machine geometry **and coherence protocol**: a one-byte
//! [`crate::ProtocolKind`] tag follows the geometry, the stream
//! carries a per-protocol state section (the DASH directories, GCBs
//! and SCI lists under DASH+SCI; a snoop-filter line count under MESI
//! and Dragon, whose holder sets are an invariant-determined function
//! of the cache contents and are rebuilt from them), and restoring
//! against a different configuration fails with a typed
//! [`SimError::SnapshotMismatch`] instead of silently diverging.
//! [`Snapshot::restore`] adopts the captured protocol (the stream is
//! self-describing); [`Snapshot::restore_expecting`] additionally
//! rejects a protocol tag different from the caller's expectation
//! with the same typed error. The *probability configuration* of the fault
//! plan is deliberately not serialized: the caller supplies the same
//! plan it started the run with (exactly as it supplies the same
//! [`MachineConfig`]), and the snapshot restores the plan's
//! *progress* — draw counters and which hard faults have fired. The
//! supplied plan is validated against the captured seed and schedule
//! length.

use crate::cache::{Cache, LineState};
use crate::config::MachineConfig;
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::machine::Machine;
use crate::mem::MemClass;
use crate::protocol::ProtocolKind;
use crate::stats::MemStats;

const MAGIC: &[u8; 8] = b"SPPSNAP1";
const VERSION: u16 = 3;

/// Byte offset of the protocol tag: magic (8) + version (2) +
/// geometry fingerprint (3×u32 + 4×u64 = 44).
const PROTOCOL_OFFSET: usize = 54;

/// A captured machine state (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

fn corrupt(detail: impl Into<String>) -> SimError {
    SimError::SnapshotCorrupt {
        detail: detail.into(),
    }
}

fn mismatch(detail: impl Into<String>) -> SimError {
    SimError::SnapshotMismatch {
        detail: detail.into(),
    }
}

fn w8(v: &mut Vec<u8>, x: u8) {
    v.push(x);
}

fn w16(v: &mut Vec<u8>, x: u16) {
    v.extend_from_slice(&x.to_le_bytes());
}

fn w32(v: &mut Vec<u8>, x: u32) {
    v.extend_from_slice(&x.to_le_bytes());
}

fn w64(v: &mut Vec<u8>, x: u64) {
    v.extend_from_slice(&x.to_le_bytes());
}

fn state_code(s: LineState) -> u8 {
    match s {
        LineState::Invalid => 0,
        LineState::Shared => 1,
        LineState::Modified => 2,
        LineState::Exclusive => 3,
        LineState::OwnedShared => 4,
    }
}

fn code_state(c: u8) -> Result<LineState, SimError> {
    match c {
        1 => Ok(LineState::Shared),
        2 => Ok(LineState::Modified),
        3 => Ok(LineState::Exclusive),
        4 => Ok(LineState::OwnedShared),
        _ => Err(corrupt(format!("invalid line-state code {c}"))),
    }
}

/// Little-endian stream reader over the snapshot bytes.
struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SimError> {
        if self.pos + n > self.b.len() {
            return Err(corrupt(format!(
                "truncated stream: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.b.len() - self.pos
            )));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SimError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SimError> {
        // take(2) already length-checked the slice, so the array
        // conversion cannot fail.
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("take(2) returns 2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, SimError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("take(4) returns 4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SimError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("take(8) returns 8 bytes"),
        ))
    }
}

fn write_mem_class(v: &mut Vec<u8>, class: MemClass) {
    match class {
        MemClass::ThreadPrivate { home } => {
            w8(v, 0);
            w16(v, home.0);
        }
        MemClass::NodePrivate { node } => {
            w8(v, 1);
            w8(v, node.0);
        }
        MemClass::NearShared { node } => {
            w8(v, 2);
            w8(v, node.0);
        }
        MemClass::FarShared => w8(v, 3),
        MemClass::BlockShared { block_bytes } => {
            w8(v, 4);
            w64(v, block_bytes as u64);
        }
    }
}

fn read_mem_class(r: &mut Reader<'_>) -> Result<MemClass, SimError> {
    Ok(match r.u8()? {
        0 => MemClass::ThreadPrivate {
            home: crate::config::FuId(r.u16()?),
        },
        1 => MemClass::NodePrivate {
            node: crate::config::NodeId(r.u8()?),
        },
        2 => MemClass::NearShared {
            node: crate::config::NodeId(r.u8()?),
        },
        3 => MemClass::FarShared,
        4 => MemClass::BlockShared {
            block_bytes: r.u64()? as usize,
        },
        t => return Err(corrupt(format!("invalid memory-class tag {t}"))),
    })
}

fn write_cache(v: &mut Vec<u8>, c: &Cache) {
    let entries: Vec<(u64, LineState)> = c.entries().collect();
    w64(v, c.capacity() as u64);
    w32(v, entries.len() as u32);
    for (line, state) in entries {
        w64(v, line);
        w8(v, state_code(state));
    }
}

fn read_cache_into(r: &mut Reader<'_>, c: &mut Cache) -> Result<(), SimError> {
    let cap = r.u64()? as usize;
    if !cap.is_power_of_two() {
        return Err(corrupt(format!("cache capacity {cap} not a power of two")));
    }
    // Bound the rebuild: a corrupted capacity field must become a typed
    // error, not a gigantic `Cache::new` allocation. 2^24 lines is far
    // beyond any machine this simulator models.
    if cap > 1 << 24 {
        return Err(corrupt(format!("cache capacity {cap} implausibly large")));
    }
    if cap != c.capacity() {
        *c = Cache::new(cap);
    }
    let n = r.u32()?;
    for _ in 0..n {
        let line = r.u64()?;
        let state = code_state(r.u8()?)?;
        if c.fill(line, state).is_some() {
            return Err(corrupt(format!(
                "cache entries conflict on line {line:#x} (slot collision)"
            )));
        }
    }
    Ok(())
}

fn stats_fields(s: &MemStats) -> [u64; 21] {
    [
        s.reads,
        s.writes,
        s.hits,
        s.local_misses,
        s.gcb_hits,
        s.sci_fetches,
        s.remote_dirty_fetches,
        s.c2c_transfers,
        s.upgrades,
        s.invalidations,
        s.sci_invalidations,
        s.evictions,
        s.writebacks,
        s.gcb_rollouts,
        s.uncached_ops,
        s.ring_stalls,
        s.link_reroutes,
        s.snoops,
        s.updates,
        s.recoveries,
        s.recovery_retries,
    ]
}

fn stats_from_fields(f: [u64; 21]) -> MemStats {
    MemStats {
        reads: f[0],
        writes: f[1],
        hits: f[2],
        local_misses: f[3],
        gcb_hits: f[4],
        sci_fetches: f[5],
        remote_dirty_fetches: f[6],
        c2c_transfers: f[7],
        upgrades: f[8],
        invalidations: f[9],
        sci_invalidations: f[10],
        evictions: f[11],
        writebacks: f[12],
        gcb_rollouts: f[13],
        uncached_ops: f[14],
        ring_stalls: f[15],
        link_reroutes: f[16],
        snoops: f[17],
        updates: f[18],
        recoveries: f[19],
        recovery_retries: f[20],
    }
}

impl Snapshot {
    /// Capture the complete mutable state of `m`.
    pub fn capture(m: &Machine) -> Snapshot {
        let mut v = Vec::with_capacity(4096);
        v.extend_from_slice(MAGIC);
        w16(&mut v, VERSION);

        // Geometry fingerprint.
        let cfg = m.config();
        w32(&mut v, cfg.hypernodes as u32);
        w32(&mut v, cfg.fus_per_node as u32);
        w32(&mut v, cfg.cpus_per_fu as u32);
        w64(&mut v, cfg.cache_bytes as u64);
        w64(&mut v, cfg.line_bytes as u64);
        w64(&mut v, cfg.page_bytes as u64);
        w64(&mut v, cfg.gcb_bytes as u64);

        // Coherence protocol (offset `PROTOCOL_OFFSET`; the stream's
        // state sections are protocol-specific).
        w8(&mut v, m.protocol.tag());

        // Degraded-mode state and the clock that drives triggering.
        w64(&mut v, m.clock);
        w32(&mut v, m.dead_cpus.len() as u32);
        for word in &m.dead_cpus {
            w64(&mut v, *word);
        }
        w8(&mut v, m.failed_rings);
        w64(&mut v, (m.degraded_gcbs & u128::from(u64::MAX)) as u64);
        w64(&mut v, (m.degraded_gcbs >> 64) as u64);
        w64(&mut v, m.hard_applied);

        // Event counters.
        for f in stats_fields(&m.stats) {
            w64(&mut v, f);
        }

        // Address-space layout (replayed through try_alloc on restore).
        let regions = m.space.regions();
        w32(&mut v, regions.len() as u32);
        for r in regions {
            write_mem_class(&mut v, r.class);
            w64(&mut v, r.base);
            w64(&mut v, r.len);
        }

        // CPU caches and GCBs (capacity stored per cache: a degraded
        // GCB is smaller than a fresh machine's).
        w32(&mut v, m.caches.len() as u32);
        for c in &m.caches {
            write_cache(&mut v, c);
        }
        w32(&mut v, m.gcbs.len() as u32);
        for g in &m.gcbs {
            write_cache(&mut v, g);
        }

        // Node directories.
        w32(&mut v, m.dirs.len() as u32);
        for d in &m.dirs {
            let lines: Vec<u64> = d.lines().collect();
            w32(&mut v, lines.len() as u32);
            for line in lines {
                let e = d.get(line).expect("live directory line");
                w64(&mut v, line);
                w8(&mut v, e.sharers);
                w8(&mut v, e.owner.map_or(0xff, |o| o));
            }
        }

        // SCI reference trees (list order is protocol state).
        let sci_lines: Vec<u64> = m.sci.lines().collect();
        w32(&mut v, sci_lines.len() as u32);
        for line in sci_lines {
            let e = m.sci.get(line).expect("live SCI line");
            w64(&mut v, line);
            w8(&mut v, e.list.len() as u8);
            for n in &e.list {
                w8(&mut v, *n);
            }
            w8(&mut v, e.dirty.map_or(0xff, |d| d));
        }

        // Per-protocol state section. The snooping backends' filter is
        // an invariant-determined function of the cache contents
        // (holders of a line == CPUs caching it valid), so only its
        // live-line count is stored, as a restore-time cross-check;
        // the filter itself is rebuilt from the caches.
        match m.protocol {
            ProtocolKind::DashSci => {}
            ProtocolKind::Mesi | ProtocolKind::Dragon => {
                w32(&mut v, m.snoop.live_lines() as u32);
            }
        }

        // Fault-plan progress (the plan's configuration is supplied by
        // the caller on restore and validated against this).
        match m.fault_plan() {
            None => w8(&mut v, 0),
            Some(p) => {
                w8(&mut v, 1);
                w64(&mut v, p.seed());
                for c in p.draws() {
                    w64(&mut v, c);
                }
                w32(&mut v, p.hard_faults().len() as u32);
            }
        }

        Snapshot { bytes: v }
    }

    /// The raw byte stream (write it to disk, hash it, ship it).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume the snapshot, returning the byte stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Wrap a byte stream, validating the magic and version header.
    /// Full structural validation happens in [`Snapshot::restore`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Snapshot, SimError> {
        if bytes.len() < MAGIC.len() + 2 {
            return Err(corrupt("stream shorter than the header"));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic (not an SPP snapshot)"));
        }
        let ver = u16::from_le_bytes([bytes[8], bytes[9]]);
        if ver != VERSION {
            return Err(mismatch(format!(
                "snapshot version {ver}, this build reads {VERSION}"
            )));
        }
        Ok(Snapshot { bytes })
    }

    /// Write the snapshot stream to `path` (checkpoint file). The
    /// parent directory must exist.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, &self.bytes)
    }

    /// Read a snapshot stream back from `path`, validating the header
    /// (see [`Snapshot::from_bytes`]). I/O errors are reported as
    /// [`SimError::SnapshotCorrupt`] with the path in the detail.
    pub fn load(path: &std::path::Path) -> Result<Snapshot, SimError> {
        let bytes = std::fs::read(path)
            .map_err(|e| corrupt(format!("cannot read {}: {e}", path.display())))?;
        Snapshot::from_bytes(bytes)
    }

    /// Rebuild a machine from this snapshot.
    ///
    /// `cfg` and `plan` must be the configuration and fault plan the
    /// captured run started with; geometry and plan identity (seed,
    /// schedule length) are validated. The restored machine continues
    /// bit-identically to the captured one. The coherence checker is
    /// re-armed by the usual rules (`SPP_CHECK`, tests) rather than
    /// restored — enable it with [`Machine::with_checker`] if needed.
    pub fn restore(
        &self,
        cfg: MachineConfig,
        plan: Option<FaultPlan>,
    ) -> Result<Machine, SimError> {
        let mut r = Reader {
            b: &self.bytes,
            pos: MAGIC.len() + 2,
        };
        let mut m = Machine::try_new(cfg).map_err(SimError::Config)?;

        // Geometry fingerprint.
        let got = (
            r.u32()? as usize,
            r.u32()? as usize,
            r.u32()? as usize,
            r.u64()? as usize,
            r.u64()? as usize,
            r.u64()? as usize,
            r.u64()? as usize,
        );
        let cfg = m.config();
        let want = (
            cfg.hypernodes,
            cfg.fus_per_node,
            cfg.cpus_per_fu,
            cfg.cache_bytes,
            cfg.line_bytes,
            cfg.page_bytes,
            cfg.gcb_bytes,
        );
        if got != want {
            return Err(mismatch(format!(
                "geometry {got:?} captured, {want:?} supplied"
            )));
        }

        let tag = r.u8()?;
        m.protocol = ProtocolKind::from_tag(tag)
            .ok_or_else(|| corrupt(format!("unknown protocol tag {tag}")))?;

        m.clock = r.u64()?;
        let ndead = r.u32()? as usize;
        if ndead != m.dead_cpus.len() {
            return Err(mismatch(format!(
                "{ndead} dead-CPU words captured, machine has {}",
                m.dead_cpus.len()
            )));
        }
        for word in &mut m.dead_cpus {
            *word = r.u64()?;
        }
        m.failed_rings = r.u8()?;
        m.degraded_gcbs = u128::from(r.u64()?) | (u128::from(r.u64()?) << 64);
        m.hard_applied = r.u64()?;

        let mut fields = [0u64; 21];
        for f in &mut fields {
            *f = r.u64()?;
        }
        m.stats = stats_from_fields(fields);

        // Replay the allocation sequence; the deterministic allocator
        // must reproduce the captured layout exactly.
        let nregions = r.u32()?;
        for i in 0..nregions {
            let class = read_mem_class(&mut r)?;
            let base = r.u64()?;
            let len = r.u64()?;
            let region = m.space.try_alloc(class, len)?;
            if region.base != base {
                return Err(mismatch(format!(
                    "region {i} replayed at {:#x}, captured at {base:#x}",
                    region.base
                )));
            }
        }

        let ncaches = r.u32()? as usize;
        if ncaches != m.caches.len() {
            return Err(mismatch(format!(
                "{ncaches} CPU caches captured, machine has {}",
                m.caches.len()
            )));
        }
        for c in &mut m.caches {
            read_cache_into(&mut r, c)?;
        }
        let ngcbs = r.u32()? as usize;
        if ngcbs != m.gcbs.len() {
            return Err(mismatch(format!(
                "{ngcbs} GCBs captured, machine has {}",
                m.gcbs.len()
            )));
        }
        for g in &mut m.gcbs {
            read_cache_into(&mut r, g)?;
        }

        let ndirs = r.u32()? as usize;
        if ndirs != m.dirs.len() {
            return Err(mismatch(format!(
                "{ndirs} directories captured, machine has {}",
                m.dirs.len()
            )));
        }
        for d in &mut m.dirs {
            let nlines = r.u32()?;
            for _ in 0..nlines {
                let line = r.u64()?;
                let sharers = r.u8()?;
                let owner = r.u8()?;
                // The sharer mask is 8 bits wide, so a valid owner is
                // 0..8; anything else is stream corruption (and would
                // overflow the `1 << owner` shift inside `set_owner`).
                if owner != 0xff && owner >= 8 {
                    return Err(corrupt(format!(
                        "directory owner {owner} out of range (node has 8 CPUs)"
                    )));
                }
                if owner != 0xff {
                    d.set_owner(line, owner);
                }
                for b in 0..8u8 {
                    if sharers & (1 << b) != 0 && owner != b {
                        d.add_sharer(line, b);
                    }
                }
            }
        }

        let nsci = r.u32()?;
        let nnodes = m.config().hypernodes as u8;
        for _ in 0..nsci {
            let line = r.u64()?;
            let llen = r.u8()? as usize;
            let mut list = Vec::with_capacity(llen);
            for _ in 0..llen {
                let n = r.u8()?;
                if n >= nnodes {
                    return Err(corrupt(format!(
                        "SCI sharer node {n} out of range ({nnodes} hypernodes)"
                    )));
                }
                list.push(n);
            }
            // add_sharer prepends: insert in reverse to rebuild the
            // exact list order (it is protocol state — walks are
            // priced serially along it).
            for n in list.iter().rev() {
                m.sci.add_sharer(line, *n);
            }
            let dirty = r.u8()?;
            if dirty != 0xff && dirty >= nnodes {
                return Err(corrupt(format!(
                    "SCI dirty node {dirty} out of range ({nnodes} hypernodes)"
                )));
            }
            if dirty != 0xff {
                m.sci.set_dirty(line, dirty);
            }
        }

        // Per-protocol state section: rebuild the snooping backends'
        // holder filter from the restored caches (holders of a line
        // are exactly the CPUs caching it valid — a checked protocol
        // invariant) and cross-check the captured live-line count.
        if matches!(m.protocol, ProtocolKind::Mesi | ProtocolKind::Dragon) {
            let captured_lines = r.u32()? as usize;
            for cpu in 0..m.caches.len() {
                let entries: Vec<u64> = m.caches[cpu].entries().map(|(l, _)| l).collect();
                for line in entries {
                    m.snoop.add(line, cpu as u16);
                }
            }
            if m.snoop.live_lines() != captured_lines {
                return Err(corrupt(format!(
                    "snoop filter rebuilt with {} live lines, {captured_lines} captured",
                    m.snoop.live_lines()
                )));
            }
        }

        // Fault-plan progress.
        let has_plan = r.u8()? != 0;
        match (has_plan, plan) {
            (false, None) => {}
            (false, Some(_)) => {
                return Err(mismatch(
                    "captured run had no fault plan, but one was supplied",
                ));
            }
            (true, None) => {
                return Err(mismatch(
                    "captured run had a fault plan; supply the same plan to restore",
                ));
            }
            (true, Some(mut p)) => {
                let seed = r.u64()?;
                let mut counters = [0u64; crate::fault::N_FAULT_SITES];
                for c in &mut counters {
                    *c = r.u64()?;
                }
                let nhard = r.u32()? as usize;
                if p.seed() != seed {
                    return Err(mismatch(format!(
                        "fault plan seed {} supplied, {seed} captured",
                        p.seed()
                    )));
                }
                if p.hard_faults().len() != nhard {
                    return Err(mismatch(format!(
                        "{} hard faults supplied, {nhard} captured",
                        p.hard_faults().len()
                    )));
                }
                p.restore_counters(counters);
                m.faults = Some(p);
            }
        }

        Ok(m)
    }

    /// The coherence protocol this snapshot was captured under.
    pub fn protocol(&self) -> Result<ProtocolKind, SimError> {
        let tag = *self
            .bytes
            .get(PROTOCOL_OFFSET)
            .ok_or_else(|| corrupt("stream shorter than the protocol tag"))?;
        ProtocolKind::from_tag(tag).ok_or_else(|| corrupt(format!("unknown protocol tag {tag}")))
    }

    /// [`Snapshot::restore`], additionally requiring the captured
    /// protocol to be `expect`. A checkpoint taken under one protocol
    /// is meaningless to another; callers that know which protocol
    /// they are resuming (e.g. a scenario spec's `[protocol]` table)
    /// use this to get a typed [`SimError::SnapshotMismatch`] instead
    /// of silently adopting the captured protocol.
    pub fn restore_expecting(
        &self,
        cfg: MachineConfig,
        plan: Option<FaultPlan>,
        expect: ProtocolKind,
    ) -> Result<Machine, SimError> {
        let got = self.protocol()?;
        if got != expect {
            return Err(mismatch(format!(
                "snapshot captured under protocol {got}, restore expected {expect}"
            )));
        }
        self.restore(cfg, plan)
    }
}

impl Machine {
    /// Capture this machine's state (see [`Snapshot::capture`]).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CpuId, NodeId};
    use crate::latency::Cycles;

    /// A mixed cross-node access stream; `range` selects the slice of
    /// the stream to run so tests can split it around a checkpoint.
    fn drive(m: &mut Machine, range: std::ops::Range<u64>) -> Cycles {
        let far = if m.space.num_regions() == 0 {
            m.alloc(MemClass::FarShared, 1 << 16)
        } else {
            *m.space.regions().first().unwrap()
        };
        let mut total = 0;
        for i in range {
            let cpu = CpuId((i * 5 % 16) as u16);
            let a = far.addr((i * 104) % (1 << 16));
            total += m.read(cpu, a);
            if i % 3 == 0 {
                total += m.write(cpu, a);
            }
            if i % 17 == 0 {
                total += m.uncached_op(cpu, far.addr(0));
            }
        }
        total
    }

    fn faulty_plan() -> FaultPlan {
        FaultPlan::new(77)
            .with_ring_stalls(0.3, 400)
            .with_cpu_failure(5, 30_000)
            .with_link_failure(2, 15_000, 600)
            .with_gcb_degrade(1, 45_000)
    }

    #[test]
    fn resume_is_bit_identical_to_straight_through() {
        let straight = {
            let mut m = Machine::spp1000(2).with_faults(faulty_plan());
            let a = drive(&mut m, 0..600);
            let b = drive(&mut m, 600..1200);
            (a, b, m.stats, m.clock(), m.fault_plan().unwrap().draws())
        };
        let resumed = {
            let mut m = Machine::spp1000(2).with_faults(faulty_plan());
            let a = drive(&mut m, 0..600);
            let snap = m.snapshot();
            let snap = Snapshot::from_bytes(snap.into_bytes()).expect("header ok");
            let mut m2 = snap
                .restore(MachineConfig::spp1000(2), Some(faulty_plan()))
                .expect("restore");
            let b = drive(&mut m2, 600..1200);
            (a, b, m2.stats, m2.clock(), m2.fault_plan().unwrap().draws())
        };
        assert_eq!(straight, resumed, "resume diverged from straight-through");
    }

    #[test]
    fn restore_passes_the_coherence_checker() {
        let mut m = Machine::spp1000(2).with_faults(faulty_plan());
        drive(&mut m, 0..800);
        let m2 = m
            .snapshot()
            .restore(MachineConfig::spp1000(2), Some(faulty_plan()))
            .expect("restore");
        assert!(m2.check_all().is_empty(), "restored state inconsistent");
        assert_eq!(m2.stats, m.stats);
        assert_eq!(m2.dead_cpus, m.dead_cpus);
        assert_eq!(m2.failed_rings, m.failed_rings);
        assert_eq!(m2.degraded_gcbs, m.degraded_gcbs);
    }

    #[test]
    fn restore_without_faults_roundtrips() {
        let mut m = Machine::spp1000(2);
        drive(&mut m, 0..200);
        let m2 = m
            .snapshot()
            .restore(MachineConfig::spp1000(2), None)
            .expect("restore");
        assert_eq!(m2.stats, m.stats);
        assert_eq!(m2.clock(), m.clock());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut m = Machine::spp1000(2);
        drive(&mut m, 0..10);
        let mut bytes = m.snapshot().into_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(SimError::SnapshotCorrupt { .. })
        ));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut m = Machine::spp1000(2);
        drive(&mut m, 0..50);
        let mut bytes = m.snapshot().into_bytes();
        bytes.truncate(bytes.len() / 2);
        let snap = Snapshot::from_bytes(bytes).expect("header intact");
        assert!(matches!(
            snap.restore(MachineConfig::spp1000(2), None),
            Err(SimError::SnapshotCorrupt { .. })
        ));
    }

    #[test]
    fn mismatched_geometry_is_rejected() {
        let mut m = Machine::spp1000(2);
        drive(&mut m, 0..10);
        let snap = m.snapshot();
        assert!(matches!(
            snap.restore(MachineConfig::spp1000(4), None),
            Err(SimError::SnapshotMismatch { .. })
        ));
    }

    #[test]
    fn mismatched_fault_plan_is_rejected() {
        let mut m = Machine::spp1000(2).with_faults(faulty_plan());
        drive(&mut m, 0..10);
        let snap = m.snapshot();
        assert!(matches!(
            snap.restore(MachineConfig::spp1000(2), None),
            Err(SimError::SnapshotMismatch { .. })
        ));
        let wrong_seed = FaultPlan::new(78);
        assert!(matches!(
            snap.restore(MachineConfig::spp1000(2), Some(wrong_seed)),
            Err(SimError::SnapshotMismatch { .. })
        ));
    }

    #[test]
    fn snapshot_after_hard_faults_preserves_degraded_state() {
        let plan = FaultPlan::new(3)
            .with_cpu_failure(2, 0)
            .with_gcb_degrade(0, 0);
        let mut m = Machine::spp1000(2).with_faults(plan.clone());
        drive(&mut m, 0..100);
        assert!(m.is_cpu_dead(CpuId(2)));
        assert_eq!(m.degraded_nodes(), 1);
        let m2 = m
            .snapshot()
            .restore(MachineConfig::spp1000(2), Some(plan))
            .expect("restore");
        assert!(m2.is_cpu_dead(CpuId(2)));
        assert_eq!(m2.degraded_nodes(), 1);
        assert!(!m2.hard_faults_pending());
        // And the degraded machine keeps running identically.
        let _ = NodeId(0);
        assert!(m2.check_all().is_empty());
    }

    #[test]
    fn snapshot_round_trips_under_every_protocol() {
        for kind in ProtocolKind::ALL {
            let mut m = Machine::spp1000(2).with_protocol(kind);
            drive(&mut m, 0..400);
            let snap = m.snapshot();
            assert_eq!(snap.protocol().unwrap(), kind);
            let m2 = snap
                .restore(MachineConfig::spp1000(2), None)
                .expect("restore");
            assert_eq!(m2.protocol(), kind);
            assert_eq!(m2.stats, m.stats);
            assert_eq!(m2.clock(), m.clock());
            assert!(m2.check_all().is_empty(), "{kind}: restored inconsistent");
            // Capturing the restored machine and restoring *that* is a
            // fixed point (byte layouts may reorder map entries, but
            // the state they decode to must not drift).
            let m3 = m2
                .snapshot()
                .restore(MachineConfig::spp1000(2), None)
                .expect("second restore");
            assert_eq!(m3.protocol(), kind);
            assert_eq!(m3.stats, m.stats);
            assert_eq!(m3.clock(), m.clock());
            assert!(m3.check_all().is_empty());
        }
    }

    #[test]
    fn snooping_resume_is_bit_identical_to_straight_through() {
        for kind in [ProtocolKind::Mesi, ProtocolKind::Dragon] {
            let straight = {
                let mut m = Machine::spp1000(2).with_protocol(kind);
                let a = drive(&mut m, 0..500);
                let b = drive(&mut m, 500..1000);
                (a, b, m.stats, m.clock())
            };
            let resumed = {
                let mut m = Machine::spp1000(2).with_protocol(kind);
                let a = drive(&mut m, 0..500);
                let mut m2 = m
                    .snapshot()
                    .restore_expecting(MachineConfig::spp1000(2), None, kind)
                    .expect("restore");
                let b = drive(&mut m2, 500..1000);
                (a, b, m2.stats, m2.clock())
            };
            assert_eq!(straight, resumed, "{kind}: resume diverged");
        }
    }

    #[test]
    fn restore_with_wrong_protocol_tag_is_a_typed_mismatch() {
        let mut m = Machine::spp1000(2).with_protocol(ProtocolKind::Mesi);
        drive(&mut m, 0..50);
        let snap = m.snapshot();
        let err = snap
            .restore_expecting(MachineConfig::spp1000(2), None, ProtocolKind::DashSci)
            .unwrap_err();
        match err {
            SimError::SnapshotMismatch { detail } => {
                assert!(
                    detail.contains("mesi") && detail.contains("dash-sci"),
                    "{detail}"
                );
            }
            other => panic!("expected SnapshotMismatch, got {other:?}"),
        }
        // Self-describing restore still works on the same bytes.
        assert_eq!(
            snap.restore(MachineConfig::spp1000(2), None)
                .expect("restore")
                .protocol(),
            ProtocolKind::Mesi
        );
    }

    #[test]
    fn rollback_preserves_fired_and_pending_hard_faults_under_each_protocol() {
        for proto in ProtocolKind::ALL {
            // Probe the clean clock so the link failure can be pinned
            // strictly between the capture point and the end of the
            // run: fired-before-capture (cpu) and pending-at-capture
            // (link) states must both survive the rollback.
            let probe = {
                let mut m = Machine::spp1000(2).with_protocol(proto);
                let _ = drive(&mut m, 0..700);
                let mid = m.clock();
                let _ = drive(&mut m, 700..1400);
                (mid, m.clock())
            };
            let link_at = (probe.0 + probe.1) / 2;
            let plan = || {
                FaultPlan::new(5)
                    .with_cpu_failure(3, probe.0 / 4)
                    .with_link_failure(1, link_at, 700)
                    .with_inval_dups(0.05)
            };
            let straight = {
                let mut m = Machine::spp1000(2).with_protocol(proto).with_faults(plan());
                let a = drive(&mut m, 0..700);
                let b = drive(&mut m, 700..1400);
                (
                    a,
                    b,
                    m.stats,
                    m.clock(),
                    m.fault_plan().unwrap().draws(),
                    m.failed_rings(),
                )
            };
            let resumed = {
                let mut m = Machine::spp1000(2).with_protocol(proto).with_faults(plan());
                let a = drive(&mut m, 0..700);
                assert!(
                    m.is_cpu_dead(CpuId(3)),
                    "{proto}: cpu-fail fired pre-capture"
                );
                assert!(m.hard_faults_pending(), "{proto}: link-fail still pending");
                let mut m2 = m
                    .snapshot()
                    .restore_expecting(MachineConfig::spp1000(2), Some(plan()), proto)
                    .expect("restore");
                assert!(m2.is_cpu_dead(CpuId(3)), "{proto}: fired fault lost");
                assert!(
                    m2.hard_faults_pending(),
                    "{proto}: pending fault must survive rollback unfired"
                );
                // Restore must not re-fire the dead CPU's purge: its
                // eviction/writeback charges appear exactly once.
                assert_eq!(m2.stats.evictions, m.stats.evictions);
                assert_eq!(m2.stats.writebacks, m.stats.writebacks);
                let b = drive(&mut m2, 700..1400);
                (
                    a,
                    b,
                    m2.stats,
                    m2.clock(),
                    m2.fault_plan().unwrap().draws(),
                    m2.failed_rings(),
                )
            };
            assert_eq!(straight, resumed, "{proto}: rollback replay diverged");
            assert_ne!(straight.5, 0, "{proto}: link-fail never fired post-capture");
        }
    }

    #[test]
    fn transient_draw_counters_survive_the_snapshot_round_trip() {
        let plan = || {
            FaultPlan::new(23)
                .with_inval_drops(0.2)
                .with_inval_delays(0.2)
                .with_line_corruption(0.1)
        };
        let straight = {
            let mut m = Machine::spp1000(2).with_faults(plan());
            let a = drive(&mut m, 0..500);
            let b = drive(&mut m, 500..1000);
            (a, b, m.stats, m.clock(), m.fault_plan().unwrap().draws())
        };
        let resumed = {
            let mut m = Machine::spp1000(2).with_faults(plan());
            let a = drive(&mut m, 0..500);
            assert!(m.stats.recoveries > 0, "no transient landed pre-capture");
            let mut m2 = m
                .snapshot()
                .restore(MachineConfig::spp1000(2), Some(plan()))
                .expect("restore");
            assert_eq!(
                m2.fault_plan().unwrap().draws(),
                m.fault_plan().unwrap().draws(),
                "per-site draw counters lost in the round trip"
            );
            assert_eq!(m2.stats.recoveries, m.stats.recoveries);
            assert_eq!(m2.stats.recovery_retries, m.stats.recovery_retries);
            let b = drive(&mut m2, 500..1000);
            (a, b, m2.stats, m2.clock(), m2.fault_plan().unwrap().draws())
        };
        assert_eq!(straight, resumed, "transient resume diverged");
        // The new sites really drew through the snapshot boundary.
        let draws = straight.4;
        assert!(draws[4] > 0 && draws[6] > 0 && draws[9] > 0, "{draws:?}");
    }

    /// Fallible twin of [`drive`]: surfaces `RecoveryExhausted` with
    /// the step it happened on instead of panicking.
    fn try_drive(m: &mut Machine, range: std::ops::Range<u64>) -> Result<(), (u64, SimError)> {
        let far = if m.space.num_regions() == 0 {
            m.alloc(MemClass::FarShared, 1 << 16)
        } else {
            *m.space.regions().first().unwrap()
        };
        for i in range {
            let cpu = CpuId((i * 5 % 16) as u16);
            let a = far.addr((i * 104) % (1 << 16));
            m.try_read(cpu, a).map_err(|e| (i, e))?;
            if i % 3 == 0 {
                m.try_write(cpu, a).map_err(|e| (i, e))?;
            }
            if i % 17 == 0 {
                m.uncached_op(cpu, far.addr(0));
            }
        }
        Ok(())
    }

    #[test]
    fn rollback_and_replay_converges_bit_identically_after_escalations() {
        for proto in ProtocolKind::ALL {
            let clean = {
                let mut m = Machine::spp1000(2).with_protocol(proto);
                drive(&mut m, 0..360);
                (m.clock(), m.coherence_digest(), m.stats)
            };
            // Fully persistent transients: every detected injection
            // exhausts its scrub budget and escalates, so recovery
            // can only complete via checkpoint rollback-and-replay
            // with the draw floor advanced past the poisoned window.
            let plan = || {
                FaultPlan::new(11)
                    .with_inval_dups(0.01)
                    .with_transient_persistence(1.0)
            };
            let mut m = Machine::spp1000(2).with_protocol(proto).with_faults(plan());
            let mut snap = m.snapshot();
            let mut step = 0u64;
            let mut rollbacks = 0u32;
            while step < 360 {
                let next = (step + 60).min(360);
                match try_drive(&mut m, step..next) {
                    Ok(()) => {
                        step = next;
                        snap = m.snapshot();
                    }
                    Err((_, SimError::RecoveryExhausted { .. })) => {
                        rollbacks += 1;
                        assert!(rollbacks < 200, "{proto}: replay never converges");
                        let floor = m.fault_plan().unwrap().draws();
                        m = snap
                            .clone()
                            .restore_expecting(MachineConfig::spp1000(2), Some(plan()), proto)
                            .expect("rollback restore");
                        // Replaying the exact same draws would hit the
                        // exact same escalation: skip past them.
                        m.faults_mut().unwrap().advance_draws(floor);
                    }
                    Err((i, e)) => panic!("{proto}: step {i}: unexpected error {e}"),
                }
            }
            assert!(rollbacks > 0, "{proto}: no escalation ever happened");
            assert_eq!(m.clock(), clean.0, "{proto}: clock diverged");
            assert_eq!(
                m.coherence_digest(),
                clean.1,
                "{proto}: recovered state diverged from fault-free"
            );
            assert!(
                m.stats.eq_modulo_recovery(&clean.2),
                "{proto}: stats diverged beyond recovery counters"
            );
            assert!(m.check_all().is_empty());
        }
    }

    #[test]
    fn wrong_tag_and_truncation_are_typed_errors_under_recovery_plans() {
        let plan = || FaultPlan::new(7).with_inval_dups(0.2).with_update_loss(0.1);
        let mut m = Machine::spp1000(2)
            .with_protocol(ProtocolKind::Dragon)
            .with_faults(plan());
        drive(&mut m, 0..200);
        assert!(m.stats.recoveries > 0, "no transient landed");
        let snap = m.snapshot();
        assert!(matches!(
            snap.restore_expecting(MachineConfig::spp1000(2), Some(plan()), ProtocolKind::Mesi),
            Err(SimError::SnapshotMismatch { .. })
        ));
        let mut bytes = snap.clone().into_bytes();
        bytes.truncate(bytes.len() - 24);
        let truncated = Snapshot::from_bytes(bytes).expect("header intact");
        assert!(matches!(
            truncated.restore(MachineConfig::spp1000(2), Some(plan())),
            Err(SimError::SnapshotCorrupt { .. })
        ));
        // The untouched stream still restores, recovery counters intact.
        let m2 = snap
            .restore_expecting(
                MachineConfig::spp1000(2),
                Some(plan()),
                ProtocolKind::Dragon,
            )
            .expect("restore");
        assert_eq!(m2.stats.recoveries, m.stats.recoveries);
    }
}
