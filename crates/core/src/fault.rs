//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded pseudo-random schedule of transient
//! faults that the layers above consult at well-defined *sites*:
//!
//! * **SCI ring stalls** — an access whose service crossed the ring
//!   pays an extra fixed stall (retried link-level transaction);
//!   charged by [`crate::Machine`] and counted in
//!   [`crate::MemStats::ring_stalls`].
//! * **Dropped / duplicated PVM messages** — consulted by the PVM
//!   layer's send path, which retries dropped sends on a priced
//!   timeout and discards duplicate deliveries by sequence number.
//! * **Failed thread spawns** — consulted by the runtime's fork paths,
//!   which retry with exponential backoff.
//! * **Transient coherence faults** — dropped, duplicated, or delayed
//!   invalidations, lost Dragon update broadcasts, stale directory
//!   acks, and single-line state corruption, injected through the
//!   protocol seam after each access. [`crate::Machine`] detects the
//!   resulting invariant violations with the coherence checker's
//!   per-protocol invariant sets and repairs them with a bounded
//!   scrub-and-retry loop (see `DESIGN.md` §4i); whether a corruption
//!   *persists* across a scrub attempt is its own decision stream.
//!
//! Each site draws from its own counter-indexed stream: whether the
//! *n*-th event at a site faults is a pure function of `(seed, site,
//! n)`. Streams are therefore independent of how events at different
//! sites interleave, so a fixed seed reproduces the exact same fault
//! schedule — and bit-identical simulation results — on every run
//! (`repro-faults` demonstrates this for PIC and N-body). The plan
//! never consults wall-clock time or OS randomness.
//!
//! Beyond the transient sites, a plan may schedule **hard failures**
//! ([`HardFault`]): persistent, cycle-triggered losses of a CPU, an
//! SCI ring segment, or half a node's global cache buffer capacity.
//! These change the latency hierarchy itself rather than perturbing
//! individual events; [`crate::Machine`] applies them when its
//! cumulative access clock reaches each fault's trigger cycle, and the
//! coherence checker validates the degraded invariants afterwards.

use crate::latency::{us_to_cycles, Cycles};

/// One scheduled persistent failure. Unlike the transient sites, a
/// hard fault fires exactly once — when [`crate::Machine`]'s
/// cumulative access clock first reaches `at_cycle` — and stays in
/// effect for the rest of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HardFault {
    /// CPU `cpu` goes dead: its cache is purged (dirty lines written
    /// back), it can never cache a line again, and its accesses are
    /// serviced memory-to-memory at degraded cost.
    CpuFail {
        /// Global CPU id that fails.
        cpu: u16,
        /// Machine clock (cumulative access cycles) at which it dies.
        at_cycle: Cycles,
    },
    /// An SCI ring segment goes down: every subsequent coherence
    /// transaction homed on ring `ring` pays `reroute_cycles` extra
    /// (the rerouted-path penalty), counted in
    /// [`crate::MemStats::link_reroutes`].
    LinkFail {
        /// The SCI ring (0..fus_per_node) that loses a segment.
        ring: u8,
        /// Machine clock at which the segment fails.
        at_cycle: Cycles,
        /// Extra cycles per rerouted ring transaction.
        reroute_cycles: Cycles,
    },
    /// Node `node`'s global cache buffers drop to half capacity
    /// (a bank failure): resident remote lines that no longer fit are
    /// rolled out through the normal protocol.
    GcbDegrade {
        /// The hypernode whose GCBs degrade.
        node: u8,
        /// Machine clock at which the capacity halves.
        at_cycle: Cycles,
    },
}

impl HardFault {
    /// The machine clock at which this fault fires.
    pub fn at_cycle(&self) -> Cycles {
        match self {
            HardFault::CpuFail { at_cycle, .. }
            | HardFault::LinkFail { at_cycle, .. }
            | HardFault::GcbDegrade { at_cycle, .. } => *at_cycle,
        }
    }

    /// Short stable label for reports (`"cpu-fail"`, `"link-fail"`,
    /// `"gcb-degrade"`).
    pub fn label(&self) -> &'static str {
        match self {
            HardFault::CpuFail { .. } => "cpu-fail",
            HardFault::LinkFail { .. } => "link-fail",
            HardFault::GcbDegrade { .. } => "gcb-degrade",
        }
    }
}

/// One composable fault-plan ingredient: a transient fault class or a
/// scheduled hard failure. An event list plus a seed fully determines
/// a [`FaultPlan`] (see [`FaultPlan::from_events`]) — the shared
/// vocabulary of the chaos campaign, the fault-reproducibility sweep,
/// and the declarative scenario specs, and the unit their shrinkers
/// and spec parsers all operate on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Transient SCI ring stalls at `prob`, `stall` cycles each.
    RingStalls {
        /// Per-crossing stall probability.
        prob: f64,
        /// Extra cycles per stalled transaction.
        stall: Cycles,
    },
    /// Transient PVM message faults (drops retried, dups discarded).
    MsgFaults {
        /// Per-send drop probability.
        drop: f64,
        /// Per-delivery duplication probability.
        dup: f64,
    },
    /// Transient thread-spawn failures (retried with backoff).
    SpawnFail {
        /// Per-attempt failure probability.
        prob: f64,
    },
    /// Hard failure: CPU `cpu` dies at machine clock `at_cycle`.
    CpuFail {
        /// Global CPU id.
        cpu: u16,
        /// Trigger clock in cumulative access cycles.
        at_cycle: Cycles,
    },
    /// Hard failure: SCI ring `ring` loses a segment at `at_cycle`.
    LinkFail {
        /// The ring (0..fus_per_node).
        ring: u8,
        /// Trigger clock.
        at_cycle: Cycles,
        /// Extra cycles per rerouted transaction.
        reroute_cycles: Cycles,
    },
    /// Hard failure: node `node`'s GCBs halve in capacity at
    /// `at_cycle`.
    GcbDegrade {
        /// The hypernode.
        node: u8,
        /// Trigger clock.
        at_cycle: Cycles,
    },
    /// Transient coherence fault: an invalidation is dropped in
    /// flight, leaving a stale valid copy behind (detected and
    /// scrubbed by the machine's recovery path).
    InvalDrop {
        /// Per-access injection probability.
        prob: f64,
    },
    /// Transient coherence fault: an invalidation is duplicated, the
    /// twin tearing down a copy the metadata still records.
    InvalDup {
        /// Per-access injection probability.
        prob: f64,
    },
    /// Transient coherence fault: an invalidation is delayed past the
    /// access, a stale buffered copy surviving alongside the writer.
    InvalDelay {
        /// Per-access injection probability.
        prob: f64,
    },
    /// Transient coherence fault: a Dragon write-update broadcast is
    /// lost, a sharer's copy vanishing while the holder filter still
    /// lists it (Dragon backend only).
    UpdateLoss {
        /// Per-access injection probability.
        prob: f64,
    },
    /// Transient coherence fault: a directory ack arrives stale,
    /// recording a sharer that no longer holds the line (DASH+SCI
    /// backend only).
    AckStale {
        /// Per-access injection probability.
        prob: f64,
    },
    /// Transient coherence fault: a single line's cache state is
    /// corrupted (bit-flip class — e.g. a Shared copy reads back
    /// Modified).
    LineCorrupt {
        /// Per-access injection probability.
        prob: f64,
    },
    /// How likely an injected transient is to *persist* across one
    /// scrub attempt (0 = every fault heals on the first retry; near
    /// 1 escalates to checkpoint rollback).
    TransientPersist {
        /// Per-scrub persistence probability.
        prob: f64,
    },
}

impl FaultEvent {
    /// Short stable label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            FaultEvent::RingStalls { .. } => "ring-stalls",
            FaultEvent::MsgFaults { .. } => "msg-faults",
            FaultEvent::SpawnFail { .. } => "spawn-fail",
            FaultEvent::CpuFail { .. } => "cpu-fail",
            FaultEvent::LinkFail { .. } => "link-fail",
            FaultEvent::GcbDegrade { .. } => "gcb-degrade",
            FaultEvent::InvalDrop { .. } => "inval-drop",
            FaultEvent::InvalDup { .. } => "inval-dup",
            FaultEvent::InvalDelay { .. } => "inval-delay",
            FaultEvent::UpdateLoss { .. } => "update-loss",
            FaultEvent::AckStale { .. } => "ack-stale",
            FaultEvent::LineCorrupt { .. } => "line-corrupt",
            FaultEvent::TransientPersist { .. } => "transient-persist",
        }
    }

    /// Full description with parameters (JSON-safe: no quotes or
    /// backslashes).
    pub fn desc(&self) -> String {
        match self {
            FaultEvent::RingStalls { prob, stall } => format!("ring-stalls(p={prob}, {stall}cy)"),
            FaultEvent::MsgFaults { drop, dup } => format!("msg-faults(drop={drop}, dup={dup})"),
            FaultEvent::SpawnFail { prob } => format!("spawn-fail(p={prob})"),
            FaultEvent::CpuFail { cpu, at_cycle } => format!("cpu-fail(cpu={cpu}@{at_cycle})"),
            FaultEvent::LinkFail {
                ring,
                at_cycle,
                reroute_cycles,
            } => format!("link-fail(ring={ring}@{at_cycle}, +{reroute_cycles}cy)"),
            FaultEvent::GcbDegrade { node, at_cycle } => {
                format!("gcb-degrade(node={node}@{at_cycle})")
            }
            FaultEvent::InvalDrop { prob } => format!("inval-drop(p={prob})"),
            FaultEvent::InvalDup { prob } => format!("inval-dup(p={prob})"),
            FaultEvent::InvalDelay { prob } => format!("inval-delay(p={prob})"),
            FaultEvent::UpdateLoss { prob } => format!("update-loss(p={prob})"),
            FaultEvent::AckStale { prob } => format!("ack-stale(p={prob})"),
            FaultEvent::LineCorrupt { prob } => format!("line-corrupt(p={prob})"),
            FaultEvent::TransientPersist { prob } => format!("transient-persist(p={prob})"),
        }
    }

    /// Fold this event into a fault plan.
    pub fn apply(&self, plan: FaultPlan) -> FaultPlan {
        match *self {
            FaultEvent::RingStalls { prob, stall } => plan.with_ring_stalls(prob, stall),
            FaultEvent::MsgFaults { drop, dup } => plan.with_message_faults(drop, dup),
            FaultEvent::SpawnFail { prob } => plan.with_spawn_failures(prob),
            FaultEvent::CpuFail { cpu, at_cycle } => plan.with_cpu_failure(cpu, at_cycle),
            FaultEvent::LinkFail {
                ring,
                at_cycle,
                reroute_cycles,
            } => plan.with_link_failure(ring, at_cycle, reroute_cycles),
            FaultEvent::GcbDegrade { node, at_cycle } => plan.with_gcb_degrade(node, at_cycle),
            FaultEvent::InvalDrop { prob } => plan.with_inval_drops(prob),
            FaultEvent::InvalDup { prob } => plan.with_inval_dups(prob),
            FaultEvent::InvalDelay { prob } => plan.with_inval_delays(prob),
            FaultEvent::UpdateLoss { prob } => plan.with_update_loss(prob),
            FaultEvent::AckStale { prob } => plan.with_ack_stale(prob),
            FaultEvent::LineCorrupt { prob } => plan.with_line_corruption(prob),
            FaultEvent::TransientPersist { prob } => plan.with_transient_persistence(prob),
        }
    }
}

/// Number of independent fault-decision streams (sites). Grows only
/// by appending: existing sites keep their indices and salts forever,
/// so adding a stream can never perturb another site's n-th decision.
pub const N_FAULT_SITES: usize = 11;

/// Fault-site indices into the per-site counters.
const SITE_RING: usize = 0;
const SITE_DROP: usize = 1;
const SITE_DUP: usize = 2;
const SITE_SPAWN: usize = 3;
const SITE_TDROP: usize = 4;
const SITE_TDUP: usize = 5;
const SITE_TDELAY: usize = 6;
const SITE_TUPD: usize = 7;
const SITE_TACK: usize = 8;
const SITE_TCORR: usize = 9;
const SITE_TPERSIST: usize = 10;

/// Per-site salts keep the decision streams independent even for
/// equal counters.
const SALTS: [u64; N_FAULT_SITES] = [
    0x5249_4E47_u64, // "RING"
    0x4452_4F50_u64, // "DROP"
    0x4455_505F_u64, // "DUP_"
    0x5350_574E_u64, // "SPWN"
    0x5444_5250_u64, // "TDRP"
    0x5444_5550_u64, // "TDUP"
    0x5444_4C59_u64, // "TDLY"
    0x5455_5044_u64, // "TUPD"
    0x5441_434B_u64, // "TACK"
    0x5443_4F52_u64, // "TCOR"
    0x5450_4552_u64, // "TPER"
];

/// A seeded, deterministic schedule of transient faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Probability that a ring-crossing access stalls.
    pub ring_stall_prob: f64,
    /// Extra cycles a stalled ring transaction pays.
    pub ring_stall_cycles: Cycles,
    /// Probability that a PVM send is dropped (sender retries on a
    /// priced timeout).
    pub msg_drop_prob: f64,
    /// Probability that a delivered PVM message is duplicated (the
    /// receiver discards the twin by sequence number).
    pub msg_dup_prob: f64,
    /// Probability that a thread spawn fails (runtime retries with
    /// backoff).
    pub spawn_fail_prob: f64,
    /// Probability that an access's invalidation is dropped in flight.
    pub inval_drop_prob: f64,
    /// Probability that an access's invalidation is duplicated.
    pub inval_dup_prob: f64,
    /// Probability that an access's invalidation is delayed past it.
    pub inval_delay_prob: f64,
    /// Probability that a Dragon update broadcast is lost.
    pub update_loss_prob: f64,
    /// Probability that a directory ack arrives stale.
    pub ack_stale_prob: f64,
    /// Probability that an access corrupts a single line's state.
    pub line_corrupt_prob: f64,
    /// Probability that an injected transient survives one scrub
    /// attempt (drives the detect-and-retry loop toward rollback).
    pub transient_persist_prob: f64,
    counters: [u64; N_FAULT_SITES],
    /// Scheduled persistent failures, applied by the machine when its
    /// access clock reaches each trigger cycle.
    hard_faults: Vec<HardFault>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled. Chain the
    /// `with_*` builders to switch fault classes on.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ring_stall_prob: 0.0,
            ring_stall_cycles: us_to_cycles(5.0),
            msg_drop_prob: 0.0,
            msg_dup_prob: 0.0,
            spawn_fail_prob: 0.0,
            inval_drop_prob: 0.0,
            inval_dup_prob: 0.0,
            inval_delay_prob: 0.0,
            update_loss_prob: 0.0,
            ack_stale_prob: 0.0,
            line_corrupt_prob: 0.0,
            transient_persist_prob: 0.0,
            counters: [0; N_FAULT_SITES],
            hard_faults: Vec::new(),
        }
    }

    /// Assemble a seeded plan from an event list — the one shared
    /// constructor behind the chaos campaign, the fault sweep, and the
    /// scenario specs (equivalent to folding [`FaultEvent::apply`]
    /// over `events` starting from [`FaultPlan::new`]).
    pub fn from_events(seed: u64, events: &[FaultEvent]) -> Self {
        events.iter().fold(Self::new(seed), |p, e| e.apply(p))
    }

    /// A plan exercising every fault class at modest rates — the
    /// default schedule `repro-faults` and the robustness tests use.
    pub fn standard(seed: u64) -> Self {
        Self::new(seed)
            .with_ring_stalls(0.02, us_to_cycles(5.0))
            .with_message_faults(0.05, 0.02)
            .with_spawn_failures(0.05)
    }

    /// Enable SCI ring stalls: each ring-crossing access stalls with
    /// probability `prob`, paying `stall` extra cycles.
    pub fn with_ring_stalls(mut self, prob: f64, stall: Cycles) -> Self {
        self.ring_stall_prob = prob;
        self.ring_stall_cycles = stall;
        self
    }

    /// Enable message faults: drop each send with probability `drop`,
    /// duplicate each delivery with probability `dup`.
    pub fn with_message_faults(mut self, drop: f64, dup: f64) -> Self {
        self.msg_drop_prob = drop;
        self.msg_dup_prob = dup;
        self
    }

    /// Enable spawn failures with probability `prob` per spawn attempt.
    pub fn with_spawn_failures(mut self, prob: f64) -> Self {
        self.spawn_fail_prob = prob;
        self
    }

    /// Enable dropped-invalidation transients at `prob` per access.
    pub fn with_inval_drops(mut self, prob: f64) -> Self {
        self.inval_drop_prob = prob;
        self
    }

    /// Enable duplicated-invalidation transients at `prob` per access.
    pub fn with_inval_dups(mut self, prob: f64) -> Self {
        self.inval_dup_prob = prob;
        self
    }

    /// Enable delayed-invalidation transients at `prob` per access.
    pub fn with_inval_delays(mut self, prob: f64) -> Self {
        self.inval_delay_prob = prob;
        self
    }

    /// Enable lost Dragon update broadcasts at `prob` per access.
    pub fn with_update_loss(mut self, prob: f64) -> Self {
        self.update_loss_prob = prob;
        self
    }

    /// Enable stale directory acks at `prob` per access.
    pub fn with_ack_stale(mut self, prob: f64) -> Self {
        self.ack_stale_prob = prob;
        self
    }

    /// Enable single-line state corruption at `prob` per access.
    pub fn with_line_corruption(mut self, prob: f64) -> Self {
        self.line_corrupt_prob = prob;
        self
    }

    /// Set the probability that an injected transient persists across
    /// one scrub attempt (default 0: the first retry always heals).
    pub fn with_transient_persistence(mut self, prob: f64) -> Self {
        self.transient_persist_prob = prob;
        self
    }

    /// Schedule CPU `cpu` to die once the machine clock reaches
    /// `at_cycle`.
    pub fn with_cpu_failure(mut self, cpu: u16, at_cycle: Cycles) -> Self {
        self.hard_faults.push(HardFault::CpuFail { cpu, at_cycle });
        self
    }

    /// Schedule SCI ring `ring` to lose a segment at `at_cycle`;
    /// rerouted traffic pays `reroute_cycles` extra per transaction.
    pub fn with_link_failure(mut self, ring: u8, at_cycle: Cycles, reroute_cycles: Cycles) -> Self {
        self.hard_faults.push(HardFault::LinkFail {
            ring,
            at_cycle,
            reroute_cycles,
        });
        self
    }

    /// Schedule node `node`'s global cache buffers to halve in
    /// capacity at `at_cycle`.
    pub fn with_gcb_degrade(mut self, node: u8, at_cycle: Cycles) -> Self {
        self.hard_faults
            .push(HardFault::GcbDegrade { node, at_cycle });
        self
    }

    /// Append an already-built hard fault (used by the chaos harness
    /// to assemble plans from event lists).
    pub fn with_hard_fault(mut self, fault: HardFault) -> Self {
        self.hard_faults.push(fault);
        self
    }

    /// The scheduled persistent failures, in insertion order.
    pub fn hard_faults(&self) -> &[HardFault] {
        &self.hard_faults
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True if any fault class is enabled.
    pub fn is_active(&self) -> bool {
        self.ring_stall_prob > 0.0
            || self.msg_drop_prob > 0.0
            || self.msg_dup_prob > 0.0
            || self.spawn_fail_prob > 0.0
            || self.transients_active()
            || !self.hard_faults.is_empty()
    }

    /// True if any transient *coherence* fault class is enabled (the
    /// machine's protocol seam only pays for injection when so).
    pub fn transients_active(&self) -> bool {
        self.inval_drop_prob > 0.0
            || self.inval_dup_prob > 0.0
            || self.inval_delay_prob > 0.0
            || self.update_loss_prob > 0.0
            || self.ack_stale_prob > 0.0
            || self.line_corrupt_prob > 0.0
    }

    /// Events drawn so far at each site — diagnostics for determinism
    /// tests and the checkpoint-rollback replay path. Sites 0..4 are
    /// the historical streams (ring, drop, dup, spawn); 4..10 the
    /// transient-coherence streams (inval drop/dup/delay, update loss,
    /// stale ack, line corruption); 10 the scrub-persistence stream.
    pub fn draws(&self) -> [u64; N_FAULT_SITES] {
        self.counters
    }

    /// Advance each site's draw counter to at least the given value —
    /// never backwards. Rollback-and-replay uses this after restoring
    /// a checkpoint: replayed accesses then draw *later* decisions, so
    /// the transient that forced the rollback cannot re-fire
    /// identically forever.
    pub fn advance_draws(&mut self, floor: [u64; N_FAULT_SITES]) {
        for (c, f) in self.counters.iter_mut().zip(floor) {
            *c = (*c).max(f);
        }
    }

    /// Restore the per-site draw counters (checkpoint/restart support:
    /// a resumed plan continues its decision streams where the
    /// snapshot left off).
    pub(crate) fn restore_counters(&mut self, counters: [u64; N_FAULT_SITES]) {
        self.counters = counters;
    }

    /// splitmix64-style finalizer over (seed, site salt, event index):
    /// a uniform `[0, 1)` value that is a pure function of its inputs.
    fn unit(&self, site: usize, n: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(SALTS[site].wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(n.wrapping_mul(0xD1B5_4A32_D192_ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn decide(&mut self, site: usize, prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        let n = self.counters[site];
        self.counters[site] += 1;
        self.unit(site, n) < prob
    }

    /// Does the next ring-crossing access stall? Returns the stall
    /// cycles if so.
    pub fn ring_stall(&mut self) -> Option<Cycles> {
        self.decide(SITE_RING, self.ring_stall_prob)
            .then_some(self.ring_stall_cycles)
    }

    /// Is the next message send dropped?
    pub fn drops_message(&mut self) -> bool {
        self.decide(SITE_DROP, self.msg_drop_prob)
    }

    /// Is the next delivered message duplicated?
    pub fn duplicates_message(&mut self) -> bool {
        self.decide(SITE_DUP, self.msg_dup_prob)
    }

    /// Does the next thread spawn attempt fail?
    pub fn spawn_fails(&mut self) -> bool {
        self.decide(SITE_SPAWN, self.spawn_fail_prob)
    }

    /// Is the next access's invalidation dropped in flight?
    pub fn inval_dropped(&mut self) -> bool {
        self.decide(SITE_TDROP, self.inval_drop_prob)
    }

    /// Is the next access's invalidation duplicated?
    pub fn inval_duplicated(&mut self) -> bool {
        self.decide(SITE_TDUP, self.inval_dup_prob)
    }

    /// Is the next access's invalidation delayed past it?
    pub fn inval_delayed(&mut self) -> bool {
        self.decide(SITE_TDELAY, self.inval_delay_prob)
    }

    /// Is the next Dragon update broadcast lost?
    pub fn update_lost(&mut self) -> bool {
        self.decide(SITE_TUPD, self.update_loss_prob)
    }

    /// Does the next directory ack arrive stale?
    pub fn ack_stales(&mut self) -> bool {
        self.decide(SITE_TACK, self.ack_stale_prob)
    }

    /// Does the next access corrupt a line's state?
    pub fn line_corrupts(&mut self) -> bool {
        self.decide(SITE_TCORR, self.line_corrupt_prob)
    }

    /// Does an injected transient persist across this scrub attempt?
    pub fn transient_persists(&mut self) -> bool {
        self.decide(SITE_TPERSIST, self.transient_persist_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_gives_identical_decision_streams() {
        let stream = |seed| {
            let mut p = FaultPlan::standard(seed);
            (0..200)
                .map(|_| {
                    (
                        p.ring_stall().is_some(),
                        p.drops_message(),
                        p.duplicates_message(),
                        p.spawn_fails(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(stream(42), stream(42));
        assert_ne!(stream(42), stream(43), "different seeds should differ");
    }

    #[test]
    fn sites_are_interleaving_independent() {
        // Drawing message decisions between ring decisions must not
        // perturb the ring stream.
        let mut a = FaultPlan::standard(7);
        let mut b = FaultPlan::standard(7);
        let ring_a: Vec<bool> = (0..50).map(|_| a.ring_stall().is_some()).collect();
        let ring_b: Vec<bool> = (0..50)
            .map(|_| {
                b.drops_message();
                b.duplicates_message();
                b.ring_stall().is_some()
            })
            .collect();
        assert_eq!(ring_a, ring_b);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut p = FaultPlan::new(1).with_message_faults(0.25, 0.0);
        let drops = (0..4000).filter(|_| p.drops_message()).count();
        assert!((800..=1200).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn from_events_matches_the_builder_chain() {
        let events = [
            FaultEvent::RingStalls {
                prob: 0.02,
                stall: 500,
            },
            FaultEvent::MsgFaults {
                drop: 0.05,
                dup: 0.02,
            },
            FaultEvent::SpawnFail { prob: 0.05 },
            FaultEvent::CpuFail {
                cpu: 2,
                at_cycle: 400_000,
            },
            FaultEvent::LinkFail {
                ring: 1,
                at_cycle: 200_000,
                reroute_cycles: 600,
            },
            FaultEvent::GcbDegrade {
                node: 1,
                at_cycle: 300_000,
            },
        ];
        let from_events = FaultPlan::from_events(42, &events);
        let chained = FaultPlan::new(42)
            .with_ring_stalls(0.02, 500)
            .with_message_faults(0.05, 0.02)
            .with_spawn_failures(0.05)
            .with_cpu_failure(2, 400_000)
            .with_link_failure(1, 200_000, 600)
            .with_gcb_degrade(1, 300_000);
        assert_eq!(from_events, chained);
        assert_eq!(from_events.hard_faults().len(), 3);
    }

    #[test]
    fn event_labels_and_descriptions_are_stable() {
        let e = FaultEvent::CpuFail {
            cpu: 3,
            at_cycle: 1_000,
        };
        assert_eq!(e.label(), "cpu-fail");
        assert_eq!(e.desc(), "cpu-fail(cpu=3@1000)");
        let e = FaultEvent::RingStalls {
            prob: 0.5,
            stall: 10,
        };
        assert_eq!(e.desc(), "ring-stalls(p=0.5, 10cy)");
    }

    #[test]
    fn disabled_sites_never_fire_and_draw_nothing() {
        let mut p = FaultPlan::new(9);
        assert!(!p.is_active());
        for _ in 0..100 {
            assert!(p.ring_stall().is_none());
            assert!(!p.drops_message());
            assert!(!p.spawn_fails());
            assert!(!p.inval_dropped());
            assert!(!p.update_lost());
            assert!(!p.line_corrupts());
            assert!(!p.transient_persists());
        }
        assert_eq!(p.draws(), [0; N_FAULT_SITES]);
    }

    #[test]
    fn transient_streams_do_not_perturb_historical_sites() {
        // A plan that additionally draws every transient stream must
        // reproduce the exact ring/drop/dup/spawn decisions of a plan
        // that never touches them: the new sites are appended, salted
        // streams — not interleaved into the old ones.
        let transients = |p: FaultPlan| {
            p.with_inval_drops(0.3)
                .with_inval_dups(0.3)
                .with_inval_delays(0.3)
                .with_update_loss(0.3)
                .with_ack_stale(0.3)
                .with_line_corruption(0.3)
                .with_transient_persistence(0.3)
        };
        let mut a = FaultPlan::standard(7);
        let mut b = transients(FaultPlan::standard(7));
        let old_a: Vec<_> = (0..80)
            .map(|_| {
                (
                    a.ring_stall().is_some(),
                    a.drops_message(),
                    a.duplicates_message(),
                    a.spawn_fails(),
                )
            })
            .collect();
        let old_b: Vec<_> = (0..80)
            .map(|_| {
                b.inval_dropped();
                b.inval_duplicated();
                b.inval_delayed();
                b.update_lost();
                b.ack_stales();
                b.line_corrupts();
                b.transient_persists();
                (
                    b.ring_stall().is_some(),
                    b.drops_message(),
                    b.duplicates_message(),
                    b.spawn_fails(),
                )
            })
            .collect();
        assert_eq!(old_a, old_b);
        assert_eq!(a.draws()[..4], b.draws()[..4]);
    }

    #[test]
    fn transient_event_labels_and_descriptions_are_stable() {
        let cases = [
            (
                FaultEvent::InvalDrop { prob: 0.1 },
                "inval-drop",
                "inval-drop(p=0.1)",
            ),
            (
                FaultEvent::InvalDup { prob: 0.1 },
                "inval-dup",
                "inval-dup(p=0.1)",
            ),
            (
                FaultEvent::InvalDelay { prob: 0.1 },
                "inval-delay",
                "inval-delay(p=0.1)",
            ),
            (
                FaultEvent::UpdateLoss { prob: 0.1 },
                "update-loss",
                "update-loss(p=0.1)",
            ),
            (
                FaultEvent::AckStale { prob: 0.1 },
                "ack-stale",
                "ack-stale(p=0.1)",
            ),
            (
                FaultEvent::LineCorrupt { prob: 0.1 },
                "line-corrupt",
                "line-corrupt(p=0.1)",
            ),
            (
                FaultEvent::TransientPersist { prob: 0.9 },
                "transient-persist",
                "transient-persist(p=0.9)",
            ),
        ];
        for (e, label, desc) in cases {
            assert_eq!(e.label(), label);
            assert_eq!(e.desc(), desc);
            let plan = FaultPlan::from_events(5, &[e]);
            assert_eq!(plan, e.apply(FaultPlan::new(5)));
        }
        let active = FaultPlan::new(1).with_ack_stale(0.2);
        assert!(active.is_active() && active.transients_active());
        let persist_only = FaultPlan::new(1).with_transient_persistence(0.9);
        assert!(!persist_only.transients_active());
    }

    #[test]
    fn advance_draws_is_a_monotone_floor() {
        let mut p = FaultPlan::new(3).with_line_corruption(1.0);
        for _ in 0..5 {
            p.line_corrupts();
        }
        let mut floor = [0; N_FAULT_SITES];
        floor[9] = 3; // behind: must not move backwards
        floor[10] = 7; // ahead: must jump forward
        p.advance_draws(floor);
        assert_eq!(p.draws()[9], 5);
        assert_eq!(p.draws()[10], 7);
    }
}
