//! Intra-hypernode directory (paper §2.4): a direct-mapped,
//! directory-based scheme "similar to the experimental DASH system".
//!
//! Each hypernode's CCMC logic tracks, for every line present in the
//! node (whether homed in the node's memory or held in its global
//! cache buffer), which of the node's eight CPUs hold copies and
//! whether one of them holds the line modified. We model the directory
//! as a sparse map over lines with live state.

use crate::linemap::LineMap;

/// Directory state for one line within one hypernode.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirEntry {
    /// Bitmask of CPUs *within this node* holding the line
    /// Shared/Modified (bit = CPU index in node, 0..8).
    pub sharers: u8,
    /// CPU index in node holding the line Modified, if any. When set,
    /// `sharers` contains exactly that bit.
    pub owner: Option<u8>,
}

impl DirEntry {
    /// True if no CPU in the node holds the line.
    pub fn is_empty(&self) -> bool {
        self.sharers == 0 && self.owner.is_none()
    }

    /// Number of sharers excluding `cpu_in_node`.
    pub fn other_sharers(&self, cpu_in_node: u8) -> u32 {
        (self.sharers & !(1 << cpu_in_node)).count_ones()
    }
}

/// Per-hypernode directory.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    map: LineMap<DirEntry>,
}

impl Directory {
    /// Create an empty directory.
    pub fn new() -> Self {
        Directory {
            map: LineMap::new(),
        }
    }

    /// Current entry for `line` (copy), if any CPU in the node holds it.
    pub fn get(&self, line: u64) -> Option<DirEntry> {
        self.map.get(line).copied()
    }

    /// Record that `cpu_in_node` now shares `line`.
    pub fn add_sharer(&mut self, line: u64, cpu_in_node: u8) {
        let e = self.map.entry_or_insert_with(line, DirEntry::default);
        e.sharers |= 1 << cpu_in_node;
    }

    /// Record that `cpu_in_node` holds `line` modified (it becomes the
    /// sole sharer).
    pub fn set_owner(&mut self, line: u64, cpu_in_node: u8) {
        let e = self.map.entry_or_insert_with(line, DirEntry::default);
        e.sharers = 1 << cpu_in_node;
        e.owner = Some(cpu_in_node);
    }

    /// Downgrade the owner (if any) to an ordinary sharer.
    pub fn clear_owner(&mut self, line: u64) {
        if let Some(e) = self.map.get_mut(line) {
            e.owner = None;
        }
    }

    /// Remove `cpu_in_node` from the sharer set (cache eviction or
    /// invalidation). Drops the entry when it empties.
    pub fn remove_sharer(&mut self, line: u64, cpu_in_node: u8) {
        let remove = if let Some(e) = self.map.get_mut(line) {
            e.sharers &= !(1 << cpu_in_node);
            if e.owner == Some(cpu_in_node) {
                e.owner = None;
            }
            e.is_empty()
        } else {
            false
        };
        if remove {
            self.map.remove(line);
        }
    }

    /// Remove the whole entry (node-wide invalidation), returning the
    /// CPUs that held copies.
    pub fn take(&mut self, line: u64) -> Option<DirEntry> {
        self.map.remove(line)
    }

    /// Number of lines with live directory state (diagnostics).
    pub fn live_lines(&self) -> usize {
        self.map.len()
    }

    /// Iterate over all lines with live state (coherence checker).
    pub fn lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.map.iter().map(|(l, _)| l)
    }
}

/// Inter-hypernode SCI reference-tree state (paper §2.5): for each
/// line shared beyond its home hypernode, a distributed linked list of
/// sharing nodes, walked serially on invalidation.
#[derive(Debug, Clone, Default)]
pub struct SciEntry {
    /// Sharing hypernodes, most recent first (the SCI list head).
    /// Never contains the home node.
    pub list: Vec<u8>,
    /// Node holding the line dirty (home memory stale), if any.
    pub dirty: Option<u8>,
}

/// Global map of SCI reference trees.
#[derive(Debug, Clone, Default)]
pub struct SciDirectory {
    map: LineMap<SciEntry>,
}

impl SciDirectory {
    /// Create an empty SCI directory.
    pub fn new() -> Self {
        SciDirectory {
            map: LineMap::new(),
        }
    }

    /// The entry for `line`, if it is shared beyond its home node.
    pub fn get(&self, line: u64) -> Option<&SciEntry> {
        self.map.get(line)
    }

    /// Node currently holding `line` dirty, if any.
    pub fn dirty_node(&self, line: u64) -> Option<u8> {
        self.map.get(line).and_then(|e| e.dirty)
    }

    /// Prepend `node` to the sharing list (SCI inserts new sharers at
    /// the head). Idempotent.
    pub fn add_sharer(&mut self, line: u64, node: u8) {
        let e = self.map.entry_or_insert_with(line, SciEntry::default);
        if !e.list.contains(&node) {
            e.list.insert(0, node);
        }
    }

    /// Mark `node` as holding the dirty copy.
    pub fn set_dirty(&mut self, line: u64, node: u8) {
        let e = self.map.entry_or_insert_with(line, SciEntry::default);
        e.dirty = Some(node);
        if !e.list.contains(&node) {
            e.list.insert(0, node);
        }
    }

    /// Clear the dirty marker (data written back / downgraded).
    pub fn clear_dirty(&mut self, line: u64) {
        if let Some(e) = self.map.get_mut(line) {
            e.dirty = None;
        }
    }

    /// Remove `node` from the list (GCB rollout or invalidation).
    pub fn remove_sharer(&mut self, line: u64, node: u8) {
        let remove = if let Some(e) = self.map.get_mut(line) {
            e.list.retain(|n| *n != node);
            if e.dirty == Some(node) {
                e.dirty = None;
            }
            e.list.is_empty() && e.dirty.is_none()
        } else {
            false
        };
        if remove {
            self.map.remove(line);
        }
    }

    /// Remove and return the whole sharing list (write invalidation).
    pub fn take(&mut self, line: u64) -> Option<SciEntry> {
        self.map.remove(line)
    }

    /// Number of lines with remote-sharing state (diagnostics).
    pub fn live_lines(&self) -> usize {
        self.map.len()
    }

    /// Iterate over all lines with remote-sharing state (coherence
    /// checker).
    pub fn lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.map.iter().map(|(l, _)| l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharers_accumulate_and_drain() {
        let mut d = Directory::new();
        d.add_sharer(10, 0);
        d.add_sharer(10, 3);
        let e = d.get(10).unwrap();
        assert_eq!(e.sharers, 0b1001);
        assert_eq!(e.other_sharers(0), 1);
        d.remove_sharer(10, 0);
        d.remove_sharer(10, 3);
        assert!(d.get(10).is_none());
        assert_eq!(d.live_lines(), 0);
    }

    #[test]
    fn set_owner_makes_sole_sharer() {
        let mut d = Directory::new();
        d.add_sharer(5, 1);
        d.add_sharer(5, 2);
        d.set_owner(5, 7);
        let e = d.get(5).unwrap();
        assert_eq!(e.sharers, 1 << 7);
        assert_eq!(e.owner, Some(7));
        d.clear_owner(5);
        assert_eq!(d.get(5).unwrap().owner, None);
        assert_eq!(d.get(5).unwrap().sharers, 1 << 7);
    }

    #[test]
    fn removing_owner_clears_ownership() {
        let mut d = Directory::new();
        d.set_owner(5, 3);
        d.remove_sharer(5, 3);
        assert!(d.get(5).is_none());
    }

    #[test]
    fn sci_list_prepends_newest_sharer() {
        let mut s = SciDirectory::new();
        s.add_sharer(100, 1);
        s.add_sharer(100, 2);
        s.add_sharer(100, 1); // idempotent
        assert_eq!(s.get(100).unwrap().list, vec![2, 1]);
    }

    #[test]
    fn sci_dirty_tracking() {
        let mut s = SciDirectory::new();
        s.set_dirty(7, 3);
        assert_eq!(s.dirty_node(7), Some(3));
        assert_eq!(s.get(7).unwrap().list, vec![3]);
        s.clear_dirty(7);
        assert_eq!(s.dirty_node(7), None);
        s.remove_sharer(7, 3);
        assert!(s.get(7).is_none());
    }

    #[test]
    fn sci_remove_dirty_sharer_clears_dirty() {
        let mut s = SciDirectory::new();
        s.add_sharer(9, 1);
        s.set_dirty(9, 2);
        s.remove_sharer(9, 2);
        assert_eq!(s.dirty_node(9), None);
        assert_eq!(s.get(9).unwrap().list, vec![1]);
    }

    #[test]
    fn sci_take_returns_full_list() {
        let mut s = SciDirectory::new();
        s.add_sharer(1, 0);
        s.add_sharer(1, 1);
        let e = s.take(1).unwrap();
        assert_eq!(e.list.len(), 2);
        assert!(s.get(1).is_none());
    }
}
