//! The machine: ties caches, directories, global cache buffers and the
//! SCI protocol together and prices every access in cycles.
//!
//! Every simulated memory reference from a simulated CPU enters
//! through [`Machine::read`] / [`Machine::write`]; the returned cycle
//! count is the full latency the issuing CPU observes, including any
//! coherence actions (invalidation walks, dirty forwarding, rollouts)
//! that the SPP-1000 performs synchronously with the access.
//!
//! The model is deterministic and single-threaded by design: replaying
//! thread access streams in a fixed order against shared coherence
//! state is the standard trace-interleaving approximation (DESIGN.md
//! §2). Queueing/contention at banks and links is not modelled except
//! for the hot-line serialization the barrier study needs, which the
//! runtime layers on top.

use crate::cache::{Cache, Evicted, LineState};
use crate::check::CoherenceChecker;
use crate::config::{CpuId, MachineConfig, NodeId, RingId};
use crate::directory::{Directory, SciDirectory};
use crate::error::{ConfigError, SimError};
use crate::fault::{FaultPlan, HardFault};
use crate::latency::Cycles;
use crate::mem::{AddressSpace, MemClass, Region};
use crate::protocol::{CoherenceProtocol, DashSci, Dragon, Mesi, ProtocolKind, SnoopFilter};
use crate::race::{RaceReport, RaceSink};
use crate::stats::MemStats;
use crate::trace::{MissKind, RingSink, TraceEvent, TraceRecord, TraceSink, NO_CPU};

/// The simulated SPP-1000.
#[derive(Debug, Clone)]
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) space: AddressSpace,
    /// Per-CPU data caches, indexed by `CpuId`.
    pub(crate) caches: Vec<Cache>,
    /// Per-hypernode directories (local sharers of any line present in
    /// the node).
    pub(crate) dirs: Vec<Directory>,
    /// Global cache buffers, one per (node, ring): `node * rings + ring`.
    pub(crate) gcbs: Vec<Cache>,
    /// SCI distributed reference trees.
    pub(crate) sci: SciDirectory,
    /// Which coherence protocol prices accesses (see [`crate::protocol`]).
    pub(crate) protocol: ProtocolKind,
    /// Sparse line → holder tracking for the snooping backends; empty
    /// under DASH+SCI.
    pub(crate) snoop: SnoopFilter,
    /// Event counters.
    pub stats: MemStats,
    /// Per-CPU event counters: each access's [`MemStats`] delta is
    /// also charged to the issuing CPU, so `cpu_stats` sums to
    /// `stats` for as long as both started from zero together
    /// (restoring a snapshot restarts the breakdown at zero; the
    /// global counters are part of the snapshot, the breakdown is
    /// observability-only).
    pub(crate) cpu_stats: Vec<MemStats>,
    pub(crate) line_shift: u32,
    /// Per-access invariant checker (see [`crate::check`]); boxed to
    /// keep the common no-checker machine small.
    checker: Option<Box<CoherenceChecker>>,
    /// Structured event sink (see [`crate::trace`]); `None` means
    /// tracing is off and every event site is a single branch.
    tracer: Option<Box<dyn TraceSink>>,
    /// Happens-before race detector (see [`crate::race`]); `None`
    /// means detection is off and every hook is a single branch.
    racer: Option<Box<RaceSink>>,
    /// Per-line cycle-attribution heatmap (see [`crate::heat`]);
    /// `None` means attribution is off and every access site is a
    /// single branch.
    heat: Option<Box<crate::heat::HeatMap>>,
    /// Deterministic fault schedule, if installed.
    pub(crate) faults: Option<FaultPlan>,
    /// Cumulative cycles charged across all accesses: the machine's
    /// notion of simulated time, driving hard-fault triggering and
    /// watchdog deadlines.
    pub(crate) clock: Cycles,
    /// Bitmask of CPUs taken down by a fired [`HardFault::CpuFail`],
    /// packed 64 CPUs per word (word `cpu / 64`, bit `cpu % 64`) so
    /// 1024-CPU topologies fit.
    pub(crate) dead_cpus: Vec<u64>,
    /// Bitmask of rings severed by a fired [`HardFault::LinkFail`]
    /// (bit index = `RingId`).
    pub(crate) failed_rings: u8,
    /// Bitmask of nodes whose GCBs were halved by
    /// [`HardFault::GcbDegrade`] (bit index = `NodeId`; 128 nodes).
    pub(crate) degraded_gcbs: u128,
    /// Which entries of the plan's hard-fault schedule have fired
    /// (bit index into [`FaultPlan::hard_faults`]).
    pub(crate) hard_applied: u64,
    /// Set when a transient coherence fault persisted through the
    /// whole scrub budget. [`Machine::read`]/[`Machine::write`] panic
    /// on it; [`Machine::try_read`]/[`Machine::try_write`] return it
    /// as a typed error so callers can roll back to a checkpoint.
    pending_recovery_failure: Option<SimError>,
}

/// The full coherence footprint of one line, captured before a
/// transient fault is injected: every valid CPU-cache copy, each
/// hypernode directory's entry, and the snoop filter's holder list
/// (in order — list order is protocol state). The scrub path restores
/// exactly this; the injected corruptions mutate nothing else.
#[derive(Debug, Clone)]
struct LineImage {
    /// `(cpu, state)` for every CPU caching the line valid.
    cache: Vec<(usize, LineState)>,
    /// Per-node directory entry: `(sharer mask, owner)`.
    dirs: Vec<Option<(u8, Option<u8>)>>,
    /// Snoop-filter holders, in filter order.
    snoop: Vec<u16>,
}

/// The transient coherence-fault kinds the protocol seam can inject
/// (each drawing from its own [`FaultPlan`] decision stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransientKind {
    InvalDrop,
    InvalDup,
    InvalDelay,
    UpdateLoss,
    AckStale,
    LineCorrupt,
}

impl TransientKind {
    /// The kind's [`FaultPlan`] decision-stream (site) index, as
    /// reported in [`TraceEvent::TransientFault`].
    fn site(self) -> u8 {
        match self {
            TransientKind::InvalDrop => 4,
            TransientKind::InvalDup => 5,
            TransientKind::InvalDelay => 6,
            TransientKind::UpdateLoss => 7,
            TransientKind::AckStale => 8,
            TransientKind::LineCorrupt => 9,
        }
    }
}

/// Scrub-attempt budget for one injected transient, spent in
/// [`crate::retry_backoff`] units (1 + 2 + 4 + ... per attempt): 255
/// units buys exactly 8 doubling attempts before the machine gives up
/// and escalates to [`SimError::RecoveryExhausted`].
const SCRUB_BUDGET: u64 = 255;

impl Machine {
    /// Build a machine from a configuration.
    ///
    /// Panics on an invalid configuration; use [`Machine::try_new`] to
    /// get the typed [`ConfigError`] instead.
    pub fn new(cfg: MachineConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build a machine, validating the configuration first.
    ///
    /// The per-access coherence checker is enabled when the
    /// `SPP_CHECK` environment variable is set to anything but `0`
    /// (and always in spp-core's own unit tests); [`Machine::with_checker`]
    /// enables it unconditionally.
    pub fn try_new(cfg: MachineConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let line_shift = cfg.line_bytes.trailing_zeros();
        let caches = (0..cfg.num_cpus())
            .map(|_| Cache::new(cfg.cache_lines()))
            .collect();
        let dirs = (0..cfg.hypernodes).map(|_| Directory::new()).collect();
        let gcbs = (0..cfg.hypernodes * cfg.fus_per_node)
            .map(|_| Cache::new(cfg.gcb_lines().next_power_of_two()))
            .collect();
        let mut m = Machine {
            space: AddressSpace::new(&cfg),
            caches,
            dirs,
            gcbs,
            sci: SciDirectory::new(),
            protocol: ProtocolKind::default(),
            snoop: SnoopFilter::new(),
            stats: MemStats::default(),
            cpu_stats: vec![MemStats::default(); cfg.num_cpus()],
            line_shift,
            dead_cpus: vec![0u64; cfg.num_cpus().div_ceil(64)],
            cfg,
            checker: None,
            tracer: None,
            racer: None,
            heat: None,
            faults: None,
            clock: 0,
            failed_rings: 0,
            degraded_gcbs: 0,
            hard_applied: 0,
            pending_recovery_failure: None,
        };
        let enable = std::env::var("SPP_CHECK")
            .map(|v| v != "0")
            .unwrap_or(cfg!(test));
        if enable {
            m = m.with_checker();
        }
        Ok(m)
    }

    /// The paper's testbed: two hypernodes, 16 CPUs.
    pub fn spp1000(hypernodes: usize) -> Self {
        Self::new(MachineConfig::spp1000(hypernodes))
    }

    /// Select the coherence protocol (default:
    /// [`ProtocolKind::DashSci`]). Must be called before any traffic —
    /// coherence state laid down by one protocol is meaningless to
    /// another.
    pub fn with_protocol(mut self, kind: ProtocolKind) -> Self {
        debug_assert_eq!(
            self.clock, 0,
            "select the protocol before issuing any accesses"
        );
        self.protocol = kind;
        self
    }

    /// The protocol this machine prices accesses with.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// Total live coherence-tracking entries: per-hypernode DASH
    /// directory lines, SCI distributed-list lines, and snoop-filter
    /// lines. Every one of these structures is a sparse map, so this
    /// count — and the memory behind it — is proportional to the
    /// lines actually touched, not to the address space or the
    /// topology (the property that lets a 128-hypernode, 1024-CPU
    /// machine run small workloads in small host memory).
    pub fn coherence_footprint(&self) -> usize {
        self.dirs.iter().map(Directory::live_lines).sum::<usize>()
            + self.sci.live_lines()
            + self.snoop.live_lines()
    }

    /// Total valid lines across every per-CPU cache (each cache is a
    /// sparse map too; together with [`Machine::coherence_footprint`]
    /// this bounds the machine's line-tracking memory).
    pub fn cached_lines(&self) -> usize {
        self.caches.iter().map(Cache::valid_lines).sum()
    }

    /// Enable the per-access coherence checker (idempotent).
    pub fn with_checker(mut self) -> Self {
        let n = self.cfg.num_cpus();
        self.checker
            .get_or_insert_with(|| Box::new(CoherenceChecker::new(n)));
        self
    }

    /// Install a deterministic fault schedule (replacing any previous
    /// one). The machine draws SCI ring stalls from it; the runtime
    /// and PVM layers consult it via [`Machine::faults_mut`].
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Mount a bounded event ring (capacity
    /// [`RingSink::DEFAULT_CAPACITY`]) and start tracing. Tracing
    /// never changes simulated cycles or [`MemStats`]; it only
    /// records.
    pub fn with_tracing(self) -> Self {
        self.with_trace_sink(Box::new(RingSink::new(RingSink::DEFAULT_CAPACITY)))
    }

    /// Mount an arbitrary [`TraceSink`] (replacing any previous one).
    pub fn with_trace_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.tracer = Some(sink);
        self
    }

    /// The mounted trace sink, if tracing is on.
    pub fn tracer(&self) -> Option<&dyn TraceSink> {
        self.tracer.as_deref()
    }

    /// Mutable access to the mounted trace sink (e.g. to
    /// [`TraceSink::clear`] between bracketed regions).
    pub fn tracer_mut(&mut self) -> Option<&mut (dyn TraceSink + 'static)> {
        self.tracer.as_deref_mut()
    }

    /// True when a trace sink is mounted.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Snapshot of the retained trace records, oldest first (empty
    /// when tracing is off).
    pub fn trace_events(&self) -> Vec<TraceRecord> {
        self.tracer
            .as_deref()
            .map(|t| t.events())
            .unwrap_or_default()
    }

    /// Mount the happens-before race detector (see [`crate::race`]).
    /// Detection never changes simulated cycles or [`MemStats`]; it
    /// only records and analyzes.
    pub fn with_race_detection(mut self) -> Self {
        self.racer.get_or_insert_with(|| Box::new(RaceSink::new()));
        self
    }

    /// True when the race detector is mounted.
    pub fn race_detection_enabled(&self) -> bool {
        self.racer.is_some()
    }

    /// The mounted race detector, if any.
    pub fn race_sink(&self) -> Option<&RaceSink> {
        self.racer.as_deref()
    }

    /// Mutable access to the mounted race detector.
    pub fn race_sink_mut(&mut self) -> Option<&mut RaceSink> {
        self.racer.as_deref_mut()
    }

    /// The detector's accumulated findings (empty report when
    /// detection is off).
    pub fn race_report(&self) -> RaceReport {
        self.racer
            .as_deref()
            .map(|r| r.report().clone())
            .unwrap_or_default()
    }

    /// Mount the cycle-attribution heatmap (see [`crate::heat`]).
    /// Attribution starts from the machine's current clock and
    /// counters, and never changes simulated cycles or [`MemStats`].
    pub fn with_heatmap(mut self) -> Self {
        let clock = self.clock;
        let stats = self.stats;
        self.heat
            .get_or_insert_with(|| Box::new(crate::heat::HeatMap::new(clock, stats)));
        self
    }

    /// True when the attribution heatmap is mounted.
    pub fn heatmap_enabled(&self) -> bool {
        self.heat.is_some()
    }

    /// The mounted heatmap, if any.
    pub fn heatmap(&self) -> Option<&crate::heat::HeatMap> {
        self.heat.as_deref()
    }

    /// The heatmap's partition invariant: attributed cycles sum
    /// exactly to the clock advance since mount, and every attributed
    /// counter to the global [`MemStats`] delta it decomposes. Always
    /// true with no heatmap mounted.
    pub fn heat_partition_check(&self) -> bool {
        self.heat
            .as_deref()
            .is_none_or(|h| h.partition_check(self.clock, &self.stats))
    }

    /// Label the region based at `base` for observability (heatmap and
    /// report region names). No-op for an unknown base.
    pub fn label_region(&mut self, base: u64, label: &str) {
        self.space.set_region_name(base, label);
    }

    /// Per-CPU counter breakdown for one CPU.
    pub fn cpu_stats(&self, cpu: CpuId) -> &MemStats {
        &self.cpu_stats[cpu.0 as usize]
    }

    /// The whole per-CPU breakdown, indexed by global CPU id.
    pub fn per_cpu_stats(&self) -> &[MemStats] {
        &self.cpu_stats
    }

    /// Per-hypernode rollup: the merged counters of the node's CPUs.
    pub fn node_stats(&self, node: NodeId) -> MemStats {
        let per = self.cfg.cpus_per_node();
        let base = node.0 as usize * per;
        let mut s = MemStats::default();
        for c in base..(base + per).min(self.cpu_stats.len()) {
            s.merge(&self.cpu_stats[c]);
        }
        s
    }

    /// Zero the global counters *and* the per-CPU breakdown together
    /// (resetting `stats` alone would let the breakdown drift from
    /// the machine-global totals).
    pub fn reset_all_stats(&mut self) {
        self.stats.reset();
        for s in &mut self.cpu_stats {
            s.reset();
        }
    }

    /// The installed checker, if any.
    pub fn checker(&self) -> Option<&CoherenceChecker> {
        self.checker.as_deref()
    }

    /// Mutable access to the installed checker (e.g. to set
    /// [`CoherenceChecker::panic_on_violation`]).
    pub fn checker_mut(&mut self) -> Option<&mut CoherenceChecker> {
        self.checker.as_deref_mut()
    }

    /// The installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Mutable access to the fault schedule — the runtime and PVM
    /// layers draw their spawn/message fault decisions through this.
    pub fn faults_mut(&mut self) -> Option<&mut FaultPlan> {
        self.faults.as_mut()
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Allocate simulated memory (see [`MemClass`] for placement).
    pub fn alloc(&mut self, class: MemClass, bytes: u64) -> Region {
        self.space.alloc(class, bytes)
    }

    /// Fallible variant of [`Machine::alloc`].
    pub fn try_alloc(&mut self, class: MemClass, bytes: u64) -> Result<Region, SimError> {
        let r = self.space.try_alloc(class, bytes)?;
        // Auto-register each allocation so race findings resolve to at
        // least a stable range; `SimArray::set_label` refines these
        // with real names and element sizes.
        if let Some(sink) = self.racer.as_deref_mut() {
            let n = r.base;
            sink.register(r.base, r.len, 1, format!("alloc@{n:#x}"));
        }
        Ok(r)
    }

    /// Home (node, FU) of an address.
    pub fn home_of(&self, addr: u64) -> (NodeId, crate::config::FuId) {
        self.space.home_of(addr)
    }

    /// Drop all cached state (between benchmark repetitions). Counters
    /// are left untouched.
    pub fn flush_all_caches(&mut self) {
        for c in &mut self.caches {
            c.flush();
        }
        for g in &mut self.gcbs {
            g.flush();
        }
        self.dirs = (0..self.cfg.hypernodes).map(|_| Directory::new()).collect();
        self.sci = SciDirectory::new();
        self.snoop.clear();
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    pub(crate) fn gcb_index(&self, node: NodeId, ring: RingId) -> usize {
        node.0 as usize * self.cfg.fus_per_node + ring.0 as usize
    }

    /// A cached read of the line containing `addr` by `cpu`. Returns
    /// the access latency in cycles.
    ///
    /// Panics if a transient coherence fault persisted through the
    /// whole scrub budget (the state is already restored, so nothing
    /// wrong is ever returned); [`Machine::try_read`] surfaces that
    /// case as a typed error instead.
    pub fn read(&mut self, cpu: CpuId, addr: u64) -> Cycles {
        let cost = self.read_impl(cpu, addr);
        if let Some(e) = self.pending_recovery_failure.take() {
            panic!("{e}");
        }
        cost
    }

    /// Fallible twin of [`Machine::read`]: returns
    /// [`SimError::RecoveryExhausted`] instead of panicking when a
    /// transient coherence fault survives every scrub attempt. The
    /// machine state is already restored to the pre-fault footprint
    /// when this returns `Err` — the caller escalates (typically
    /// checkpoint rollback-and-replay) rather than consuming data.
    pub fn try_read(&mut self, cpu: CpuId, addr: u64) -> Result<Cycles, SimError> {
        let cost = self.read_impl(cpu, addr);
        match self.pending_recovery_failure.take() {
            Some(e) => Err(e),
            None => Ok(cost),
        }
    }

    fn read_impl(&mut self, cpu: CpuId, addr: u64) -> Cycles {
        let before = self.stats;
        self.apply_due_hard_faults();
        self.stats.reads += 1;
        let line = self.line_of(addr);
        let sci_before = self.stats.sci_fetches + self.stats.sci_invalidations;
        let mut cost = match self.protocol {
            ProtocolKind::DashSci => DashSci::read_access(self, cpu, addr, line),
            ProtocolKind::Mesi => Mesi::read_access(self, cpu, addr, line),
            ProtocolKind::Dragon => Dragon::read_access(self, cpu, addr, line),
        };
        cost += self.inject_ring_stall(sci_before);
        cost += self.inject_link_reroute(addr, sci_before);
        self.clock += cost;
        self.account(cpu, &before);
        if self.heat.is_some() {
            self.heat_note(addr, cost, &before);
        }
        self.after_access(cpu, line, cost);
        if let Some(r) = self.racer.as_deref_mut() {
            r.record_access(addr, false, self.clock);
        }
        cost
    }

    /// A cached write to the line containing `addr` by `cpu`. Returns
    /// the access latency in cycles.
    ///
    /// Panics if a transient coherence fault persisted through the
    /// whole scrub budget, exactly like [`Machine::read`];
    /// [`Machine::try_write`] is the typed-error twin.
    pub fn write(&mut self, cpu: CpuId, addr: u64) -> Cycles {
        let cost = self.write_impl(cpu, addr);
        if let Some(e) = self.pending_recovery_failure.take() {
            panic!("{e}");
        }
        cost
    }

    /// Fallible twin of [`Machine::write`]; see [`Machine::try_read`]
    /// for the recovery-escalation contract.
    pub fn try_write(&mut self, cpu: CpuId, addr: u64) -> Result<Cycles, SimError> {
        let cost = self.write_impl(cpu, addr);
        match self.pending_recovery_failure.take() {
            Some(e) => Err(e),
            None => Ok(cost),
        }
    }

    fn write_impl(&mut self, cpu: CpuId, addr: u64) -> Cycles {
        let before = self.stats;
        self.apply_due_hard_faults();
        self.stats.writes += 1;
        let line = self.line_of(addr);
        let sci_before = self.stats.sci_fetches + self.stats.sci_invalidations;
        let mut cost = match self.protocol {
            ProtocolKind::DashSci => DashSci::write_access(self, cpu, addr, line),
            ProtocolKind::Mesi => Mesi::write_access(self, cpu, addr, line),
            ProtocolKind::Dragon => Dragon::write_access(self, cpu, addr, line),
        };
        cost += self.inject_ring_stall(sci_before);
        cost += self.inject_link_reroute(addr, sci_before);
        self.clock += cost;
        self.account(cpu, &before);
        if self.heat.is_some() {
            self.heat_note(addr, cost, &before);
        }
        self.after_access(cpu, line, cost);
        if let Some(r) = self.racer.as_deref_mut() {
            r.record_access(addr, true, self.clock);
        }
        cost
    }

    /// Charge the global-counter delta since `before` to `cpu`'s
    /// breakdown. Runs on every access; ~30 integer ops, independent
    /// of tracing.
    #[inline]
    fn account(&mut self, cpu: CpuId, before: &MemStats) {
        let delta = self.stats.since(before);
        self.cpu_stats[cpu.0 as usize].merge(&delta);
    }

    /// Attribute one priced access to the heatmap; only called when a
    /// heatmap is mounted.
    #[cold]
    fn heat_note(&mut self, addr: u64, cost: Cycles, before: &MemStats) {
        let delta = self.stats.since(before);
        let line = self.line_of(addr);
        if let Some(h) = self.heat.as_deref_mut() {
            h.note(line, cost, &delta);
        }
    }

    /// Record a trace event stamped with the machine clock and
    /// `cpu`'s hypernode; a single branch when tracing is off.
    #[inline]
    pub(crate) fn emit(&mut self, cpu: CpuId, event: TraceEvent) {
        if self.tracer.is_some() {
            self.emit_cold(cpu, event);
        }
    }

    #[cold]
    fn emit_cold(&mut self, cpu: CpuId, event: TraceEvent) {
        let node = if cpu.0 == NO_CPU {
            crate::trace::NO_NODE
        } else {
            self.cfg.node_of_cpu(cpu).0
        };
        let rec = TraceRecord {
            at: self.clock,
            cpu: cpu.0,
            node,
            event,
        };
        if let Some(t) = self.tracer.as_deref_mut() {
            t.record(rec);
        }
    }

    /// Draw one ring-stall decision from the fault plan, counting it.
    fn ring_stall_draw(&mut self) -> Cycles {
        match self.faults.as_mut().and_then(|f| f.ring_stall()) {
            Some(stall) => {
                self.stats.ring_stalls += 1;
                stall
            }
            None => 0,
        }
    }

    /// If the access since `sci_before` crossed the SCI ring, consult
    /// the fault plan for a transient link stall.
    fn inject_ring_stall(&mut self, sci_before: u64) -> Cycles {
        if self.faults.is_none()
            || self.stats.sci_fetches + self.stats.sci_invalidations == sci_before
        {
            return 0;
        }
        self.ring_stall_draw()
    }

    /// If the access since `sci_before` crossed the SCI ring and the
    /// home ring is severed by a hard link failure, pay the
    /// rerouted-path penalty.
    fn inject_link_reroute(&mut self, addr: u64, sci_before: u64) -> Cycles {
        if self.failed_rings == 0
            || self.stats.sci_fetches + self.stats.sci_invalidations == sci_before
        {
            return 0;
        }
        let (_, hfu) = self.space.home_of(addr);
        self.reroute_penalty(self.cfg.ring_of_fu(hfu))
    }

    /// The extra cycles for rerouting traffic around a severed segment
    /// of `ring`, if it is down; each reroute is counted in
    /// [`MemStats::link_reroutes`].
    fn reroute_penalty(&mut self, ring: RingId) -> Cycles {
        if self.failed_rings & (1 << ring.0) == 0 {
            return 0;
        }
        let pen = self
            .faults
            .as_ref()
            .map(|f| {
                f.hard_faults()
                    .iter()
                    .filter_map(|h| match h {
                        HardFault::LinkFail {
                            ring: r,
                            reroute_cycles,
                            ..
                        } if *r == ring.0 => Some(*reroute_cycles),
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        self.stats.link_reroutes += 1;
        pen
    }

    /// Fire any scheduled hard faults whose trigger cycle has been
    /// reached, in schedule order. Triggering is driven by the
    /// machine's cumulative access clock, so for a given access
    /// stream the faults land on exactly the same access every run.
    fn apply_due_hard_faults(&mut self) {
        let Some(plan) = self.faults.as_ref() else {
            return;
        };
        if plan.hard_faults().is_empty() {
            return;
        }
        let due: Vec<(usize, HardFault)> = plan
            .hard_faults()
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, h)| self.hard_applied & (1 << i) == 0 && h.at_cycle() <= self.clock)
            .collect();
        for (i, h) in due {
            self.hard_applied |= 1 << i;
            self.apply_hard_fault(h);
        }
    }

    /// Apply one hard fault to the machine state.
    fn apply_hard_fault(&mut self, fault: HardFault) {
        if self.tracer.is_some() {
            let (cpu, node) = match fault {
                HardFault::CpuFail { cpu, .. } => (cpu, self.cfg.node_of_cpu(CpuId(cpu)).0),
                HardFault::LinkFail { .. } => (NO_CPU, crate::trace::NO_NODE),
                HardFault::GcbDegrade { node, .. } => (NO_CPU, node),
            };
            let rec = TraceRecord {
                at: self.clock,
                cpu,
                node,
                event: TraceEvent::Fault(fault),
            };
            if let Some(t) = self.tracer.as_deref_mut() {
                t.record(rec);
            }
        }
        match fault {
            HardFault::CpuFail { cpu, .. } => self.kill_cpu(CpuId(cpu)),
            HardFault::LinkFail { ring, .. } => {
                self.failed_rings |= 1 << ring;
            }
            HardFault::GcbDegrade { node, .. } => self.degrade_node_gcbs(NodeId(node)),
        }
    }

    /// Take `cpu` offline: purge its cache (dirty lines drain to the
    /// node like ordinary writebacks), drop it from its node
    /// directory, and mark it dead. Subsequent accesses issued on its
    /// behalf are serviced by the node controller but never refill
    /// the dead cache.
    fn kill_cpu(&mut self, cpu: CpuId) {
        if cpu.0 as usize >= self.cfg.num_cpus() || self.is_cpu_dead(cpu) {
            return;
        }
        self.dead_cpus[cpu.0 as usize >> 6] |= 1u64 << (cpu.0 & 63);
        let node = self.cfg.node_of_cpu(cpu);
        let in_node = self.cfg.cpu_index_in_node(cpu) as u8;
        let entries: Vec<(u64, LineState)> = self.caches[cpu.0 as usize].entries().collect();
        for (line, state) in entries {
            self.caches[cpu.0 as usize].invalidate(line);
            self.dirs[node.0 as usize].remove_sharer(line, in_node);
            self.snoop.remove(line, cpu.0);
            self.stats.evictions += 1;
            if state.is_dirty() {
                // Remote-homed dirty lines keep their Modified GCB
                // copy (inclusion), so the SCI dirty marker stays
                // backed; home-local dirty data lands in memory.
                self.stats.writebacks += 1;
            }
        }
    }

    /// Halve the capacity of every GCB on `node` (degraded network
    /// cache hardware): surviving entries re-insert in slot order and
    /// conflicts roll out exactly like capacity displacements, with
    /// the rollout cost charged lazily to stats only (the degrade
    /// event is asynchronous to any access).
    fn degrade_node_gcbs(&mut self, node: NodeId) {
        if node.0 as usize >= self.cfg.hypernodes || self.degraded_gcbs & (1u128 << node.0) != 0 {
            return;
        }
        self.degraded_gcbs |= 1u128 << node.0;
        for r in 0..self.cfg.fus_per_node {
            let ring = RingId(r as u8);
            let g = self.gcb_index(node, ring);
            let cap = self.gcbs[g].capacity();
            let old = std::mem::replace(&mut self.gcbs[g], Cache::new((cap / 2).max(1)));
            let entries: Vec<(u64, LineState)> = old.entries().collect();
            for (line, state) in entries {
                if let Some(victim) = self.gcbs[g].fill(line, state) {
                    self.gcb_rollout(node, ring, victim);
                }
            }
        }
    }

    /// True if `cpu` has been taken down by a fired
    /// [`HardFault::CpuFail`].
    pub fn is_cpu_dead(&self, cpu: CpuId) -> bool {
        self.dead_cpus[cpu.0 as usize >> 6] & (1u64 << (cpu.0 & 63)) != 0
    }

    /// The CPUs currently dead, in ascending id order.
    pub fn dead_cpu_list(&self) -> Vec<CpuId> {
        (0..self.cfg.num_cpus() as u16)
            .map(CpuId)
            .filter(|c| self.is_cpu_dead(*c))
            .collect()
    }

    /// Cumulative cycles charged across all accesses — the machine's
    /// notion of simulated time (hard-fault triggering, watchdog
    /// deadlines).
    pub fn clock(&self) -> Cycles {
        self.clock
    }

    /// Rings currently severed by hard link failures (bit = ring id).
    pub fn failed_rings(&self) -> u8 {
        self.failed_rings
    }

    /// Nodes whose GCBs have been degraded to half capacity
    /// (bit = node id; `u128` covers the full 128-hypernode range).
    pub fn degraded_nodes(&self) -> u128 {
        self.degraded_gcbs
    }

    /// True while the installed plan still has unfired hard faults.
    pub fn hard_faults_pending(&self) -> bool {
        self.faults
            .as_ref()
            .map(|f| {
                f.hard_faults()
                    .iter()
                    .enumerate()
                    .any(|(i, _)| self.hard_applied & (1 << i) == 0)
            })
            .unwrap_or(false)
    }

    /// Batched runs fall back to the scalar loop while hard faults
    /// are pending (a mid-run trigger must land on exactly the access
    /// the scalar loop would give it) or the issuing CPU is dead (its
    /// cache never refills, so the run's hit assumption is void).
    fn degraded_path(&self, cpu: CpuId) -> bool {
        self.is_cpu_dead(cpu) || self.hard_faults_pending()
    }

    /// Run the per-access checker hook, if enabled.
    fn after_access(&mut self, cpu: CpuId, line: u64, cost: Cycles) {
        if let Some(mut ck) = self.checker.take() {
            ck.after_access(self, cpu, line, cost);
            self.checker = Some(ck);
        }
    }

    /// True when the installed fault plan can inject transient
    /// coherence faults. Drives the scalar fallback in the batched
    /// runs: every element must pass through the protocol seam so the
    /// per-site decision streams advance exactly as in the scalar
    /// loop.
    fn transients_active(&self) -> bool {
        self.faults
            .as_ref()
            .map(|f| f.transients_active())
            .unwrap_or(false)
    }

    /// The transient coherence-fault seam, called by every protocol
    /// backend at the end of [`CoherenceProtocol::read_access`] /
    /// [`CoherenceProtocol::write_access`]. Draws the per-kind
    /// decision streams, injects at most one corruption into the
    /// accessed line's footprint, detects it with the line-local
    /// invariant audit, and repairs it with a bounded scrub loop.
    ///
    /// Recovery is free in simulated time: the access's cycle cost
    /// and the machine clock are never touched, only the
    /// [`MemStats::recoveries`]/[`MemStats::recovery_retries`]
    /// counters move — which is what makes a recovered run
    /// bit-identical to the fault-free run
    /// ([`MemStats::eq_modulo_recovery`]).
    pub(crate) fn inject_transient(&mut self, cpu: CpuId, addr: u64, line: u64) {
        if !self.transients_active() || self.is_cpu_dead(cpu) {
            // Dead CPUs' drained accesses carry no new coherence
            // traffic for a transient to land on.
            return;
        }
        self.inject_transient_cold(cpu, addr, line);
    }

    #[cold]
    fn inject_transient_cold(&mut self, cpu: CpuId, addr: u64, line: u64) {
        // Draw every enabled, protocol-applicable stream in fixed
        // site order; the first that fires picks the fault kind.
        // Unconditional draws keep each site's counter advancing at
        // the same per-access rate no matter which kind lands.
        let dragon = self.protocol == ProtocolKind::Dragon;
        let dashsci = self.protocol == ProtocolKind::DashSci;
        let Some(p) = self.faults.as_mut() else {
            return;
        };
        let hits = [
            p.inval_dropped(),
            p.inval_duplicated(),
            p.inval_delayed(),
            if dragon { p.update_lost() } else { false },
            if dashsci { p.ack_stales() } else { false },
            p.line_corrupts(),
        ];
        const KINDS: [TransientKind; 6] = [
            TransientKind::InvalDrop,
            TransientKind::InvalDup,
            TransientKind::InvalDelay,
            TransientKind::UpdateLoss,
            TransientKind::AckStale,
            TransientKind::LineCorrupt,
        ];
        let Some(kind) = KINDS
            .iter()
            .zip(hits)
            .find(|(_, hit)| *hit)
            .map(|(k, _)| *k)
        else {
            return;
        };
        let image = self.capture_line_image(line);
        if !self.apply_transient_corruption(kind, cpu, addr, line) {
            // No victim candidate (e.g. no second holder to lose an
            // update): the fault lands on nothing.
            return;
        }
        let mut found = Vec::new();
        self.check_line(line, &mut found);
        if found.is_empty() || found.iter().any(|v| !v.recoverable()) {
            // Masked (or mis-modelled) corruption: never leave wrong
            // data behind — put the footprint back and move on.
            self.restore_line_image(line, &image);
            return;
        }
        self.emit(
            cpu,
            TraceEvent::TransientFault {
                line,
                site: kind.site(),
            },
        );
        // Bounded detect-and-retry: each scrub restores the captured
        // footprint (a directory-directed re-fetch of the line); a
        // persisting transient reasserts the same corruption until
        // the doubling retry_backoff budget is spent.
        let mut attempts: u32 = 0;
        let mut spent: u64 = 0;
        loop {
            attempts += 1;
            self.stats.recovery_retries += 1;
            spent = spent.saturating_add(crate::retry_backoff(1, attempts - 1));
            self.restore_line_image(line, &image);
            let persists = self
                .faults
                .as_mut()
                .map(|f| f.transient_persists())
                .unwrap_or(false);
            if !persists {
                break;
            }
            if spent >= SCRUB_BUDGET {
                // Exhausted. State is restored (the access returns
                // correct data or nothing), but the line cannot be
                // trusted going forward: escalate.
                self.pending_recovery_failure = Some(SimError::RecoveryExhausted {
                    cpu: cpu.0,
                    line,
                    attempts,
                });
                return;
            }
            self.apply_transient_corruption(kind, cpu, addr, line);
        }
        self.stats.recoveries += 1;
        self.emit(cpu, TraceEvent::Recovery { line, attempts });
        debug_assert!(
            {
                let mut v = Vec::new();
                self.check_line(line, &mut v);
                v.is_empty()
            },
            "scrub left line {line:#x} in violation"
        );
    }

    /// Capture the full coherence footprint of `line` (see
    /// [`LineImage`]).
    fn capture_line_image(&self, line: u64) -> LineImage {
        let cache = (0..self.cfg.num_cpus())
            .filter_map(|c| {
                let s = self.caches[c].lookup(line);
                (s != LineState::Invalid).then_some((c, s))
            })
            .collect();
        let dirs = self
            .dirs
            .iter()
            .map(|d| d.get(line).map(|e| (e.sharers, e.owner)))
            .collect();
        let snoop = self.snoop.holders(line).to_vec();
        LineImage { cache, dirs, snoop }
    }

    /// Restore `line`'s coherence footprint to `img`, touching
    /// nothing else. The injected corruptions only mutate existing
    /// entries or this line's own slots, so the refill below can
    /// never displace an unrelated line.
    fn restore_line_image(&mut self, line: u64, img: &LineImage) {
        for c in 0..self.cfg.num_cpus() {
            let cur = self.caches[c].lookup(line);
            let want = img.cache.iter().find(|(cpu, _)| *cpu == c).map(|(_, s)| *s);
            match (cur, want) {
                (LineState::Invalid, Some(s)) => {
                    let evicted = self.caches[c].fill(line, s);
                    debug_assert!(
                        evicted.is_none(),
                        "scrub refill displaced an unrelated line"
                    );
                }
                (_, Some(s)) if cur != s => self.caches[c].set_state(line, s),
                (_, None) if cur != LineState::Invalid => {
                    self.caches[c].invalidate(line);
                }
                _ => {}
            }
        }
        for (n, want) in img.dirs.iter().enumerate() {
            self.dirs[n].take(line);
            if let Some((sharers, owner)) = want {
                if let Some(o) = owner {
                    self.dirs[n].set_owner(line, *o);
                }
                for b in 0..8u8 {
                    if sharers & (1 << b) != 0 && Some(b) != *owner {
                        self.dirs[n].add_sharer(line, b);
                    }
                }
            }
        }
        let cur: Vec<u16> = self.snoop.holders(line).to_vec();
        for c in cur {
            self.snoop.remove(line, c);
        }
        for c in &img.snoop {
            self.snoop.add(line, *c);
        }
    }

    /// Apply `kind`'s corruption to `line`'s footprint, picking a
    /// deterministic victim from the current state (lowest-index
    /// candidate, preferring one that is not the accessor). Returns
    /// false when no candidate exists, in which case nothing was
    /// mutated. Re-invoked with identical state (after a scrub
    /// restore), this reproduces the exact same mutation.
    fn apply_transient_corruption(
        &mut self,
        kind: TransientKind,
        cpu: CpuId,
        addr: u64,
        line: u64,
    ) -> bool {
        let accessor = cpu.0 as usize;
        let holders: Vec<usize> = (0..self.cfg.num_cpus())
            .filter(|&c| self.caches[c].lookup(line) != LineState::Invalid)
            .collect();
        let other_holder = holders.iter().copied().find(|&c| c != accessor);
        match kind {
            TransientKind::InvalDrop => {
                // A dropped invalidation leaves a stale copy alive in
                // a cache the metadata believes clean of it.
                let victim = (0..self.cfg.num_cpus()).find(|&c| {
                    c != accessor
                        && !self.is_cpu_dead(CpuId(c as u16))
                        && self.caches[c].lookup(line) == LineState::Invalid
                        && self.caches[c].peek_victim(line).is_none()
                });
                let Some(v) = victim else { return false };
                self.caches[v].fill(line, LineState::Shared);
                true
            }
            TransientKind::InvalDup => {
                // A duplicated invalidation tears down a copy the
                // metadata still records.
                let Some(v) = other_holder.or_else(|| holders.first().copied()) else {
                    return false;
                };
                self.caches[v].invalidate(line);
                true
            }
            TransientKind::InvalDelay => {
                // A delayed invalidation's stale record lingers in
                // the metadata for a CPU that no longer holds it.
                let victim = (0..self.cfg.num_cpus()).find(|&c| {
                    c != accessor
                        && !self.is_cpu_dead(CpuId(c as u16))
                        && self.caches[c].lookup(line) == LineState::Invalid
                });
                let Some(v) = victim else { return false };
                self.phantom_metadata(line, v);
                true
            }
            TransientKind::UpdateLoss => {
                // Dragon only: an update broadcast never reached one
                // sharer, whose copy drops out of the coherent set
                // while the filter still lists it.
                let Some(v) = other_holder else { return false };
                self.caches[v].invalidate(line);
                true
            }
            TransientKind::AckStale => {
                // DASH+SCI only: the home directory records a sharer
                // from a stale invalidation ack.
                let hnode = self.space.home_of(addr).0;
                let cpn = self.cfg.cpus_per_node();
                let base = hnode.0 as usize * cpn;
                let victim = (base..base + cpn).find(|&c| {
                    c != accessor
                        && !self.is_cpu_dead(CpuId(c as u16))
                        && self.caches[c].lookup(line) == LineState::Invalid
                });
                let Some(v) = victim else { return false };
                self.phantom_metadata(line, v);
                true
            }
            TransientKind::LineCorrupt => {
                // Single-event upset in a tag/state array: flip a
                // Shared copy to Modified when that breaks the
                // single-writer invariant, otherwise knock the sole
                // holder out of the metadata.
                if holders.len() >= 2 {
                    let shared = holders
                        .iter()
                        .copied()
                        .find(|&c| {
                            c != accessor && self.caches[c].lookup(line) == LineState::Shared
                        })
                        .or_else(|| {
                            holders
                                .iter()
                                .copied()
                                .find(|&c| self.caches[c].lookup(line) == LineState::Shared)
                        });
                    if let Some(v) = shared {
                        self.caches[v].set_state(line, LineState::Modified);
                        return true;
                    }
                }
                let Some(&v) = holders.first() else {
                    return false;
                };
                self.drop_metadata(line, v);
                true
            }
        }
    }

    /// Record `cpu` in `line`'s coherence metadata (directory sharer
    /// bit under DASH+SCI, snoop-filter holder otherwise) without
    /// giving it a cache copy.
    fn phantom_metadata(&mut self, line: u64, cpu: usize) {
        if self.protocol == ProtocolKind::DashSci {
            let node = self.cfg.node_of_cpu(CpuId(cpu as u16));
            let b = self.cfg.cpu_index_in_node(CpuId(cpu as u16)) as u8;
            self.dirs[node.0 as usize].add_sharer(line, b);
        } else {
            self.snoop.add(line, cpu as u16);
        }
    }

    /// Erase `cpu` from `line`'s coherence metadata while its cache
    /// copy survives.
    fn drop_metadata(&mut self, line: u64, cpu: usize) {
        if self.protocol == ProtocolKind::DashSci {
            let node = self.cfg.node_of_cpu(CpuId(cpu as u16));
            let b = self.cfg.cpu_index_in_node(CpuId(cpu as u16)) as u8;
            self.dirs[node.0 as usize].remove_sharer(line, b);
        } else {
            self.snoop.remove(line, cpu as u16);
        }
    }

    /// A canonical FNV-1a digest of the machine's complete coherence
    /// state: every cache's valid lines, each hypernode directory,
    /// the SCI reference trees, the GCBs, and the snoop filter. Two
    /// machines with bit-identical coherence state digest equal; the
    /// `repro-recovery` experiment uses this to prove a recovered run
    /// converged to the fault-free run's exact final state.
    pub fn coherence_digest(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn put(h: &mut u64, x: u64) {
            *h ^= x;
            *h = h.wrapping_mul(PRIME);
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        put(&mut h, self.protocol.tag() as u64);
        for (c, cache) in self.caches.iter().enumerate() {
            let mut lines: Vec<(u64, LineState)> = cache.entries().collect();
            lines.sort_unstable_by_key(|(l, _)| *l);
            for (l, s) in lines {
                put(&mut h, c as u64);
                put(&mut h, l);
                put(&mut h, s as u64);
            }
        }
        for (g, gcb) in self.gcbs.iter().enumerate() {
            let mut lines: Vec<(u64, LineState)> = gcb.entries().collect();
            lines.sort_unstable_by_key(|(l, _)| *l);
            for (l, s) in lines {
                put(&mut h, g as u64);
                put(&mut h, l);
                put(&mut h, s as u64);
            }
        }
        for (n, d) in self.dirs.iter().enumerate() {
            let mut lines: Vec<u64> = d.lines().collect();
            lines.sort_unstable();
            for l in lines {
                let e = d.get(l).unwrap_or_default();
                put(&mut h, n as u64);
                put(&mut h, l);
                put(&mut h, e.sharers as u64);
                put(&mut h, e.owner.map(|o| o as u64 + 1).unwrap_or(0));
            }
        }
        let mut sci_lines: Vec<u64> = self.sci.lines().collect();
        sci_lines.sort_unstable();
        for l in sci_lines {
            put(&mut h, l);
            if let Some(e) = self.sci.get(l) {
                for n in &e.list {
                    put(&mut h, *n as u64 + 1);
                }
                put(&mut h, e.dirty.map(|d| d as u64 + 1).unwrap_or(0));
            }
        }
        let mut snoop_lines: Vec<u64> = self.snoop.lines().collect();
        snoop_lines.sort_unstable();
        for l in snoop_lines {
            put(&mut h, l);
            for c in self.snoop.holders(l) {
                put(&mut h, *c as u64 + 1);
            }
        }
        h
    }

    /// An uncached atomic operation (counting semaphores, §4.2).
    /// Bypasses all caches; cost depends only on where the semaphore
    /// lives.
    pub fn uncached_op(&mut self, cpu: CpuId, addr: u64) -> Cycles {
        let before = self.stats;
        self.apply_due_hard_faults();
        self.stats.uncached_ops += 1;
        let (hnode, hfu) = self.space.home_of(addr);
        let local = self.cfg.latency.uncached_local;
        let extra = self.cfg.latency.uncached_remote_extra;
        let cost = if hnode == self.cfg.node_of_cpu(cpu) {
            local
        } else {
            // Remote semaphore traffic crosses the ring and is subject
            // to the same injected stalls and hard link failures as
            // coherence traffic.
            local + extra + self.ring_stall_draw() + self.reroute_penalty(self.cfg.ring_of_fu(hfu))
        };
        self.clock += cost;
        self.account(cpu, &before);
        if self.heat.is_some() {
            self.heat_note(addr, cost, &before);
        }
        cost
    }

    /// Batched fast path for `n` consecutive reads at `addr`,
    /// `addr + elem_bytes`, ...: one full coherence transaction per
    /// cache line touched, with the remaining elements of each line
    /// priced as the cache hits the scalar loop would see.
    ///
    /// Bit-identical in cycles and [`MemStats`] to calling
    /// [`Machine::read`] once per element (the run-equivalence
    /// invariant of [`crate::port`]): the model is single-threaded, so
    /// after the first access of a line nothing can displace it until
    /// the run moves past that line; and hits never change SCI
    /// counters, so no fault-plan draw is burned for them — exactly as
    /// in the scalar path.
    pub fn read_run(&mut self, cpu: CpuId, addr: u64, elem_bytes: u64, n: usize) -> Cycles {
        debug_assert!(elem_bytes > 0, "read_run with zero stride");
        // Degraded CPUs need per-access fault application; the race
        // detector needs every element's record; transient injection
        // draws a decision per element through the protocol seam; the
        // heatmap attributes per access. All take the scalar loop,
        // which the run-equivalence invariant makes bit-identical.
        if self.degraded_path(cpu)
            || self.racer.is_some()
            || self.heat.is_some()
            || self.transients_active()
        {
            let mut total = 0;
            for i in 0..n {
                total += self.read(cpu, addr + i as u64 * elem_bytes);
            }
            return total;
        }
        // Read hits leave coherence state untouched under every
        // protocol, so the rest-are-hits batching below is valid for
        // DASH+SCI, MESI and Dragon alike.
        let hit = self.cfg.latency.cache_hit;
        let mut total = 0;
        let mut i = 0usize;
        while i < n {
            let a = addr + i as u64 * elem_bytes;
            total += self.read(cpu, a);
            // Elements after `a` that stay within its line all hit.
            let line = self.line_of(a);
            let line_end = (line + 1) << self.line_shift;
            let rem = (((line_end - a - 1) / elem_bytes) as usize).min(n - i - 1);
            if rem > 0 {
                self.stats.reads += rem as u64;
                self.stats.hits += rem as u64;
                let per = &mut self.cpu_stats[cpu.0 as usize];
                per.reads += rem as u64;
                per.hits += rem as u64;
                total += rem as u64 * hit;
                self.clock += rem as u64 * hit;
                if self.checker.is_some() {
                    for _ in 0..rem {
                        self.after_access(cpu, line, hit);
                    }
                }
            }
            i += 1 + rem;
        }
        total
    }

    /// Batched fast path for `n` consecutive writes; the write twin of
    /// [`Machine::read_run`] (after the first write of a run to a line
    /// the writer holds it Modified, so the rest are scalar-equivalent
    /// write hits).
    pub fn write_run(&mut self, cpu: CpuId, addr: u64, elem_bytes: u64, n: usize) -> Cycles {
        debug_assert!(elem_bytes > 0, "write_run with zero stride");
        // Same scalar fallback as read_run: per-element records for
        // the race detector and per-access attribution for the
        // heatmap, bit-identical by run equivalence. Dragon always
        // takes the scalar loop: a write to a line with other holders
        // stays a broadcasting hit (never Modified), so the
        // rest-are-plain-hits assumption does not hold there.
        if self.degraded_path(cpu)
            || self.racer.is_some()
            || self.heat.is_some()
            || self.transients_active()
            || self.protocol == ProtocolKind::Dragon
        {
            let mut total = 0;
            for i in 0..n {
                total += self.write(cpu, addr + i as u64 * elem_bytes);
            }
            return total;
        }
        let hit = self.cfg.latency.cache_hit;
        let mut total = 0;
        let mut i = 0usize;
        while i < n {
            let a = addr + i as u64 * elem_bytes;
            total += self.write(cpu, a);
            let line = self.line_of(a);
            let line_end = (line + 1) << self.line_shift;
            let rem = (((line_end - a - 1) / elem_bytes) as usize).min(n - i - 1);
            if rem > 0 {
                self.stats.writes += rem as u64;
                self.stats.hits += rem as u64;
                let per = &mut self.cpu_stats[cpu.0 as usize];
                per.writes += rem as u64;
                per.hits += rem as u64;
                total += rem as u64 * hit;
                self.clock += rem as u64 * hit;
                if self.checker.is_some() {
                    for _ in 0..rem {
                        self.after_access(cpu, line, hit);
                    }
                }
            }
            i += 1 + rem;
        }
        total
    }

    /// Service a read miss under DASH+SCI: find the data, maintain
    /// coherence state, fill the cache. Installs the line Shared.
    pub(crate) fn read_miss(&mut self, cpu: CpuId, addr: u64, line: u64) -> Cycles {
        let lat = self.cfg.latency.clone();
        let my_node = self.cfg.node_of_cpu(cpu);
        let in_node = self.cfg.cpu_index_in_node(cpu) as u8;
        let (hnode, hfu) = self.space.home_of(addr);
        let mut cost;

        // Another CPU in this node may hold the only valid copy.
        let local_owner = self.dirs[my_node.0 as usize]
            .get(line)
            .and_then(|e| e.owner)
            .filter(|o| *o != in_node);

        if let Some(owner_in_node) = local_owner {
            // Cache-to-cache transfer through the node directory.
            cost = lat.local_miss + lat.c2c_extra;
            self.stats.c2c_transfers += 1;
            self.emit(
                cpu,
                TraceEvent::Miss {
                    kind: MissKind::C2c,
                    line,
                },
            );
            let owner_cpu = my_node.0 as usize * self.cfg.cpus_per_node() + owner_in_node as usize;
            self.caches[owner_cpu].set_state(line, LineState::Shared);
            self.dirs[my_node.0 as usize].clear_owner(line);
            // The supplying cache's data also refreshes the local copy
            // (home memory or GCB); dirty tracking is unchanged.
        } else if hnode == my_node {
            // Home is local. Check whether a remote node holds it dirty.
            if let Some(d) = self.sci.dirty_node(line).filter(|d| *d != my_node.0) {
                let hops = self.cfg.ring_round_trip_hops(my_node, NodeId(d));
                cost = lat.local_miss + lat.sci_fetch(hops);
                self.stats.remote_dirty_fetches += 1;
                self.stats.sci_fetches += 1;
                self.emit(
                    cpu,
                    TraceEvent::Miss {
                        kind: MissKind::Sci,
                        line,
                    },
                );
                self.downgrade_node(NodeId(d), hfu, line);
                self.sci.clear_dirty(line);
            } else {
                cost = lat.local_miss;
                self.stats.local_misses += 1;
                self.emit(
                    cpu,
                    TraceEvent::Miss {
                        kind: MissKind::Local,
                        line,
                    },
                );
            }
        } else {
            // Remote line: go through the global cache buffer on the
            // gateway FU for the home's ring.
            let ring = self.cfg.ring_of_fu(hfu);
            let g = self.gcb_index(my_node, ring);
            match self.gcbs[g].lookup(line) {
                // Shared | Modified (GCBs never hold the MESI/Dragon
                // states): GCB hit, serviced within the hypernode
                // (§2.6).
                s if s != LineState::Invalid => {
                    cost = lat.local_miss;
                    self.stats.gcb_hits += 1;
                    self.emit(
                        cpu,
                        TraceEvent::Miss {
                            kind: MissKind::Gcb,
                            line,
                        },
                    );
                }
                _ => {
                    let hops = self.cfg.ring_round_trip_hops(my_node, hnode);
                    cost = lat.local_miss + lat.sci_fetch(hops);
                    self.stats.sci_fetches += 1;
                    self.emit(
                        cpu,
                        TraceEvent::Miss {
                            kind: MissKind::Sci,
                            line,
                        },
                    );
                    // Dirty elsewhere? Home forwards to the owner.
                    if let Some(d) = self
                        .sci
                        .dirty_node(line)
                        .filter(|d| *d != my_node.0 && *d != hnode.0)
                    {
                        cost += lat.sci_list_op
                            + self.cfg.ring_round_trip_hops(hnode, NodeId(d)) * lat.ring_hop / 2;
                        self.stats.remote_dirty_fetches += 1;
                        self.downgrade_node(NodeId(d), hfu, line);
                        self.sci.clear_dirty(line);
                    } else if self.sci.dirty_node(line) == Some(hnode.0) {
                        self.sci.clear_dirty(line);
                    }
                    // A CPU *in the home node* may hold the line
                    // Modified: the home directory supplies the data
                    // from that cache and downgrades it to Shared
                    // (classified as a dirty supply within the one SCI
                    // fetch already counted).
                    if let Some(owner) = self.dirs[hnode.0 as usize].get(line).and_then(|e| e.owner)
                    {
                        let owner_cpu =
                            hnode.0 as usize * self.cfg.cpus_per_node() + owner as usize;
                        self.caches[owner_cpu].set_state(line, LineState::Shared);
                        self.dirs[hnode.0 as usize].clear_owner(line);
                        cost += lat.c2c_extra;
                        self.stats.remote_dirty_fetches += 1;
                    }
                    // Install in the GCB; displaced remote lines roll out.
                    if let Some(victim) = self.gcbs[g].fill(line, LineState::Shared) {
                        cost += self.gcb_rollout(my_node, ring, victim);
                    }
                    self.sci.add_sharer(line, my_node.0);
                }
            }
        }

        // A dead CPU's drained request is serviced by the node but
        // never refills the dead cache or re-enters the directory.
        if self.is_cpu_dead(cpu) {
            return cost;
        }
        // Fill the CPU cache and account for its victim.
        if let Some(victim) = self.caches[cpu.0 as usize].fill(line, LineState::Shared) {
            cost += self.cpu_evict(cpu, my_node, victim);
        }
        self.dirs[my_node.0 as usize].add_sharer(line, in_node);
        cost
    }

    /// Invalidate every copy of `line` other than `cpu`'s via the
    /// DASH directories and SCI lists, pricing the serial walk the
    /// writer observes.
    pub(crate) fn invalidate_others(&mut self, cpu: CpuId, addr: u64, line: u64) -> Cycles {
        let lat = self.cfg.latency.clone();
        let my_node = self.cfg.node_of_cpu(cpu);
        let in_node = self.cfg.cpu_index_in_node(cpu) as u8;
        let (hnode, hfu) = self.space.home_of(addr);
        let mut cost = 0;

        // 1. Local sharers, serialized at the node directory.
        cost += self.invalidate_in_node(my_node, line, Some(in_node), &lat);

        // 2. Remote sharers via the SCI reference tree.
        let entry = self.sci.take(line);
        if let Some(e) = entry {
            // A remote writer first negotiates with the home node.
            if hnode != my_node {
                cost += lat.sci_base + self.cfg.ring_round_trip_hops(my_node, hnode) * lat.ring_hop;
                // Home-node CPUs caching the line are invalidated by
                // the home directory.
                cost += self.invalidate_in_node(hnode, line, None, &lat);
            }
            let mut walked = 0u8;
            for n in e.list {
                if n == my_node.0 {
                    continue; // our own GCB copy stays (we own the line now)
                }
                let hops = self.cfg.ring_round_trip_hops(hnode, NodeId(n));
                cost += lat.sci_invalidate_one(hops);
                self.stats.sci_invalidations += 1;
                walked += 1;
                self.invalidate_node_copy(NodeId(n), hfu, line, &lat, &mut cost);
            }
            if walked > 0 {
                self.emit(
                    cpu,
                    TraceEvent::SciInvalWalk {
                        line,
                        nodes: walked,
                    },
                );
            }
            // If we are remote, we remain the sole sharing node.
            if hnode != my_node {
                self.sci.add_sharer(line, my_node.0);
            }
        } else if hnode != my_node {
            // No other sharers, but a remote writer still tells home.
            cost += lat.sci_base + self.cfg.ring_round_trip_hops(my_node, hnode) * lat.ring_hop;
            // Home-node CPUs might share it without an SCI entry
            // (they're tracked by the home directory, not SCI).
            cost += self.invalidate_in_node(hnode, line, None, &lat);
            self.sci.add_sharer(line, my_node.0);
        }
        cost
    }

    /// Invalidate all CPU copies of `line` within `node`, except
    /// `keep` (CPU index in node).
    fn invalidate_in_node(
        &mut self,
        node: NodeId,
        line: u64,
        keep: Option<u8>,
        lat: &crate::latency::LatencyModel,
    ) -> Cycles {
        let mut cost = 0;
        if let Some(e) = self.dirs[node.0 as usize].get(line) {
            for b in 0..self.cfg.cpus_per_node() as u8 {
                if e.sharers & (1 << b) == 0 || keep == Some(b) {
                    continue;
                }
                let cpu = node.0 as usize * self.cfg.cpus_per_node() + b as usize;
                self.caches[cpu].invalidate(line);
                self.dirs[node.0 as usize].remove_sharer(line, b);
                self.stats.invalidations += 1;
                cost += lat.inv_local;
            }
        }
        cost
    }

    /// Remove node `n`'s copy of a remote `line` entirely: its GCB
    /// entry and any CPU caches holding it.
    fn invalidate_node_copy(
        &mut self,
        n: NodeId,
        hfu: crate::config::FuId,
        line: u64,
        lat: &crate::latency::LatencyModel,
        cost: &mut Cycles,
    ) {
        let ring = self.cfg.ring_of_fu(hfu);
        let g = self.gcb_index(n, ring);
        self.gcbs[g].invalidate(line);
        if let Some(e) = self.dirs[n.0 as usize].take(line) {
            for b in 0..self.cfg.cpus_per_node() as u8 {
                if e.sharers & (1 << b) != 0 {
                    let cpu = n.0 as usize * self.cfg.cpus_per_node() + b as usize;
                    self.caches[cpu].invalidate(line);
                    self.stats.invalidations += 1;
                    *cost += lat.inv_local;
                }
            }
        }
    }

    /// Downgrade node `d`'s dirty copy of `line` to Shared (a reader
    /// elsewhere fetched the data).
    fn downgrade_node(&mut self, d: NodeId, hfu: crate::config::FuId, line: u64) {
        if let Some(owner) = self.dirs[d.0 as usize].get(line).and_then(|e| e.owner) {
            let cpu = d.0 as usize * self.cfg.cpus_per_node() + owner as usize;
            self.caches[cpu].set_state(line, LineState::Shared);
            self.dirs[d.0 as usize].clear_owner(line);
        }
        let ring = self.cfg.ring_of_fu(hfu);
        let g = self.gcb_index(d, ring);
        if self.gcbs[g].lookup(line) == LineState::Modified {
            self.gcbs[g].set_state(line, LineState::Shared);
            self.stats.writebacks += 1;
        }
    }

    /// If `cpu` just took ownership of a line homed remotely, record
    /// the dirty copy in its node's GCB and the SCI tree.
    pub(crate) fn mark_dirty_if_remote(&mut self, cpu: CpuId, addr: u64, line: u64) {
        let my_node = self.cfg.node_of_cpu(cpu);
        let (hnode, hfu) = self.space.home_of(addr);
        if hnode != my_node {
            self.sci.set_dirty(line, my_node.0);
            let ring = self.cfg.ring_of_fu(hfu);
            let g = self.gcb_index(my_node, ring);
            // Inclusion: a CPU caching a remote line implies a GCB copy.
            if self.gcbs[g].lookup(line) == LineState::Invalid {
                if let Some(victim) = self.gcbs[g].fill(line, LineState::Modified) {
                    // Rollout cost is charged lazily to stats only; the
                    // triggering write already paid its SCI transaction.
                    self.gcb_rollout(my_node, ring, victim);
                }
            } else {
                self.gcbs[g].set_state(line, LineState::Modified);
            }
        } else {
            // Home writer: home memory will be updated on eviction; no
            // remote dirty state remains (sharers were invalidated).
            self.sci.clear_dirty(line);
        }
    }

    /// A CPU cache eviction: update the node directory; write dirty
    /// data back toward home.
    fn cpu_evict(&mut self, cpu: CpuId, my_node: NodeId, victim: Evicted) -> Cycles {
        let lat = self.cfg.latency.clone();
        let in_node = self.cfg.cpu_index_in_node(cpu) as u8;
        self.stats.evictions += 1;
        self.dirs[my_node.0 as usize].remove_sharer(victim.line, in_node);
        if victim.state == LineState::Modified {
            self.stats.writebacks += 1;
            // Dirty data lands in local memory (home-local line) or in
            // the node's GCB (remote line, which stays Modified there);
            // either way it is a within-node transfer.
            return lat.writeback;
        }
        0
    }

    /// Displace a line from a global cache buffer: detach from the SCI
    /// list, invalidate local CPU copies (inclusion), write back if
    /// dirty.
    fn gcb_rollout(&mut self, node: NodeId, ring: RingId, victim: Evicted) -> Cycles {
        let lat = self.cfg.latency.clone();
        self.stats.gcb_rollouts += 1;
        if self.tracer.is_some() {
            let rec = TraceRecord {
                at: self.clock,
                cpu: NO_CPU,
                node: node.0,
                event: TraceEvent::GcbRollout { line: victim.line },
            };
            if let Some(t) = self.tracer.as_deref_mut() {
                t.record(rec);
            }
        }
        let mut cost = lat.sci_list_op;
        if let Some(e) = self.dirs[node.0 as usize].take(victim.line) {
            for b in 0..self.cfg.cpus_per_node() as u8 {
                if e.sharers & (1 << b) != 0 {
                    let cpu = node.0 as usize * self.cfg.cpus_per_node() + b as usize;
                    self.caches[cpu].invalidate(victim.line);
                    self.stats.invalidations += 1;
                    cost += lat.inv_local;
                }
            }
        }
        self.sci.remove_sharer(victim.line, node.0);
        if victim.state == LineState::Modified {
            self.stats.writebacks += 1;
            cost += lat.writeback;
        }
        let _ = ring;
        cost
    }

    /// Read latency for the *line state as it stands* without changing
    /// any state — used by protocol-level simulations (barrier) that
    /// need "what would this cost" before committing.
    ///
    /// Mirrors [`Machine::read`]'s pricing exactly (every branch of
    /// the private `read_miss`, including cache-to-cache supplies,
    /// remote-dirty fetches, victim writebacks and GCB rollouts), with
    /// one documented exception: fault-injected ring stalls are draws
    /// from the [`FaultPlan`], which a non-mutating peek cannot
    /// consume, so they are excluded.
    pub fn peek_read_cost(&self, cpu: CpuId, addr: u64) -> Cycles {
        let line = self.line_of(addr);
        match self.protocol {
            ProtocolKind::DashSci => DashSci::peek_read(self, cpu, addr, line),
            ProtocolKind::Mesi => Mesi::peek_read(self, cpu, addr, line),
            ProtocolKind::Dragon => Dragon::peek_read(self, cpu, addr, line),
        }
    }

    /// Non-mutating twin of [`Machine::gcb_rollout`]'s cost accounting.
    pub(crate) fn peek_gcb_rollout_cost(&self, node: NodeId, victim: Evicted) -> Cycles {
        let lat = &self.cfg.latency;
        let mut cost = lat.sci_list_op;
        if let Some(e) = self.dirs[node.0 as usize].get(victim.line) {
            cost += lat.inv_local * e.sharers.count_ones() as u64;
        }
        if victim.state == LineState::Modified {
            cost += lat.writeback;
        }
        cost
    }

    /// Direct access to the address space (diagnostics, tests).
    pub fn address_space(&self) -> &AddressSpace {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FuId;

    fn m2() -> Machine {
        Machine::spp1000(2)
    }

    #[test]
    fn second_read_hits() {
        let mut m = m2();
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        let c1 = m.read(CpuId(0), r.addr(0));
        let c2 = m.read(CpuId(0), r.addr(0));
        assert!(c1 > c2);
        assert_eq!(c2, m.config().latency.cache_hit);
        assert_eq!(m.stats.hits, 1);
    }

    #[test]
    fn same_line_different_word_hits() {
        let mut m = m2();
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        m.read(CpuId(0), r.addr(0));
        let c = m.read(CpuId(0), r.addr(24)); // same 32 B line
        assert_eq!(c, 1);
    }

    // Paper anchor (§3.1, Table 1): CPU-line load from hypernode
    // memory measured at ~0.55 µs = 55 cycles. The 50..=60 window is
    // intentionally tight — it pins the latency model's headline
    // number; loosen it only if the model is deliberately recalibrated.
    #[test]
    fn local_miss_costs_50_to_60_cycles() {
        let mut m = m2();
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        let c = m.read(CpuId(0), r.addr(0));
        assert!((50..=60).contains(&c), "local miss = {c}");
    }

    // Paper anchor (§3.1): remote/local miss latency ratio ~8 (2 µs
    // SCI fetch vs 0.55 µs local). Tight on purpose: this ratio is the
    // paper's central NUMA characterization.
    #[test]
    fn remote_miss_is_roughly_8x_local() {
        let mut m = m2();
        let near = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        let far = m.alloc(MemClass::NearShared { node: NodeId(1) }, 4096);
        let local = m.read(CpuId(0), near.addr(0));
        let remote = m.read(CpuId(0), far.addr(0));
        let ratio = remote as f64 / local as f64;
        assert!((6.0..=10.0).contains(&ratio), "ratio = {ratio}");
        assert_eq!(m.stats.sci_fetches, 1);
    }

    #[test]
    fn gcb_caches_remote_lines_for_the_whole_node() {
        let mut m = m2();
        let far = m.alloc(MemClass::NearShared { node: NodeId(1) }, 4096);
        let c0 = m.read(CpuId(0), far.addr(0)); // SCI fetch, fills GCB
        let c1 = m.read(CpuId(1), far.addr(0)); // different CPU, same node
        assert!(
            c1 < c0 / 3,
            "GCB hit {c1} should be far below SCI fetch {c0}"
        );
        assert_eq!(m.stats.gcb_hits, 1);
    }

    #[test]
    fn write_hit_after_ownership() {
        let mut m = m2();
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        m.write(CpuId(0), r.addr(0));
        let c = m.write(CpuId(0), r.addr(0));
        assert_eq!(c, 1);
    }

    #[test]
    fn write_invalidates_local_sharers() {
        let mut m = m2();
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        for cpu in 0..8 {
            m.read(CpuId(cpu), r.addr(0));
        }
        let base = m.stats;
        let _ = m.write(CpuId(0), r.addr(0));
        let d = m.stats.since(&base);
        assert_eq!(d.invalidations, 7);
        assert_eq!(d.upgrades, 1);
        // Invalidated caches miss on their next read.
        let c = m.read(CpuId(1), r.addr(0));
        assert!(c > 1);
    }

    #[test]
    fn write_invalidates_remote_nodes_via_sci() {
        let mut m = m2();
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        m.read(CpuId(0), r.addr(0));
        m.read(CpuId(8), r.addr(0)); // node 1 shares via SCI
        let base = m.stats;
        m.write(CpuId(0), r.addr(0));
        let d = m.stats.since(&base);
        assert_eq!(d.sci_invalidations, 1);
        // Node 1's copy is gone: next read there is an SCI fetch again.
        let c = m.read(CpuId(8), r.addr(0));
        assert!(c > 100, "should re-fetch over SCI, cost {c}");
    }

    #[test]
    fn remote_write_then_home_read_fetches_dirty_data() {
        let mut m = m2();
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        m.write(CpuId(8), r.addr(0)); // node 1 dirties node-0-homed line
        let base = m.stats;
        let c = m.read(CpuId(0), r.addr(0)); // home node reads it back
        let d = m.stats.since(&base);
        assert_eq!(d.remote_dirty_fetches, 1);
        assert!(c > 100, "dirty remote fetch should be expensive, got {c}");
    }

    #[test]
    fn cache_to_cache_within_node() {
        let mut m = m2();
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        m.write(CpuId(0), r.addr(0)); // CPU 0 owns it Modified
        let base = m.stats;
        let c = m.read(CpuId(1), r.addr(0));
        let d = m.stats.since(&base);
        assert_eq!(d.c2c_transfers, 1);
        let lat = &m.config().latency;
        assert_eq!(c, lat.local_miss + lat.c2c_extra);
    }

    #[test]
    fn capacity_misses_in_tiny_cache() {
        let mut m = Machine::new(MachineConfig::tiny(1));
        let lines = m.config().cache_lines();
        let r = m.alloc(
            MemClass::NearShared { node: NodeId(0) },
            (lines as u64 * 2) * 32,
        );
        // Two sweeps over twice the cache capacity: everything misses.
        for sweep in 0..2 {
            for i in 0..(lines as u64 * 2) {
                m.read(CpuId(0), r.addr(i * 32));
            }
            let _ = sweep;
        }
        assert_eq!(m.stats.hits, 0);
        assert!(m.stats.evictions > 0);
    }

    #[test]
    fn uncached_remote_costs_more() {
        let mut m = m2();
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        let local = m.uncached_op(CpuId(0), r.addr(0));
        let remote = m.uncached_op(CpuId(8), r.addr(0));
        assert!(remote > local * 2);
        assert_eq!(m.stats.uncached_ops, 2);
    }

    #[test]
    fn thread_private_is_always_local() {
        let mut m = m2();
        // Private to a thread on node 1's FU 5.
        let r = m.alloc(MemClass::ThreadPrivate { home: FuId(5) }, 4096);
        let c = m.read(CpuId(10), r.addr(0)); // CPU 10 is on FU 5
        assert_eq!(c, m.config().latency.local_miss);
        assert_eq!(m.stats.sci_fetches, 0);
    }

    #[test]
    fn flush_forgets_everything() {
        let mut m = m2();
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        m.read(CpuId(0), r.addr(0));
        m.flush_all_caches();
        let c = m.read(CpuId(0), r.addr(0));
        assert!(c > 1, "flushed line must miss");
    }

    #[test]
    fn far_shared_mixes_local_and_remote() {
        let mut m = m2();
        let r = m.alloc(MemClass::FarShared, 16 * 4096);
        let mut local = 0;
        let mut remote = 0;
        for p in 0..16u64 {
            let c = m.read(CpuId(0), r.addr(p * 4096));
            if c > 100 {
                remote += 1;
            } else {
                local += 1;
            }
        }
        assert_eq!(local, 8);
        assert_eq!(remote, 8);
    }

    #[test]
    fn gcb_rollout_detaches_from_sci_list() {
        // A tiny GCB forces rollouts: after sweeping twice the GCB
        // capacity of remote lines, rollouts must have occurred and
        // re-reading an early line must cost a full SCI fetch again.
        let mut m = Machine::new(MachineConfig::tiny(2));
        let lines = m.config().gcb_lines() as u64;
        let r = m.alloc(MemClass::NearShared { node: NodeId(1) }, lines * 2 * 32);
        for i in 0..lines * 2 {
            m.read(CpuId(0), r.addr(i * 32));
        }
        assert!(m.stats.gcb_rollouts > 0, "no rollouts in tiny GCB");
        // Line 0 was displaced: the CPU cache also lost it (inclusion),
        // so this is a fresh SCI fetch.
        let before = m.stats;
        let c = m.read(CpuId(0), r.addr(0));
        assert!(c > 100, "expected SCI re-fetch, got {c}");
        assert_eq!(m.stats.since(&before).sci_fetches, 1);
    }

    #[test]
    fn write_walks_multi_node_sci_list_serially() {
        // Sharers on three remote nodes: the home write's cost grows
        // with the list length (serial SCI walk).
        let mut m = Machine::spp1000(4);
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        m.read(CpuId(0), r.addr(0));
        m.read(CpuId(8), r.addr(0));
        let one_sharer = m.write(CpuId(0), r.addr(0));
        // Rebuild a 3-node sharing list.
        m.read(CpuId(0), r.addr(0));
        m.read(CpuId(8), r.addr(0));
        m.read(CpuId(16), r.addr(0));
        m.read(CpuId(24), r.addr(0));
        let three_sharers = m.write(CpuId(0), r.addr(0));
        assert!(
            three_sharers > one_sharer + 50,
            "3-node walk {three_sharers} should exceed 1-node {one_sharer}"
        );
        assert_eq!(m.stats.sci_invalidations, 4);
    }

    #[test]
    fn node_private_lines_never_cross_the_ring() {
        let mut m = Machine::spp1000(2);
        let r = m.alloc(MemClass::NodePrivate { node: NodeId(1) }, 64 * 4096);
        for p in 0..64u64 {
            m.read(CpuId(8), r.addr(p * 4096));
            m.write(CpuId(9), r.addr(p * 4096 + 32));
        }
        assert_eq!(m.stats.sci_fetches, 0);
        assert_eq!(m.stats.sci_invalidations, 0);
    }

    #[test]
    fn peek_matches_actual_read_cost() {
        let mut m = m2();
        let r = m.alloc(MemClass::NearShared { node: NodeId(1) }, 4096);
        let peek = m.peek_read_cost(CpuId(0), r.addr(0));
        let real = m.read(CpuId(0), r.addr(0));
        assert_eq!(peek, real);
        // After the read it's cached: peek sees a hit.
        assert_eq!(m.peek_read_cost(CpuId(0), r.addr(0)), 1);
    }

    /// Exhaustive peek-vs-read drift guard: every placement class
    /// crossed with every reachable cache/coherence state of the
    /// probed line (cold, own copy, local peer owner, remote sharer,
    /// remote dirty, home-node owner seen from a remote reader).
    #[test]
    fn peek_read_cost_matches_read_across_classes_and_states() {
        type Setup = (&'static str, fn(&mut Machine, u64));
        let classes: Vec<(&'static str, MemClass)> = vec![
            ("thread-private", MemClass::ThreadPrivate { home: FuId(0) }),
            ("node-private", MemClass::NodePrivate { node: NodeId(0) }),
            ("near-home", MemClass::NearShared { node: NodeId(0) }),
            ("near-remote", MemClass::NearShared { node: NodeId(1) }),
            ("far-shared", MemClass::FarShared),
            ("block-shared", MemClass::BlockShared { block_bytes: 4096 }),
        ];
        let setups: Vec<Setup> = vec![
            ("cold", |_, _| {}),
            ("own-shared", |m, a| {
                m.read(CpuId(0), a);
            }),
            ("own-modified", |m, a| {
                m.write(CpuId(0), a);
            }),
            ("peer-owns-modified", |m, a| {
                m.write(CpuId(1), a);
            }),
            ("remote-node-shares", |m, a| {
                m.read(CpuId(8), a);
            }),
            ("remote-node-dirty", |m, a| {
                m.write(CpuId(8), a);
            }),
            ("remote-reads-then-home-owns", |m, a| {
                m.read(CpuId(8), a);
                m.write(CpuId(1), a);
            }),
        ];
        for (cname, class) in &classes {
            for (sname, setup) in &setups {
                let mut m = m2();
                let r = m.alloc(*class, 4096);
                let a = r.addr(64);
                setup(&mut m, a);
                let peek = m.peek_read_cost(CpuId(0), a);
                let real = m.read(CpuId(0), a);
                assert_eq!(peek, real, "peek drift: class {cname}, state {sname}");
            }
        }
    }

    #[test]
    fn peek_read_cost_matches_read_under_evictions_and_rollouts() {
        // March far past the tiny cache and GCB capacities so peeks
        // must price victim writebacks and GCB rollouts too.
        let mut m = Machine::new(MachineConfig::tiny(2));
        let lines = m.config().cache_lines() as u64;
        let r = m.alloc(MemClass::NearShared { node: NodeId(1) }, lines * 4 * 32);
        for i in 0..lines * 4 {
            let a = r.addr(i * 32);
            let peek = m.peek_read_cost(CpuId(0), a);
            let real = m.read(CpuId(0), a);
            assert_eq!(peek, real, "line {i}");
            if i % 3 == 0 {
                m.write(CpuId(0), a); // leave Modified victims behind
            }
        }
        assert!(m.stats.gcb_rollouts > 0, "sweep must roll the GCB");
        assert!(m.stats.writebacks > 0, "sweep must write back victims");
    }

    #[test]
    fn peek_read_cost_covers_third_node_dirty_forwarding() {
        let mut m = Machine::spp1000(4);
        let r = m.alloc(MemClass::NearShared { node: NodeId(1) }, 4096);
        m.write(CpuId(16), r.addr(0)); // node 2 dirties a node-1 line
        let peek = m.peek_read_cost(CpuId(0), r.addr(0));
        let real = m.read(CpuId(0), r.addr(0));
        assert_eq!(peek, real, "home-forwarded dirty fetch");
    }

    /// A mixed streaming workload shared by the scalar/batched
    /// equivalence tests: several CPUs, line-unaligned bases, read
    /// and write runs, and a degenerate wide-stride run (one element
    /// per line).
    fn run_workload(m: &mut Machine, batched: bool) -> Cycles {
        let far = m.alloc(MemClass::FarShared, 1 << 16);
        let near = m.alloc(MemClass::NearShared { node: NodeId(0) }, 1 << 14);
        let mut total = 0;
        for row in 0..8u64 {
            let cpu = CpuId((row * 3 % 16) as u16);
            let base = far.addr(row * 8192 + 4); // unaligned in its line
            if batched {
                total += m.read_run(cpu, base, 8, 600);
                total += m.write_run(cpu, base, 8, 600);
            } else {
                for i in 0..600u64 {
                    total += m.read(cpu, base + i * 8);
                }
                for i in 0..600u64 {
                    total += m.write(cpu, base + i * 8);
                }
            }
        }
        // Wide stride: every element its own line (runs degenerate).
        if batched {
            total += m.read_run(CpuId(0), near.addr(0), 64, 200);
        } else {
            for i in 0..200u64 {
                total += m.read(CpuId(0), near.addr(i * 64));
            }
        }
        total
    }

    #[test]
    fn batched_runs_are_bit_identical_to_scalar_loops() {
        let scalar = {
            let mut m = m2();
            let t = run_workload(&mut m, false);
            (t, m.stats)
        };
        let batched = {
            let mut m = m2();
            let t = run_workload(&mut m, true);
            (t, m.stats)
        };
        assert_eq!(scalar, batched, "run-equivalence invariant violated");
    }

    #[test]
    fn batched_runs_preserve_fault_draw_streams() {
        let run = |batched: bool| {
            let plan = FaultPlan::new(13).with_ring_stalls(0.4, 333);
            let mut m = Machine::spp1000(2).with_faults(plan);
            let t = run_workload(&mut m, batched);
            (t, m.stats, m.fault_plan().unwrap().draws())
        };
        assert_eq!(run(false), run(true), "hits must not burn fault draws");
    }

    #[test]
    fn batched_runs_feed_the_checker_per_element() {
        let checks = |batched: bool| {
            let mut m = Machine::spp1000(2).with_checker();
            run_workload(&mut m, batched);
            assert!(m.check_all().is_empty());
            m.checker().unwrap().checks()
        };
        assert_eq!(checks(false), checks(true));
    }

    #[test]
    fn try_new_rejects_bad_config_with_typed_error() {
        let mut cfg = MachineConfig::spp1000(2);
        cfg.line_bytes = 48;
        assert!(matches!(
            Machine::try_new(cfg),
            Err(crate::ConfigError::NotPowerOfTwo { .. })
        ));
    }

    /// A ring-crossing access stream for fault tests: every page of a
    /// remote region, twice, with enough writes to force SCI traffic.
    fn remote_traffic(m: &mut Machine) -> Cycles {
        let r = m.alloc(MemClass::NearShared { node: NodeId(1) }, 64 * 4096);
        let mut total = 0;
        for p in 0..64u64 {
            total += m.read(CpuId(0), r.addr(p * 4096));
            total += m.write(CpuId(0), r.addr(p * 4096));
            total += m.read(CpuId(8), r.addr(p * 4096));
        }
        total
    }

    #[test]
    fn ring_stalls_inflate_cost_deterministically() {
        let run = |plan: Option<FaultPlan>| {
            let mut m = Machine::spp1000(2);
            if let Some(p) = plan {
                m = m.with_faults(p);
            }
            (remote_traffic(&mut m), m.stats.ring_stalls)
        };
        let (clean, stalls0) = run(None);
        assert_eq!(stalls0, 0);
        let plan = FaultPlan::new(11).with_ring_stalls(0.5, 500);
        let (faulty_a, stalls_a) = run(Some(plan.clone()));
        let (faulty_b, stalls_b) = run(Some(plan));
        assert!(stalls_a > 0, "50% stall rate must fire on SCI traffic");
        assert_eq!(
            faulty_a,
            clean + stalls_a * 500,
            "stall pricing is additive"
        );
        // Same seed, same stream: bit-identical cost and stall count.
        assert_eq!((faulty_a, stalls_a), (faulty_b, stalls_b));
    }

    #[test]
    fn faults_never_fire_on_node_local_traffic() {
        let plan = FaultPlan::new(3).with_ring_stalls(1.0, 500);
        let mut m = Machine::spp1000(2).with_faults(plan);
        let r = m.alloc(MemClass::NodePrivate { node: NodeId(0) }, 64 * 4096);
        for p in 0..64u64 {
            m.read(CpuId(0), r.addr(p * 4096));
            m.write(CpuId(1), r.addr(p * 4096));
        }
        assert_eq!(m.stats.ring_stalls, 0);
        assert_eq!(m.fault_plan().unwrap().draws()[0], 0, "no draws burned");
    }

    #[test]
    fn checker_runs_during_faulty_traffic() {
        // Fault injection perturbs costs, never coherence state: the
        // per-access checker must stay quiet under heavy stalls.
        let plan = FaultPlan::new(5).with_ring_stalls(0.8, 700);
        let mut m = Machine::spp1000(2).with_faults(plan).with_checker();
        remote_traffic(&mut m);
        assert!(m.checker().unwrap().checks() > 0);
        assert!(m.check_all().is_empty());
    }

    #[test]
    fn cpu_failure_purges_cache_and_blocks_refill() {
        let plan = FaultPlan::new(7).with_cpu_failure(0, 200);
        let mut m = Machine::spp1000(2).with_faults(plan);
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 8 * 4096);
        // Warm CPU 0's cache (including a dirty line) before the fault.
        m.read(CpuId(0), r.addr(0));
        m.write(CpuId(0), r.addr(4096));
        assert!(!m.is_cpu_dead(CpuId(0)));
        // Push the clock past the trigger.
        while m.clock() < 200 {
            m.read(CpuId(1), r.addr(2 * 4096));
            m.read(CpuId(1), r.addr(3 * 4096));
            m.write(CpuId(1), r.addr(2 * 4096));
        }
        m.read(CpuId(1), r.addr(0)); // any access fires the fault first
        assert!(m.is_cpu_dead(CpuId(0)));
        assert_eq!(m.dead_cpu_list(), vec![CpuId(0)]);
        // The dead CPU's accesses are serviced but never cached again.
        let hits_before = m.stats.hits;
        let c1 = m.read(CpuId(0), r.addr(0));
        let c2 = m.read(CpuId(0), r.addr(0));
        assert!(c1 > 1 && c2 > 1, "dead CPU must never hit ({c1}, {c2})");
        assert_eq!(m.stats.hits, hits_before);
        m.write(CpuId(0), r.addr(4096)); // drained store, no ownership
        assert!(m.check_all().is_empty(), "degraded invariants must hold");
    }

    #[test]
    fn dead_cpu_remote_traffic_keeps_invariants() {
        // A dead CPU whose drained requests cross the ring exercises
        // the GCB/SCI paths without CPU fills.
        let plan = FaultPlan::new(7).with_cpu_failure(0, 0);
        let mut m = Machine::spp1000(2).with_faults(plan);
        let far = m.alloc(MemClass::NearShared { node: NodeId(1) }, 8 * 4096);
        m.read(CpuId(8), far.addr(0)); // triggers the fault, node 1 shares
        assert!(m.is_cpu_dead(CpuId(0)));
        for p in 0..8u64 {
            m.read(CpuId(0), far.addr(p * 4096));
            m.write(CpuId(0), far.addr(p * 4096));
        }
        assert!(m.check_all().is_empty());
        assert!(m.stats.sci_fetches > 0);
    }

    #[test]
    fn link_failure_prices_reroutes_additively() {
        let run = |plan: Option<FaultPlan>| {
            let mut m = Machine::spp1000(2);
            if let Some(p) = plan {
                m = m.with_faults(p);
            }
            (remote_traffic(&mut m), m.stats.link_reroutes)
        };
        let (clean, r0) = run(None);
        assert_eq!(r0, 0);
        // Sever every ring from cycle 0 so all SCI traffic reroutes.
        let mut plan = FaultPlan::new(1);
        for ring in 0..4 {
            plan = plan.with_link_failure(ring, 0, 900);
        }
        let (faulty_a, ra) = run(Some(plan.clone()));
        let (faulty_b, rb) = run(Some(plan));
        assert!(ra > 0, "SCI traffic must reroute on severed rings");
        assert_eq!(faulty_a, clean + ra * 900, "reroute pricing is additive");
        assert_eq!((faulty_a, ra), (faulty_b, rb), "reroutes are deterministic");
    }

    #[test]
    fn gcb_degrade_halves_capacity_and_keeps_invariants() {
        let plan = FaultPlan::new(2).with_gcb_degrade(0, 0);
        let mut m = Machine::new(MachineConfig::tiny(2)).with_faults(plan);
        let full_cap = m.gcbs[0].capacity();
        let far = m.alloc(MemClass::NearShared { node: NodeId(1) }, 64 * 32);
        for i in 0..64u64 {
            m.read(CpuId(0), far.addr(i * 32));
        }
        assert_eq!(m.degraded_nodes(), 1);
        for g in 0..m.cfg.fus_per_node {
            assert_eq!(m.gcbs[g].capacity(), (full_cap / 2).max(1));
        }
        assert!(m.check_all().is_empty());
    }

    #[test]
    fn gcb_degrade_mid_run_rolls_out_survivors_consistently() {
        // Warm the GCB first, then degrade: surviving entries must be
        // re-inserted or rolled out without breaking SCI agreement.
        let plan = FaultPlan::new(2).with_gcb_degrade(0, 5_000);
        let mut m = Machine::new(MachineConfig::tiny(2)).with_faults(plan);
        let far = m.alloc(MemClass::NearShared { node: NodeId(1) }, 128 * 32);
        for i in 0..128u64 {
            m.read(CpuId(0), far.addr(i * 32));
            m.write(CpuId(1), far.addr(i * 32));
        }
        assert!(m.clock() > 5_000, "workload must cross the trigger");
        assert_eq!(m.degraded_nodes(), 1);
        assert!(m.check_all().is_empty());
    }

    #[test]
    fn hard_faults_do_not_fire_before_their_cycle() {
        let plan = FaultPlan::new(9).with_cpu_failure(0, u64::MAX);
        let mut m = Machine::spp1000(2).with_faults(plan);
        remote_traffic(&mut m);
        assert!(!m.is_cpu_dead(CpuId(0)));
        assert!(m.hard_faults_pending());
    }

    #[test]
    fn empty_plan_with_hard_faults_matches_clean_costs_until_trigger() {
        // A schedule that never triggers must not perturb pricing.
        let run = |plan: Option<FaultPlan>| {
            let mut m = Machine::spp1000(2);
            if let Some(p) = plan {
                m = m.with_faults(p);
            }
            (remote_traffic(&mut m), m.stats)
        };
        let clean = run(None);
        let armed = run(Some(FaultPlan::new(4).with_cpu_failure(3, u64::MAX)));
        assert_eq!(clean, armed);
    }

    #[test]
    fn batched_runs_match_scalar_under_hard_faults() {
        // With hard faults pending (or fired), runs fall back to the
        // scalar loop, so equivalence must hold bit-for-bit.
        let run = |batched: bool| {
            let plan = FaultPlan::new(21)
                .with_cpu_failure(3, 40_000)
                .with_link_failure(1, 10_000, 450)
                .with_gcb_degrade(0, 20_000);
            let mut m = Machine::spp1000(2).with_faults(plan);
            let t = run_workload(&mut m, batched);
            (t, m.stats, m.clock())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn clock_advances_identically_scalar_and_batched() {
        let clock = |batched: bool| {
            let mut m = m2();
            run_workload(&mut m, batched);
            m.clock()
        };
        assert_eq!(clock(false), clock(true));
    }

    /// A small cross-node workload that exercises misses, upgrades,
    /// SCI walks and semaphores on `m`.
    fn mixed_workload(m: &mut Machine) {
        let r = m.alloc(MemClass::FarShared, 64 * 1024);
        let sem = m.alloc(MemClass::NearShared { node: NodeId(0) }, 64);
        for i in 0..256u64 {
            let cpu = CpuId((i % 16) as u16);
            m.read(cpu, r.addr(i * 32));
            if i % 3 == 0 {
                m.write(cpu, r.addr(i * 32));
            }
            if i % 17 == 0 {
                m.uncached_op(cpu, sem.addr(0));
            }
        }
        m.read_run(CpuId(1), r.addr(0), 8, 512);
        m.write_run(CpuId(9), r.addr(4096), 8, 512);
    }

    #[test]
    fn per_cpu_stats_sum_to_global() {
        let mut m = m2();
        mixed_workload(&mut m);
        let mut sum = MemStats::default();
        for s in m.per_cpu_stats() {
            sum.merge(s);
        }
        assert_eq!(sum, m.stats, "per-CPU breakdown must sum to global");
        // And the per-node rollup is the same partition at node grain.
        let mut nodes = MemStats::default();
        for n in 0..m.config().hypernodes {
            nodes.merge(&m.node_stats(NodeId(n as u8)));
        }
        assert_eq!(nodes, m.stats);
    }

    #[test]
    fn miss_partition_holds_on_a_real_workload() {
        let mut m = m2();
        mixed_workload(&mut m);
        assert!(m.stats.misses() > 0);
        assert!(m.stats.miss_partition_check(), "{}", m.stats);
        for (c, s) in m.per_cpu_stats().iter().enumerate() {
            assert!(s.miss_partition_check(), "cpu {c}: {s}");
        }
    }

    #[test]
    fn tracing_does_not_change_cycles_or_stats() {
        let mut plain = m2();
        mixed_workload(&mut plain);
        let mut traced = m2().with_tracing();
        mixed_workload(&mut traced);
        assert_eq!(plain.clock(), traced.clock());
        assert_eq!(plain.stats, traced.stats);
        assert!(!plain.tracing_enabled());
        assert!(traced.tracing_enabled());
        assert!(!traced.trace_events().is_empty());
    }

    #[test]
    fn race_detection_does_not_change_cycles_or_stats() {
        let mut plain = m2();
        mixed_workload(&mut plain);
        let mut raced = m2().with_race_detection();
        mixed_workload(&mut raced);
        assert_eq!(plain.clock(), raced.clock());
        assert_eq!(plain.stats, raced.stats);
        assert!(!plain.race_detection_enabled());
        assert!(raced.race_detection_enabled());
    }

    #[test]
    fn heatmap_does_not_change_cycles_or_stats() {
        let mut plain = m2();
        mixed_workload(&mut plain);
        let mut heated = m2().with_heatmap();
        mixed_workload(&mut heated);
        assert_eq!(plain.clock(), heated.clock());
        assert_eq!(plain.stats, heated.stats);
        assert!(!plain.heatmap_enabled());
        assert!(heated.heatmap_enabled());
    }

    #[test]
    fn heat_partition_holds_on_a_real_workload() {
        let mut m = m2().with_heatmap();
        mixed_workload(&mut m);
        assert!(m.heat_partition_check(), "attribution must partition");
        let h = m.heatmap().unwrap();
        assert!(h.touched_lines() > 0);
        assert_eq!(h.totals().total_cycles(), m.clock());
        let hottest = h.hottest(5);
        assert!(!hottest.is_empty());
        // Remote traffic exists, so some line must be attributed
        // beyond the local level.
        assert!(hottest
            .iter()
            .any(|(_, c)| c.dominant_level() != crate::heat::ServiceLevel::Hit));
    }

    #[test]
    fn heatmap_mounted_mid_run_partitions_the_suffix() {
        let mut m = m2();
        mixed_workload(&mut m);
        let mid = m.clock();
        assert!(mid > 0);
        m = m.with_heatmap();
        mixed_workload(&mut m);
        assert!(m.heat_partition_check());
        let h = m.heatmap().unwrap();
        assert_eq!(h.start_clock(), mid);
        assert_eq!(h.totals().total_cycles(), m.clock() - mid);
    }

    #[test]
    fn region_labels_flow_into_heat_reports() {
        let mut m = m2().with_heatmap();
        let r = m.alloc(MemClass::FarShared, 4096);
        m.label_region(r.base, "grid");
        for i in 0..32 {
            m.read(CpuId((i % 16) as u16), r.addr(i as u64 * 64));
        }
        assert_eq!(m.address_space().region_name(r.addr(100)), Some("grid"));
        let report = crate::heat::heat_report(&m, 4);
        assert!(report.contains("grid"), "{report}");
        let json = crate::heat::insight_json(&m, 4);
        assert!(json.contains("\"name\": \"grid\""), "{json}");
        assert!(json.contains("\"heat_partition_check\": true"), "{json}");
    }

    #[test]
    fn race_detector_flags_a_planted_cross_cpu_conflict() {
        use crate::race::RaceEvent as Ev;
        let mut m = m2().with_race_detection();
        let r = m.alloc(MemClass::FarShared, 256);
        let ev = |m: &mut Machine, e: Ev| m.race_sink_mut().unwrap().handle(e);
        ev(
            &mut m,
            Ev::Register {
                base: r.base,
                len: r.len,
                elem_bytes: 8,
                label: "planted".into(),
            },
        );
        ev(&mut m, Ev::RegionBegin);
        ev(&mut m, Ev::BodyBegin { tid: 0, cpu: 0 });
        m.write(CpuId(0), r.base + 8);
        ev(&mut m, Ev::BodyEnd);
        ev(&mut m, Ev::BodyBegin { tid: 1, cpu: 4 });
        m.write(CpuId(4), r.base + 8);
        ev(&mut m, Ev::BodyEnd);
        ev(&mut m, Ev::RegionEnd);
        let report = m.race_report();
        assert_eq!(report.total_races, 1, "{report}");
        assert!(report.races[0].to_string().contains("planted[1]"));
    }

    #[test]
    fn trace_counts_reconcile_with_memstats() {
        let mut m = m2().with_tracing();
        mixed_workload(&mut m);
        let counts = m.tracer().unwrap().counts();
        assert_eq!(counts[0], m.stats.local_misses, "miss-local");
        assert_eq!(counts[1], m.stats.gcb_hits, "miss-gcb");
        assert_eq!(counts[2], m.stats.sci_fetches, "miss-sci");
        assert_eq!(counts[3], m.stats.c2c_transfers, "miss-c2c");
        assert_eq!(counts[4], m.stats.upgrades, "upgrade");
        assert_eq!(counts[6], m.stats.gcb_rollouts, "gcb-rollout");
    }

    #[test]
    fn trace_stream_is_deterministic() {
        let run = || {
            let mut m = m2().with_tracing();
            mixed_workload(&mut m);
            crate::trace::perfetto_json(&m.trace_events())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn perfetto_export_is_byte_stable_per_protocol() {
        for proto in [
            ProtocolKind::DashSci,
            ProtocolKind::Mesi,
            ProtocolKind::Dragon,
        ] {
            let run = || {
                let mut m = m2().with_protocol(proto).with_tracing();
                mixed_workload(&mut m);
                let evs = m.trace_events();
                (
                    crate::trace::perfetto_json(&evs),
                    crate::trace::perfetto_json_with_counters(&evs),
                )
            };
            let (a1, a2) = run();
            let (b1, b2) = run();
            assert_eq!(a1, b1, "{proto:?} perfetto_json not byte-stable");
            assert_eq!(a2, b2, "{proto:?} counter export not byte-stable");
            assert!(!a1.is_empty() && !a2.is_empty());
        }
    }

    #[test]
    fn reset_all_stats_keeps_breakdown_in_sync() {
        let mut m = m2();
        mixed_workload(&mut m);
        m.reset_all_stats();
        assert_eq!(m.stats, MemStats::default());
        for s in m.per_cpu_stats() {
            assert_eq!(*s, MemStats::default());
        }
        // Bracketing with since() across the reset is safe (saturating).
        let before = m.stats;
        mixed_workload(&mut m);
        let delta = m.stats.since(&before);
        assert_eq!(delta, m.stats);
    }

    /// A sharing-heavy cross-node stream: several CPUs from both
    /// hypernodes read and write the same lines, so every transient
    /// kind finds holders, directory entries and filter lists to
    /// corrupt.
    fn shared_traffic(m: &mut Machine) -> Cycles {
        let r = m.alloc(MemClass::FarShared, 64 * 4096);
        let mut total = 0;
        for p in 0..48u64 {
            let a = r.addr(p * 4096);
            total += m.read(CpuId(0), a);
            total += m.read(CpuId(3), a);
            total += m.read(CpuId(9), a);
            total += m.write(CpuId((p % 16) as u16), a);
            total += m.read(CpuId(5), a);
        }
        total
    }

    /// A transient fault kind: scenario label, prob builder, and the
    /// protocols it applies to.
    type TransientKind = (
        &'static str,
        fn(FaultPlan, f64) -> FaultPlan,
        &'static [ProtocolKind],
    );

    /// Every transient fault kind.
    fn transient_kinds() -> [TransientKind; 6] {
        use crate::protocol::ProtocolKind::*;
        const ALL3: &[ProtocolKind] = &[DashSci, Mesi, Dragon];
        [
            ("inval-drop", |p, x| p.with_inval_drops(x), ALL3),
            ("inval-dup", |p, x| p.with_inval_dups(x), ALL3),
            ("inval-delay", |p, x| p.with_inval_delays(x), ALL3),
            ("update-loss", |p, x| p.with_update_loss(x), &[Dragon]),
            ("ack-stale", |p, x| p.with_ack_stale(x), &[DashSci]),
            ("line-corrupt", |p, x| p.with_line_corruption(x), ALL3),
        ]
    }

    #[test]
    fn recovered_runs_are_bit_identical_to_fault_free() {
        for proto in ProtocolKind::ALL {
            let baseline = {
                let mut m = Machine::spp1000(2).with_protocol(proto);
                let t = shared_traffic(&mut m);
                (t, m.clock(), m.coherence_digest(), m.stats)
            };
            for (label, build, applies) in transient_kinds() {
                let plan = build(FaultPlan::new(41), 0.2);
                let mut m = Machine::spp1000(2).with_protocol(proto).with_faults(plan);
                let t = shared_traffic(&mut m);
                assert_eq!(t, baseline.0, "{proto:?}/{label}: cycles diverged");
                assert_eq!(m.clock(), baseline.1, "{proto:?}/{label}: clock diverged");
                assert_eq!(
                    m.coherence_digest(),
                    baseline.2,
                    "{proto:?}/{label}: final coherence state diverged"
                );
                assert!(
                    m.stats.eq_modulo_recovery(&baseline.3),
                    "{proto:?}/{label}: stats diverged beyond recovery counters"
                );
                assert!(m.check_all().is_empty(), "{proto:?}/{label}: audit failed");
                if applies.contains(&proto) {
                    assert!(
                        m.stats.recoveries > 0,
                        "{proto:?}/{label}: no transient ever landed"
                    );
                    assert!(m.stats.recovery_retries >= m.stats.recoveries);
                } else {
                    assert_eq!(
                        m.stats.recoveries, 0,
                        "{proto:?}/{label}: kind fired on a protocol it cannot affect"
                    );
                }
            }
        }
    }

    #[test]
    fn exhausted_scrubs_escalate_to_a_typed_error() {
        for proto in ProtocolKind::ALL {
            let plan = FaultPlan::new(9)
                .with_inval_dups(1.0)
                .with_transient_persistence(1.0);
            let mut m = Machine::spp1000(2).with_protocol(proto).with_faults(plan);
            let r = m.alloc(MemClass::FarShared, 1 << 14);
            // The first access fills the issuer's cache and the
            // injected duplicate invalidation immediately tears it
            // down; with full persistence every scrub fails.
            let err = m.try_read(CpuId(0), r.addr(0));
            let Err(SimError::RecoveryExhausted { cpu, attempts, .. }) = err else {
                panic!("{proto:?}: expected RecoveryExhausted, got {err:?}");
            };
            assert_eq!(cpu, 0);
            assert_eq!(attempts, 8, "doubling backoff budget buys 8 attempts");
            // Escalation restored the footprint first: the machine is
            // clean and usable (e.g. for checkpoint rollback).
            assert!(m.check_all().is_empty(), "{proto:?}: dirty state escaped");
            assert_eq!(m.stats.recoveries, 0);
            assert_eq!(m.stats.recovery_retries, 8);
        }
    }

    #[test]
    #[should_panic(expected = "scrub attempts")]
    fn plain_read_panics_when_recovery_is_exhausted() {
        let plan = FaultPlan::new(9)
            .with_inval_dups(1.0)
            .with_transient_persistence(1.0);
        let mut m = Machine::spp1000(2).with_faults(plan);
        let r = m.alloc(MemClass::FarShared, 4096);
        m.read(CpuId(0), r.addr(0));
    }

    #[test]
    fn batched_runs_fall_back_under_transient_injection() {
        let run = |batched: bool| {
            let plan = FaultPlan::new(21)
                .with_inval_drops(0.1)
                .with_inval_delays(0.1)
                .with_line_corruption(0.1);
            let mut m = Machine::spp1000(2).with_faults(plan);
            let t = run_workload(&mut m, batched);
            (t, m.stats, m.fault_plan().unwrap().draws())
        };
        assert_eq!(
            run(false),
            run(true),
            "transient draws must advance per element"
        );
    }

    #[test]
    fn recovery_trace_events_reconcile_with_memstats() {
        let plan = FaultPlan::new(33)
            .with_inval_dups(0.3)
            .with_inval_delays(0.2);
        let mut m = Machine::spp1000(2).with_faults(plan).with_tracing();
        shared_traffic(&mut m);
        assert!(m.stats.recoveries > 0, "no transient landed");
        let counts = m.tracer().unwrap().counts();
        // One transient-fault event per detected injection; one
        // recovery event per successful scrub (no escalations here).
        assert_eq!(counts[17], m.stats.recoveries, "transient-fault");
        assert_eq!(counts[18], m.stats.recoveries, "recovery");
    }

    #[test]
    fn try_read_and_try_write_match_the_panicking_twins_when_clean() {
        let mut a = Machine::spp1000(2);
        let mut b = Machine::spp1000(2);
        let ra = a.alloc(MemClass::FarShared, 8192);
        let rb = b.alloc(MemClass::FarShared, 8192);
        for i in 0..16u64 {
            let x = a.read(CpuId(1), ra.addr(i * 512));
            let y = b.try_read(CpuId(1), rb.addr(i * 512)).unwrap();
            assert_eq!(x, y);
            let x = a.write(CpuId(2), ra.addr(i * 512));
            let y = b.try_write(CpuId(2), rb.addr(i * 512)).unwrap();
            assert_eq!(x, y);
        }
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.coherence_digest(), b.coherence_digest());
    }
}
