//! Figure 1 as code: an ASCII rendering of the machine's three-level
//! organization (functional units -> hypernode crossbar -> SCI rings).

use crate::config::MachineConfig;

/// Render the system-organization diagram of this configuration
/// (the paper's Figure 1, at terminal fidelity).
pub fn system_diagram(cfg: &MachineConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Convex SPP-1000: {} hypernode(s) x {} FU x {} CPU = {} processors\n\n",
        cfg.hypernodes,
        cfg.fus_per_node,
        cfg.cpus_per_fu,
        cfg.num_cpus()
    ));
    let shown = cfg.hypernodes.min(2);
    for h in 0..shown {
        out.push_str(&format!("  hypernode {h}\n"));
        out.push_str("  +-----------------------------------------------------------+\n");
        out.push_str("  |   FU0         FU1         FU2         FU3                 |\n");
        out.push_str("  | [CPU CPU]   [CPU CPU]   [CPU CPU]   [CPU CPU]             |\n");
        out.push_str("  | [MEM|GCB]   [MEM|GCB]   [MEM|GCB]   [MEM|GCB]             |\n");
        out.push_str("  | [ CCMC  ]   [ CCMC  ]   [ CCMC  ]   [ CCMC  ]             |\n");
        out.push_str("  |     |___________|___________|___________|                 |\n");
        out.push_str("  |              5-port crossbar  --------- I/O               |\n");
        out.push_str("  +-----|-----------|-----------|-----------|-----------------+\n");
        out.push_str("        |           |           |           |\n");
    }
    out.push_str("     ring 0      ring 1      ring 2      ring 3   (SCI, one FU per ring");
    if cfg.hypernodes > shown {
        out.push_str(&format!(
            ";\n      ... {} more hypernode(s) on the same four rings",
            cfg.hypernodes - shown
        ));
    }
    out.push_str(")\n\n");
    out.push_str(&format!(
        "caches: {} KB direct-mapped per CPU, {} B lines; GCB {} KB per FU;\n\
         coherence: DASH-style directory within a hypernode, SCI linked lists between\n",
        cfg.cache_bytes >> 10,
        cfg.line_bytes,
        cfg.gcb_bytes >> 10
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagram_mentions_the_structure() {
        let d = system_diagram(&MachineConfig::spp1000(2));
        assert!(d.contains("16 processors"));
        assert!(d.contains("5-port crossbar"));
        assert!(d.contains("ring 3"));
        assert!(d.contains("CCMC"));
        assert!(d.contains("SCI linked lists"));
    }

    #[test]
    fn big_configs_are_elided() {
        let d = system_diagram(&MachineConfig::spp1000(16));
        assert!(d.contains("128 processors"));
        assert!(d.contains("14 more hypernode"));
        // Only two hypernode boxes drawn.
        assert_eq!(d.matches("5-port crossbar").count(), 2);
    }
}
