//! # spp-core — a cycle-accounting simulator of the Convex SPP-1000
//!
//! This crate is the substrate for reproducing *"A Performance
//! Evaluation of the Convex SPP-1000 Scalable Shared Memory Parallel
//! Computer"* (Sterling et al., SC 1995). The paper measures real
//! hardware; the hardware is gone, so this crate rebuilds its memory
//! hierarchy as a deterministic simulator:
//!
//! * three-level topology — functional units (2× PA-7100 + memory),
//!   hypernodes (4 FUs on a 5-port crossbar), and up to 16 hypernodes
//!   on four SCI rings ([`config`]);
//! * per-CPU 1 MB direct-mapped caches with 32-byte lines ([`cache`]);
//! * DASH-style intra-hypernode directory coherence and SCI
//!   distributed-linked-list inter-hypernode coherence with per-ring
//!   global cache buffers ([`directory`], [`machine`]);
//! * the five Convex memory classes (thread private, node private,
//!   near shared, far shared, block shared) with their page-placement
//!   rules ([`mem`]);
//! * a latency model calibrated to the paper's published figures
//!   ([`latency`]) and hardware-style event counters ([`stats`]).
//!
//! Applications keep their real data in [`SimArray`]s so the simulator
//! prices the *genuine* address stream of the genuine algorithm.
//!
//! ```
//! use spp_core::{Machine, MemClass, NodeId, CpuId, SimArray};
//!
//! let mut m = Machine::spp1000(2); // the paper's 16-CPU testbed
//! let mut a = SimArray::<f64>::from_elem(
//!     &mut m, MemClass::FarShared, 1024, 0.0);
//! let cost_miss = a.write(&mut m, CpuId(0), 0, 1.0);
//! let (v, cost_hit) = a.read(&mut m, CpuId(0), 0);
//! assert_eq!(v, 1.0);
//! assert!(cost_miss > cost_hit);
//! ```

#![warn(missing_docs)]

pub mod array;
pub mod cache;
pub mod check;
pub mod config;
pub mod diagram;
pub mod directory;
pub mod error;
pub mod fastport;
pub mod fault;
pub mod heat;
pub mod latency;
pub mod linemap;
pub mod machine;
pub mod mem;
pub mod port;
pub mod protocol;
pub mod race;
pub mod snapshot;
pub mod stats;
pub mod trace;
pub mod traceport;
pub mod watchdog;

pub use array::SimArray;
pub use cache::{Cache, LineState};
pub use check::{CoherenceChecker, Violation};
pub use config::{CpuId, FuId, MachineConfig, NodeId, RingId};
pub use diagram::system_diagram;
pub use error::{ConfigError, SimError};
pub use fastport::FastPort;
pub use fault::{FaultEvent, FaultPlan, HardFault, N_FAULT_SITES};
pub use heat::{
    heat_by_region, heat_report, insight_json, HeatCell, HeatMap, RegionHeat, ServiceLevel,
    N_SERVICE_LEVELS,
};
pub use latency::{cycles_to_us, us_to_cycles, Cycles, LatencyModel};
pub use machine::Machine;
pub use mem::{AddressSpace, MemClass, Region};
pub use port::MemPort;
pub use protocol::{CoherenceProtocol, DashSci, Dragon, Mesi, ProtocolKind};
pub use race::{RaceEvent, RaceFinding, RaceKind, RaceReport, RaceSink, SharingWarning};
pub use snapshot::Snapshot;
pub use stats::MemStats;
pub use trace::{MissKind, NullSink, RingSink, TraceEvent, TraceRecord, TraceSink};
pub use traceport::{Trace, TracePort};
pub use watchdog::{
    panic_message, retry_backoff, CancelToken, HostSupervisor, StallKind, Supervised, Watchdog,
    WatchdogReport,
};
