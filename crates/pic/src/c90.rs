//! Cray C90 single-head baseline for the PIC code (Table 1).
//!
//! The paper quotes 355 Mflop/s (32x32x32) and 369 Mflop/s (64x64x32)
//! on one C90 head for this code. We price the same per-step loop
//! structure on the [`c90_model`] vector machine: the scatter/gather
//! loops run gathered/scattered (the production code was
//! particle-sorted, so a fraction of the indirect traffic streams at
//! unit stride — reflected in the reduced gather/scatter counts), the
//! FFT and field loops run dense.
//!
//! Flop accounting: our counts are literal algorithm counts; the Cray
//! `hpm` monitor credited the original (vectorized, partially
//! redundant) code with roughly [`HPM_FLOP_FACTOR`] times as many
//! operations per step. Reported C90 flops and CPU seconds carry that
//! factor so *both* Table 1 columns (rate and time) are reproduced;
//! the sustained Mflop/s is unaffected by it.

use crate::host::flops;
use crate::problem::PicProblem;
use c90_model::{LoopSpec, C90};

/// Ratio of `hpm`-credited operations to our literal per-step flop
/// count (divide/sqrt expansions plus the redundant work of the
/// vectorized formulation).
pub const HPM_FLOP_FACTOR: f64 = 1.9;

/// Modelled C90 execution of a PIC run.
#[derive(Debug, Clone, Copy)]
pub struct C90PicResult {
    /// Seconds per timestep.
    pub seconds_per_step: f64,
    /// Sustained Mflop/s.
    pub mflops: f64,
    /// FLOPs per timestep.
    pub flops_per_step: f64,
    /// Total CPU seconds for the requested number of steps.
    pub total_seconds: f64,
}

/// Price `steps` timesteps of problem `p` on one C90 head.
pub fn run_c90(p: &PicProblem, steps: usize) -> C90PicResult {
    let mut c = C90::new();
    let n = p.num_particles() as u64;
    let cells = p.cells() as u64;

    for _ in 0..steps.max(1) {
        // Charge deposit: vectorized scatter-add over sorted particles.
        c.vloop(
            n,
            &LoopSpec {
                flops: flops::DEPOSIT_PER_PARTICLE as f64,
                contig_refs: 4.0,
                gathers: 0.0,
                scatters: 3.0,
                efficiency: 0.9,
            },
        );
        // Copy/background-subtract into the FFT work array.
        c.vloop(cells, &LoopSpec::dense(1.0, 2.0));
        // Forward + inverse 3-D FFT: butterflies per direction.
        let butterflies: u64 = [p.nx, p.ny, p.nz]
            .iter()
            .map(|d| (cells / 2) * d.trailing_zeros() as u64)
            .sum();
        c.vloop(
            2 * butterflies,
            &LoopSpec {
                flops: 10.0,
                contig_refs: 4.0,
                gathers: 0.0,
                scatters: 0.0,
                efficiency: 0.8,
            },
        );
        // k-space scale.
        c.vloop(cells, &LoopSpec::dense(flops::KSCALE_PER_POINT as f64, 2.0));
        // Gradient.
        c.vloop(
            cells,
            &LoopSpec::dense(flops::GRADIENT_PER_POINT as f64, 8.0),
        );
        // Gather + push.
        c.vloop(
            n,
            &LoopSpec {
                flops: flops::PUSH_PER_PARTICLE as f64,
                contig_refs: 12.0,
                gathers: 10.0,
                scatters: 0.0,
                efficiency: 0.9,
            },
        );
    }

    // Apply the hpm accounting factor to work and time together, so
    // the sustained rate is unchanged but both Table 1 columns land.
    let secs = c.seconds() * HPM_FLOP_FACTOR;
    let per_step = secs / steps.max(1) as f64;
    C90PicResult {
        seconds_per_step: per_step,
        mflops: c.mflops(),
        flops_per_step: c.total_flops() * HPM_FLOP_FACTOR / steps.max(1) as f64,
        total_seconds: per_step * steps as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_problem_lands_near_355_mflops() {
        let r = run_c90(&PicProblem::small(), 1);
        assert!(
            (300.0..=420.0).contains(&r.mflops),
            "C90 small = {} Mflop/s (paper: 355)",
            r.mflops
        );
    }

    #[test]
    fn large_problem_similar_rate() {
        let r = run_c90(&PicProblem::large(), 1);
        assert!(
            (300.0..=430.0).contains(&r.mflops),
            "C90 large = {} Mflop/s (paper: 369)",
            r.mflops
        );
    }

    #[test]
    fn large_takes_about_4x_the_time_of_small() {
        // Table 1: 436.4 s vs 112.9 s for 500 steps (ratio 3.87).
        let s = run_c90(&PicProblem::small(), 1);
        let l = run_c90(&PicProblem::large(), 1);
        let ratio = l.seconds_per_step / s.seconds_per_step;
        assert!((3.5..=4.3).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn table1_cpu_times_within_band() {
        // Table 1: 112.9 s (small) and 436.4 s (large) for 500 steps.
        let s = run_c90(&PicProblem::small(), 500);
        let l = run_c90(&PicProblem::large(), 500);
        assert!(
            (90.0..=140.0).contains(&s.total_seconds),
            "small 500-step time = {} s (paper: 112.9)",
            s.total_seconds
        );
        assert!(
            (350.0..=540.0).contains(&l.total_seconds),
            "large 500-step time = {} s (paper: 436.4)",
            l.total_seconds
        );
    }

    #[test]
    fn total_time_scales_with_steps() {
        let one = run_c90(&PicProblem::tiny(), 1);
        let ten = run_c90(&PicProblem::tiny(), 10);
        let ratio = ten.total_seconds / one.total_seconds;
        assert!((9.9..=10.1).contains(&ratio));
        assert!((one.seconds_per_step - ten.seconds_per_step).abs() < 1e-12);
    }
}
