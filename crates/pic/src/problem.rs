//! Problem definition and the beam–plasma workload of §5.1.1.
//!
//! "The test problem run was of a monoenergetic electron beam
//! propagating through a population of plasma electrons with
//! maxwellian velocity distribution. The beam was distributed
//! throughout the physical domain and had a number density roughly
//! 1/10th the density of the background electron population. ...
//! Each calculation began with 8 plasma electrons and 1 beam electron
//! in each mesh cell."

use spp_kernels::Rng64;

/// Static description of a PIC run.
#[derive(Debug, Clone)]
pub struct PicProblem {
    /// Mesh cells in x (power of two).
    pub nx: usize,
    /// Mesh cells in y (power of two).
    pub ny: usize,
    /// Mesh cells in z (power of two).
    pub nz: usize,
    /// Plasma electrons per cell.
    pub plasma_per_cell: usize,
    /// Beam electrons per cell.
    pub beam_per_cell: usize,
    /// Beam/background number-density ratio (sets beam weights).
    pub beam_density_ratio: f64,
    /// Beam drift speed along x, in grid units per unit time.
    pub beam_speed: f64,
    /// Background thermal speed.
    pub thermal_speed: f64,
    /// Leapfrog timestep.
    pub dt: f64,
    /// RNG seed for the particle load.
    pub seed: u64,
}

impl PicProblem {
    /// The paper's small calculation: 32x32x32 mesh, 294 912 particles.
    pub fn small() -> Self {
        Self::with_mesh(32, 32, 32)
    }

    /// The paper's large calculation: 64x64x32 mesh, 1 179 648
    /// particles.
    pub fn large() -> Self {
        Self::with_mesh(64, 64, 32)
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self::with_mesh(8, 8, 8)
    }

    /// The standard beam–plasma setup on an arbitrary mesh.
    pub fn with_mesh(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(
            nx.is_power_of_two() && ny.is_power_of_two() && nz.is_power_of_two(),
            "mesh dimensions must be powers of two for the FFT solver"
        );
        PicProblem {
            nx,
            ny,
            nz,
            plasma_per_cell: 8,
            beam_per_cell: 1,
            beam_density_ratio: 0.1,
            beam_speed: 3.0,
            thermal_speed: 1.0,
            dt: 0.1,
            seed: 0x5191_1000,
        }
    }

    /// Total mesh cells.
    pub fn cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Total particles (matches Table 1: 294 912 / 1 179 648).
    pub fn num_particles(&self) -> usize {
        self.cells() * (self.plasma_per_cell + self.beam_per_cell)
    }
}

/// The particle population in structure-of-arrays form. A particle
/// carries 11 words — 3 position, 3 velocity, charge weight, and a
/// 4-word field/scratch record — matching the paper's "each particle
/// requires 11 data words".
#[derive(Debug, Clone)]
pub struct Particles {
    /// Positions.
    pub x: Vec<f64>,
    /// Positions.
    pub y: Vec<f64>,
    /// Positions.
    pub z: Vec<f64>,
    /// Velocities.
    pub vx: Vec<f64>,
    /// Velocities.
    pub vy: Vec<f64>,
    /// Velocities.
    pub vz: Vec<f64>,
    /// Charge weight (negative for electrons).
    pub q: Vec<f64>,
    /// Interpolated field / scratch (4 words to round out the record).
    pub ex: Vec<f64>,
    /// Interpolated field.
    pub ey: Vec<f64>,
    /// Interpolated field.
    pub ez: Vec<f64>,
    /// Scratch word.
    pub aux: Vec<f64>,
}

impl Particles {
    /// Particle count.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Total (signed) charge.
    pub fn total_charge(&self) -> f64 {
        self.q.iter().sum()
    }

    /// Kinetic energy `sum(|q| v^2 / 2)` (all particles share unit
    /// mass-to-weight ratio).
    pub fn kinetic_energy(&self) -> f64 {
        (0..self.len())
            .map(|i| {
                0.5 * self.q[i].abs()
                    * (self.vx[i] * self.vx[i] + self.vy[i] * self.vy[i] + self.vz[i] * self.vz[i])
            })
            .sum()
    }

    /// Total x-momentum `sum(|q| vx)`.
    pub fn momentum_x(&self) -> f64 {
        (0..self.len()).map(|i| self.q[i].abs() * self.vx[i]).sum()
    }
}

/// Build the beam–plasma particle load. Plasma electrons are placed
/// uniformly in each cell with Maxwellian velocities; beam electrons
/// drift along +x at `beam_speed` with reduced weight so the beam
/// carries `beam_density_ratio` of the background density.
pub fn load_particles(p: &PicProblem) -> Particles {
    let n = p.num_particles();
    let mut rng = Rng64::new(p.seed);
    let mut parts = Particles {
        x: Vec::with_capacity(n),
        y: Vec::with_capacity(n),
        z: Vec::with_capacity(n),
        vx: Vec::with_capacity(n),
        vy: Vec::with_capacity(n),
        vz: Vec::with_capacity(n),
        q: Vec::with_capacity(n),
        ex: vec![0.0; n],
        ey: vec![0.0; n],
        ez: vec![0.0; n],
        aux: vec![0.0; n],
    };
    // Beam particle weight: beam_per_cell particles carry
    // beam_density_ratio * plasma_per_cell worth of charge.
    let w_plasma = -1.0;
    let w_beam = -(p.beam_density_ratio * p.plasma_per_cell as f64 / p.beam_per_cell as f64);
    for cz in 0..p.nz {
        for cy in 0..p.ny {
            for cx in 0..p.nx {
                for k in 0..p.plasma_per_cell + p.beam_per_cell {
                    let beam = k >= p.plasma_per_cell;
                    parts.x.push(cx as f64 + rng.uniform());
                    parts.y.push(cy as f64 + rng.uniform());
                    parts.z.push(cz as f64 + rng.uniform());
                    if beam {
                        parts.vx.push(p.beam_speed);
                        parts.vy.push(0.0);
                        parts.vz.push(0.0);
                        parts.q.push(w_beam);
                    } else {
                        let v = rng.maxwellian3(p.thermal_speed);
                        parts.vx.push(v[0]);
                        parts.vy.push(v[1]);
                        parts.vz.push(v[2]);
                        parts.q.push(w_plasma);
                    }
                }
            }
        }
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_particle_counts() {
        assert_eq!(PicProblem::small().num_particles(), 294_912);
        assert_eq!(PicProblem::large().num_particles(), 1_179_648);
    }

    #[test]
    fn load_is_deterministic() {
        let p = PicProblem::tiny();
        let a = load_particles(&p);
        let b = load_particles(&p);
        assert_eq!(a.x, b.x);
        assert_eq!(a.vx, b.vx);
    }

    #[test]
    fn particles_start_inside_the_domain() {
        let p = PicProblem::tiny();
        let parts = load_particles(&p);
        assert_eq!(parts.len(), p.num_particles());
        for i in 0..parts.len() {
            assert!(parts.x[i] >= 0.0 && parts.x[i] < p.nx as f64);
            assert!(parts.y[i] >= 0.0 && parts.y[i] < p.ny as f64);
            assert!(parts.z[i] >= 0.0 && parts.z[i] < p.nz as f64);
        }
    }

    #[test]
    fn beam_carries_a_tenth_of_background_density() {
        let p = PicProblem::tiny();
        let parts = load_particles(&p);
        let plasma: f64 = parts.q.iter().filter(|q| **q == -1.0).sum();
        let beam: f64 = parts.q.iter().filter(|q| **q != -1.0).sum();
        let ratio = beam / plasma;
        assert!((ratio - 0.1).abs() < 1e-12, "ratio = {ratio}");
    }

    #[test]
    fn beam_particles_drift_along_x() {
        let p = PicProblem::tiny();
        let parts = load_particles(&p);
        let beamers = (0..parts.len()).filter(|i| parts.q[*i] != -1.0);
        for i in beamers {
            assert_eq!(parts.vx[i], p.beam_speed);
            assert_eq!(parts.vy[i], 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn non_power_of_two_mesh_rejected() {
        PicProblem::with_mesh(10, 8, 8);
    }
}
