//! Slab-decomposed PVM PIC: the *modern* message-passing formulation,
//! kept as an ablation against the 1995-style replicated-grid port in
//! [`crate::pvm`].
//!
//! Each task owns a slab of grid planes and the particles inside it.
//! A timestep is: local deposit (+ ghost-plane reduction), a
//! distributed transpose FFT Poisson solve, ghost exchanges for the
//! field, local gather/push, and particle migration between slabs.
//! All compute is priced through the machine model from each task's
//! CPU; all data motion pays ConvexPVM pack/send/recv/unpack costs.
//! The ablation bench `ablation_pvm_decomposition` shows how much of
//! the paper's PVM penalty a better decomposition would have bought
//! back.

use crate::host::{self, flops};
use crate::problem::{load_particles, PicProblem};
use crate::shared::RunReport;
use spp_core::{Cycles, FuId, MemClass, SimArray};
use spp_kernels::{sim_fft_pencil, Complex, Pencil};
use spp_pvm::Pvm;

const TAG_RHO_GHOST: u32 = 1;
const TAG_T_FWD: u32 = 2;
const TAG_T_BWD: u32 = 3;
const TAG_PHI_DOWN: u32 = 4;
const TAG_PHI_UP: u32 = 5;
const TAG_E_GHOST: u32 = 6;
const TAG_MIGRATE: u32 = 7;

/// One task's particle storage (capacity-managed SoA SimArrays).
struct TaskParticles {
    x: SimArray<f64>,
    y: SimArray<f64>,
    z: SimArray<f64>,
    vx: SimArray<f64>,
    vy: SimArray<f64>,
    vz: SimArray<f64>,
    q: SimArray<f64>,
    live: usize,
}

/// An 11-word particle record in flight between tasks.
#[derive(Clone, Copy)]
struct Record {
    x: f64,
    y: f64,
    z: f64,
    vx: f64,
    vy: f64,
    vz: f64,
    q: f64,
}

/// Bytes of one migrating particle (the paper's 11 words).
const RECORD_BYTES: usize = 11 * 8;

/// Slab-decomposed PVM PIC state.
pub struct SlabPvmPic {
    /// Problem parameters.
    pub problem: PicProblem,
    ntasks: usize,
    /// Planes per slab.
    pz: usize,
    /// y-rows per task after transpose.
    nyt: usize,
    parts: Vec<TaskParticles>,
    /// Charge slab, `pz + 1` planes (top ghost).
    rho: Vec<SimArray<f64>>,
    /// Complex work slab, `pz` planes.
    work: Vec<SimArray<Complex>>,
    /// Transposed pencils: `nx * nyt * nz`.
    rows: Vec<SimArray<Complex>>,
    /// Potential slab, `pz + 2` planes (ghosts both ends; own planes
    /// at local index `l + 1`).
    phi: Vec<SimArray<f64>>,
    /// E-field slabs, `pz + 1` planes (top ghost).
    ex: Vec<SimArray<f64>>,
    ey: Vec<SimArray<f64>>,
    ez: Vec<SimArray<f64>>,
    mean_rho: f64,
}

impl SlabPvmPic {
    /// Distribute the beam–plasma problem across the PVM tasks.
    ///
    /// # Panics
    /// If `nz` or `ny` is not divisible by the task count.
    pub fn new(pvm: &mut Pvm, problem: PicProblem) -> Self {
        let t = pvm.num_tasks();
        assert_eq!(problem.nz % t, 0, "nz must divide by task count");
        assert_eq!(problem.ny % t, 0, "ny must divide by task count");
        let pz = problem.nz / t;
        let nyt = problem.ny / t;
        let plane = problem.nx * problem.ny;
        let all = load_particles(&problem);
        let mean_rho = all.total_charge() / problem.cells() as f64;
        let cap = (all.len() / t) * 3 / 2 + 64;

        let mut parts = Vec::with_capacity(t);
        let (mut rho, mut work, mut rows) = (Vec::new(), Vec::new(), Vec::new());
        let (mut phi, mut ex, mut ey, mut ez) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for task in 0..t {
            let home = home_fu(pvm, task);
            let class = MemClass::ThreadPrivate { home };
            // Particles whose floor(z) lies in this slab.
            let mine: Vec<usize> = (0..all.len())
                .filter(|i| (all.z[*i].floor() as usize) / pz == task)
                .collect();
            assert!(mine.len() <= cap, "slab {task} overflows capacity");
            let grab = |src: &[f64]| {
                let mut v: Vec<f64> = mine.iter().map(|i| src[*i]).collect();
                v.resize(cap, 0.0);
                v
            };
            let m = &mut pvm.machine;
            parts.push(TaskParticles {
                x: SimArray::new(m, class, grab(&all.x)),
                y: SimArray::new(m, class, grab(&all.y)),
                z: SimArray::new(m, class, grab(&all.z)),
                vx: SimArray::new(m, class, grab(&all.vx)),
                vy: SimArray::new(m, class, grab(&all.vy)),
                vz: SimArray::new(m, class, grab(&all.vz)),
                q: SimArray::new(m, class, grab(&all.q)),
                live: mine.len(),
            });
            rho.push(SimArray::from_elem(m, class, plane * (pz + 1), 0.0));
            work.push(SimArray::from_elem(m, class, plane * pz, Complex::ZERO));
            rows.push(SimArray::from_elem(
                m,
                class,
                problem.nx * nyt * problem.nz,
                Complex::ZERO,
            ));
            phi.push(SimArray::from_elem(m, class, plane * (pz + 2), 0.0));
            ex.push(SimArray::from_elem(m, class, plane * (pz + 1), 0.0));
            ey.push(SimArray::from_elem(m, class, plane * (pz + 1), 0.0));
            ez.push(SimArray::from_elem(m, class, plane * (pz + 1), 0.0));
        }
        SlabPvmPic {
            problem,
            ntasks: t,
            pz,
            nyt,
            parts,
            rho,
            work,
            rows,
            phi,
            ex,
            ey,
            ez,
            mean_rho,
        }
    }

    /// Total live particles across tasks.
    pub fn num_particles(&self) -> usize {
        self.parts.iter().map(|p| p.live).sum()
    }

    /// Live particle count of one task (diagnostics).
    pub fn task_particles(&self, t: usize) -> usize {
        self.parts[t].live
    }

    /// One timestep. Returns (elapsed wall cycles, flops) for the step.
    pub fn step(&mut self, pvm: &mut Pvm) -> (Cycles, u64) {
        let t0 = pvm.elapsed();
        let f0 = pvm.total_flops();
        self.deposit(pvm);
        self.exchange_rho_ghosts(pvm);
        self.load_work(pvm);
        self.fft_xy(pvm, false);
        self.transpose(pvm, true);
        self.fft_z(pvm, false);
        self.kscale(pvm);
        self.fft_z(pvm, true);
        self.transpose(pvm, false);
        self.fft_xy(pvm, true);
        self.extract_phi(pvm);
        self.exchange_phi_ghosts(pvm);
        self.gradient(pvm);
        self.exchange_e_ghosts(pvm);
        self.gather_push(pvm);
        self.migrate(pvm);
        pvm.barrier_all();
        (pvm.elapsed() - t0, pvm.total_flops() - f0)
    }

    /// Run `steps` timesteps.
    pub fn run(&mut self, pvm: &mut Pvm, steps: usize) -> RunReport {
        let mut out = RunReport {
            steps,
            ..Default::default()
        };
        for _ in 0..steps {
            let (c, f) = self.step(pvm);
            out.elapsed += c;
            out.flops += f;
        }
        out
    }

    fn plane(&self) -> usize {
        self.problem.nx * self.problem.ny
    }

    fn deposit(&mut self, pvm: &mut Pvm) {
        let p = self.problem.clone();
        let plane = self.plane();
        let pz = self.pz;
        for t in 0..self.ntasks {
            let parts = &mut self.parts[t];
            let rho = &mut self.rho[t];
            let live = parts.live;
            let z0 = t * pz;
            pvm.compute(t, |ctx| {
                for i in 0..plane * (pz + 1) {
                    ctx.write(rho, i, 0.0);
                }
                for i in 0..live {
                    let x = ctx.read(&parts.x, i);
                    let y = ctx.read(&parts.y, i);
                    let z = ctx.read(&parts.z, i);
                    let q = ctx.read(&parts.q, i);
                    let (xi, wx) = host::cic_axis(x, p.nx);
                    let (yi, wy) = host::cic_axis(y, p.ny);
                    let l0 = z.floor() as usize - z0;
                    let fz = z - z.floor();
                    let wz = [1.0 - fz, fz];
                    ctx.flops(flops::DEPOSIT_PER_PARTICLE);
                    for (dz, wz) in wz.iter().enumerate() {
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let g = xi[dx] + p.nx * yi[dy] + plane * (l0 + dz);
                                let w = q * wx[dx] * wy[dy] * wz;
                                ctx.update(rho, g, |r| r + w);
                            }
                        }
                    }
                }
            });
        }
    }

    fn exchange_rho_ghosts(&mut self, pvm: &mut Pvm) {
        let plane = self.plane();
        let bytes = plane * 8;
        if self.ntasks > 1 {
            for t in 0..self.ntasks {
                pvm.pack(t, bytes);
                pvm.send(t, (t + 1) % self.ntasks, bytes, TAG_RHO_GHOST);
            }
        }
        for t in 0..self.ntasks {
            let prev = (t + self.ntasks - 1) % self.ntasks;
            if self.ntasks > 1 {
                pvm.recv(t, Some(prev), Some(TAG_RHO_GHOST))
                    .expect("rho ghost lost");
                pvm.unpack(t, bytes);
            }
            // Add the neighbour's top ghost into our plane 0.
            let ghost: Vec<f64> =
                self.rho[prev].host()[self.pz * plane..(self.pz + 1) * plane].to_vec();
            let rho = &mut self.rho[t];
            pvm.compute(t, |ctx| {
                for (i, g) in ghost.iter().enumerate() {
                    ctx.update(rho, i, |r| r + g);
                    ctx.flops(1);
                }
            });
        }
    }

    fn load_work(&mut self, pvm: &mut Pvm) {
        let plane = self.plane();
        let n = plane * self.pz;
        let mean = self.mean_rho;
        for t in 0..self.ntasks {
            let rho = &self.rho[t];
            let work = &mut self.work[t];
            pvm.compute(t, |ctx| {
                for i in 0..n {
                    let r = ctx.read(rho, i);
                    ctx.write(work, i, Complex::real(r - mean));
                    ctx.flops(1);
                }
            });
        }
    }

    fn fft_xy(&mut self, pvm: &mut Pvm, inverse: bool) {
        let p = self.problem.clone();
        for t in 0..self.ntasks {
            let work = &mut self.work[t];
            let pz = self.pz;
            pvm.compute(t, |ctx| {
                for l in 0..pz {
                    for y in 0..p.ny {
                        sim_fft_pencil(
                            ctx,
                            work,
                            Pencil {
                                offset: p.nx * (y + p.ny * l),
                                stride: 1,
                                n: p.nx,
                            },
                            inverse,
                        );
                    }
                    for x in 0..p.nx {
                        sim_fft_pencil(
                            ctx,
                            work,
                            Pencil {
                                offset: x + p.nx * p.ny * l,
                                stride: p.nx,
                                n: p.ny,
                            },
                            inverse,
                        );
                    }
                }
            });
        }
    }

    /// Redistribute between z-slabs (`work`) and y-row pencil sets
    /// (`rows`). `forward`: work -> rows; else rows -> work.
    fn transpose(&mut self, pvm: &mut Pvm, forward: bool) {
        let p = self.problem.clone();
        let (pz, nyt) = (self.pz, self.nyt);
        let block_bytes = p.nx * nyt * pz * 16;
        let tag = if forward { TAG_T_FWD } else { TAG_T_BWD };
        // Send phase: every task packs one block per peer.
        for t in 0..self.ntasks {
            for j in 0..self.ntasks {
                if j != t {
                    pvm.pack(t, block_bytes);
                    pvm.send(t, j, block_bytes, tag);
                }
            }
        }
        // Receive phase + data movement (the local block is a priced
        // in-memory copy; remote blocks pay unpack).
        for t in 0..self.ntasks {
            for j in 0..self.ntasks {
                if j != t {
                    pvm.recv(t, Some(j), Some(tag))
                        .expect("transpose block lost");
                    pvm.unpack(t, block_bytes);
                }
                // Move the (j -> t) block on the host side.
                // forward:  rows[t][(x, yr, zg)] = work[j][(x, yg, zl)]
                //   where zg = j*pz + zl (sender's planes),
                //         yg = t*nyt + yr (receiver's rows);
                // backward: work[t][(x, yg, zl)] = rows[j][(x, yr, zg)]
                //   where zg = t*pz + zl (receiver's planes),
                //         yg = j*nyt + yr (sender's rows).
                for zl in 0..pz {
                    for yr in 0..nyt {
                        for x in 0..p.nx {
                            if forward {
                                let zg = j * pz + zl;
                                let yg = t * nyt + yr;
                                let v = self.work[j].host()[x + p.nx * (yg + p.ny * zl)];
                                self.rows[t].host_mut()[x + p.nx * (yr + nyt * zg)] = v;
                            } else {
                                let zg = t * pz + zl;
                                let yg = j * nyt + yr;
                                let v = self.rows[j].host()[x + p.nx * (yr + nyt * zg)];
                                self.work[t].host_mut()[x + p.nx * (yg + p.ny * zl)] = v;
                            }
                        }
                    }
                }
            }
            // Price the local (t -> t) block copy (streaming,
            // ~2 complex elements per cycle).
            let n_local = p.nx * nyt * pz;
            pvm.compute(t, |ctx| {
                ctx.cycles((n_local as u64 / 2).max(1));
            });
        }
    }

    fn fft_z(&mut self, pvm: &mut Pvm, inverse: bool) {
        let p = self.problem.clone();
        let nyt = self.nyt;
        for t in 0..self.ntasks {
            let rows = &mut self.rows[t];
            pvm.compute(t, |ctx| {
                for yr in 0..nyt {
                    for x in 0..p.nx {
                        sim_fft_pencil(
                            ctx,
                            rows,
                            Pencil {
                                offset: x + p.nx * yr,
                                stride: p.nx * nyt,
                                n: p.nz,
                            },
                            inverse,
                        );
                    }
                }
            });
        }
    }

    fn kscale(&mut self, pvm: &mut Pvm) {
        let p = self.problem.clone();
        let nyt = self.nyt;
        for t in 0..self.ntasks {
            let rows = &mut self.rows[t];
            pvm.compute(t, |ctx| {
                for z in 0..p.nz {
                    for yr in 0..nyt {
                        let ky = t * nyt + yr;
                        for x in 0..p.nx {
                            let i = x + p.nx * (yr + nyt * z);
                            let k2 = host::ksqr_axis(x, p.nx)
                                + host::ksqr_axis(ky, p.ny)
                                + host::ksqr_axis(z, p.nz);
                            let v = ctx.read(rows, i);
                            let out = if k2 == 0.0 {
                                Complex::ZERO
                            } else {
                                v.scale(1.0 / k2)
                            };
                            ctx.write(rows, i, out);
                            ctx.flops(flops::KSCALE_PER_POINT);
                        }
                    }
                }
            });
        }
    }

    fn extract_phi(&mut self, pvm: &mut Pvm) {
        let plane = self.plane();
        let pz = self.pz;
        for t in 0..self.ntasks {
            let work = &self.work[t];
            let phi = &mut self.phi[t];
            pvm.compute(t, |ctx| {
                for l in 0..pz {
                    for i in 0..plane {
                        let v = ctx.read(work, i + plane * l);
                        ctx.write(phi, i + plane * (l + 1), v.re);
                    }
                }
            });
        }
    }

    fn exchange_phi_ghosts(&mut self, pvm: &mut Pvm) {
        let plane = self.plane();
        let bytes = plane * 8;
        let pz = self.pz;
        if self.ntasks > 1 {
            for t in 0..self.ntasks {
                pvm.pack(t, 2 * bytes);
                pvm.send(t, (t + self.ntasks - 1) % self.ntasks, bytes, TAG_PHI_DOWN);
                pvm.send(t, (t + 1) % self.ntasks, bytes, TAG_PHI_UP);
            }
        }
        for t in 0..self.ntasks {
            let next = (t + 1) % self.ntasks;
            let prev = (t + self.ntasks - 1) % self.ntasks;
            if self.ntasks > 1 {
                pvm.recv(t, Some(next), Some(TAG_PHI_DOWN))
                    .expect("phi ghost");
                pvm.recv(t, Some(prev), Some(TAG_PHI_UP))
                    .expect("phi ghost");
                pvm.unpack(t, 2 * bytes);
            }
            // Top ghost (plane pz+1) = next task's first own plane;
            // bottom ghost (plane 0) = prev task's last own plane.
            for i in 0..plane {
                let top = self.phi[next].host()[i + plane];
                let bot = self.phi[prev].host()[i + plane * pz];
                let ph = self.phi[t].host_mut();
                ph[i + plane * (pz + 1)] = top;
                ph[i] = bot;
            }
        }
    }

    fn gradient(&mut self, pvm: &mut Pvm) {
        let p = self.problem.clone();
        let plane = self.plane();
        let pz = self.pz;
        for t in 0..self.ntasks {
            let phi = &self.phi[t];
            let (ex, ey, ez) = (&mut self.ex[t], &mut self.ey[t], &mut self.ez[t]);
            pvm.compute(t, |ctx| {
                for l in 0..pz {
                    for y in 0..p.ny {
                        let (ym, yp) = ((y + p.ny - 1) % p.ny, (y + 1) % p.ny);
                        for x in 0..p.nx {
                            let (xm, xp) = ((x + p.nx - 1) % p.nx, (x + 1) % p.nx);
                            let at = |xx: usize, yy: usize, ll: usize| xx + p.nx * yy + plane * ll;
                            let i = at(x, y, l);
                            // phi plane offset: own plane l is l+1.
                            let gx =
                                ctx.read(phi, at(xp, y, l + 1)) - ctx.read(phi, at(xm, y, l + 1));
                            let gy =
                                ctx.read(phi, at(x, yp, l + 1)) - ctx.read(phi, at(x, ym, l + 1));
                            let gz = ctx.read(phi, at(x, y, l + 2)) - ctx.read(phi, at(x, y, l));
                            ctx.write(ex, i, -0.5 * gx);
                            ctx.write(ey, i, -0.5 * gy);
                            ctx.write(ez, i, -0.5 * gz);
                            ctx.flops(flops::GRADIENT_PER_POINT);
                        }
                    }
                }
            });
        }
    }

    fn exchange_e_ghosts(&mut self, pvm: &mut Pvm) {
        let plane = self.plane();
        let bytes = 3 * plane * 8;
        let pz = self.pz;
        if self.ntasks > 1 {
            for t in 0..self.ntasks {
                pvm.pack(t, bytes);
                pvm.send(t, (t + self.ntasks - 1) % self.ntasks, bytes, TAG_E_GHOST);
            }
        }
        for t in 0..self.ntasks {
            let next = (t + 1) % self.ntasks;
            if self.ntasks > 1 {
                pvm.recv(t, Some(next), Some(TAG_E_GHOST)).expect("E ghost");
                pvm.unpack(t, bytes);
            }
            // Our top ghost plane (pz) = next task's plane 0.
            for i in 0..plane {
                let gx = self.ex[next].host()[i];
                let gy = self.ey[next].host()[i];
                let gz = self.ez[next].host()[i];
                self.ex[t].host_mut()[i + plane * pz] = gx;
                self.ey[t].host_mut()[i + plane * pz] = gy;
                self.ez[t].host_mut()[i + plane * pz] = gz;
            }
        }
    }

    fn gather_push(&mut self, pvm: &mut Pvm) {
        let p = self.problem.clone();
        let plane = self.plane();
        let pz = self.pz;
        let dt = p.dt;
        for t in 0..self.ntasks {
            let parts = &mut self.parts[t];
            let (ex, ey, ez) = (&self.ex[t], &self.ey[t], &self.ez[t]);
            let live = parts.live;
            let z0 = t * pz;
            pvm.compute(t, |ctx| {
                for i in 0..live {
                    let x = ctx.read(&parts.x, i);
                    let y = ctx.read(&parts.y, i);
                    let z = ctx.read(&parts.z, i);
                    let (xi, wx) = host::cic_axis(x, p.nx);
                    let (yi, wy) = host::cic_axis(y, p.ny);
                    let l0 = z.floor() as usize - z0;
                    let fz = z - z.floor();
                    let wz = [1.0 - fz, fz];
                    let (mut fx, mut fy, mut fzv) = (0.0, 0.0, 0.0);
                    for (dz, wz) in wz.iter().enumerate() {
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let w = wx[dx] * wy[dy] * wz;
                                let g = xi[dx] + p.nx * yi[dy] + plane * (l0 + dz);
                                fx += w * ctx.read(ex, g);
                                fy += w * ctx.read(ey, g);
                                fzv += w * ctx.read(ez, g);
                            }
                        }
                    }
                    ctx.flops(flops::PUSH_PER_PARTICLE);
                    let qm = -1.0;
                    let vx = ctx.read(&parts.vx, i) + qm * fx * dt;
                    let vy = ctx.read(&parts.vy, i) + qm * fy * dt;
                    let vz = ctx.read(&parts.vz, i) + qm * fzv * dt;
                    ctx.write(&mut parts.vx, i, vx);
                    ctx.write(&mut parts.vy, i, vy);
                    ctx.write(&mut parts.vz, i, vz);
                    ctx.write(&mut parts.x, i, host::wrap(x + vx * dt, p.nx as f64));
                    ctx.write(&mut parts.y, i, host::wrap(y + vy * dt, p.ny as f64));
                    ctx.write(&mut parts.z, i, host::wrap(z + vz * dt, p.nz as f64));
                }
            });
        }
    }

    fn migrate(&mut self, pvm: &mut Pvm) {
        let pz = self.pz;
        // Collect outgoing records per (src, dst).
        let mut outgoing: Vec<Vec<Vec<Record>>> = vec![vec![Vec::new(); self.ntasks]; self.ntasks];
        for (t, out) in outgoing.iter_mut().enumerate() {
            let parts = &mut self.parts[t];
            let mut i = 0;
            while i < parts.live {
                let dest = (parts.z.host()[i].floor() as usize) / pz;
                if dest != t {
                    out[dest].push(extract(parts, i));
                    remove_swap(parts, i);
                } else {
                    i += 1;
                }
            }
        }
        // Send phase.
        for (t, out) in outgoing.iter().enumerate() {
            for (dest, recs) in out.iter().enumerate() {
                if !recs.is_empty() {
                    let bytes = recs.len() * RECORD_BYTES;
                    pvm.pack(t, bytes);
                    pvm.send(t, dest, bytes, TAG_MIGRATE);
                }
            }
        }
        // Receive phase: drain all migration messages addressed to us.
        // `t` indexes three structures at once; a range loop is the
        // clearest form here.
        #[allow(clippy::needless_range_loop)]
        for t in 0..self.ntasks {
            while let Some(m) = pvm.recv(t, None, Some(TAG_MIGRATE)) {
                pvm.unpack(t, m.bytes);
                for r in outgoing[m.from][t].drain(..) {
                    append(&mut self.parts[t], r);
                }
            }
        }
    }
}

fn home_fu(pvm: &Pvm, t: usize) -> FuId {
    let cpu = pvm.task_cpu(t);
    pvm.machine.config().fu_of_cpu(cpu)
}

fn extract(p: &TaskParticles, i: usize) -> Record {
    Record {
        x: p.x.host()[i],
        y: p.y.host()[i],
        z: p.z.host()[i],
        vx: p.vx.host()[i],
        vy: p.vy.host()[i],
        vz: p.vz.host()[i],
        q: p.q.host()[i],
    }
}

fn remove_swap(p: &mut TaskParticles, i: usize) {
    let last = p.live - 1;
    for arr in [
        &mut p.x, &mut p.y, &mut p.z, &mut p.vx, &mut p.vy, &mut p.vz, &mut p.q,
    ] {
        let h = arr.host_mut();
        h[i] = h[last];
    }
    p.live = last;
}

fn append(p: &mut TaskParticles, r: Record) {
    assert!(
        p.live < p.x.len(),
        "slab particle capacity exceeded during migration"
    );
    let i = p.live;
    p.x.host_mut()[i] = r.x;
    p.y.host_mut()[i] = r.y;
    p.z.host_mut()[i] = r.z;
    p.vx.host_mut()[i] = r.vx;
    p.vy.host_mut()[i] = r.vy;
    p.vz.host_mut()[i] = r.vz;
    p.q.host_mut()[i] = r.q;
    p.live = i + 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_core::CpuId;

    fn session(tasks: usize) -> (Pvm, SlabPvmPic) {
        let cpus: Vec<CpuId> = (0..tasks as u16).map(CpuId).collect();
        let mut pvm = Pvm::spp1000(2, &cpus);
        let pic = SlabPvmPic::new(&mut pvm, PicProblem::tiny());
        (pvm, pic)
    }

    #[test]
    fn particles_are_fully_distributed() {
        let (_, pic) = session(4);
        assert_eq!(pic.num_particles(), PicProblem::tiny().num_particles());
        for t in 0..4 {
            assert!(pic.task_particles(t) > 0, "slab {t} empty");
        }
    }

    #[test]
    fn particle_count_is_conserved_across_steps() {
        let (mut pvm, mut pic) = session(4);
        let n0 = pic.num_particles();
        for _ in 0..3 {
            pic.step(&mut pvm);
        }
        assert_eq!(pic.num_particles(), n0);
        // Every particle sits in the right slab after migration.
        let pz = PicProblem::tiny().nz / 4;
        for t in 0..4 {
            for i in 0..pic.task_particles(t) {
                let z = pic.parts[t].z.host()[i];
                assert_eq!((z.floor() as usize) / pz, t, "stray particle in slab {t}");
            }
        }
    }

    #[test]
    fn physics_matches_host_reference() {
        use crate::host::{step as host_step, Fields};
        use crate::problem::load_particles;

        let p = PicProblem::tiny();
        let (mut pvm, mut pic) = session(2);
        let mut parts = load_particles(&p);
        let mut f = Fields::new(&p);
        pic.step(&mut pvm);
        host_step(&p, &mut parts, &mut f);
        // Compare slab-sorted kinetic energy (ordering differs).
        let host_ke = parts.kinetic_energy();
        let mut sim_ke = 0.0;
        for t in 0..2 {
            let tp = &pic.parts[t];
            for i in 0..tp.live {
                let q = tp.q.host()[i].abs();
                sim_ke += 0.5
                    * q
                    * (tp.vx.host()[i].powi(2) + tp.vy.host()[i].powi(2) + tp.vz.host()[i].powi(2));
            }
        }
        let rel = (sim_ke - host_ke).abs() / host_ke;
        assert!(rel < 1e-9, "KE mismatch: {sim_ke} vs {host_ke} (rel {rel})");
    }

    #[test]
    fn slab_decomposition_beats_replicated_grid() {
        // The ablation claim: the modern slab decomposition removes
        // the whole-grid all-reduce and the redundant solve that make
        // the 1995-style replicated-grid port ~2x slower.
        use crate::pvm::PvmPic;

        let p = PicProblem::tiny();
        let (mut pvm_s, mut slab) = session(8);
        let rslab = slab.run(&mut pvm_s, 1);

        let cpus: Vec<CpuId> = (0..8u16).map(CpuId).collect();
        let mut pvm_r = Pvm::spp1000(2, &cpus);
        let mut rep = PvmPic::new(&mut pvm_r, p);
        let rrep = rep.run(&mut pvm_r, 1);
        assert!(
            rslab.elapsed < rrep.elapsed,
            "slab {} vs replicated {}",
            rslab.elapsed,
            rrep.elapsed
        );
    }

    #[test]
    fn flops_comparable_to_shared_version() {
        use crate::shared::SharedPic;
        use spp_runtime::{Placement, Runtime, Team};

        let (mut pvm, mut pic) = session(2);
        let rpvm = pic.run(&mut pvm, 1);
        let mut rt = Runtime::spp1000(1);
        let team = Team::place(rt.machine.config(), 2, &Placement::HighLocality);
        let mut sh = SharedPic::new(&mut rt, PicProblem::tiny(), &team);
        let rsh = sh.run(&mut rt, &team, 1);
        // PVM does the same physics plus ghost adds; within 10%.
        let ratio = rpvm.flops as f64 / rsh.flops as f64;
        assert!((0.95..=1.15).contains(&ratio), "flops ratio = {ratio}");
    }
}
