//! Host-side reference implementation of the PIC cycle (no machine
//! pricing): the numerics oracle for the simulated versions and the
//! body of the C90 baseline.
//!
//! One timestep (paper §5.1.1, Figure 5):
//! 1. deposit particle charge on the mesh (CIC scatter-add);
//! 2. solve for the potential and E on the mesh (FFT Poisson solve);
//! 3. interpolate E to particle positions (CIC gather);
//! 4. push the particles (leapfrog).

use crate::problem::{Particles, PicProblem};
use spp_kernels::{fft3d_inplace, Complex};

/// Grid state: charge density, potential and electric field.
#[derive(Debug, Clone)]
pub struct Fields {
    /// Charge density at grid points.
    pub rho: Vec<f64>,
    /// Electric potential.
    pub phi: Vec<f64>,
    /// E-field components at grid points.
    pub ex: Vec<f64>,
    /// E-field y.
    pub ey: Vec<f64>,
    /// E-field z.
    pub ez: Vec<f64>,
}

impl Fields {
    /// Zero-initialized fields for a problem.
    pub fn new(p: &PicProblem) -> Self {
        let n = p.cells();
        Fields {
            rho: vec![0.0; n],
            phi: vec![0.0; n],
            ex: vec![0.0; n],
            ey: vec![0.0; n],
            ez: vec![0.0; n],
        }
    }

    /// Field energy `0.5 sum |E|^2`.
    pub fn field_energy(&self) -> f64 {
        (0..self.rho.len())
            .map(|i| {
                0.5 * (self.ex[i] * self.ex[i] + self.ey[i] * self.ey[i] + self.ez[i] * self.ez[i])
            })
            .sum()
    }
}

#[inline]
pub(crate) fn idx(p: &PicProblem, x: usize, y: usize, z: usize) -> usize {
    x + p.nx * (y + p.ny * z)
}

/// CIC (cloud-in-cell) corner indices and weights for a position.
/// Returns `([i0, i1], [w0, w1])` per axis with periodic wrap.
#[inline]
pub(crate) fn cic_axis(pos: f64, n: usize) -> ([usize; 2], [f64; 2]) {
    let i0 = pos.floor() as usize % n;
    let f = pos - pos.floor();
    ([i0, (i0 + 1) % n], [1.0 - f, f])
}

/// Step 1: scatter particle charge onto the mesh.
pub fn deposit(p: &PicProblem, parts: &Particles, rho: &mut [f64]) {
    rho.iter_mut().for_each(|r| *r = 0.0);
    for i in 0..parts.len() {
        let (xi, wx) = cic_axis(parts.x[i], p.nx);
        let (yi, wy) = cic_axis(parts.y[i], p.ny);
        let (zi, wz) = cic_axis(parts.z[i], p.nz);
        let q = parts.q[i];
        for (dz, wz) in wz.iter().enumerate() {
            for (dy, wy) in wy.iter().enumerate() {
                for (dx, wx) in wx.iter().enumerate() {
                    rho[idx(p, xi[dx], yi[dy], zi[dz])] += q * wx * wy * wz;
                }
            }
        }
    }
}

/// Spectral eigenvalue of the (FD-consistent) Laplacian for mode `k`
/// of `n` points: `(2 sin(pi k / n))^2`.
#[inline]
pub(crate) fn ksqr_axis(k: usize, n: usize) -> f64 {
    let s = (std::f64::consts::PI * k as f64 / n as f64).sin();
    4.0 * s * s
}

/// Step 2: solve `laplacian(phi) = -(rho - mean(rho))` with periodic
/// boundaries via FFT, then `E = -grad(phi)` by centered differences.
pub fn solve_fields(p: &PicProblem, f: &mut Fields) {
    let n = p.cells();
    let mut work: Vec<Complex> = f.rho.iter().map(|r| Complex::real(*r)).collect();
    fft3d_inplace(&mut work, p.nx, p.ny, p.nz, false);
    for kz in 0..p.nz {
        for ky in 0..p.ny {
            for kx in 0..p.nx {
                let i = idx(p, kx, ky, kz);
                let k2 = ksqr_axis(kx, p.nx) + ksqr_axis(ky, p.ny) + ksqr_axis(kz, p.nz);
                if k2 == 0.0 {
                    work[i] = Complex::ZERO; // neutralizing background
                } else {
                    work[i] = work[i].scale(1.0 / k2);
                }
            }
        }
    }
    fft3d_inplace(&mut work, p.nx, p.ny, p.nz, true);
    for (phi, w) in f.phi.iter_mut().zip(&work[..n]) {
        *phi = w.re;
    }
    gradient(p, &f.phi, &mut f.ex, &mut f.ey, &mut f.ez);
}

/// `E = -grad(phi)` with periodic centered differences.
pub fn gradient(p: &PicProblem, phi: &[f64], ex: &mut [f64], ey: &mut [f64], ez: &mut [f64]) {
    for z in 0..p.nz {
        let (zm, zp) = ((z + p.nz - 1) % p.nz, (z + 1) % p.nz);
        for y in 0..p.ny {
            let (ym, yp) = ((y + p.ny - 1) % p.ny, (y + 1) % p.ny);
            for x in 0..p.nx {
                let (xm, xp) = ((x + p.nx - 1) % p.nx, (x + 1) % p.nx);
                let i = idx(p, x, y, z);
                ex[i] = -0.5 * (phi[idx(p, xp, y, z)] - phi[idx(p, xm, y, z)]);
                ey[i] = -0.5 * (phi[idx(p, x, yp, z)] - phi[idx(p, x, ym, z)]);
                ez[i] = -0.5 * (phi[idx(p, x, y, zp)] - phi[idx(p, x, y, zm)]);
            }
        }
    }
}

/// Steps 3+4: gather E to the particles and push them (leapfrog).
/// All particles are electrons: charge-to-mass ratio -1 regardless of
/// statistical weight.
pub fn gather_push(p: &PicProblem, parts: &mut Particles, f: &Fields) {
    let qm = -1.0;
    for i in 0..parts.len() {
        let (xi, wx) = cic_axis(parts.x[i], p.nx);
        let (yi, wy) = cic_axis(parts.y[i], p.ny);
        let (zi, wz) = cic_axis(parts.z[i], p.nz);
        let (mut ex, mut ey, mut ez) = (0.0, 0.0, 0.0);
        for (dz, wz) in wz.iter().enumerate() {
            for (dy, wy) in wy.iter().enumerate() {
                for (dx, wx) in wx.iter().enumerate() {
                    let w = wx * wy * wz;
                    let g = idx(p, xi[dx], yi[dy], zi[dz]);
                    ex += w * f.ex[g];
                    ey += w * f.ey[g];
                    ez += w * f.ez[g];
                }
            }
        }
        parts.ex[i] = ex;
        parts.ey[i] = ey;
        parts.ez[i] = ez;
        parts.vx[i] += qm * ex * p.dt;
        parts.vy[i] += qm * ey * p.dt;
        parts.vz[i] += qm * ez * p.dt;
        parts.x[i] = wrap(parts.x[i] + parts.vx[i] * p.dt, p.nx as f64);
        parts.y[i] = wrap(parts.y[i] + parts.vy[i] * p.dt, p.ny as f64);
        parts.z[i] = wrap(parts.z[i] + parts.vz[i] * p.dt, p.nz as f64);
    }
}

#[inline]
pub(crate) fn wrap(x: f64, n: f64) -> f64 {
    let mut x = x % n;
    if x < 0.0 {
        x += n;
    }
    x
}

/// One full timestep on the host.
pub fn step(p: &PicProblem, parts: &mut Particles, f: &mut Fields) {
    deposit(p, parts, &mut f.rho);
    solve_fields(p, f);
    gather_push(p, parts, f);
}

/// FLOP counts per phase (used by every implementation so Mflop/s are
/// comparable across shared-memory, PVM and C90 versions).
pub mod flops {
    /// Per particle, CIC deposit (weights + 8 weighted adds).
    pub const DEPOSIT_PER_PARTICLE: u64 = 6 + 8 * 4;
    /// Per grid point, k-space scale.
    pub const KSCALE_PER_POINT: u64 = 8;
    /// Per grid point, gradient stencil.
    pub const GRADIENT_PER_POINT: u64 = 12;
    /// Per particle, gather + leapfrog push.
    pub const PUSH_PER_PARTICLE: u64 = 6 + 8 * 7 + 12 + 9;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::load_particles;

    #[test]
    fn deposit_conserves_charge() {
        let p = PicProblem::tiny();
        let parts = load_particles(&p);
        let mut f = Fields::new(&p);
        deposit(&p, &parts, &mut f.rho);
        let total: f64 = f.rho.iter().sum();
        assert!(
            (total - parts.total_charge()).abs() < 1e-9 * parts.len() as f64,
            "deposited {total}, expected {}",
            parts.total_charge()
        );
    }

    #[test]
    fn uniform_lattice_gives_zero_field() {
        // One particle exactly at each grid point: rho is uniform, so
        // after background subtraction E vanishes.
        let p = PicProblem::tiny();
        let n = p.cells();
        let mut parts = Particles {
            x: vec![0.0; n],
            y: vec![0.0; n],
            z: vec![0.0; n],
            vx: vec![0.0; n],
            vy: vec![0.0; n],
            vz: vec![0.0; n],
            q: vec![-1.0; n],
            ex: vec![0.0; n],
            ey: vec![0.0; n],
            ez: vec![0.0; n],
            aux: vec![0.0; n],
        };
        let mut i = 0;
        for z in 0..p.nz {
            for y in 0..p.ny {
                for x in 0..p.nx {
                    parts.x[i] = x as f64;
                    parts.y[i] = y as f64;
                    parts.z[i] = z as f64;
                    i += 1;
                }
            }
        }
        let mut f = Fields::new(&p);
        deposit(&p, &parts, &mut f.rho);
        solve_fields(&p, &mut f);
        assert!(f.field_energy() < 1e-18, "E = {}", f.field_energy());
        gather_push(&p, &mut parts, &f);
        assert!(parts.vx.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn poisson_solver_recovers_plane_wave() {
        // rho = cos(2 pi x / nx): phi should be rho / ksqr with the
        // FD-consistent eigenvalue, and E = -grad phi.
        let p = PicProblem::tiny();
        let mut f = Fields::new(&p);
        for z in 0..p.nz {
            for y in 0..p.ny {
                for x in 0..p.nx {
                    f.rho[idx(&p, x, y, z)] =
                        (2.0 * std::f64::consts::PI * x as f64 / p.nx as f64).cos();
                }
            }
        }
        solve_fields(&p, &mut f);
        let k2 = ksqr_axis(1, p.nx);
        for x in 0..p.nx {
            let expect = (2.0 * std::f64::consts::PI * x as f64 / p.nx as f64).cos() / k2;
            let got = f.phi[idx(&p, x, 3, 5)];
            assert!((got - expect).abs() < 1e-9, "x={x}: {got} vs {expect}");
        }
    }

    #[test]
    fn two_electrons_repel() {
        let p = PicProblem::tiny();
        let mk = |x: f64| Particles {
            x: vec![x, 5.0],
            y: vec![4.0, 4.0],
            z: vec![4.0, 4.0],
            vx: vec![0.0; 2],
            vy: vec![0.0; 2],
            vz: vec![0.0; 2],
            q: vec![-1.0; 2],
            ex: vec![0.0; 2],
            ey: vec![0.0; 2],
            ez: vec![0.0; 2],
            aux: vec![0.0; 2],
        };
        let mut parts = mk(3.0);
        let mut f = Fields::new(&p);
        step(&p, &mut parts, &mut f);
        // Particle 0 (left) pushed further left, particle 1 right.
        assert!(parts.vx[0] < 0.0, "vx0 = {}", parts.vx[0]);
        assert!(parts.vx[1] > 0.0, "vx1 = {}", parts.vx[1]);
    }

    #[test]
    fn momentum_is_approximately_conserved() {
        let p = PicProblem::tiny();
        let mut parts = load_particles(&p);
        let mut f = Fields::new(&p);
        let p0 = parts.momentum_x();
        for _ in 0..5 {
            step(&p, &mut parts, &mut f);
        }
        let p1 = parts.momentum_x();
        let scale = parts.len() as f64 * p.beam_speed;
        assert!(
            (p1 - p0).abs() / scale < 0.02,
            "momentum drift {} -> {}",
            p0,
            p1
        );
    }

    #[test]
    fn particles_stay_in_the_box() {
        let p = PicProblem::tiny();
        let mut parts = load_particles(&p);
        let mut f = Fields::new(&p);
        for _ in 0..3 {
            step(&p, &mut parts, &mut f);
        }
        for i in 0..parts.len() {
            assert!(parts.x[i] >= 0.0 && parts.x[i] < p.nx as f64);
            assert!(parts.z[i] >= 0.0 && parts.z[i] < p.nz as f64);
        }
    }

    #[test]
    fn beam_drives_up_field_energy() {
        // The beam-plasma system is two-stream unstable: field energy
        // grows from the noise floor over the first steps.
        let p = PicProblem::tiny();
        let mut parts = load_particles(&p);
        let mut f = Fields::new(&p);
        step(&p, &mut parts, &mut f);
        let e_early = f.field_energy();
        for _ in 0..20 {
            step(&p, &mut parts, &mut f);
        }
        let e_late = f.field_energy();
        assert!(
            e_late > e_early,
            "field energy should grow: {e_early} -> {e_late}"
        );
    }

    #[test]
    fn wrap_is_periodic() {
        assert_eq!(wrap(8.5, 8.0), 0.5);
        assert_eq!(wrap(-0.5, 8.0), 7.5);
        assert_eq!(wrap(3.0, 8.0), 3.0);
    }

    #[test]
    fn cic_weights_sum_to_one() {
        for pos in [0.0, 0.25, 3.999, 7.5] {
            let (_, w) = cic_axis(pos, 8);
            assert!((w[0] + w[1] - 1.0).abs() < 1e-12);
            assert!(w[0] >= 0.0 && w[1] >= 0.0);
        }
    }
}
