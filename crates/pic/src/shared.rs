//! Shared-memory (CPSlib-style) parallel PIC on the simulated
//! SPP-1000: the paper's preferred implementation, which "consistently
//! outperforms the pvm version" (§5.1.1).
//!
//! Particles and grids live in far-shared memory; each timestep is a
//! sequence of parallel regions (zero, scatter, FFT pencils per axis,
//! k-space scale, gradient, gather+push), exactly the structure a
//! directive-parallelized Fortran code produces.

use crate::host::{self, flops};
use crate::problem::{load_particles, PicProblem};
use spp_core::{Cycles, MemPort, SimArray};
use spp_kernels::{sim_fft_pencil, Complex, Pencil};
use spp_runtime::{PrivateArrays, Runtime, Team};

/// PIC state in simulated shared memory.
pub struct SharedPic {
    /// The problem parameters.
    pub problem: PicProblem,
    // Particle record: 11 words (3 pos, 3 vel, weight, 3 field, aux).
    px: SimArray<f64>,
    py: SimArray<f64>,
    pz: SimArray<f64>,
    pvx: SimArray<f64>,
    pvy: SimArray<f64>,
    pvz: SimArray<f64>,
    pq: SimArray<f64>,
    pex: SimArray<f64>,
    pey: SimArray<f64>,
    pez: SimArray<f64>,
    rho: SimArray<f64>,
    /// One private charge grid per thread: the CIC scatter deposits
    /// into these, then a reduction phase folds them into `rho`. The
    /// old direct `rho[g] += w` scatter was an unsynchronized
    /// cross-thread read-modify-write — the race detector flags it.
    partial_rho: PrivateArrays<f64>,
    /// Per-thread `[lo, hi)` cell span each partial grid touched this
    /// step (host bookkeeping, recomputed every deposit). Particles
    /// are loaded in cell order, so a thread's index chunk covers a
    /// compact cell range and the reduction only reads the partials
    /// whose span covers a cell — without this the fold costs
    /// `cells × threads` reads and kills scaling on big teams.
    partial_span: Vec<(usize, usize)>,
    work: SimArray<Complex>,
    phi: SimArray<f64>,
    ex: SimArray<f64>,
    ey: SimArray<f64>,
    ez: SimArray<f64>,
    mean_rho: f64,
}

/// Timing/flops of one simulated timestep.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepReport {
    /// Elapsed simulated cycles (sum over the step's parallel regions).
    pub elapsed: Cycles,
    /// FLOPs executed.
    pub flops: u64,
}

/// Cumulative result of a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunReport {
    /// Elapsed simulated cycles.
    pub elapsed: Cycles,
    /// Total FLOPs.
    pub flops: u64,
    /// Steps executed.
    pub steps: usize,
}

impl RunReport {
    /// Sustained Mflop/s.
    pub fn mflops(&self) -> f64 {
        if self.elapsed == 0 {
            0.0
        } else {
            self.flops as f64 / (self.elapsed as f64 * 1e-8) / 1e6
        }
    }

    /// Elapsed simulated seconds.
    pub fn seconds(&self) -> f64 {
        self.elapsed as f64 * 1e-8
    }

    /// Projected time for `n` steps (per-step rate times `n`).
    pub fn projected_seconds(&self, n: usize) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.seconds() * n as f64 / self.steps as f64
        }
    }
}

impl SharedPic {
    /// Load the beam–plasma problem into simulated shared memory with
    /// locality-aware placement for `team`: near-shared on one
    /// hypernode when the team fits there, block-shared with one block
    /// per hypernode otherwise (see [`Team::shared_class`]).
    pub fn new<P: MemPort>(rt: &mut Runtime<P>, problem: PicProblem, team: &Team) -> Self {
        let parts = load_particles(&problem);
        let m = &mut rt.machine;
        let cells = problem.cells();
        let n = parts.x.len();
        let pc = team.shared_class(m.config(), n as u64 * 8);
        let gc = team.shared_class(m.config(), cells as u64 * 8);
        let wc = team.shared_class(m.config(), cells as u64 * 16);
        let mean_rho = parts.total_charge() / cells as f64;
        let sim = SharedPic {
            px: SimArray::new(m, pc, parts.x),
            py: SimArray::new(m, pc, parts.y),
            pz: SimArray::new(m, pc, parts.z),
            pvx: SimArray::new(m, pc, parts.vx),
            pvy: SimArray::new(m, pc, parts.vy),
            pvz: SimArray::new(m, pc, parts.vz),
            pq: SimArray::new(m, pc, parts.q),
            pex: SimArray::new(m, pc, parts.ex),
            pey: SimArray::new(m, pc, parts.ey),
            pez: SimArray::new(m, pc, parts.ez),
            rho: SimArray::from_elem(m, gc, cells, 0.0),
            partial_rho: PrivateArrays::new(m, team, cells, 0.0),
            partial_span: vec![(usize::MAX, 0); team.len()],
            work: SimArray::from_elem(m, wc, cells, Complex::ZERO),
            phi: SimArray::from_elem(m, gc, cells, 0.0),
            ex: SimArray::from_elem(m, gc, cells, 0.0),
            ey: SimArray::from_elem(m, gc, cells, 0.0),
            ez: SimArray::from_elem(m, gc, cells, 0.0),
            mean_rho,
            problem,
        };
        sim.rho.set_label(m, "rho");
        sim.phi.set_label(m, "phi");
        sim.work.set_label(m, "work");
        sim
    }

    /// Number of particles.
    pub fn num_particles(&self) -> usize {
        self.px.len()
    }

    /// One timestep across `team`. Returns the step's timing.
    pub fn step<P: MemPort>(&mut self, rt: &mut Runtime<P>, team: &Team) -> StepReport {
        self.step_profiled(rt, team, None)
    }

    /// One timestep, optionally recording each phase in a CXpa-style
    /// [`spp_runtime::Profile`] (see §6 of the paper on the value of
    /// exactly this instrumentation).
    pub fn step_profiled<P: MemPort>(
        &mut self,
        rt: &mut Runtime<P>,
        team: &Team,
        mut prof: Option<&mut spp_runtime::Profile>,
    ) -> StepReport {
        let mut rep = StepReport::default();
        let p = self.problem.clone();
        let cells = p.cells();
        let npart = self.num_particles();

        // Phases 1+2: privatized CIC charge scatter. Each thread
        // deposits its particles into its own partial grid, then —
        // after an in-region barrier — the team folds the partials into
        // `rho`, each thread owning a disjoint chunk of cells. The old
        // direct `rho[g] += w` scatter was an unsynchronized cross-
        // thread read-modify-write (a real data race on hardware; the
        // race detector flags it), and its result depended on the
        // replay schedule. The reduction sums partials in thread order,
        // so the result is schedule-independent, and with one thread it
        // is bit-identical to the old sequential deposit.
        //
        // Partials hold an all-zero invariant between steps (zeroed at
        // construction, re-zeroed as the fold consumes them), so no
        // separate zeroing pass is needed, and the fold skips partials
        // whose touched span does not cover the cell — both passes
        // scale with 1/threads instead of costing `cells` per thread.
        let (px, py, pz, pq) = (&self.px, &self.py, &self.pz, &self.pq);
        let rho = &mut self.rho;
        let partials = &mut self.partial_rho;
        let span = &mut self.partial_span;
        let nt = partials.copies();
        let r = rt.team_fork_join_phases(team, 2, |ctx, phase| {
            if phase == 0 {
                let tid = ctx.tid;
                span[tid] = (usize::MAX, 0);
                for i in ctx.chunk(npart) {
                    let x = ctx.read(px, i);
                    let y = ctx.read(py, i);
                    let z = ctx.read(pz, i);
                    let q = ctx.read(pq, i);
                    let (xi, wx) = host::cic_axis(x, p.nx);
                    let (yi, wy) = host::cic_axis(y, p.ny);
                    let (zi, wz) = host::cic_axis(z, p.nz);
                    ctx.flops(flops::DEPOSIT_PER_PARTICLE);
                    for dz in 0..2 {
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let g = host::idx(&p, xi[dx], yi[dy], zi[dz]);
                                let w = q * wx[dx] * wy[dy] * wz[dz];
                                span[tid] = (span[tid].0.min(g), span[tid].1.max(g + 1));
                                ctx.update(partials.mine_mut(tid), g, |r| r + w);
                            }
                        }
                    }
                }
            } else {
                // Reduction adds are parallelization overhead, like
                // PPM's redundant margin work: time is priced through
                // the reads, but no useful-flop credit (keeps flops
                // independent of team size). Consuming a nonzero
                // partial cell zeroes it, restoring the invariant for
                // the next step's deposit.
                for g in ctx.chunk(cells) {
                    let mut sum = 0.0;
                    for (t, &(lo, hi)) in span.iter().enumerate().take(nt) {
                        if lo <= g && g < hi {
                            let v = ctx.read(partials.mine(t), g);
                            sum += v;
                            if v != 0.0 {
                                ctx.write(partials.mine_mut(t), g, 0.0);
                            }
                        }
                    }
                    ctx.write(rho, g, sum);
                }
            }
        });
        rep.track(&mut prof, "deposit", r);

        // Phase 3: rho -> complex work array, background subtracted.
        let (rho, work, mean) = (&self.rho, &mut self.work, self.mean_rho);
        let r = rt.team_fork_join(team, |ctx| {
            let rng = ctx.chunk(cells);
            let mut buf: Vec<f64> = Vec::with_capacity(rng.len());
            ctx.read_run(rho, rng.clone(), &mut buf);
            let vals: Vec<Complex> = buf.iter().map(|&v| Complex::real(v - mean)).collect();
            ctx.write_run(work, rng.start, &vals);
            ctx.flops(rng.len() as u64);
        });
        rep.track(&mut prof, "load_work", r);

        // Phases 4-6: forward FFT along x, y, z pencils.
        self.fft_axes(rt, team, &mut rep, false, &mut prof);

        // Phase 7: k-space scale (solve the algebraic equation).
        let work = &mut self.work;
        let r = rt.team_fork_join(team, |ctx| {
            for i in ctx.chunk(cells) {
                let kx = i % p.nx;
                let ky = (i / p.nx) % p.ny;
                let kz = i / (p.nx * p.ny);
                let k2 = host::ksqr_axis(kx, p.nx)
                    + host::ksqr_axis(ky, p.ny)
                    + host::ksqr_axis(kz, p.nz);
                let v = ctx.read(work, i);
                let out = if k2 == 0.0 {
                    Complex::ZERO
                } else {
                    v.scale(1.0 / k2)
                };
                ctx.write(work, i, out);
                ctx.flops(flops::KSCALE_PER_POINT);
            }
        });
        rep.track(&mut prof, "kscale", r);

        // Phases 8-10: inverse FFT.
        self.fft_axes(rt, team, &mut rep, true, &mut prof);

        // Phase 11: extract the potential.
        let (work, phi) = (&self.work, &mut self.phi);
        let r = rt.team_fork_join(team, |ctx| {
            let rng = ctx.chunk(cells);
            let mut buf: Vec<Complex> = Vec::with_capacity(rng.len());
            ctx.read_run(work, rng.clone(), &mut buf);
            let vals: Vec<f64> = buf.iter().map(|v| v.re).collect();
            ctx.write_run(phi, rng.start, &vals);
        });
        rep.track(&mut prof, "extract_phi", r);

        // Phase 12: E = -grad(phi).
        let (phi, ex, ey, ez) = (&self.phi, &mut self.ex, &mut self.ey, &mut self.ez);
        let r = rt.team_fork_join(team, |ctx| {
            for i in ctx.chunk(cells) {
                let x = i % p.nx;
                let y = (i / p.nx) % p.ny;
                let z = i / (p.nx * p.ny);
                let (xm, xp) = ((x + p.nx - 1) % p.nx, (x + 1) % p.nx);
                let (ym, yp) = ((y + p.ny - 1) % p.ny, (y + 1) % p.ny);
                let (zm, zp) = ((z + p.nz - 1) % p.nz, (z + 1) % p.nz);
                let gx =
                    ctx.read(phi, host::idx(&p, xp, y, z)) - ctx.read(phi, host::idx(&p, xm, y, z));
                let gy =
                    ctx.read(phi, host::idx(&p, x, yp, z)) - ctx.read(phi, host::idx(&p, x, ym, z));
                let gz =
                    ctx.read(phi, host::idx(&p, x, y, zp)) - ctx.read(phi, host::idx(&p, x, y, zm));
                ctx.write(ex, i, -0.5 * gx);
                ctx.write(ey, i, -0.5 * gy);
                ctx.write(ez, i, -0.5 * gz);
                ctx.flops(flops::GRADIENT_PER_POINT);
            }
        });
        rep.track(&mut prof, "gradient", r);

        // Phase 13: gather E and push particles.
        let (px, py, pz) = (&mut self.px, &mut self.py, &mut self.pz);
        let (pvx, pvy, pvz) = (&mut self.pvx, &mut self.pvy, &mut self.pvz);
        let (pex, pey, pez) = (&mut self.pex, &mut self.pey, &mut self.pez);
        let (ex, ey, ez) = (&self.ex, &self.ey, &self.ez);
        let dt = p.dt;
        let r = rt.team_fork_join(team, |ctx| {
            for i in ctx.chunk(npart) {
                let x = ctx.read(px, i);
                let y = ctx.read(py, i);
                let z = ctx.read(pz, i);
                let (xi, wx) = host::cic_axis(x, p.nx);
                let (yi, wy) = host::cic_axis(y, p.ny);
                let (zi, wz) = host::cic_axis(z, p.nz);
                let (mut fx, mut fy, mut fz) = (0.0, 0.0, 0.0);
                for dz in 0..2 {
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let w = wx[dx] * wy[dy] * wz[dz];
                            let g = host::idx(&p, xi[dx], yi[dy], zi[dz]);
                            fx += w * ctx.read(ex, g);
                            fy += w * ctx.read(ey, g);
                            fz += w * ctx.read(ez, g);
                        }
                    }
                }
                ctx.flops(flops::PUSH_PER_PARTICLE);
                ctx.write(pex, i, fx);
                ctx.write(pey, i, fy);
                ctx.write(pez, i, fz);
                let qm = -1.0;
                let vx = ctx.read(pvx, i) + qm * fx * dt;
                let vy = ctx.read(pvy, i) + qm * fy * dt;
                let vz = ctx.read(pvz, i) + qm * fz * dt;
                ctx.write(pvx, i, vx);
                ctx.write(pvy, i, vy);
                ctx.write(pvz, i, vz);
                ctx.write(px, i, host::wrap(x + vx * dt, p.nx as f64));
                ctx.write(py, i, host::wrap(y + vy * dt, p.ny as f64));
                ctx.write(pz, i, host::wrap(z + vz * dt, p.nz as f64));
            }
        });
        rep.track(&mut prof, "gather_push", r);

        rep
    }

    /// Run FFTs along all three axes (forward or inverse), one
    /// parallel region per axis, pencils statically divided across the
    /// team.
    fn fft_axes<P: MemPort>(
        &mut self,
        rt: &mut Runtime<P>,
        team: &Team,
        rep: &mut StepReport,
        inverse: bool,
        prof: &mut Option<&mut spp_runtime::Profile>,
    ) {
        let p = self.problem.clone();
        let work = &mut self.work;
        // x pencils: one per (y, z).
        let n_pencils = p.ny * p.nz;
        let r = rt.team_fork_join(team, |ctx| {
            for pen in ctx.chunk(n_pencils) {
                sim_fft_pencil(
                    ctx,
                    work,
                    Pencil {
                        offset: pen * p.nx,
                        stride: 1,
                        n: p.nx,
                    },
                    inverse,
                );
            }
        });
        rep.track(prof, "fft_x", r);
        // y pencils: one per (x, z).
        let n_pencils = p.nx * p.nz;
        let r = rt.team_fork_join(team, |ctx| {
            for pen in ctx.chunk(n_pencils) {
                let x = pen % p.nx;
                let z = pen / p.nx;
                sim_fft_pencil(
                    ctx,
                    work,
                    Pencil {
                        offset: x + p.nx * p.ny * z,
                        stride: p.nx,
                        n: p.ny,
                    },
                    inverse,
                );
            }
        });
        rep.track(prof, "fft_y", r);
        // z pencils: one per (x, y).
        let n_pencils = p.nx * p.ny;
        let r = rt.team_fork_join(team, |ctx| {
            for pen in ctx.chunk(n_pencils) {
                sim_fft_pencil(
                    ctx,
                    work,
                    Pencil {
                        offset: pen,
                        stride: p.nx * p.ny,
                        n: p.nz,
                    },
                    inverse,
                );
            }
        });
        rep.track(prof, "fft_z", r);
    }

    /// Run `steps` timesteps, returning cumulative timing.
    pub fn run<P: MemPort>(&mut self, rt: &mut Runtime<P>, team: &Team, steps: usize) -> RunReport {
        let mut out = RunReport {
            steps,
            ..Default::default()
        };
        for _ in 0..steps {
            let s = self.step(rt, team);
            out.elapsed += s.elapsed;
            out.flops += s.flops;
        }
        out
    }

    /// Host view of the E-field grids (validation).
    pub fn field_energy(&self) -> f64 {
        (0..self.problem.cells())
            .map(|i| {
                0.5 * (self.ex.host()[i].powi(2)
                    + self.ey.host()[i].powi(2)
                    + self.ez.host()[i].powi(2))
            })
            .sum()
    }

    /// Host views of particle positions (validation).
    pub fn positions(&self) -> (&[f64], &[f64], &[f64]) {
        (self.px.host(), self.py.host(), self.pz.host())
    }

    /// Host views of particle velocities (validation).
    pub fn velocities(&self) -> (&[f64], &[f64], &[f64]) {
        (self.pvx.host(), self.pvy.host(), self.pvz.host())
    }
}

impl StepReport {
    fn add(&mut self, r: spp_runtime::RegionReport) {
        self.elapsed += r.elapsed;
        self.flops += r.flops;
    }

    fn track(
        &mut self,
        prof: &mut Option<&mut spp_runtime::Profile>,
        name: &str,
        r: spp_runtime::RegionReport,
    ) {
        if let Some(p) = prof.as_deref_mut() {
            p.record(name, &r);
        }
        self.add(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{step as host_step, Fields};
    use crate::problem::load_particles;
    use spp_runtime::Placement;

    fn tiny_sim(threads: usize) -> (Runtime, SharedPic, Team) {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), threads, &Placement::HighLocality);
        let pic = SharedPic::new(&mut rt, PicProblem::tiny(), &team);
        (rt, pic, team)
    }

    #[test]
    fn single_thread_matches_host_reference() {
        let (mut rt, mut pic, team) = tiny_sim(1);
        let p = PicProblem::tiny();
        let mut parts = load_particles(&p);
        let mut f = Fields::new(&p);
        for _ in 0..2 {
            pic.step(&mut rt, &team);
            host_step(&p, &mut parts, &mut f);
        }
        let (x, _, _) = pic.positions();
        for i in (0..parts.len()).step_by(97) {
            assert!(
                (x[i] - parts.x[i]).abs() < 1e-9,
                "particle {i}: {} vs {}",
                x[i],
                parts.x[i]
            );
        }
    }

    #[test]
    fn multi_thread_physics_close_to_host() {
        let (mut rt, mut pic, team) = tiny_sim(8);
        let p = PicProblem::tiny();
        let mut parts = load_particles(&p);
        let mut f = Fields::new(&p);
        for _ in 0..2 {
            pic.step(&mut rt, &team);
            host_step(&p, &mut parts, &mut f);
        }
        // Scatter-add ordering differs across threads; results agree
        // to rounding.
        let (x, _, _) = pic.positions();
        for i in (0..parts.len()).step_by(211) {
            assert!(
                (x[i] - parts.x[i]).abs() < 1e-6,
                "particle {i}: {} vs {}",
                x[i],
                parts.x[i]
            );
        }
    }

    #[test]
    fn more_threads_run_faster() {
        let (mut rt1, mut pic1, team1) = tiny_sim(1);
        let r1 = pic1.run(&mut rt1, &team1, 1);
        let (mut rt8, mut pic8, team8) = tiny_sim(8);
        let r8 = pic8.run(&mut rt8, &team8, 1);
        let speedup = r1.elapsed as f64 / r8.elapsed as f64;
        assert!(speedup > 2.0, "8-thread speedup = {speedup}");
    }

    #[test]
    fn flops_independent_of_thread_count() {
        let (mut rt1, mut pic1, team1) = tiny_sim(1);
        let r1 = pic1.run(&mut rt1, &team1, 1);
        let (mut rt4, mut pic4, team4) = tiny_sim(4);
        let r4 = pic4.run(&mut rt4, &team4, 1);
        assert_eq!(r1.flops, r4.flops);
        assert!(r1.flops > 0);
    }

    #[test]
    fn run_report_aggregates() {
        let (mut rt, mut pic, team) = tiny_sim(2);
        let r = pic.run(&mut rt, &team, 2);
        assert_eq!(r.steps, 2);
        assert!(r.mflops() > 0.0);
        assert!(r.projected_seconds(500) > r.seconds());
    }
}
