//! PVM (message-passing) PIC: the replicated-grid particle
//! decomposition — the straightforward 1995 port of a serial PIC code
//! to PVM, and the implementation style whose cost the paper reports
//! ("a PVM implementation of an application can achieve almost one
//! half the performance of a shared memory implementation", §3.1 /
//! Figure 6).
//!
//! Each task owns a fixed share of the particles and a *private copy
//! of the whole mesh*. A timestep is:
//!
//! 1. deposit the task's particles on its private charge grid;
//! 2. butterfly all-reduce of the charge grid (`log2 T` rounds of
//!    whole-grid pack / send / unpack / add — the dominant cost);
//! 3. every task solves the FFT Poisson equation *redundantly* on its
//!    now-global charge grid (no serial bottleneck, but no speedup
//!    either — the classic Amdahl term of this scheme);
//! 4. gather + push its own particles.
//!
//! No particle migration is needed, because every task sees the whole
//! mesh. For the better-but-anachronistic slab decomposition, see
//! [`crate::pvm_slab`].

use crate::host::{self, flops};
use crate::problem::{load_particles, PicProblem};
use crate::shared::RunReport;
use spp_core::{Cycles, FuId, MemClass, SimArray};
use spp_kernels::{sim_fft_pencil, Complex, Pencil};
use spp_pvm::Pvm;

const TAG_REDUCE_BASE: u32 = 100;

struct TaskState {
    // Particle share (fixed).
    x: SimArray<f64>,
    y: SimArray<f64>,
    z: SimArray<f64>,
    vx: SimArray<f64>,
    vy: SimArray<f64>,
    vz: SimArray<f64>,
    q: SimArray<f64>,
    n: usize,
    // Private full-mesh grids.
    rho: SimArray<f64>,
    work: SimArray<Complex>,
    phi: SimArray<f64>,
    ex: SimArray<f64>,
    ey: SimArray<f64>,
    ez: SimArray<f64>,
}

/// Replicated-grid PVM PIC state.
pub struct PvmPic {
    /// Problem parameters.
    pub problem: PicProblem,
    ntasks: usize,
    tasks: Vec<TaskState>,
    mean_rho: f64,
    /// Useful flops executed (redundant solves counted once).
    useful_flops: u64,
}

impl PvmPic {
    /// Distribute the beam–plasma problem: particle shares per task,
    /// one private full mesh each.
    ///
    /// # Panics
    /// If the task count is not a power of two (butterfly reduce).
    pub fn new(pvm: &mut Pvm, problem: PicProblem) -> Self {
        let t = pvm.num_tasks();
        assert!(t.is_power_of_two(), "task count must be a power of two");
        let all = load_particles(&problem);
        let mean_rho = all.total_charge() / problem.cells() as f64;
        let cells = problem.cells();
        let mut tasks = Vec::with_capacity(t);
        for task in 0..t {
            let cpu = pvm.task_cpu(task);
            let home: FuId = pvm.machine.config().fu_of_cpu(cpu);
            let class = MemClass::ThreadPrivate { home };
            let r = spp_runtime::chunk_range(all.len(), t, task);
            let n = r.len();
            let m = &mut pvm.machine;
            let grab = |src: &[f64]| src[r.clone()].to_vec();
            tasks.push(TaskState {
                x: SimArray::new(m, class, grab(&all.x)),
                y: SimArray::new(m, class, grab(&all.y)),
                z: SimArray::new(m, class, grab(&all.z)),
                vx: SimArray::new(m, class, grab(&all.vx)),
                vy: SimArray::new(m, class, grab(&all.vy)),
                vz: SimArray::new(m, class, grab(&all.vz)),
                q: SimArray::new(m, class, grab(&all.q)),
                n,
                rho: SimArray::from_elem(m, class, cells, 0.0),
                work: SimArray::from_elem(m, class, cells, Complex::ZERO),
                phi: SimArray::from_elem(m, class, cells, 0.0),
                ex: SimArray::from_elem(m, class, cells, 0.0),
                ey: SimArray::from_elem(m, class, cells, 0.0),
                ez: SimArray::from_elem(m, class, cells, 0.0),
            });
        }
        PvmPic {
            problem,
            ntasks: t,
            tasks,
            mean_rho,
            useful_flops: 0,
        }
    }

    /// Total particles across tasks.
    pub fn num_particles(&self) -> usize {
        self.tasks.iter().map(|t| t.n).sum()
    }

    /// One timestep. Returns (elapsed wall cycles, useful flops).
    pub fn step(&mut self, pvm: &mut Pvm) -> (Cycles, u64) {
        let t0 = pvm.elapsed();
        let f0 = self.useful_flops;
        self.deposit(pvm);
        self.allreduce_rho(pvm);
        self.solve(pvm);
        self.gather_push(pvm);
        pvm.barrier_all();
        (pvm.elapsed() - t0, self.useful_flops - f0)
    }

    /// Run `steps` timesteps.
    pub fn run(&mut self, pvm: &mut Pvm, steps: usize) -> RunReport {
        let mut out = RunReport {
            steps,
            ..Default::default()
        };
        for _ in 0..steps {
            let (c, f) = self.step(pvm);
            out.elapsed += c;
            out.flops += f;
        }
        out
    }

    fn deposit(&mut self, pvm: &mut Pvm) {
        let p = self.problem.clone();
        let cells = p.cells();
        for t in 0..self.ntasks {
            let task = &mut self.tasks[t];
            let flops_before = pvm.total_flops();
            pvm.compute(t, |ctx| {
                for i in 0..cells {
                    ctx.write(&mut task.rho, i, 0.0);
                }
                for i in 0..task.n {
                    let x = ctx.read(&task.x, i);
                    let y = ctx.read(&task.y, i);
                    let z = ctx.read(&task.z, i);
                    let q = ctx.read(&task.q, i);
                    let (xi, wx) = host::cic_axis(x, p.nx);
                    let (yi, wy) = host::cic_axis(y, p.ny);
                    let (zi, wz) = host::cic_axis(z, p.nz);
                    ctx.flops(flops::DEPOSIT_PER_PARTICLE);
                    for dz in 0..2 {
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let g = host::idx(&p, xi[dx], yi[dy], zi[dz]);
                                let w = q * wx[dx] * wy[dy] * wz[dz];
                                ctx.update(&mut task.rho, g, |r| r + w);
                            }
                        }
                    }
                }
            });
            self.useful_flops += pvm.total_flops() - flops_before;
        }
    }

    /// Butterfly all-reduce of the private charge grids: in round `r`,
    /// task `t` exchanges its whole grid with `t ^ 2^r` and adds.
    fn allreduce_rho(&mut self, pvm: &mut Pvm) {
        let cells = self.problem.cells();
        let bytes = cells * 8;
        let rounds = self.ntasks.trailing_zeros();
        for r in 0..rounds {
            let tag = TAG_REDUCE_BASE + r;
            for t in 0..self.ntasks {
                pvm.pack(t, bytes);
                pvm.send(t, t ^ (1 << r), bytes, tag);
            }
            // Snapshot partner grids, then receive and add.
            let snapshot: Vec<Vec<f64>> = (0..self.ntasks)
                .map(|t| self.tasks[t].rho.host().to_vec())
                .collect();
            for t in 0..self.ntasks {
                let partner = t ^ (1 << r);
                pvm.recv(t, Some(partner), Some(tag)).expect("reduce msg");
                pvm.unpack(t, bytes);
                let incoming = &snapshot[partner];
                let task = &mut self.tasks[t];
                let flops_before = pvm.total_flops();
                pvm.compute(t, |ctx| {
                    for (i, &v) in incoming.iter().enumerate().take(cells) {
                        ctx.update(&mut task.rho, i, |x| x + v);
                        ctx.flops(1);
                    }
                });
                // Reduction adds count as useful only once across the
                // butterfly (every task does the same total adds).
                if t == 0 {
                    self.useful_flops += pvm.total_flops() - flops_before;
                }
            }
        }
    }

    /// Redundant FFT Poisson solve on every task's (now global) grid.
    fn solve(&mut self, pvm: &mut Pvm) {
        let p = self.problem.clone();
        let cells = p.cells();
        let mean = self.mean_rho;
        for t in 0..self.ntasks {
            let task = &mut self.tasks[t];
            let flops_before = pvm.total_flops();
            pvm.compute(t, |ctx| {
                // Load work array.
                for i in 0..cells {
                    let r = ctx.read(&task.rho, i);
                    ctx.write(&mut task.work, i, Complex::real(r - mean));
                    ctx.flops(1);
                }
                // Forward FFT (x, y, z pencils).
                fft3(ctx, &mut task.work, &p, false);
                // k-space scale.
                for i in 0..cells {
                    let kx = i % p.nx;
                    let ky = (i / p.nx) % p.ny;
                    let kz = i / (p.nx * p.ny);
                    let k2 = host::ksqr_axis(kx, p.nx)
                        + host::ksqr_axis(ky, p.ny)
                        + host::ksqr_axis(kz, p.nz);
                    let v = ctx.read(&task.work, i);
                    let out = if k2 == 0.0 {
                        Complex::ZERO
                    } else {
                        v.scale(1.0 / k2)
                    };
                    ctx.write(&mut task.work, i, out);
                    ctx.flops(flops::KSCALE_PER_POINT);
                }
                // Inverse FFT, extract phi, gradient.
                fft3(ctx, &mut task.work, &p, true);
                for i in 0..cells {
                    let v = ctx.read(&task.work, i);
                    ctx.write(&mut task.phi, i, v.re);
                }
                for i in 0..cells {
                    let x = i % p.nx;
                    let y = (i / p.nx) % p.ny;
                    let z = i / (p.nx * p.ny);
                    let (xm, xp) = ((x + p.nx - 1) % p.nx, (x + 1) % p.nx);
                    let (ym, yp) = ((y + p.ny - 1) % p.ny, (y + 1) % p.ny);
                    let (zm, zp) = ((z + p.nz - 1) % p.nz, (z + 1) % p.nz);
                    let gx = ctx.read(&task.phi, host::idx(&p, xp, y, z))
                        - ctx.read(&task.phi, host::idx(&p, xm, y, z));
                    let gy = ctx.read(&task.phi, host::idx(&p, x, yp, z))
                        - ctx.read(&task.phi, host::idx(&p, x, ym, z));
                    let gz = ctx.read(&task.phi, host::idx(&p, x, y, zp))
                        - ctx.read(&task.phi, host::idx(&p, x, y, zm));
                    ctx.write(&mut task.ex, i, -0.5 * gx);
                    ctx.write(&mut task.ey, i, -0.5 * gy);
                    ctx.write(&mut task.ez, i, -0.5 * gz);
                    ctx.flops(flops::GRADIENT_PER_POINT);
                }
            });
            // The solve is replicated: only one copy is useful work.
            if t == 0 {
                self.useful_flops += pvm.total_flops() - flops_before;
            }
        }
    }

    fn gather_push(&mut self, pvm: &mut Pvm) {
        let p = self.problem.clone();
        let dt = p.dt;
        for t in 0..self.ntasks {
            let task = &mut self.tasks[t];
            let flops_before = pvm.total_flops();
            pvm.compute(t, |ctx| {
                for i in 0..task.n {
                    let x = ctx.read(&task.x, i);
                    let y = ctx.read(&task.y, i);
                    let z = ctx.read(&task.z, i);
                    let (xi, wx) = host::cic_axis(x, p.nx);
                    let (yi, wy) = host::cic_axis(y, p.ny);
                    let (zi, wz) = host::cic_axis(z, p.nz);
                    let (mut fx, mut fy, mut fz) = (0.0, 0.0, 0.0);
                    for dz in 0..2 {
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let w = wx[dx] * wy[dy] * wz[dz];
                                let g = host::idx(&p, xi[dx], yi[dy], zi[dz]);
                                fx += w * ctx.read(&task.ex, g);
                                fy += w * ctx.read(&task.ey, g);
                                fz += w * ctx.read(&task.ez, g);
                            }
                        }
                    }
                    ctx.flops(flops::PUSH_PER_PARTICLE);
                    let qm = -1.0;
                    let vx = ctx.read(&task.vx, i) + qm * fx * dt;
                    let vy = ctx.read(&task.vy, i) + qm * fy * dt;
                    let vz = ctx.read(&task.vz, i) + qm * fz * dt;
                    ctx.write(&mut task.vx, i, vx);
                    ctx.write(&mut task.vy, i, vy);
                    ctx.write(&mut task.vz, i, vz);
                    ctx.write(&mut task.x, i, host::wrap(x + vx * dt, p.nx as f64));
                    ctx.write(&mut task.y, i, host::wrap(y + vy * dt, p.ny as f64));
                    ctx.write(&mut task.z, i, host::wrap(z + vz * dt, p.nz as f64));
                }
            });
            self.useful_flops += pvm.total_flops() - flops_before;
        }
    }

    /// Kinetic energy across all tasks (validation).
    pub fn kinetic_energy(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| {
                (0..t.n)
                    .map(|i| {
                        0.5 * t.q.host()[i].abs()
                            * (t.vx.host()[i].powi(2)
                                + t.vy.host()[i].powi(2)
                                + t.vz.host()[i].powi(2))
                    })
                    .sum::<f64>()
            })
            .sum()
    }
}

fn fft3<P: spp_core::MemPort>(
    ctx: &mut spp_runtime::ThreadCtx<'_, P>,
    work: &mut SimArray<Complex>,
    p: &PicProblem,
    inverse: bool,
) {
    for pen in 0..p.ny * p.nz {
        sim_fft_pencil(
            ctx,
            work,
            Pencil {
                offset: pen * p.nx,
                stride: 1,
                n: p.nx,
            },
            inverse,
        );
    }
    for pen in 0..p.nx * p.nz {
        let x = pen % p.nx;
        let z = pen / p.nx;
        sim_fft_pencil(
            ctx,
            work,
            Pencil {
                offset: x + p.nx * p.ny * z,
                stride: p.nx,
                n: p.ny,
            },
            inverse,
        );
    }
    for pen in 0..p.nx * p.ny {
        sim_fft_pencil(
            ctx,
            work,
            Pencil {
                offset: pen,
                stride: p.nx * p.ny,
                n: p.nz,
            },
            inverse,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_core::CpuId;

    fn session(tasks: usize) -> (Pvm, PvmPic) {
        let cpus: Vec<CpuId> = (0..tasks as u16).map(CpuId).collect();
        let mut pvm = Pvm::spp1000(2, &cpus);
        let pic = PvmPic::new(&mut pvm, PicProblem::tiny());
        (pvm, pic)
    }

    #[test]
    fn particles_fully_distributed() {
        let (_, pic) = session(4);
        assert_eq!(pic.num_particles(), PicProblem::tiny().num_particles());
    }

    #[test]
    fn physics_matches_host_reference() {
        use crate::host::{step as host_step, Fields};
        use crate::problem::load_particles;

        let p = PicProblem::tiny();
        let (mut pvm, mut pic) = session(2);
        let mut parts = load_particles(&p);
        let mut f = Fields::new(&p);
        for _ in 0..2 {
            pic.step(&mut pvm);
            host_step(&p, &mut parts, &mut f);
        }
        let host_ke = parts.kinetic_energy();
        let sim_ke = pic.kinetic_energy();
        let rel = (sim_ke - host_ke).abs() / host_ke;
        assert!(rel < 1e-9, "KE mismatch: {sim_ke} vs {host_ke}");
    }

    #[test]
    fn pvm_is_slower_than_shared_memory() {
        use crate::shared::SharedPic;
        use spp_runtime::{Placement, Runtime, Team};

        let p = PicProblem::tiny();
        let (mut pvm, mut pic) = session(8);
        let rpvm = pic.run(&mut pvm, 1);

        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
        let mut sh = SharedPic::new(&mut rt, p, &team);
        let rsh = sh.run(&mut rt, &team, 1);
        assert!(
            rpvm.elapsed > rsh.elapsed,
            "pvm {} vs shared {}",
            rpvm.elapsed,
            rsh.elapsed
        );
    }

    #[test]
    fn useful_flops_match_shared_version() {
        use crate::shared::SharedPic;
        use spp_runtime::{Placement, Runtime, Team};

        let (mut pvm, mut pic) = session(4);
        let rpvm = pic.run(&mut pvm, 1);
        let mut rt = Runtime::spp1000(1);
        let team = Team::place(rt.machine.config(), 2, &Placement::HighLocality);
        let mut sh = SharedPic::new(&mut rt, PicProblem::tiny(), &team);
        let rsh = sh.run(&mut rt, &team, 1);
        // Replicated solves are excluded; only reduction adds differ.
        let ratio = rpvm.flops as f64 / rsh.flops as f64;
        assert!((0.9..=1.2).contains(&ratio), "flops ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_tasks() {
        let cpus: Vec<CpuId> = (0..3u16).map(CpuId).collect();
        let mut pvm = Pvm::spp1000(2, &cpus);
        PvmPic::new(&mut pvm, PicProblem::tiny());
    }
}
