//! # pic — 3-D electrostatic particle-in-cell plasma code
//!
//! Reproduces the application study of paper §5.1: a beam–plasma
//! simulation with CIC charge deposition, an FFT Poisson solve, and a
//! leapfrog particle push, on the mesh sizes of Table 1 (32x32x32 with
//! 294 912 particles, 64x64x32 with 1 179 648 particles).
//!
//! Three execution paths share the same physics:
//!
//! * [`host`] — the unpriced reference implementation;
//! * [`shared`] — shared-memory threads on the simulated SPP-1000
//!   (the winning style, Figure 6);
//! * [`pvm`] — the 1995-style replicated-grid particle decomposition
//!   over ConvexPVM messages (the "coarse-grained threads" style the
//!   paper measured);
//! * [`pvm_slab`] — a modern slab-decomposed message-passing variant,
//!   kept as an ablation;
//! * [`c90`] — the Cray C90 single-head baseline (Table 1).

#![warn(missing_docs)]

pub mod c90;
pub mod host;
pub mod problem;
pub mod pvm;
pub mod pvm_slab;
pub mod shared;

pub use problem::{load_particles, Particles, PicProblem};
pub use shared::{RunReport, SharedPic, StepReport};
