//! # c90-model — a Cray YMP-C90 single-head vector cost model
//!
//! Every application section of the paper anchors its SPP-1000 results
//! to one head of a Cray YMP-C90: Table 1 (PIC at 355/369 Mflop/s),
//! §5.2.2 (FEM at 0.57 point-updates/µs ≈ 250 Mflop/s useful), §5.3.2
//! (a vectorized tree code at 120 Mflop/s). With no C90 to run on, we
//! model one: a 240 MHz vector processor with dual pipes (4 flops per
//! cycle peak ≈ 960 Mflop/s), 128-element vector registers with
//! per-strip startup, multiple contiguous memory ports, and penalized
//! gather/scatter. Applications describe their loops as [`LoopSpec`]s;
//! the model prices them. Irregular codes additionally carry a
//! documented vector-efficiency factor (masking/divergence losses the
//! loop shape alone cannot express).

#![warn(missing_docs)]

/// Machine constants of the modelled C90 head.
#[derive(Debug, Clone)]
pub struct VectorModel {
    /// Clock in GHz (C90: 4.167 ns cycle).
    pub clock_ghz: f64,
    /// Peak flops per cycle (dual pipes, add+multiply each).
    pub flops_per_cycle: f64,
    /// Contiguous memory references sustained per cycle.
    pub contig_refs_per_cycle: f64,
    /// Extra cycles per gathered (indirect-read) element.
    pub gather_cycles: f64,
    /// Extra cycles per scattered (indirect-write) element.
    pub scatter_cycles: f64,
    /// Startup cycles per 128-element vector strip.
    pub strip_startup_cycles: f64,
    /// Vector register length.
    pub vector_len: u64,
    /// Flops per cycle sustained by scalar (non-vectorized) code.
    pub scalar_flops_per_cycle: f64,
}

impl VectorModel {
    /// The calibrated C90 head.
    pub fn c90() -> Self {
        VectorModel {
            clock_ghz: 0.240,
            flops_per_cycle: 4.0,
            contig_refs_per_cycle: 3.0,
            gather_cycles: 4.0,
            scatter_cycles: 5.0,
            strip_startup_cycles: 50.0,
            vector_len: 128,
            scalar_flops_per_cycle: 0.35,
        }
    }
}

impl Default for VectorModel {
    fn default() -> Self {
        Self::c90()
    }
}

/// Shape of one vectorizable inner loop, per iteration.
#[derive(Debug, Clone)]
pub struct LoopSpec {
    /// Floating-point operations per iteration.
    pub flops: f64,
    /// Contiguous/strided memory references per iteration.
    pub contig_refs: f64,
    /// Gathered (indirectly read) elements per iteration.
    pub gathers: f64,
    /// Scattered (indirectly written) elements per iteration.
    pub scatters: f64,
    /// Vector efficiency in (0, 1]: fraction of peak issue sustained
    /// after masking, divergence and short-vector losses. 1.0 for
    /// clean dense loops.
    pub efficiency: f64,
}

impl LoopSpec {
    /// A dense, fully-vectorized loop with `flops` flops and
    /// `contig_refs` contiguous references per iteration.
    pub fn dense(flops: f64, contig_refs: f64) -> Self {
        LoopSpec {
            flops,
            contig_refs,
            gathers: 0.0,
            scatters: 0.0,
            efficiency: 1.0,
        }
    }
}

/// A running C90 execution: accumulates cycles and flops.
#[derive(Debug, Clone, Default)]
pub struct C90 {
    model: VectorModel,
    cycles: f64,
    flops: f64,
}

impl C90 {
    /// Fresh execution on the standard model.
    pub fn new() -> Self {
        C90 {
            model: VectorModel::c90(),
            cycles: 0.0,
            flops: 0.0,
        }
    }

    /// Fresh execution on a custom model.
    pub fn with_model(model: VectorModel) -> Self {
        C90 {
            model,
            cycles: 0.0,
            flops: 0.0,
        }
    }

    /// Execute `n` iterations of a vector loop.
    pub fn vloop(&mut self, n: u64, spec: &LoopSpec) {
        assert!(spec.efficiency > 0.0 && spec.efficiency <= 1.0);
        let m = &self.model;
        let strips = n.div_ceil(m.vector_len).max(1);
        let per_iter = (spec.flops / m.flops_per_cycle)
            .max(spec.contig_refs / m.contig_refs_per_cycle)
            / spec.efficiency
            + spec.gathers * m.gather_cycles
            + spec.scatters * m.scatter_cycles;
        self.cycles += strips as f64 * m.strip_startup_cycles + n as f64 * per_iter;
        self.flops += n as f64 * spec.flops;
    }

    /// Execute `flops` of scalar (non-vectorizable) code.
    pub fn scalar(&mut self, flops: u64) {
        self.cycles += flops as f64 / self.model.scalar_flops_per_cycle;
        self.flops += flops as f64;
    }

    /// Add raw cycles (e.g. I/O or fixed overheads).
    pub fn cycles(&mut self, c: f64) {
        self.cycles += c;
    }

    /// Elapsed seconds.
    pub fn seconds(&self) -> f64 {
        self.cycles / (self.model.clock_ghz * 1e9)
    }

    /// Elapsed microseconds.
    pub fn micros(&self) -> f64 {
        self.seconds() * 1e6
    }

    /// Total flops executed.
    pub fn total_flops(&self) -> f64 {
        self.flops
    }

    /// Sustained Mflop/s so far.
    pub fn mflops(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.flops / self.seconds() / 1e6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_dense_compute_near_960_mflops() {
        let mut c = C90::new();
        // Compute-bound dense loop: 8 flops, 2 refs per iteration.
        c.vloop(10_000_000, &LoopSpec::dense(8.0, 2.0));
        let mf = c.mflops();
        // Strip startup keeps sustained rate below the 960 peak.
        assert!((750.0..=960.0).contains(&mf), "mflops = {mf}");
    }

    #[test]
    fn memory_bound_loop_is_slower() {
        let mut dense = C90::new();
        dense.vloop(1_000_000, &LoopSpec::dense(2.0, 6.0)); // stream-like
        let mut compute = C90::new();
        compute.vloop(1_000_000, &LoopSpec::dense(8.0, 2.0));
        assert!(dense.mflops() < compute.mflops());
    }

    #[test]
    fn gathers_penalize_heavily() {
        let mut g = C90::new();
        g.vloop(
            1_000_000,
            &LoopSpec {
                gathers: 4.0,
                ..LoopSpec::dense(8.0, 2.0)
            },
        );
        assert!(g.mflops() < 150.0, "gather loop = {} Mflop/s", g.mflops());
    }

    #[test]
    fn scalar_code_is_slow() {
        let mut c = C90::new();
        c.scalar(1_000_000);
        let mf = c.mflops();
        assert!((50.0..=120.0).contains(&mf), "scalar = {mf}");
    }

    #[test]
    fn short_vectors_pay_startup() {
        let mut short = C90::new();
        for _ in 0..1000 {
            short.vloop(8, &LoopSpec::dense(4.0, 2.0));
        }
        let mut long = C90::new();
        long.vloop(8000, &LoopSpec::dense(4.0, 2.0));
        assert!(short.seconds() > 3.0 * long.seconds());
    }

    #[test]
    fn efficiency_scales_issue_rate() {
        let mut full = C90::new();
        full.vloop(100_000, &LoopSpec::dense(4.0, 1.0));
        let mut half = C90::new();
        half.vloop(
            100_000,
            &LoopSpec {
                efficiency: 0.5,
                ..LoopSpec::dense(4.0, 1.0)
            },
        );
        let ratio = half.seconds() / full.seconds();
        // Startup is unaffected by efficiency, so the ratio sits a
        // little under 2.
        assert!((1.6..=2.2).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn accumulates_across_calls() {
        let mut c = C90::new();
        c.vloop(100, &LoopSpec::dense(2.0, 1.0));
        let s1 = c.seconds();
        c.vloop(100, &LoopSpec::dense(2.0, 1.0));
        assert!((c.seconds() - 2.0 * s1).abs() < 1e-12);
        assert_eq!(c.total_flops(), 400.0);
    }

    #[test]
    #[should_panic]
    fn zero_efficiency_rejected() {
        let mut c = C90::new();
        c.vloop(
            10,
            &LoopSpec {
                efficiency: 0.0,
                ..LoopSpec::dense(1.0, 1.0)
            },
        );
    }
}
