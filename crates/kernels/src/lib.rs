//! # spp-kernels — numeric substrates for the SPP-1000 reproduction
//!
//! The paper's applications lean on vendor library routines the
//! SPP-1000 did not yet provide well ("fine-tuned libraries for
//! certain critical subroutines such as parallel FFT, sorting, and
//! scatter-add", §6) plus the Cray VECLIB FFTs the PIC code calls.
//! This crate rebuilds those substrates:
//!
//! * [`fft`] — radix-2 complex FFT, host-side and machine-priced;
//! * [`morton`] — Z-order keys for cache-friendly mesh/tree layouts;
//! * [`sorting`] — LSD radix sort with payload permutation;
//! * [`rng`] — deterministic xoshiro256++ workload generation.

#![warn(missing_docs)]

pub mod complex;
pub mod fft;
pub mod morton;
pub mod rng;
pub mod sorting;

pub use complex::Complex;
pub use fft::{fft3d_inplace, fft_flops, fft_inplace, sim_fft_pencil, Pencil};
pub use morton::{demorton2, demorton3, morton2, morton3, morton3_unit, sort_order_by_key};
pub use rng::Rng64;
pub use sorting::{radix_argsort, radix_sort_by_key};
