//! Minimal complex arithmetic for the FFT (VECLIB substitute).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Construct from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A pure-real value.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{i theta}`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        assert_eq!(a * Complex::ONE, a);
        assert_eq!((a * b).re, 1.0 * -3.0 - 2.0 * 0.5);
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..8 {
            let z = Complex::cis(k as f64 * 0.7);
            assert!((z.abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn conj_mul_gives_norm() {
        let a = Complex::new(3.0, -4.0);
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
        assert_eq!(a.abs(), 5.0);
    }
}
