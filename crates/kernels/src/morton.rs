//! Morton (Z-order) indexing.
//!
//! The FEM code Morton-orders points and elements "to enhance cache
//! locality for the gathers and scatters" (paper §5.2.1, citing Warren
//! & Salmon); the N-body tree uses 3-D Morton keys to sort particles
//! into an octree.

/// Interleave the low 16 bits of `x` and `y` (x in even positions).
pub fn morton2(x: u32, y: u32) -> u64 {
    part1by1(x) | (part1by1(y) << 1)
}

/// Inverse of [`morton2`].
pub fn demorton2(m: u64) -> (u32, u32) {
    (compact1by1(m), compact1by1(m >> 1))
}

/// Interleave the low 21 bits of `x`, `y`, `z` (x in lowest positions).
pub fn morton3(x: u32, y: u32, z: u32) -> u64 {
    part1by2(x) | (part1by2(y) << 1) | (part1by2(z) << 2)
}

/// Inverse of [`morton3`].
pub fn demorton3(m: u64) -> (u32, u32, u32) {
    (compact1by2(m), compact1by2(m >> 1), compact1by2(m >> 2))
}

fn part1by1(x: u32) -> u64 {
    let mut x = x as u64 & 0xffff;
    x = (x | (x << 8)) & 0x00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333;
    x = (x | (x << 1)) & 0x5555_5555;
    x
}

fn compact1by1(m: u64) -> u32 {
    let mut x = m & 0x5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333;
    x = (x | (x >> 2)) & 0x0f0f_0f0f;
    x = (x | (x >> 4)) & 0x00ff_00ff;
    x = (x | (x >> 8)) & 0x0000_ffff;
    x as u32
}

fn part1by2(x: u32) -> u64 {
    // The classic 21-bit spread.
    let mut y = x as u64 & 0x1f_ffff;
    y = (y | (y << 32)) & 0x001f_0000_0000_ffff;
    y = (y | (y << 16)) & 0x001f_0000_ff00_00ff;
    y = (y | (y << 8)) & 0x100f_00f0_0f00_f00f;
    y = (y | (y << 4)) & 0x10c3_0c30_c30c_30c3;
    y = (y | (y << 2)) & 0x1249_2492_4924_9249;
    y
}

fn compact1by2(m: u64) -> u32 {
    let mut x = m & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x >> 4)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x >> 8)) & 0x001f_0000_ff00_00ff;
    x = (x | (x >> 16)) & 0x001f_0000_0000_ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x as u32
}

/// Map a point in the unit cube to a 3-D Morton key at `bits` bits per
/// axis (values are clamped into [0, 1)).
pub fn morton3_unit(x: f64, y: f64, z: f64, bits: u32) -> u64 {
    debug_assert!(bits <= 21);
    let scale = (1u64 << bits) as f64;
    let q = |v: f64| ((v.clamp(0.0, 0.999_999_999) * scale) as u32).min((1 << bits) - 1);
    morton3(q(x), q(y), q(z))
}

/// A permutation that sorts `keys` ascending: `order[rank] = original
/// index`.
pub fn sort_order_by_key(keys: &[u64]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..keys.len() as u32).collect();
    order.sort_by_key(|i| keys[*i as usize]);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton2_round_trips() {
        for x in [0u32, 1, 7, 255, 1023, 65535] {
            for y in [0u32, 2, 31, 512, 65535] {
                assert_eq!(demorton2(morton2(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn morton3_round_trips() {
        for x in [0u32, 1, 5, 100, 2_000_000] {
            for y in [0u32, 3, 77, 1_048_575] {
                for z in [0u32, 9, 300_000] {
                    assert_eq!(demorton3(morton3(x, y, z)), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn morton2_small_values() {
        assert_eq!(morton2(0, 0), 0);
        assert_eq!(morton2(1, 0), 1);
        assert_eq!(morton2(0, 1), 2);
        assert_eq!(morton2(1, 1), 3);
        assert_eq!(morton2(2, 2), 12);
    }

    #[test]
    fn morton3_small_values() {
        assert_eq!(morton3(0, 0, 0), 0);
        assert_eq!(morton3(1, 0, 0), 1);
        assert_eq!(morton3(0, 1, 0), 2);
        assert_eq!(morton3(0, 0, 1), 4);
        assert_eq!(morton3(1, 1, 1), 7);
    }

    #[test]
    fn morton_preserves_spatial_locality() {
        // Points in the same quadrant sort together.
        let a = morton2(10, 10);
        let b = morton2(11, 11);
        let far = morton2(60_000, 60_000);
        assert!(a.abs_diff(b) < a.abs_diff(far));
    }

    #[test]
    fn unit_cube_keys_monotone_per_octant() {
        let low = morton3_unit(0.1, 0.1, 0.1, 10);
        let high = morton3_unit(0.9, 0.9, 0.9, 10);
        assert!(low < high);
        // Clamping keeps out-of-range inputs finite.
        let edge = morton3_unit(1.5, -0.2, 0.999_999_999_9, 10);
        let _ = edge;
    }

    #[test]
    fn sort_order_sorts_keys() {
        let keys = vec![5u64, 1, 9, 3];
        let order = sort_order_by_key(&keys);
        let sorted: Vec<u64> = order.iter().map(|i| keys[*i as usize]).collect();
        assert_eq!(sorted, vec![1, 3, 5, 9]);
    }
}
