//! LSD radix sort for 64-bit keys with payload permutation — the
//! "sorting" library routine the paper lists among missing vendor
//! libraries (§6). Used by the N-body code to order particles by
//! Morton key each rebuild.

/// Sort `keys` ascending, applying the same permutation to `payload`.
///
/// # Panics
/// If the slices have different lengths.
pub fn radix_sort_by_key(keys: &mut Vec<u64>, payload: &mut Vec<u32>) {
    assert_eq!(keys.len(), payload.len(), "payload length mismatch");
    let n = keys.len();
    if n <= 1 {
        return;
    }
    let mut k_src = std::mem::take(keys);
    let mut p_src = std::mem::take(payload);
    let mut k_dst = vec![0u64; n];
    let mut p_dst = vec![0u32; n];
    // 8 passes of 8 bits; skip passes where all bytes are equal.
    for pass in 0..8 {
        let shift = pass * 8;
        let mut hist = [0usize; 256];
        for &k in &k_src {
            hist[((k >> shift) & 0xff) as usize] += 1;
        }
        if hist.contains(&n) {
            continue; // all keys share this byte
        }
        let mut pos = [0usize; 256];
        let mut acc = 0;
        for (p, h) in pos.iter_mut().zip(&hist) {
            *p = acc;
            acc += h;
        }
        for (k, p) in k_src.iter().zip(&p_src) {
            let b = ((k >> shift) & 0xff) as usize;
            k_dst[pos[b]] = *k;
            p_dst[pos[b]] = *p;
            pos[b] += 1;
        }
        std::mem::swap(&mut k_src, &mut k_dst);
        std::mem::swap(&mut p_src, &mut p_dst);
    }
    *keys = k_src;
    *payload = p_src;
}

/// Convenience: sort `keys` and return the permutation as payload
/// (`result[rank] = original index`).
pub fn radix_argsort(keys: &[u64]) -> Vec<u32> {
    let mut k = keys.to_vec();
    let mut idx: Vec<u32> = (0..keys.len() as u32).collect();
    radix_sort_by_key(&mut k, &mut idx);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn sorts_small_case() {
        let mut k = vec![5u64, 1, 4, 1, 9];
        let mut p = vec![0u32, 1, 2, 3, 4];
        radix_sort_by_key(&mut k, &mut p);
        assert_eq!(k, vec![1, 1, 4, 5, 9]);
        // Stable: the two 1s keep original order.
        assert_eq!(p, vec![1, 3, 2, 0, 4]);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let mut k: Vec<u64> = vec![];
        let mut p: Vec<u32> = vec![];
        radix_sort_by_key(&mut k, &mut p);
        assert!(k.is_empty());
        let mut k = vec![42u64];
        let mut p = vec![0u32];
        radix_sort_by_key(&mut k, &mut p);
        assert_eq!(k, vec![42]);
    }

    #[test]
    fn matches_std_sort_on_random_input() {
        let mut rng = Rng64::new(11);
        let keys: Vec<u64> = (0..10_000).map(|_| rng.next_u64()).collect();
        let mut k = keys.clone();
        let mut p: Vec<u32> = (0..keys.len() as u32).collect();
        radix_sort_by_key(&mut k, &mut p);
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(k, expected);
        // Payload permutation is consistent with the sort.
        for (rank, &orig) in p.iter().enumerate() {
            assert_eq!(k[rank], keys[orig as usize]);
        }
    }

    #[test]
    fn full_64_bit_range() {
        let mut k = vec![u64::MAX, 0, u64::MAX / 2, 1u64 << 63];
        let mut p = vec![0u32, 1, 2, 3];
        radix_sort_by_key(&mut k, &mut p);
        assert_eq!(k, vec![0, u64::MAX / 2, 1u64 << 63, u64::MAX]);
    }

    #[test]
    fn argsort_gives_rank_to_index_map() {
        let keys = vec![30u64, 10, 20];
        let order = radix_argsort(&keys);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_payload() {
        let mut k = vec![1u64, 2];
        let mut p = vec![0u32];
        radix_sort_by_key(&mut k, &mut p);
    }
}
