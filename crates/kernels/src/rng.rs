//! Deterministic pseudo-random generation for workload construction.
//!
//! Every experiment in the reproduction must be bit-reproducible, so
//! workloads (plasma particle loads, Plummer spheres, mesh
//! perturbations) are generated with an owned SplitMix64/xoshiro256++
//! stack rather than an external crate.

/// xoshiro256++ seeded via SplitMix64 — fast, high-quality, and
/// deterministic across platforms.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seed deterministically from a single value.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng64 {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in [0, 1).
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits -> double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [lo, hi).
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        (self.uniform() * n as f64) as usize % n.max(1)
    }

    /// Standard normal via Box-Muller (one value per call; the pair's
    /// second member is discarded for simplicity and determinism).
    pub fn gaussian(&mut self) -> f64 {
        let mut u1 = self.uniform();
        if u1 < 1e-300 {
            u1 = 1e-300;
        }
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// 3-D Maxwellian velocity with thermal speed `vth` per axis.
    pub fn maxwellian3(&mut self, vth: f64) -> [f64; 3] {
        [
            vth * self.gaussian(),
            vth * self.gaussian(),
            vth * self.gaussian(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval_with_decent_mean() {
        let mut r = Rng64::new(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng64::new(99);
        let n = 40_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let g = r.gaussian();
            s1 += g;
            s2 += g * g;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng64::new(5);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn maxwellian_is_isotropic_in_distribution() {
        let mut r = Rng64::new(3);
        let n = 10_000;
        let mut sums = [0.0f64; 3];
        for _ in 0..n {
            let v = r.maxwellian3(2.0);
            for (s, vi) in sums.iter_mut().zip(v) {
                *s += vi * vi;
            }
        }
        for s in sums {
            let msq = s / n as f64;
            assert!((msq - 4.0).abs() < 0.3, "<v^2> = {msq}");
        }
    }
}
