//! Radix-2 complex FFT — the "fine-tuned parallel FFT library" the
//! paper lists as a missing vendor component (§6), built here as the
//! Poisson-solver substrate for the PIC code.
//!
//! Two forms are provided:
//!
//! * [`fft_inplace`] — a host-side transform for setup/verification;
//! * [`sim_fft_pencil`] — the same butterflies executed through a
//!   [`ThreadCtx`], so every element access is priced by the machine
//!   model and every flop is counted. 3-D transforms are built from
//!   pencils along each axis, which is also how the code parallelizes.

use crate::complex::Complex;
use spp_core::{MemPort, SimArray};
use spp_runtime::ThreadCtx;

/// In-place iterative radix-2 Cooley-Tukey FFT on host data.
/// `inverse` applies the conjugate transform *and* the 1/n scaling.
///
/// # Panics
/// If `data.len()` is not a power of two.
pub fn fft_inplace(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    bit_reverse_permute(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let s = 1.0 / n as f64;
        for z in data {
            *z = z.scale(s);
        }
    }
}

fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
}

/// FLOPs of one radix-2 transform of length `n`: n/2·log2(n)
/// butterflies at 10 flops each (complex multiply + two adds).
pub fn fft_flops(n: usize) -> u64 {
    let lg = n.trailing_zeros() as u64;
    (n as u64 / 2) * lg * 10
}

/// A strided pencil of complex values inside a [`SimArray`]: element
/// `k` lives at array index `offset + k * stride`.
#[derive(Debug, Clone, Copy)]
pub struct Pencil {
    /// First element index.
    pub offset: usize,
    /// Index stride between consecutive pencil elements.
    pub stride: usize,
    /// Pencil length (power of two).
    pub n: usize,
}

impl Pencil {
    #[inline]
    fn idx(&self, k: usize) -> usize {
        self.offset + k * self.stride
    }
}

/// Simulated in-place FFT over one pencil of `arr`: numerically
/// identical to [`fft_inplace`], but every access goes through the
/// machine model and flops are charged to `ctx`.
pub fn sim_fft_pencil<P: MemPort>(
    ctx: &mut ThreadCtx<'_, P>,
    arr: &mut SimArray<Complex>,
    p: Pencil,
    inverse: bool,
) {
    let n = p.n;
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation (priced swaps).
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            let a = ctx.read(arr, p.idx(i));
            let b = ctx.read(arr, p.idx(j));
            ctx.write(arr, p.idx(i), b);
            ctx.write(arr, p.idx(j), a);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for jj in 0..len / 2 {
                let u = ctx.read(arr, p.idx(i + jj));
                let v = ctx.read(arr, p.idx(i + jj + len / 2)) * w;
                ctx.write(arr, p.idx(i + jj), u + v);
                ctx.write(arr, p.idx(i + jj + len / 2), u - v);
                w = w * wlen;
                ctx.flops(10);
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let s = 1.0 / n as f64;
        for k in 0..n {
            let z = ctx.read(arr, p.idx(k));
            ctx.write(arr, p.idx(k), z.scale(s));
            ctx.flops(2);
        }
    }
}

/// Host-side 3-D FFT on a contiguous `nx*ny*nz` array in x-fastest
/// layout (`idx = x + nx*(y + ny*z)`).
pub fn fft3d_inplace(data: &mut [Complex], nx: usize, ny: usize, nz: usize, inverse: bool) {
    assert_eq!(data.len(), nx * ny * nz);
    let mut buf = vec![Complex::ZERO; nx.max(ny).max(nz)];
    // x pencils (contiguous).
    for zy in 0..ny * nz {
        let base = zy * nx;
        fft_inplace(&mut data[base..base + nx], inverse);
    }
    // y pencils.
    for z in 0..nz {
        for x in 0..nx {
            for y in 0..ny {
                buf[y] = data[x + nx * (y + ny * z)];
            }
            fft_inplace(&mut buf[..ny], inverse);
            for y in 0..ny {
                data[x + nx * (y + ny * z)] = buf[y];
            }
        }
    }
    // z pencils.
    for y in 0..ny {
        for x in 0..nx {
            for z in 0..nz {
                buf[z] = data[x + nx * (y + ny * z)];
            }
            fft_inplace(&mut buf[..nz], inverse);
            for z in 0..nz {
                data[x + nx * (y + ny * z)] = buf[z];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(data: &[Complex], inverse: bool) -> Vec<Complex> {
        let n = data.len();
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut out = vec![Complex::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            for (j, z) in data.iter().enumerate() {
                let ang = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                *o += *z * Complex::cis(ang);
            }
            if inverse {
                *o = o.scale(1.0 / n as f64);
            }
        }
        out
    }

    fn close(a: &[Complex], b: &[Complex], tol: f64) -> bool {
        a.iter().zip(b).all(|(x, y)| (*x - *y).abs() < tol)
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 4, 8, 32, 64] {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.81).cos()))
                .collect();
            let mut fast = data.clone();
            fft_inplace(&mut fast, false);
            let slow = naive_dft(&data, false);
            assert!(close(&fast, &slow, 1e-9), "n = {n}");
        }
    }

    #[test]
    fn forward_inverse_round_trip() {
        let data: Vec<Complex> = (0..128)
            .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let mut z = data.clone();
        fft_inplace(&mut z, false);
        fft_inplace(&mut z, true);
        assert!(close(&z, &data, 1e-9));
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut z = vec![Complex::ZERO; 16];
        z[0] = Complex::ONE;
        fft_inplace(&mut z, false);
        assert!(z.iter().all(|v| (*v - Complex::ONE).abs() < 1e-12));
    }

    #[test]
    fn parseval_holds() {
        let data: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let t_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut f = data.clone();
        fft_inplace(&mut f, false);
        let f_energy: f64 = f.iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert!((t_energy - f_energy).abs() / t_energy < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut z = vec![Complex::ZERO; 12];
        fft_inplace(&mut z, false);
    }

    #[test]
    fn fft3d_round_trip() {
        let (nx, ny, nz) = (8, 4, 2);
        let data: Vec<Complex> = (0..nx * ny * nz)
            .map(|i| Complex::new((i as f64 * 0.1).sin(), (i as f64 * 0.2).cos()))
            .collect();
        let mut z = data.clone();
        fft3d_inplace(&mut z, nx, ny, nz, false);
        fft3d_inplace(&mut z, nx, ny, nz, true);
        for (a, b) in z.iter().zip(&data) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft3d_of_plane_wave_is_single_mode() {
        let (nx, ny, nz) = (8, 8, 8);
        let (kx, ky, kz) = (2, 3, 1);
        let mut z: Vec<Complex> = Vec::with_capacity(nx * ny * nz);
        for zz in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let phase = 2.0 * std::f64::consts::PI * (kx * x) as f64 / nx as f64
                        + 2.0 * std::f64::consts::PI * (ky * y) as f64 / ny as f64
                        + 2.0 * std::f64::consts::PI * (kz * zz) as f64 / nz as f64;
                    z.push(Complex::cis(phase));
                }
            }
        }
        fft3d_inplace(&mut z, nx, ny, nz, false);
        let peak = kx + nx * (ky + ny * kz);
        for (i, v) in z.iter().enumerate() {
            if i == peak {
                assert!((v.re - (nx * ny * nz) as f64).abs() < 1e-6);
            } else {
                assert!(v.abs() < 1e-6, "leak at {i}: {v:?}");
            }
        }
    }

    #[test]
    fn fft_flops_formula() {
        assert_eq!(fft_flops(2), 10);
        assert_eq!(fft_flops(8), 4 * 3 * 10);
    }

    #[test]
    fn simulated_fft_matches_host_fft() {
        use spp_core::{Machine, MemClass, NodeId};
        use spp_runtime::{Placement, Runtime};

        let mut rt = Runtime::new(Machine::spp1000(1));
        let n = 64;
        let host: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.3).cos(), (i as f64 * 0.7).sin()))
            .collect();
        let mut arr = SimArray::new(
            &mut rt.machine,
            MemClass::NearShared { node: NodeId(0) },
            host.clone(),
        );
        let mut expected = host;
        fft_inplace(&mut expected, false);

        let rep = rt.fork_join(1, &Placement::HighLocality, |ctx| {
            sim_fft_pencil(
                ctx,
                &mut arr,
                Pencil {
                    offset: 0,
                    stride: 1,
                    n,
                },
                false,
            );
        });
        for (a, b) in arr.host().iter().zip(&expected) {
            assert!((*a - *b).abs() < 1e-9);
        }
        assert!(rep.flops >= fft_flops(n), "flops accounted");
        assert!(rep.elapsed > 0);
    }

    #[test]
    fn simulated_strided_fft_matches() {
        use spp_core::{Machine, MemClass, NodeId};
        use spp_runtime::{Placement, Runtime};

        let mut rt = Runtime::new(Machine::spp1000(1));
        // 2 interleaved pencils of length 8, stride 2.
        let n = 8;
        let host: Vec<Complex> = (0..2 * n).map(|i| Complex::new(i as f64, 0.0)).collect();
        let mut arr = SimArray::new(
            &mut rt.machine,
            MemClass::NearShared { node: NodeId(0) },
            host.clone(),
        );
        // Expected: transform elements 1,3,5,... as a pencil.
        let mut expected: Vec<Complex> = (0..n).map(|k| host[1 + 2 * k]).collect();
        fft_inplace(&mut expected, false);

        rt.fork_join(1, &Placement::HighLocality, |ctx| {
            sim_fft_pencil(
                ctx,
                &mut arr,
                Pencil {
                    offset: 1,
                    stride: 2,
                    n,
                },
                false,
            );
        });
        for (k, e) in expected.iter().enumerate() {
            let got = arr.host()[1 + 2 * k];
            assert!((got - *e).abs() < 1e-9, "k={k}");
        }
        // Even elements untouched.
        assert_eq!(arr.host()[0], Complex::new(0.0, 0.0));
        assert_eq!(arr.host()[2], Complex::new(2.0, 0.0));
    }
}
