//! The octree in *simulated* memory: SoA node arrays plus the Morton
//! order, with machine-priced construction, summarization and
//! traversal. Shared between the threaded ([`crate::shared`]) and PVM
//! ([`crate::pvm`]) implementations.

use crate::host::{FLOPS_PER_INTERACTION, FLOPS_PER_MAC};
use crate::tree::Node;
use spp_core::{MemClass, MemPort, SimArray};
use spp_runtime::ThreadCtx;

/// Extra cycles per interaction for the divide + square root: the
/// PA-7100's FDIV/FSQRT units take ~15 cycles each (not the 2
/// cycles/flop of pipelined add/multiply), and every monopole or
/// direct interaction performs one of each. This is what pins the
/// single-processor rate at the paper's 27.5 Mflop/s.
pub const DIVSQRT_EXTRA_CYCLES: u64 = 20;

/// Borrowed particle position/mass arrays.
pub struct PosView<'a> {
    /// x coordinates.
    pub x: &'a SimArray<f64>,
    /// y coordinates.
    pub y: &'a SimArray<f64>,
    /// z coordinates.
    pub z: &'a SimArray<f64>,
    /// masses.
    pub m: &'a SimArray<f64>,
}

/// Octree node arrays in simulated memory.
pub struct SimTree {
    /// Node masses.
    pub nmass: SimArray<f64>,
    /// Node centres of mass.
    pub ncx: SimArray<f64>,
    /// Node centres of mass.
    pub ncy: SimArray<f64>,
    /// Node centres of mass.
    pub ncz: SimArray<f64>,
    /// Cell sizes.
    pub nsize: SimArray<f64>,
    /// First-child indices (`u32::MAX` = leaf).
    pub ncs: SimArray<u32>,
    /// Child counts.
    pub nnc: SimArray<u32>,
    /// Particle range starts (Morton ranks).
    pub nps: SimArray<u32>,
    /// Particle range lengths.
    pub npc: SimArray<u32>,
    /// `order[rank] = original particle index`.
    pub order: SimArray<u32>,
    /// Level bounds of the current topology.
    pub levels: Vec<usize>,
    /// Live node count.
    pub nnodes: usize,
}

impl SimTree {
    /// Allocate node arrays of `node_cap` nodes and an order array of
    /// `n` particles.
    pub fn new<P: MemPort>(m: &mut P, node_class: MemClass, node_cap: usize, n: usize) -> Self {
        SimTree {
            nmass: SimArray::from_elem(m, node_class, node_cap, 0.0),
            ncx: SimArray::from_elem(m, node_class, node_cap, 0.0),
            ncy: SimArray::from_elem(m, node_class, node_cap, 0.0),
            ncz: SimArray::from_elem(m, node_class, node_cap, 0.0),
            nsize: SimArray::from_elem(m, node_class, node_cap, 0.0),
            ncs: SimArray::from_elem(m, node_class, node_cap, 0u32),
            nnc: SimArray::from_elem(m, node_class, node_cap, 0u32),
            nps: SimArray::from_elem(m, node_class, node_cap, 0u32),
            npc: SimArray::from_elem(m, node_class, node_cap, 0u32),
            order: SimArray::from_elem(m, node_class, n, 0u32),
            levels: Vec::new(),
            nnodes: 0,
        }
    }

    /// Node capacity.
    pub fn capacity(&self) -> usize {
        self.nmass.len()
    }

    /// Record the host-built topology bounds (call once per rebuild,
    /// before pricing the fill).
    pub fn set_topology(&mut self, levels: Vec<usize>, nnodes: usize) {
        assert!(
            nnodes <= self.capacity(),
            "tree of {nnodes} nodes exceeds capacity {}",
            self.capacity()
        );
        self.levels = levels;
        self.nnodes = nnodes;
    }

    /// Priced write of topology fields for nodes `range` (from the
    /// host-built `nodes`), with boundary-detection reads on `keys`.
    pub fn fill_topology<P: MemPort>(
        &mut self,
        ctx: &mut ThreadCtx<'_, P>,
        nodes: &[Node],
        keys: &SimArray<u64>,
        range: std::ops::Range<usize>,
    ) {
        for ni in range {
            let node = &nodes[ni];
            let _ = ctx.read(keys, node.pstart as usize);
            if node.pcount > 1 {
                let _ = ctx.read(keys, (node.pstart + node.pcount - 1) as usize);
            }
            ctx.write(&mut self.nsize, ni, node.size);
            ctx.write(&mut self.ncs, ni, node.child_start);
            ctx.write(&mut self.nnc, ni, node.nchild);
            ctx.write(&mut self.nps, ni, node.pstart);
            ctx.write(&mut self.npc, ni, node.pcount);
        }
    }

    /// Priced bottom-up moment computation for nodes `range` (must be
    /// within one level, processed deepest level first).
    pub fn summarize<P: MemPort>(
        &mut self,
        ctx: &mut ThreadCtx<'_, P>,
        range: std::ops::Range<usize>,
        pos: &PosView<'_>,
    ) {
        for ni in range {
            let nch = ctx.read(&self.nnc, ni);
            let (mut mm, mut cx, mut cy, mut cz) = (0.0, 0.0, 0.0, 0.0);
            if nch == 0 {
                let ps = ctx.read(&self.nps, ni);
                let pc = ctx.read(&self.npc, ni);
                for r in ps..ps + pc {
                    let j = ctx.read(&self.order, r as usize) as usize;
                    let m = ctx.read(pos.m, j);
                    mm += m;
                    cx += m * ctx.read(pos.x, j);
                    cy += m * ctx.read(pos.y, j);
                    cz += m * ctx.read(pos.z, j);
                    ctx.flops(8);
                }
            } else {
                let cs = ctx.read(&self.ncs, ni);
                for c in cs..cs + nch {
                    let m = ctx.read(&self.nmass, c as usize);
                    mm += m;
                    cx += m * ctx.read(&self.ncx, c as usize);
                    cy += m * ctx.read(&self.ncy, c as usize);
                    cz += m * ctx.read(&self.ncz, c as usize);
                    ctx.flops(8);
                }
            }
            if mm > 0.0 {
                cx /= mm;
                cy /= mm;
                cz /= mm;
                ctx.flops(3);
            }
            ctx.write(&mut self.nmass, ni, mm);
            ctx.write(&mut self.ncx, ni, cx);
            ctx.write(&mut self.ncy, ni, cy);
            ctx.write(&mut self.ncz, ni, cz);
        }
    }

    /// Priced Barnes-Hut acceleration on particle `i` at `(xi, yi,
    /// zi)` using the private traversal `stack`. Returns the
    /// acceleration and the interaction count.
    #[allow(clippy::too_many_arguments)]
    pub fn accel<P: MemPort>(
        &self,
        ctx: &mut ThreadCtx<'_, P>,
        stack: &mut SimArray<u32>,
        i: usize,
        xi: f64,
        yi: f64,
        zi: f64,
        theta2: f64,
        eps2: f64,
        pos: &PosView<'_>,
    ) -> ([f64; 3], u64) {
        let cap = stack.len();
        let (mut fx, mut fy, mut fz) = (0.0, 0.0, 0.0);
        let mut inter = 0u64;
        let mut top = 0usize;
        ctx.write(stack, 0, 0u32);
        top += 1;
        while top > 0 {
            top -= 1;
            let ni = ctx.read(stack, top) as usize;
            let cx = ctx.read(&self.ncx, ni);
            let cy = ctx.read(&self.ncy, ni);
            let cz = ctx.read(&self.ncz, ni);
            let dx = cx - xi;
            let dy = cy - yi;
            let dz = cz - zi;
            let r2 = dx * dx + dy * dy + dz * dz;
            let nch = ctx.read(&self.nnc, ni);
            let size = ctx.read(&self.nsize, ni);
            ctx.flops(FLOPS_PER_MAC);
            if nch == 0 {
                let ps = ctx.read(&self.nps, ni);
                let pc = ctx.read(&self.npc, ni);
                for r in ps..ps + pc {
                    let j = ctx.read(&self.order, r as usize) as usize;
                    if j == i {
                        continue;
                    }
                    let dx = ctx.read(pos.x, j) - xi;
                    let dy = ctx.read(pos.y, j) - yi;
                    let dz = ctx.read(pos.z, j) - zi;
                    let r2 = dx * dx + dy * dy + dz * dz + eps2;
                    let inv = ctx.read(pos.m, j) / (r2 * r2.sqrt());
                    fx += dx * inv;
                    fy += dy * inv;
                    fz += dz * inv;
                    ctx.flops(FLOPS_PER_INTERACTION);
                    ctx.cycles(DIVSQRT_EXTRA_CYCLES);
                    inter += 1;
                }
            } else if size * size < theta2 * r2 {
                let r2e = r2 + eps2;
                let inv = ctx.read(&self.nmass, ni) / (r2e * r2e.sqrt());
                fx += dx * inv;
                fy += dy * inv;
                fz += dz * inv;
                ctx.flops(FLOPS_PER_INTERACTION);
                ctx.cycles(DIVSQRT_EXTRA_CYCLES);
                inter += 1;
            } else {
                let cs = ctx.read(&self.ncs, ni);
                for c in cs..cs + nch {
                    assert!(top < cap, "traversal stack overflow");
                    ctx.write(stack, top, c);
                    top += 1;
                }
            }
        }
        ([fx, fy, fz], inter)
    }
}
