//! Problem definition and the Plummer-sphere workload.
//!
//! §5.3.2 runs "three problem sizes (32K, 256K and 2M particles)" on
//! 1-16 processors in two configurations. The initial condition is a
//! standard astrophysical test distribution: a Plummer sphere with
//! virial-ish velocities, generated deterministically.

use spp_kernels::Rng64;

/// Static description of an N-body run.
#[derive(Debug, Clone)]
pub struct NbodyProblem {
    /// Particle count.
    pub n: usize,
    /// Barnes-Hut opening angle.
    pub theta: f64,
    /// Plummer softening length (also the force resolution limit the
    /// paper's eq. 6 describes).
    pub eps: f64,
    /// Leapfrog timestep.
    pub dt: f64,
    /// Maximum particles per leaf cell.
    pub leaf_cap: usize,
    /// RNG seed for the particle load.
    pub seed: u64,
}

impl NbodyProblem {
    /// A run with `n` particles and standard parameters.
    pub fn with_n(n: usize) -> Self {
        NbodyProblem {
            n,
            theta: 0.8,
            eps: 0.05,
            dt: 0.01,
            leaf_cap: 8,
            seed: 0x7EE5_EED5,
        }
    }

    /// The paper's small problem: 32 K particles.
    pub fn small() -> Self {
        Self::with_n(32 * 1024)
    }

    /// The paper's medium problem: 256 K particles.
    pub fn medium() -> Self {
        Self::with_n(256 * 1024)
    }

    /// The paper's large problem: 2 M particles.
    pub fn large() -> Self {
        Self::with_n(2 * 1024 * 1024)
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self::with_n(512)
    }
}

/// Particle state in structure-of-arrays form.
#[derive(Debug, Clone, Default)]
pub struct Bodies {
    /// Positions.
    pub x: Vec<f64>,
    /// Positions.
    pub y: Vec<f64>,
    /// Positions.
    pub z: Vec<f64>,
    /// Velocities.
    pub vx: Vec<f64>,
    /// Velocities.
    pub vy: Vec<f64>,
    /// Velocities.
    pub vz: Vec<f64>,
    /// Masses.
    pub m: Vec<f64>,
}

impl Bodies {
    /// Particle count.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        self.m.iter().sum()
    }

    /// Centre of mass.
    pub fn center_of_mass(&self) -> [f64; 3] {
        let mt = self.total_mass();
        let mut c = [0.0; 3];
        for i in 0..self.len() {
            c[0] += self.m[i] * self.x[i];
            c[1] += self.m[i] * self.y[i];
            c[2] += self.m[i] * self.z[i];
        }
        c.map(|v| v / mt)
    }

    /// Kinetic energy.
    pub fn kinetic_energy(&self) -> f64 {
        (0..self.len())
            .map(|i| {
                0.5 * self.m[i]
                    * (self.vx[i] * self.vx[i] + self.vy[i] * self.vy[i] + self.vz[i] * self.vz[i])
            })
            .sum()
    }
}

/// Physically reorder bodies into 3-D Morton order (the MasPar-derived
/// original stores particle data in tree order; keeping the arrays
/// near the traversal order is what makes the fine-grained indirect
/// reads mostly node-local).
pub fn sort_by_morton(b: &Bodies) -> Bodies {
    use spp_kernels::{morton3_unit, sort_order_by_key};
    let n = b.len();
    let keys: Vec<u64> = (0..n)
        .map(|i| morton3_unit(b.x[i] / 32.0, b.y[i] / 32.0, b.z[i] / 32.0, 16))
        .collect();
    let order = sort_order_by_key(&keys);
    let grab = |src: &Vec<f64>| order.iter().map(|o| src[*o as usize]).collect();
    Bodies {
        x: grab(&b.x),
        y: grab(&b.y),
        z: grab(&b.z),
        vx: grab(&b.vx),
        vy: grab(&b.vy),
        vz: grab(&b.vz),
        m: grab(&b.m),
    }
}

/// Generate a Plummer sphere of unit total mass with scale radius 1,
/// truncated at radius 8, with isotropic equilibrium-ish velocities.
/// Positions are shifted into the positive octant cube `[0, 32)^3`
/// (centre 16) so Morton keys are straightforward.
pub fn plummer(p: &NbodyProblem) -> Bodies {
    let mut rng = Rng64::new(p.seed);
    let n = p.n;
    let mut b = Bodies {
        x: Vec::with_capacity(n),
        y: Vec::with_capacity(n),
        z: Vec::with_capacity(n),
        vx: Vec::with_capacity(n),
        vy: Vec::with_capacity(n),
        vz: Vec::with_capacity(n),
        m: vec![1.0 / n as f64; n],
    };
    while b.x.len() < n {
        // Radius from the Plummer cumulative mass profile.
        let mfrac = rng.range(1e-6, 0.999);
        let r = 1.0 / (mfrac.powf(-2.0 / 3.0) - 1.0).sqrt();
        if r > 8.0 {
            continue;
        }
        // Isotropic direction.
        let cth = rng.range(-1.0, 1.0);
        let sth = (1.0 - cth * cth).sqrt();
        let phi = rng.range(0.0, 2.0 * std::f64::consts::PI);
        let (x, y, z) = (r * sth * phi.cos(), r * sth * phi.sin(), r * cth);
        // Velocity: fraction of local escape speed (von Neumann
        // sampling of the Plummer distribution function, simplified
        // to a truncated Gaussian of the local velocity dispersion).
        let sigma = (1.0 / (6.0 * (1.0 + r * r).sqrt())).sqrt();
        let v = rng.maxwellian3(sigma);
        b.x.push(x + 16.0);
        b.y.push(y + 16.0);
        b.z.push(z + 16.0);
        b.vx.push(v[0]);
        b.vy.push(v[1]);
        b.vz.push(v[2]);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes() {
        assert_eq!(NbodyProblem::small().n, 32_768);
        assert_eq!(NbodyProblem::medium().n, 262_144);
        assert_eq!(NbodyProblem::large().n, 2_097_152);
    }

    #[test]
    fn plummer_is_deterministic() {
        let p = NbodyProblem::tiny();
        let a = plummer(&p);
        let b = plummer(&p);
        assert_eq!(a.x, b.x);
        assert_eq!(a.vz, b.vz);
    }

    #[test]
    fn plummer_basic_properties() {
        let p = NbodyProblem::tiny();
        let b = plummer(&p);
        assert_eq!(b.len(), p.n);
        assert!((b.total_mass() - 1.0).abs() < 1e-12);
        let c = b.center_of_mass();
        for v in c {
            assert!((v - 16.0).abs() < 0.5, "com = {c:?}");
        }
        // Everything inside the positive cube.
        for i in 0..b.len() {
            assert!(b.x[i] > 8.0 && b.x[i] < 24.0);
            assert!(b.z[i] > 8.0 && b.z[i] < 24.0);
        }
    }

    #[test]
    fn plummer_is_centrally_concentrated() {
        let b = plummer(&NbodyProblem::with_n(4096));
        let inner = (0..b.len())
            .filter(|&i| {
                let (dx, dy, dz) = (b.x[i] - 16.0, b.y[i] - 16.0, b.z[i] - 16.0);
                dx * dx + dy * dy + dz * dz < 1.0
            })
            .count();
        // Plummer: ~35% of (untruncated) mass inside r = 1.
        let frac = inner as f64 / b.len() as f64;
        assert!((0.25..=0.45).contains(&frac), "inner fraction = {frac}");
    }

    #[test]
    fn velocities_are_bound_ish() {
        let b = plummer(&NbodyProblem::with_n(2048));
        // Kinetic energy should be of order the virial value (~0.05
        // for these units), far below unbound.
        let ke = b.kinetic_energy();
        assert!((0.01..=0.2).contains(&ke), "KE = {ke}");
    }
}
