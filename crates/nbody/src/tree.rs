//! The octree: Morton-ordered, breadth-first flattened — the
//! unstructured, indirectly-addressed data structure whose traversal
//! the paper singles out ("frequent use is made of indirect
//! addressing ... relying on the ability to utilize rapid, fine
//! grained memory accesses allowed by the shared memory programming
//! model", §5.3).
//!
//! Particles are sorted by 3-D Morton key; every tree node then owns a
//! contiguous range of the sorted order. Nodes are stored level by
//! level (breadth-first), so bottom-up moment summarization can sweep
//! levels in parallel.

use crate::problem::Bodies;
use spp_kernels::{morton3_unit, radix_sort_by_key};

/// The domain is the cube `[0, SIZE)^3`.
pub const DOMAIN: f64 = 32.0;
const KEY_BITS: u32 = 16;

/// One octree node.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    /// Total mass.
    pub mass: f64,
    /// Centre of mass.
    pub cx: f64,
    /// Centre of mass.
    pub cy: f64,
    /// Centre of mass.
    pub cz: f64,
    /// Cell edge length.
    pub size: f64,
    /// Index of the first child in the node array, or `u32::MAX` for a
    /// leaf.
    pub child_start: u32,
    /// Number of children (0 for a leaf).
    pub nchild: u32,
    /// First particle (rank in Morton order) owned by this cell.
    pub pstart: u32,
    /// Number of particles owned.
    pub pcount: u32,
}

/// A built octree plus the Morton ordering of the particles.
#[derive(Debug, Clone)]
pub struct Tree {
    /// Breadth-first node array; node 0 is the root.
    pub nodes: Vec<Node>,
    /// Node index ranges per level: `levels[d]..levels[d+1]`.
    pub levels: Vec<usize>,
    /// `order[rank] = original particle index`.
    pub order: Vec<u32>,
}

impl Tree {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for an empty tree.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Tree depth (number of levels).
    pub fn depth(&self) -> usize {
        self.levels.len() - 1
    }
}

/// Build an octree over `b`, splitting cells with more than
/// `leaf_cap` particles.
pub fn build(b: &Bodies, leaf_cap: usize) -> Tree {
    assert!(!b.is_empty(), "cannot build a tree over zero particles");
    let n = b.len();
    // Morton keys and sorted order.
    let mut keys: Vec<u64> = (0..n)
        .map(|i| morton3_unit(b.x[i] / DOMAIN, b.y[i] / DOMAIN, b.z[i] / DOMAIN, KEY_BITS))
        .collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    radix_sort_by_key(&mut keys, &mut order);

    // Breadth-first subdivision. Each queue entry is a particle range
    // plus its depth; the Morton prefix at 3*depth bits partitions the
    // range into up to 8 contiguous children.
    let mut nodes: Vec<Node> = Vec::with_capacity(2 * n / leaf_cap.max(1) + 16);
    let mut levels = vec![0usize];
    nodes.push(range_node(b, &order, 0, n as u32, DOMAIN));
    let mut level_start = 0usize;
    let mut depth = 0u32;
    while level_start < nodes.len() {
        let level_end = nodes.len();
        levels.push(level_end);
        for ni in level_start..level_end {
            let (ps, pc) = (nodes[ni].pstart, nodes[ni].pcount);
            if (pc as usize) <= leaf_cap || depth as usize >= (KEY_BITS as usize - 1) {
                continue; // stays a leaf
            }
            // Split the range by the 3-bit octant digit at this depth.
            let shift = 3 * (KEY_BITS - 1 - depth);
            let child_size = nodes[ni].size * 0.5;
            let first_child = nodes.len() as u32;
            let mut start = ps;
            while start < ps + pc {
                let digit = (keys[start as usize] >> shift) & 7;
                let mut end = start + 1;
                while end < ps + pc && (keys[end as usize] >> shift) & 7 == digit {
                    end += 1;
                }
                nodes.push(range_node(b, &order, start, end - start, child_size));
                start = end;
            }
            nodes[ni].child_start = first_child;
            nodes[ni].nchild = nodes.len() as u32 - first_child;
        }
        level_start = level_end;
        depth += 1;
    }
    // `levels` currently has a trailing duplicate of len() from the
    // last (empty) iteration; normalize to strictly increasing bounds.
    levels.dedup();
    if *levels.last().unwrap() != nodes.len() {
        levels.push(nodes.len());
    }
    Tree {
        nodes,
        levels,
        order,
    }
}

fn range_node(b: &Bodies, order: &[u32], pstart: u32, pcount: u32, size: f64) -> Node {
    let mut mass = 0.0;
    let (mut cx, mut cy, mut cz) = (0.0, 0.0, 0.0);
    for r in pstart..pstart + pcount {
        let i = order[r as usize] as usize;
        mass += b.m[i];
        cx += b.m[i] * b.x[i];
        cy += b.m[i] * b.y[i];
        cz += b.m[i] * b.z[i];
    }
    if mass > 0.0 {
        cx /= mass;
        cy /= mass;
        cz /= mass;
    }
    Node {
        mass,
        cx,
        cy,
        cz,
        size,
        child_start: u32::MAX,
        nchild: 0,
        pstart,
        pcount,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{plummer, NbodyProblem};

    fn tree_for(n: usize) -> (Bodies, Tree) {
        let b = plummer(&NbodyProblem::with_n(n));
        let t = build(&b, 8);
        (b, t)
    }

    #[test]
    fn root_owns_everything() {
        let (b, t) = tree_for(1000);
        assert_eq!(t.nodes[0].pcount as usize, b.len());
        assert!((t.nodes[0].mass - b.total_mass()).abs() < 1e-12);
        let com = b.center_of_mass();
        assert!((t.nodes[0].cx - com[0]).abs() < 1e-9);
    }

    #[test]
    fn children_partition_parent_ranges() {
        let (_, t) = tree_for(2000);
        for n in &t.nodes {
            if n.nchild > 0 {
                let mut covered = 0;
                let mut expect_start = n.pstart;
                for c in n.child_start..n.child_start + n.nchild {
                    let ch = &t.nodes[c as usize];
                    assert_eq!(ch.pstart, expect_start, "children not contiguous");
                    expect_start += ch.pcount;
                    covered += ch.pcount;
                    assert!((ch.size - n.size * 0.5).abs() < 1e-12);
                }
                assert_eq!(covered, n.pcount);
            }
        }
    }

    #[test]
    fn mass_is_conserved_at_every_level() {
        let (b, t) = tree_for(3000);
        for d in 0..t.depth() {
            // Sum of masses of "coverage set" at depth d: nodes at
            // depth d plus leaves above it.
            let mut total = 0.0;
            for (ni, n) in t.nodes.iter().enumerate() {
                let depth_of = t
                    .levels
                    .windows(2)
                    .position(|w| ni >= w[0] && ni < w[1])
                    .unwrap();
                if depth_of == d || (depth_of < d && n.nchild == 0) {
                    total += n.mass;
                }
            }
            assert!((total - b.total_mass()).abs() < 1e-9, "level {d}: {total}");
        }
    }

    #[test]
    fn leaves_respect_capacity() {
        let (_, t) = tree_for(5000);
        for n in &t.nodes {
            if n.nchild == 0 {
                assert!(n.pcount <= 8, "leaf with {} particles", n.pcount);
            }
        }
    }

    #[test]
    fn order_is_a_permutation() {
        let (b, t) = tree_for(1234);
        let mut seen = vec![false; b.len()];
        for &o in &t.order {
            assert!(!seen[o as usize]);
            seen[o as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn levels_are_strictly_increasing() {
        let (_, t) = tree_for(4096);
        for w in t.levels.windows(2) {
            assert!(w[0] < w[1], "levels = {:?}", t.levels);
        }
        assert_eq!(*t.levels.last().unwrap(), t.len());
        assert!(t.depth() >= 2);
    }

    #[test]
    fn single_particle_tree() {
        let b = Bodies {
            x: vec![10.0],
            y: vec![10.0],
            z: vec![10.0],
            vx: vec![0.0],
            vy: vec![0.0],
            vz: vec![0.0],
            m: vec![2.5],
        };
        let t = build(&b, 8);
        assert_eq!(t.len(), 1);
        assert_eq!(t.nodes[0].nchild, 0);
        assert_eq!(t.nodes[0].mass, 2.5);
    }
}
