//! Shared-memory parallel tree code on the simulated SPP-1000
//! (paper §5.3.2): particle work is divided evenly across threads,
//! intermediate variables (the traversal stack) are thread private,
//! and every indirect access into the tree — which lives in global
//! shared memory — is priced by the machine model. "These indirect
//! addresses are made in the innermost loop of the tree search
//! algorithm, thus relying on the ability to utilize rapid, fine
//! grained memory accesses allowed by the shared memory programming
//! model."

use crate::problem::{plummer, sort_by_morton, Bodies, NbodyProblem};
use crate::simtree::{PosView, SimTree};
use crate::tree::{build, DOMAIN};
use spp_core::{Cycles, MemPort, SimArray};
use spp_kernels::morton3_unit;
use spp_runtime::{PrivateArrays, Runtime, Team};

/// Cumulative result of a run (shared with the PVM version).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunReport {
    /// Elapsed simulated cycles.
    pub elapsed: Cycles,
    /// Useful FLOPs.
    pub flops: u64,
    /// Tree interactions evaluated.
    pub interactions: u64,
    /// Steps executed.
    pub steps: usize,
}

impl RunReport {
    /// Sustained Mflop/s.
    pub fn mflops(&self) -> f64 {
        if self.elapsed == 0 {
            0.0
        } else {
            self.flops as f64 / (self.elapsed as f64 * 1e-8) / 1e6
        }
    }

    /// Elapsed simulated seconds.
    pub fn seconds(&self) -> f64 {
        self.elapsed as f64 * 1e-8
    }
}

/// Traversal stack capacity (entries) per thread.
pub const STACK_CAP: usize = 2048;

/// N-body state in simulated shared memory.
pub struct SharedNbody {
    /// Problem parameters.
    pub problem: NbodyProblem,
    bx: SimArray<f64>,
    by: SimArray<f64>,
    bz: SimArray<f64>,
    bvx: SimArray<f64>,
    bvy: SimArray<f64>,
    bvz: SimArray<f64>,
    bm: SimArray<f64>,
    ax: SimArray<f64>,
    ay: SimArray<f64>,
    az: SimArray<f64>,
    keys: SimArray<u64>,
    tree: SimTree,
    stacks: PrivateArrays<u32>,
}

impl SharedNbody {
    /// Load a Plummer sphere into simulated shared memory placed for
    /// `team`. Bodies are stored in Morton order (as the original
    /// MasPar-derived code does), so traversal-order indirect reads
    /// stay node-local under block-shared placement.
    pub fn new<P: MemPort>(rt: &mut Runtime<P>, problem: NbodyProblem, team: &Team) -> Self {
        let b = sort_by_morton(&plummer(&problem));
        let n = b.len();
        let m = &mut rt.machine;
        let pc = team.shared_class(m.config(), n as u64 * 8);
        let node_cap = n.max(64);
        // Tree occupancy is irregular and level-ordered, so no block
        // split lines up with it; far-shared (page-interleaved)
        // placement spreads the traversal traffic evenly and lets the
        // global cache buffers absorb the re-reads.
        let nc = if team.nodes_used() > 1 {
            spp_core::MemClass::FarShared
        } else {
            team.shared_class(m.config(), node_cap as u64 * 8)
        };
        let sim = SharedNbody {
            bx: SimArray::new(m, pc, b.x),
            by: SimArray::new(m, pc, b.y),
            bz: SimArray::new(m, pc, b.z),
            bvx: SimArray::new(m, pc, b.vx),
            bvy: SimArray::new(m, pc, b.vy),
            bvz: SimArray::new(m, pc, b.vz),
            bm: SimArray::new(m, pc, b.m),
            ax: SimArray::from_elem(m, pc, n, 0.0),
            ay: SimArray::from_elem(m, pc, n, 0.0),
            az: SimArray::from_elem(m, pc, n, 0.0),
            keys: SimArray::from_elem(m, pc, n, 0u64),
            tree: SimTree::new(m, nc, node_cap, n),
            stacks: PrivateArrays::new(m, team, STACK_CAP, 0u32),
            problem,
        };
        sim.keys.set_label(m, "keys");
        sim.tree.order.set_label(m, "order");
        sim.ax.set_label(m, "ax");
        sim.ay.set_label(m, "ay");
        sim.az.set_label(m, "az");
        sim
    }

    /// Particle count.
    pub fn len(&self) -> usize {
        self.bx.len()
    }

    /// True for an empty simulation (never constructed normally).
    pub fn is_empty(&self) -> bool {
        self.bx.len() == 0
    }

    /// Host view of the current state (validation).
    pub fn bodies(&self) -> Bodies {
        Bodies {
            x: self.bx.host().to_vec(),
            y: self.by.host().to_vec(),
            z: self.bz.host().to_vec(),
            vx: self.bvx.host().to_vec(),
            vy: self.bvy.host().to_vec(),
            vz: self.bvz.host().to_vec(),
            m: self.bm.host().to_vec(),
        }
    }

    /// One leapfrog timestep: rebuild, summarize, forces, push.
    /// Returns (elapsed cycles, flops, interactions).
    pub fn step<P: MemPort>(&mut self, rt: &mut Runtime<P>, team: &Team) -> (Cycles, u64, u64) {
        self.step_profiled(rt, team, None)
    }

    /// One timestep, optionally recording each phase in a CXpa-style
    /// [`spp_runtime::Profile`]. Repeated per-level regions (topology,
    /// summarize) merge into one stat apiece.
    pub fn step_profiled<P: MemPort>(
        &mut self,
        rt: &mut Runtime<P>,
        team: &Team,
        mut prof: Option<&mut spp_runtime::Profile>,
    ) -> (Cycles, u64, u64) {
        let track = |prof: &mut Option<&mut spp_runtime::Profile>,
                     name: &str,
                     rep: &spp_runtime::RegionReport| {
            if let Some(p) = prof.as_deref_mut() {
                p.record(name, rep);
            }
        };
        let mut elapsed = 0u64;
        let mut flops = 0u64;
        let n = self.len();

        // Host-side topology rebuild from current positions; the
        // machine-priced construction phases follow.
        let host_tree = build(&self.bodies(), self.problem.leaf_cap);
        self.tree
            .set_topology(host_tree.levels.clone(), host_tree.len());

        // Phase 1: Morton keys (parallel over particles).
        let (bx, by, bz, keys) = (&self.bx, &self.by, &self.bz, &mut self.keys);
        let rep = rt.team_fork_join(team, |ctx| {
            for i in ctx.chunk(n) {
                let x = ctx.read(bx, i);
                let y = ctx.read(by, i);
                let z = ctx.read(bz, i);
                ctx.write(
                    keys,
                    i,
                    morton3_unit(x / DOMAIN, y / DOMAIN, z / DOMAIN, 16),
                );
                ctx.flops(6);
            }
        });
        track(&mut prof, "morton", &rep);
        elapsed += rep.elapsed;
        flops += rep.flops;

        // Phase 2: parallel counting-scatter sort. Destinations come
        // from the host sort; values from the pre-scatter snapshot (a
        // real parallel sort double-buffers — priced traffic is the
        // same, so the model aliases both buffers onto one range and
        // tells the race detector via the back-buffer annotation).
        let inv_rank = {
            let mut inv = vec![0u32; n];
            for (rank, &orig) in host_tree.order.iter().enumerate() {
                inv[orig as usize] = rank as u32;
            }
            inv
        };
        let key_snapshot: Vec<u64> = self.keys.host().to_vec();
        let (keys, order) = (&mut self.keys, &mut self.tree.order);
        let rep = rt.team_fork_join(team, |ctx| {
            for i in ctx.chunk(n) {
                let _ = ctx.read(keys, i);
                let dest = inv_rank[i] as usize;
                ctx.back_buffer(|ctx| {
                    ctx.write(order, dest, i as u32);
                    ctx.write(keys, dest, key_snapshot[i]);
                });
            }
        });
        track(&mut prof, "sort", &rep);
        elapsed += rep.elapsed;
        flops += rep.flops;

        // Phase 3: node topology, level by level.
        for lvl in 0..host_tree.levels.len() - 1 {
            let (s, e) = (host_tree.levels[lvl], host_tree.levels[lvl + 1]);
            let (tree, keys) = (&mut self.tree, &self.keys);
            let nodes = &host_tree.nodes;
            let rep = rt.team_fork_join(team, |ctx| {
                let r = ctx.chunk(e - s);
                tree.fill_topology(ctx, nodes, keys, s + r.start..s + r.end);
            });
            track(&mut prof, "topology", &rep);
            elapsed += rep.elapsed;
            flops += rep.flops;
        }

        // Phase 4: bottom-up moment summarization, deepest level first.
        for lvl in (0..self.tree.levels.len() - 1).rev() {
            let (s, e) = (self.tree.levels[lvl], self.tree.levels[lvl + 1]);
            let tree = &mut self.tree;
            let pos = PosView {
                x: &self.bx,
                y: &self.by,
                z: &self.bz,
                m: &self.bm,
            };
            let rep = rt.team_fork_join(team, |ctx| {
                let r = ctx.chunk(e - s);
                tree.summarize(ctx, s + r.start..s + r.end, &pos);
            });
            track(&mut prof, "summarize", &rep);
            elapsed += rep.elapsed;
            flops += rep.flops;
        }

        // Phase 5: forces — each thread walks the tree for its chunk
        // of Morton ranks with a thread-private stack.
        let theta2 = self.problem.theta * self.problem.theta;
        let eps2 = self.problem.eps * self.problem.eps;
        let mut interactions = 0u64;
        {
            let tree = &self.tree;
            let pos = PosView {
                x: &self.bx,
                y: &self.by,
                z: &self.bz,
                m: &self.bm,
            };
            let (ax, ay, az) = (&mut self.ax, &mut self.ay, &mut self.az);
            let stacks = &mut self.stacks;
            let inter = &mut interactions;
            let rep = rt.team_fork_join(team, |ctx| {
                let tid = ctx.tid;
                for rank in ctx.chunk(n) {
                    let i = ctx.read(&tree.order, rank) as usize;
                    let xi = ctx.read(pos.x, i);
                    let yi = ctx.read(pos.y, i);
                    let zi = ctx.read(pos.z, i);
                    let (a, cnt) =
                        tree.accel(ctx, stacks.mine_mut(tid), i, xi, yi, zi, theta2, eps2, &pos);
                    *inter += cnt;
                    ctx.write(ax, i, a[0]);
                    ctx.write(ay, i, a[1]);
                    ctx.write(az, i, a[2]);
                }
            });
            track(&mut prof, "forces", &rep);
            elapsed += rep.elapsed;
            flops += rep.flops;
        }

        // Phase 6: leapfrog push.
        let dt = self.problem.dt;
        let (ax, ay, az) = (&self.ax, &self.ay, &self.az);
        let (bx, by, bz) = (&mut self.bx, &mut self.by, &mut self.bz);
        let (bvx, bvy, bvz) = (&mut self.bvx, &mut self.bvy, &mut self.bvz);
        let rep = rt.team_fork_join(team, |ctx| {
            for i in ctx.chunk(n) {
                let vx = ctx.read(bvx, i) + ctx.read(ax, i) * dt;
                let vy = ctx.read(bvy, i) + ctx.read(ay, i) * dt;
                let vz = ctx.read(bvz, i) + ctx.read(az, i) * dt;
                ctx.write(bvx, i, vx);
                ctx.write(bvy, i, vy);
                ctx.write(bvz, i, vz);
                ctx.update(bx, i, |x| x + vx * dt);
                ctx.update(by, i, |y| y + vy * dt);
                ctx.update(bz, i, |z| z + vz * dt);
                ctx.flops(12);
            }
        });
        track(&mut prof, "push", &rep);
        elapsed += rep.elapsed;
        flops += rep.flops;

        (elapsed, flops, interactions)
    }

    /// Run `steps` timesteps.
    pub fn run<P: MemPort>(&mut self, rt: &mut Runtime<P>, team: &Team, steps: usize) -> RunReport {
        let mut out = RunReport {
            steps,
            ..Default::default()
        };
        for _ in 0..steps {
            let (c, f, i) = self.step(rt, team);
            out.elapsed += c;
            out.flops += f;
            out.interactions += i;
        }
        out
    }

    /// Host view of accelerations (validation).
    pub fn accelerations(&self) -> (&[f64], &[f64], &[f64]) {
        (self.ax.host(), self.ay.host(), self.az.host())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host;
    use spp_runtime::Placement;

    fn sim(threads: usize, n: usize) -> (Runtime, SharedNbody, Team) {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), threads, &Placement::HighLocality);
        let nb = SharedNbody::new(&mut rt, NbodyProblem::with_n(n), &team);
        (rt, nb, team)
    }

    #[test]
    fn profiled_step_records_every_phase() {
        let (mut rt, mut nb, team) = sim(4, 512);
        let mut prof = spp_runtime::Profile::new();
        let (elapsed, _, _) = nb.step_profiled(&mut rt, &team, Some(&mut prof));
        let names: Vec<&str> = prof.regions().iter().map(|r| r.name.as_str()).collect();
        for want in ["morton", "sort", "topology", "summarize", "forces", "push"] {
            assert!(names.contains(&want), "missing {want} in {names:?}");
        }
        assert_eq!(prof.total_elapsed(), elapsed, "profile covers the step");
    }

    #[test]
    fn single_thread_matches_host_step() {
        let p = NbodyProblem::with_n(512);
        let (mut rt, mut nb, team) = sim(1, 512);
        // The simulated version stores bodies Morton-sorted.
        let mut b = sort_by_morton(&plummer(&p));
        nb.step(&mut rt, &team);
        host::step(&p, &mut b);
        let sim_b = nb.bodies();
        for i in (0..b.len()).step_by(41) {
            assert!(
                (sim_b.x[i] - b.x[i]).abs() < 1e-9,
                "particle {i}: {} vs {}",
                sim_b.x[i],
                b.x[i]
            );
            assert!((sim_b.vx[i] - b.vx[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn multi_thread_same_physics() {
        let (mut rt1, mut nb1, team1) = sim(1, 512);
        let (mut rt8, mut nb8, team8) = sim(8, 512);
        nb1.step(&mut rt1, &team1);
        nb8.step(&mut rt8, &team8);
        let b1 = nb1.bodies();
        let b8 = nb8.bodies();
        for i in (0..512).step_by(29) {
            assert!(
                (b1.x[i] - b8.x[i]).abs() < 1e-9,
                "thread count changed physics at {i}"
            );
        }
    }

    #[test]
    fn speedup_with_threads() {
        let (mut rt1, mut nb1, team1) = sim(1, 2048);
        let r1 = nb1.run(&mut rt1, &team1, 1);
        let (mut rt8, mut nb8, team8) = sim(8, 2048);
        let r8 = nb8.run(&mut rt8, &team8, 1);
        let s = r1.elapsed as f64 / r8.elapsed as f64;
        assert!(s > 4.0, "8-thread speedup = {s}");
        assert_eq!(r1.interactions, r8.interactions);
    }

    #[test]
    fn cross_node_degradation_is_small() {
        // Paper: "performance degradation incurred across multiple
        // hypernodes is small; between 2 and 7 percent."
        let (mut rt_a, mut nb_a, team_a) = sim(8, 4096);
        let ra = nb_a.run(&mut rt_a, &team_a, 1);
        let mut rt_b = Runtime::spp1000(2);
        let team_b = Team::place(rt_b.machine.config(), 8, &Placement::Uniform);
        let mut nb_b = SharedNbody::new(&mut rt_b, NbodyProblem::with_n(4096), &team_b);
        let rb = nb_b.run(&mut rt_b, &team_b, 1);
        let degradation = rb.elapsed as f64 / ra.elapsed as f64 - 1.0;
        assert!(
            (-0.05..=0.30).contains(&degradation),
            "cross-node degradation = {:.1}%",
            degradation * 100.0
        );
    }

    #[test]
    fn flops_track_interactions() {
        let (mut rt, mut nb, team) = sim(2, 1024);
        let r = nb.run(&mut rt, &team, 1);
        assert!(r.flops > r.interactions * crate::host::FLOPS_PER_INTERACTION);
        assert!(r.mflops() > 0.0);
    }
}
