//! Cray C90 baseline for the tree code: §5.3.2 compares against "a
//! highly vectorized, public domain tree code" (Hernquist's) "which
//! achieves 120 Mflop/s on one head of a C90".

use crate::host::{FLOPS_PER_INTERACTION, FLOPS_PER_MAC};
use crate::problem::{plummer, NbodyProblem};
use crate::tree::build;
use c90_model::{LoopSpec, C90};

/// Modelled C90 tree-code execution.
#[derive(Debug, Clone, Copy)]
pub struct C90NbodyResult {
    /// Seconds per timestep.
    pub seconds_per_step: f64,
    /// Sustained Mflop/s.
    pub mflops: f64,
    /// Interactions per step.
    pub interactions: u64,
}

/// Price one timestep of problem `p` on a C90 head, using the real
/// interaction counts of the real tree.
pub fn run_c90(p: &NbodyProblem) -> C90NbodyResult {
    let b = plummer(p);
    let t = build(&b, p.leaf_cap);
    // Count interactions and MAC tests exactly.
    let mut interactions = 0u64;
    let mut macs = 0u64;
    for i in 0..b.len() {
        let (_, cnt) = crate::host::tree_accel(&b, &t, i, p.theta, p.eps);
        interactions += cnt;
        macs += cnt; // every evaluated term followed an acceptance test
    }
    let mut c = C90::new();
    // Hernquist-style level-by-level vectorized walk: the interaction
    // list evaluation is a gather-dominated vector loop, with heavy
    // masking losses from ragged interaction lists.
    c.vloop(
        interactions,
        &LoopSpec {
            flops: FLOPS_PER_INTERACTION as f64,
            contig_refs: 3.0,
            gathers: 7.0,
            scatters: 0.0,
            efficiency: 0.6,
        },
    );
    c.vloop(
        macs,
        &LoopSpec {
            flops: FLOPS_PER_MAC as f64,
            contig_refs: 1.0,
            gathers: 2.0,
            scatters: 0.0,
            efficiency: 0.6,
        },
    );
    // Tree build: partially vectorized sort + scalar node assembly.
    c.vloop(b.len() as u64, &LoopSpec::dense(6.0, 4.0));
    c.scalar(t.len() as u64 * 10);
    // Push.
    c.vloop(b.len() as u64, &LoopSpec::dense(12.0, 9.0));

    C90NbodyResult {
        seconds_per_step: c.seconds(),
        mflops: c.mflops(),
        interactions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c90_tree_code_lands_near_120_mflops() {
        let r = run_c90(&NbodyProblem::with_n(8192));
        assert!(
            (95.0..=150.0).contains(&r.mflops),
            "C90 tree code = {} Mflop/s (paper: 120)",
            r.mflops
        );
    }

    #[test]
    fn time_grows_superlinearly_with_n() {
        let a = run_c90(&NbodyProblem::with_n(2048));
        let b = run_c90(&NbodyProblem::with_n(8192));
        // N log N: 4x particles -> more than 4x time.
        assert!(b.seconds_per_step > 4.0 * a.seconds_per_step);
        assert!(b.interactions > 4 * a.interactions);
    }
}
