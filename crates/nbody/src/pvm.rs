//! PVM (message-passing) tree code: the replicated-data port (Olson &
//! Packer style, §5.3.2).
//!
//! Each task owns a fixed share of the particles and keeps a private
//! replica of *all* particle positions and masses. A timestep is: a
//! butterfly all-gather of the position/mass arrays (whole-array
//! pack/send/unpack traffic — the cost the paper calls "prohibitive"),
//! a redundant tree build on every task, forces and push for the
//! task's own share. The paper's findings reproduce directly: "The
//! single processor performance of the code was quite good ...
//! somewhat faster than that quoted above for the code written using
//! the shared memory programming model", while "the overheads of
//! packing and sending messages ... are prohibitive and overall
//! performance is degraded relative to the shared memory version."

use crate::problem::{plummer, sort_by_morton, NbodyProblem};
use crate::shared::{RunReport, STACK_CAP};
use crate::simtree::{PosView, SimTree};
use crate::tree::{build, DOMAIN};
use spp_core::{Cycles, MemClass, SimArray};
use spp_kernels::morton3_unit;
use spp_pvm::Pvm;

const TAG_GATHER_BASE: u32 = 200;

struct TaskState {
    /// Own particle range in the global order.
    range: std::ops::Range<usize>,
    // Full replicas of positions and masses.
    x: SimArray<f64>,
    y: SimArray<f64>,
    z: SimArray<f64>,
    m: SimArray<f64>,
    // Own-velocity arrays (length of the range).
    vx: SimArray<f64>,
    vy: SimArray<f64>,
    vz: SimArray<f64>,
    keys: SimArray<u64>,
    tree: SimTree,
    stack: SimArray<u32>,
}

/// Replicated-data PVM N-body state.
pub struct PvmNbody {
    /// Problem parameters.
    pub problem: NbodyProblem,
    ntasks: usize,
    tasks: Vec<TaskState>,
    useful_flops: u64,
    interactions: u64,
}

impl PvmNbody {
    /// Distribute a Plummer sphere across the PVM tasks.
    ///
    /// # Panics
    /// If the task count is not a power of two (butterfly all-gather).
    pub fn new(pvm: &mut Pvm, problem: NbodyProblem) -> Self {
        let t = pvm.num_tasks();
        assert!(t.is_power_of_two(), "task count must be a power of two");
        let b = sort_by_morton(&plummer(&problem));
        let n = b.len();
        let mut tasks = Vec::with_capacity(t);
        for task in 0..t {
            let cpu = pvm.task_cpu(task);
            let home = pvm.machine.config().fu_of_cpu(cpu);
            let class = MemClass::ThreadPrivate { home };
            let range = spp_runtime::chunk_range(n, t, task);
            let m = &mut pvm.machine;
            tasks.push(TaskState {
                x: SimArray::new(m, class, b.x.clone()),
                y: SimArray::new(m, class, b.y.clone()),
                z: SimArray::new(m, class, b.z.clone()),
                m: SimArray::new(m, class, b.m.clone()),
                vx: SimArray::new(m, class, b.vx[range.clone()].to_vec()),
                vy: SimArray::new(m, class, b.vy[range.clone()].to_vec()),
                vz: SimArray::new(m, class, b.vz[range.clone()].to_vec()),
                keys: SimArray::from_elem(m, class, n, 0u64),
                tree: SimTree::new(m, class, n.max(64), n),
                stack: SimArray::from_elem(m, class, STACK_CAP, 0u32),
                range,
            });
        }
        PvmNbody {
            problem,
            ntasks: t,
            tasks,
            useful_flops: 0,
            interactions: 0,
        }
    }

    /// Total particles.
    pub fn len(&self) -> usize {
        self.tasks.iter().map(|t| t.range.len()).sum()
    }

    /// True for an empty simulation (never constructed normally).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One timestep. Returns (elapsed wall cycles, useful flops).
    pub fn step(&mut self, pvm: &mut Pvm) -> (Cycles, u64) {
        let t0 = pvm.elapsed();
        let f0 = self.useful_flops;
        self.allgather(pvm);
        self.build_trees(pvm);
        self.forces_and_push(pvm);
        pvm.barrier_all();
        (pvm.elapsed() - t0, self.useful_flops - f0)
    }

    /// Run `steps` timesteps.
    pub fn run(&mut self, pvm: &mut Pvm, steps: usize) -> RunReport {
        let mut out = RunReport {
            steps,
            ..Default::default()
        };
        let i0 = self.interactions;
        for _ in 0..steps {
            let (c, f) = self.step(pvm);
            out.elapsed += c;
            out.flops += f;
        }
        out.interactions = self.interactions - i0;
        out
    }

    /// Butterfly all-gather of positions + masses: in round `r` each
    /// task exchanges its accumulated `2^r` chunks with `t ^ 2^r`.
    fn allgather(&mut self, pvm: &mut Pvm) {
        let n = self.len();
        let chunk_bytes = (n / self.ntasks) * 4 * 8; // x, y, z, m
        let rounds = self.ntasks.trailing_zeros();
        for r in 0..rounds {
            let tag = TAG_GATHER_BASE + r;
            let block = chunk_bytes << r;
            for t in 0..self.ntasks {
                pvm.pack(t, block);
                pvm.send(t, t ^ (1 << r), block, tag);
            }
            for t in 0..self.ntasks {
                let partner = t ^ (1 << r);
                pvm.recv(t, Some(partner), Some(tag)).expect("gather msg");
                pvm.unpack(t, block);
                // Host data movement: copy the partner group's own
                // chunks into our replica.
                let group = (partner >> r) << r; // partner's group base at round r
                for src in group..group + (1 << r) {
                    let range = self.tasks[src].range.clone();
                    let (xs, ys, zs) = (
                        self.tasks[src].x.host()[range.clone()].to_vec(),
                        self.tasks[src].y.host()[range.clone()].to_vec(),
                        self.tasks[src].z.host()[range.clone()].to_vec(),
                    );
                    let dst = &mut self.tasks[t];
                    dst.x.host_mut()[range.clone()].copy_from_slice(&xs);
                    dst.y.host_mut()[range.clone()].copy_from_slice(&ys);
                    dst.z.host_mut()[range.clone()].copy_from_slice(&zs);
                }
            }
        }
    }

    /// Redundant tree build + summarize on every task (priced; counted
    /// as useful work once).
    fn build_trees(&mut self, pvm: &mut Pvm) {
        let leaf_cap = self.problem.leaf_cap;
        for t in 0..self.ntasks {
            let task = &mut self.tasks[t];
            let bodies = crate::problem::Bodies {
                x: task.x.host().to_vec(),
                y: task.y.host().to_vec(),
                z: task.z.host().to_vec(),
                vx: Vec::new(),
                vy: Vec::new(),
                vz: Vec::new(),
                m: task.m.host().to_vec(),
            };
            let host_tree = build(&bodies, leaf_cap);
            task.tree
                .set_topology(host_tree.levels.clone(), host_tree.len());
            let n = bodies.x.len();
            let flops_before = pvm.total_flops();
            pvm.compute(t, |ctx| {
                // Keys.
                for i in 0..n {
                    let x = ctx.read(&task.x, i);
                    let y = ctx.read(&task.y, i);
                    let z = ctx.read(&task.z, i);
                    ctx.write(
                        &mut task.keys,
                        i,
                        morton3_unit(x / DOMAIN, y / DOMAIN, z / DOMAIN, 16),
                    );
                    ctx.flops(6);
                }
                // Scatter to sorted order.
                let mut inv = vec![0u32; n];
                for (rank, &orig) in host_tree.order.iter().enumerate() {
                    inv[orig as usize] = rank as u32;
                }
                let snapshot: Vec<u64> = task.keys.host().to_vec();
                for i in 0..n {
                    let _ = ctx.read(&task.keys, i);
                    let dest = inv[i] as usize;
                    ctx.write(&mut task.tree.order, dest, i as u32);
                    ctx.write(&mut task.keys, dest, snapshot[i]);
                }
                // Topology + bottom-up moments.
                task.tree
                    .fill_topology(ctx, &host_tree.nodes, &task.keys, 0..host_tree.len());
                let pos = PosView {
                    x: &task.x,
                    y: &task.y,
                    z: &task.z,
                    m: &task.m,
                };
                for lvl in (0..host_tree.levels.len() - 1).rev() {
                    let (s, e) = (host_tree.levels[lvl], host_tree.levels[lvl + 1]);
                    task.tree.summarize(ctx, s..e, &pos);
                }
            });
            if t == 0 {
                self.useful_flops += pvm.total_flops() - flops_before;
            }
        }
    }

    fn forces_and_push(&mut self, pvm: &mut Pvm) {
        let theta2 = self.problem.theta * self.problem.theta;
        let eps2 = self.problem.eps * self.problem.eps;
        let dt = self.problem.dt;
        for t in 0..self.ntasks {
            let task = &mut self.tasks[t];
            let range = task.range.clone();
            let flops_before = pvm.total_flops();
            let mut inter = 0u64;
            // Forces first (all positions frozen), then the push.
            let mut acc = vec![[0.0f64; 3]; range.len()];
            pvm.compute(t, |ctx| {
                for i in range.clone() {
                    let xi = ctx.read(&task.x, i);
                    let yi = ctx.read(&task.y, i);
                    let zi = ctx.read(&task.z, i);
                    let pos = PosView {
                        x: &task.x,
                        y: &task.y,
                        z: &task.z,
                        m: &task.m,
                    };
                    let (a, cnt) =
                        task.tree
                            .accel(ctx, &mut task.stack, i, xi, yi, zi, theta2, eps2, &pos);
                    inter += cnt;
                    acc[i - range.start] = a;
                }
                for i in range.clone() {
                    let o = i - range.start;
                    let a = acc[o];
                    let vx = ctx.read(&task.vx, o) + a[0] * dt;
                    let vy = ctx.read(&task.vy, o) + a[1] * dt;
                    let vz = ctx.read(&task.vz, o) + a[2] * dt;
                    ctx.write(&mut task.vx, o, vx);
                    ctx.write(&mut task.vy, o, vy);
                    ctx.write(&mut task.vz, o, vz);
                    ctx.update(&mut task.x, i, |x| x + vx * dt);
                    ctx.update(&mut task.y, i, |y| y + vy * dt);
                    ctx.update(&mut task.z, i, |z| z + vz * dt);
                    ctx.flops(12);
                }
            });
            self.useful_flops += pvm.total_flops() - flops_before;
            self.interactions += inter;
        }
    }

    /// Force an all-gather so every replica reflects the latest push
    /// (normally done at the start of the next step). Validation aid.
    pub fn sync(&mut self, pvm: &mut Pvm) {
        self.allgather(pvm);
    }

    /// Host view of one task's replica positions (validation).
    pub fn replica_x(&self, t: usize) -> &[f64] {
        self.tasks[t].x.host()
    }

    /// Kinetic energy across tasks (validation).
    pub fn kinetic_energy(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| {
                (0..t.range.len())
                    .map(|o| {
                        let i = t.range.start + o;
                        0.5 * t.m.host()[i]
                            * (t.vx.host()[o].powi(2)
                                + t.vy.host()[o].powi(2)
                                + t.vz.host()[o].powi(2))
                    })
                    .sum::<f64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host;
    use spp_core::CpuId;

    fn session(tasks: usize, n: usize) -> (Pvm, PvmNbody) {
        let cpus: Vec<CpuId> = (0..tasks as u16).map(CpuId).collect();
        let mut pvm = Pvm::spp1000(2, &cpus);
        let nb = PvmNbody::new(&mut pvm, NbodyProblem::with_n(n));
        (pvm, nb)
    }

    #[test]
    fn physics_matches_host() {
        let p = NbodyProblem::with_n(512);
        let (mut pvm, mut nb) = session(4, 512);
        let mut b = crate::problem::sort_by_morton(&plummer(&p));
        nb.step(&mut pvm);
        host::step(&p, &mut b);
        let rel = (nb.kinetic_energy() - b.kinetic_energy()).abs() / b.kinetic_energy();
        assert!(rel < 1e-9, "KE mismatch (rel {rel})");
    }

    #[test]
    fn replicas_agree_after_the_gather() {
        let (mut pvm, mut nb) = session(4, 512);
        for _ in 0..2 {
            nb.step(&mut pvm);
        }
        // Mid-cycle the replicas legitimately differ (each task has
        // pushed only its own range); after the gather they agree.
        nb.sync(&mut pvm);
        for t in 1..4 {
            assert_eq!(nb.replica_x(0), nb.replica_x(t), "replica {t} diverged");
        }
    }

    #[test]
    fn single_task_somewhat_faster_than_shared_single_thread() {
        use crate::shared::SharedNbody;
        use spp_runtime::{Placement, Runtime, Team};

        let (mut pvm, mut nb) = session(1, 1024);
        let rp = nb.run(&mut pvm, 1);
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 1, &Placement::HighLocality);
        let mut sh = SharedNbody::new(&mut rt, NbodyProblem::with_n(1024), &team);
        let rs = sh.run(&mut rt, &team, 1);
        // Paper: PVM 1-proc "somewhat faster" (no fork/join overhead,
        // purely local data). Allow up to 25% either way.
        let ratio = rp.elapsed as f64 / rs.elapsed as f64;
        assert!(ratio < 1.1, "pvm/shared 1-proc ratio = {ratio}");
    }

    #[test]
    fn scaled_pvm_is_slower_than_shared() {
        // Replication overheads (all-gather traffic + redundant
        // builds) only bite at realistic sizes — run the paper's small
        // size (32 K) on 8 processors.
        use crate::shared::SharedNbody;
        use spp_runtime::{Placement, Runtime, Team};

        let n = 32 * 1024;
        let (mut pvm, mut nb) = session(8, n);
        let rp = nb.run(&mut pvm, 1);
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
        let mut sh = SharedNbody::new(&mut rt, NbodyProblem::with_n(n), &team);
        let rs = sh.run(&mut rt, &team, 1);
        assert!(
            rp.elapsed > rs.elapsed,
            "pvm {} vs shared {}",
            rp.elapsed,
            rs.elapsed
        );
    }
}
