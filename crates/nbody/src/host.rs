//! Host-side reference implementation: Barnes-Hut force evaluation,
//! direct summation (the O(N^2) oracle of the paper's eq. 6), and the
//! leapfrog integrator.

use crate::problem::{Bodies, NbodyProblem};
use crate::tree::{build, Tree};

/// Gravitational acceleration on one position from a direct sum over
/// all particles (eq. 6 with G = 1), skipping index `skip`.
pub fn direct_accel(b: &Bodies, xi: f64, yi: f64, zi: f64, skip: usize, eps: f64) -> [f64; 3] {
    let mut a = [0.0; 3];
    for j in 0..b.len() {
        if j == skip {
            continue;
        }
        let dx = b.x[j] - xi;
        let dy = b.y[j] - yi;
        let dz = b.z[j] - zi;
        let r2 = dx * dx + dy * dy + dz * dz + eps * eps;
        let inv = b.m[j] / (r2 * r2.sqrt());
        a[0] += dx * inv;
        a[1] += dy * inv;
        a[2] += dz * inv;
    }
    a
}

/// FLOPs charged per accepted cell or per direct particle interaction
/// (3 diffs, r^2, sqrt and divide expansions, 3 accumulations).
pub const FLOPS_PER_INTERACTION: u64 = 20;
/// FLOPs charged per multipole-acceptance test.
pub const FLOPS_PER_MAC: u64 = 8;

/// Barnes-Hut acceleration on particle `i` (original index) using the
/// tree; also returns the number of interactions (cells + particles)
/// evaluated.
pub fn tree_accel(b: &Bodies, t: &Tree, i: usize, theta: f64, eps: f64) -> ([f64; 3], u64) {
    let (xi, yi, zi) = (b.x[i], b.y[i], b.z[i]);
    let mut a = [0.0; 3];
    let mut interactions = 0u64;
    let mut stack: Vec<u32> = vec![0];
    let th2 = theta * theta;
    while let Some(ni) = stack.pop() {
        let node = &t.nodes[ni as usize];
        let dx = node.cx - xi;
        let dy = node.cy - yi;
        let dz = node.cz - zi;
        let r2 = dx * dx + dy * dy + dz * dz;
        if node.nchild == 0 {
            // Leaf: direct sum over its particles.
            for r in node.pstart..node.pstart + node.pcount {
                let j = t.order[r as usize] as usize;
                if j == i {
                    continue;
                }
                let dx = b.x[j] - xi;
                let dy = b.y[j] - yi;
                let dz = b.z[j] - zi;
                let r2 = dx * dx + dy * dy + dz * dz + eps * eps;
                let inv = b.m[j] / (r2 * r2.sqrt());
                a[0] += dx * inv;
                a[1] += dy * inv;
                a[2] += dz * inv;
                interactions += 1;
            }
        } else if node.size * node.size < th2 * r2 {
            // Accepted cell: monopole interaction.
            let r2e = r2 + eps * eps;
            let inv = node.mass / (r2e * r2e.sqrt());
            a[0] += dx * inv;
            a[1] += dy * inv;
            a[2] += dz * inv;
            interactions += 1;
        } else {
            for c in node.child_start..node.child_start + node.nchild {
                stack.push(c);
            }
        }
    }
    (a, interactions)
}

/// One leapfrog (kick-drift) step on the host: rebuild the tree,
/// evaluate all forces, advance. Returns total interactions.
pub fn step(p: &NbodyProblem, b: &mut Bodies) -> u64 {
    let t = build(b, p.leaf_cap);
    let mut total = 0;
    let n = b.len();
    let mut acc = vec![[0.0f64; 3]; n];
    for (i, a) in acc.iter_mut().enumerate() {
        let (v, cnt) = tree_accel(b, &t, i, p.theta, p.eps);
        *a = v;
        total += cnt;
    }
    for (i, a) in acc.iter().enumerate().take(n) {
        b.vx[i] += a[0] * p.dt;
        b.vy[i] += a[1] * p.dt;
        b.vz[i] += a[2] * p.dt;
        b.x[i] += b.vx[i] * p.dt;
        b.y[i] += b.vy[i] * p.dt;
        b.z[i] += b.vz[i] * p.dt;
    }
    total
}

/// Total energy (kinetic + pairwise potential) — O(N^2), tests only.
pub fn total_energy(b: &Bodies, eps: f64) -> f64 {
    let mut e = b.kinetic_energy();
    for i in 0..b.len() {
        for j in i + 1..b.len() {
            let dx = b.x[j] - b.x[i];
            let dy = b.y[j] - b.y[i];
            let dz = b.z[j] - b.z[i];
            let r = (dx * dx + dy * dy + dz * dz + eps * eps).sqrt();
            e -= b.m[i] * b.m[j] / r;
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::plummer;

    #[test]
    fn tree_accel_matches_direct_sum() {
        let p = NbodyProblem::tiny();
        let b = plummer(&p);
        let t = build(&b, p.leaf_cap);
        let mut max_rel = 0.0f64;
        for i in (0..b.len()).step_by(37) {
            let (at, _) = tree_accel(&b, &t, i, p.theta, p.eps);
            let ad = direct_accel(&b, b.x[i], b.y[i], b.z[i], i, p.eps);
            let mag = (ad[0].powi(2) + ad[1].powi(2) + ad[2].powi(2)).sqrt();
            let err = ((at[0] - ad[0]).powi(2) + (at[1] - ad[1]).powi(2) + (at[2] - ad[2]).powi(2))
                .sqrt();
            max_rel = max_rel.max(err / mag.max(1e-12));
        }
        assert!(max_rel < 0.05, "worst relative force error = {max_rel}");
    }

    #[test]
    fn theta_zero_is_exact() {
        let p = NbodyProblem {
            theta: 0.0,
            ..NbodyProblem::with_n(128)
        };
        let b = plummer(&p);
        let t = build(&b, p.leaf_cap);
        for i in (0..b.len()).step_by(17) {
            let (at, _) = tree_accel(&b, &t, i, 0.0, p.eps);
            let ad = direct_accel(&b, b.x[i], b.y[i], b.z[i], i, p.eps);
            for k in 0..3 {
                assert!(
                    (at[k] - ad[k]).abs() < 1e-10,
                    "component {k}: {} vs {}",
                    at[k],
                    ad[k]
                );
            }
        }
    }

    #[test]
    fn interactions_scale_sublinearly() {
        // N log N: interactions per particle grow slowly with N.
        let count = |n: usize| {
            let p = NbodyProblem::with_n(n);
            let b = plummer(&p);
            let t = build(&b, p.leaf_cap);
            let total: u64 = (0..b.len())
                .map(|i| tree_accel(&b, &t, i, p.theta, p.eps).1)
                .sum();
            total as f64 / n as f64
        };
        let per_1k = count(1024);
        let per_8k = count(8192);
        // Direct would be 8x; tree should be well under 3x.
        assert!(
            per_8k / per_1k < 3.0,
            "per-particle interactions: {per_1k} -> {per_8k}"
        );
    }

    #[test]
    fn two_body_attraction() {
        let mut b = Bodies {
            x: vec![15.0, 17.0],
            y: vec![16.0, 16.0],
            z: vec![16.0, 16.0],
            vx: vec![0.0; 2],
            vy: vec![0.0; 2],
            vz: vec![0.0; 2],
            m: vec![0.5, 0.5],
        };
        let p = NbodyProblem {
            dt: 0.01,
            ..NbodyProblem::with_n(2)
        };
        step(&p, &mut b);
        assert!(b.vx[0] > 0.0, "left particle pulled right");
        assert!(b.vx[1] < 0.0, "right particle pulled left");
    }

    #[test]
    fn energy_roughly_conserved_over_steps() {
        let p = NbodyProblem {
            dt: 0.002,
            ..NbodyProblem::with_n(256)
        };
        let mut b = plummer(&p);
        let e0 = total_energy(&b, p.eps);
        for _ in 0..10 {
            step(&p, &mut b);
        }
        let e1 = total_energy(&b, p.eps);
        let rel = ((e1 - e0) / e0).abs();
        assert!(rel < 0.05, "energy drift {e0} -> {e1} ({rel})");
    }

    #[test]
    fn momentum_conserved() {
        let p = NbodyProblem::with_n(512);
        let mut b = plummer(&p);
        let px0: f64 = (0..b.len()).map(|i| b.m[i] * b.vx[i]).sum();
        for _ in 0..3 {
            step(&p, &mut b);
        }
        let px1: f64 = (0..b.len()).map(|i| b.m[i] * b.vx[i]).sum();
        assert!((px1 - px0).abs() < 1e-3, "momentum {px0} -> {px1}");
    }
}
