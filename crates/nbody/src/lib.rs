//! # nbody — the gravitational N-body octree code of paper §5.3
//!
//! A Barnes-Hut-style tree code (after Olson & Dorband) on the
//! simulated SPP-1000, reproducing Figure 8: parallel speedup for
//! 32 K / 256 K / 2 M particles, run on 1-8 processors of one
//! hypernode and 2-16 across two, against a 27.5 Mflop/s
//! single-processor rate and a 120 Mflop/s C90 reference.
//!
//! * [`problem`] — Plummer-sphere workloads at the paper's sizes;
//! * [`tree`] — Morton-ordered breadth-first octree;
//! * [`host`] — unpriced reference (tree and direct-sum forces);
//! * [`simtree`] — the octree in simulated memory (priced build,
//!   summarize, traversal);
//! * [`shared`] — the shared-memory threaded implementation;
//! * [`pvm`] — the replicated-data message-passing port;
//! * [`c90`] — the vectorized C90 baseline.

#![warn(missing_docs)]

pub mod c90;
pub mod host;
pub mod problem;
pub mod pvm;
pub mod shared;
pub mod simtree;
pub mod tree;

pub use problem::{plummer, Bodies, NbodyProblem};
pub use shared::{RunReport, SharedNbody};
pub use tree::{build, Tree};
