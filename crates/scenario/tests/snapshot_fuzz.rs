//! Corrupt- and truncated-snapshot fuzzing.
//!
//! The resume path of the scenario engine feeds `SPPSNAP1` streams it
//! found on disk back into [`Snapshot::restore`]. A half-written or
//! bit-rotted checkpoint must therefore surface as a typed
//! [`SimError::SnapshotCorrupt`] / [`SimError::SnapshotMismatch`] —
//! never a panic, never a silent success that diverges, and never an
//! absurd allocation. These tests take a genuine snapshot of a driven
//! machine and attack it with every truncation length and a large
//! sample of single-byte corruptions.

use proptest::TestRng;
use spp_core::{CpuId, FaultPlan, Machine, MachineConfig, MemClass, SimError, Snapshot};

/// A machine with populated caches, directories, SCI state, stats,
/// and fault-plan progress — so the snapshot exercises every section
/// of the encoding.
fn driven_machine() -> Machine {
    let mut m = Machine::spp1000(2).with_faults(plan());
    let far = m.alloc(MemClass::FarShared, 1 << 14);
    let near = m.alloc(
        MemClass::NearShared {
            node: spp_core::NodeId(1),
        },
        1 << 12,
    );
    for i in 0..400u64 {
        let cpu = CpuId((i * 5 % 16) as u16);
        let a = far.addr((i * 104) % (1 << 14));
        m.read(cpu, a);
        if i % 3 == 0 {
            m.write(cpu, a);
        }
        if i % 7 == 0 {
            m.read(cpu, near.addr((i * 40) % (1 << 12)));
        }
    }
    m
}

fn plan() -> FaultPlan {
    FaultPlan::new(99)
        .with_ring_stalls(0.2, 300)
        .with_cpu_failure(3, 20_000)
}

/// Restoring must return a `Result`, never unwind. Returns whether
/// the restore succeeded (a flipped byte in a don't-care position or
/// a value field may still restore cleanly — that is acceptable; an
/// unwind or abort is not).
fn restore_is_contained(bytes: Vec<u8>) -> bool {
    let attempt = std::panic::catch_unwind(|| {
        Snapshot::from_bytes(bytes)
            .and_then(|s| s.restore(MachineConfig::spp1000(2), Some(plan())))
            .map(|_| ())
    });
    match attempt {
        Ok(result) => result.is_ok(),
        Err(_) => panic!("snapshot restore panicked instead of returning a typed error"),
    }
}

#[test]
fn every_truncation_length_yields_a_typed_error() {
    let full = Snapshot::capture(&driven_machine()).into_bytes();
    // Exhaustive over the header and fixed-layout prefix, strided
    // through the long repetitive body (every cut there lands in the
    // middle of one of the same few record shapes), exhaustive again
    // over the tail where the fault-plan epilogue lives. Each probe
    // rebuilds a machine, so full exhaustion would dominate the suite
    // for no extra coverage.
    let n = full.len();
    let lens = (0..n.min(512))
        .chain((512..n.saturating_sub(128)).step_by(97))
        .chain(n.saturating_sub(128)..n);
    for len in lens {
        let outcome = Snapshot::from_bytes(full[..len].to_vec())
            .and_then(|s| s.restore(MachineConfig::spp1000(2), Some(plan())));
        match outcome {
            Err(SimError::SnapshotCorrupt { .. } | SimError::SnapshotMismatch { .. }) => {}
            Err(other) => panic!("truncation at {len} gave unexpected error {other}"),
            Ok(_) => panic!("truncation at {len} restored successfully"),
        }
    }
}

#[test]
fn single_byte_flips_never_panic_or_hang() {
    let full = Snapshot::capture(&driven_machine()).into_bytes();
    let mut rng = TestRng::new(proptest::seed_for("snapshot_fuzz::byte_flips"));
    // Every offset in the header and geometry sections, then a random
    // sample across the whole stream (exhaustive over all offsets ×
    // all bits would be slow; the sampled set still covers thousands
    // of positions and is deterministic).
    let mut offsets: Vec<usize> = (0..full.len().min(128)).collect();
    for _ in 0..800 {
        offsets.push(rng.below(full.len() as u64) as usize);
    }
    for off in offsets {
        let bit = 1u8 << rng.below(8);
        let mut bytes = full.clone();
        bytes[off] ^= bit;
        restore_is_contained(bytes);
    }
}

#[test]
fn random_garbage_and_resized_streams_are_contained() {
    let full = Snapshot::capture(&driven_machine()).into_bytes();
    let mut rng = TestRng::new(proptest::seed_for("snapshot_fuzz::garbage"));
    for case in 0..80 {
        let mut bytes = full.clone();
        match case % 4 {
            // Garbage tail: truncate then extend with random bytes.
            0 => {
                let cut = rng.below(bytes.len() as u64) as usize;
                bytes.truncate(cut);
                for _ in 0..rng.below(64) {
                    bytes.push(rng.below(256) as u8);
                }
            }
            // A burst of corrupted bytes mid-stream.
            1 => {
                let start = rng.below(bytes.len() as u64) as usize;
                let burst = (rng.below(32) + 1) as usize;
                for b in bytes.iter_mut().skip(start).take(burst) {
                    *b = rng.below(256) as u8;
                }
            }
            // Pure noise with a valid header (worst case for the body
            // parser).
            2 => {
                let keep = 10.min(bytes.len());
                bytes.truncate(keep);
                for _ in 0..rng.below(512) {
                    bytes.push(rng.below(256) as u8);
                }
            }
            // Duplicated chunk (shifts every later field).
            _ => {
                let at = rng.below(bytes.len() as u64) as usize;
                let chunk: Vec<u8> = bytes.iter().skip(at).take(16).copied().collect();
                let mut out = bytes[..at].to_vec();
                out.extend_from_slice(&chunk);
                out.extend_from_slice(&bytes[at..]);
                bytes = out;
            }
        }
        restore_is_contained(bytes);
    }
}

#[test]
fn wrong_magic_and_wrong_version_are_typed() {
    let full = Snapshot::capture(&driven_machine()).into_bytes();

    let mut wrong_magic = full.clone();
    wrong_magic[0] = b'X';
    assert!(matches!(
        Snapshot::from_bytes(wrong_magic),
        Err(SimError::SnapshotCorrupt { .. })
    ));

    let mut wrong_version = full;
    wrong_version[8] = 0xEE;
    assert!(matches!(
        Snapshot::from_bytes(wrong_version),
        Err(SimError::SnapshotMismatch { .. })
    ));
}

#[test]
fn wrong_geometry_and_wrong_plan_are_mismatches_not_panics() {
    let snap = Snapshot::capture(&driven_machine());

    // Different topology than captured.
    assert!(matches!(
        snap.restore(MachineConfig::spp1000(4), Some(plan())),
        Err(SimError::SnapshotMismatch { .. })
    ));
    // Missing fault plan.
    assert!(matches!(
        snap.restore(MachineConfig::spp1000(2), None),
        Err(SimError::SnapshotMismatch { .. })
    ));
    // Wrong-seed fault plan.
    assert!(matches!(
        snap.restore(MachineConfig::spp1000(2), Some(FaultPlan::new(1))),
        Err(SimError::SnapshotMismatch { .. })
    ));
}
