//! Fleet containment: a 20-cell matrix with deliberately misbehaving
//! scenarios — panics, a hang, a golden mismatch, a repeat offender —
//! must complete with every cell classified and the fleet intact.
//!
//! This is the acceptance scenario of the engine: no injected failure
//! may abort the fleet, lose a result row, or leak into a neighboring
//! cell's classification.

use spp_scenario::{
    run_fleet, BuiltinOp, Expectation, FleetConfig, Registry, ScenarioKind, ScenarioSpec, Status,
    WorkloadApp,
};

fn kernel(name: &str, elems: usize) -> ScenarioSpec {
    let mut s = ScenarioSpec::workload(name, WorkloadApp::KernelStream { elems });
    if let ScenarioKind::Workload(ref mut w) = s.kind {
        w.steps = 2;
        w.threads = 4;
    }
    s
}

/// The 20-cell matrix: 16 healthy cells, two panickers (one with
/// retries, so it also exercises quarantine), one hanger, one golden
/// mismatch.
fn matrix() -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    for i in 0..12 {
        specs.push(kernel(&format!("healthy-{i:02}"), 64 + i * 16));
    }
    for i in 0..4 {
        specs.push(ScenarioSpec::builtin(&format!("noop-{i}"), BuiltinOp::Noop));
    }

    let mut panic1 = ScenarioSpec::builtin(
        "injected-panic",
        BuiltinOp::Panic {
            message: "injected panic".into(),
        },
    );
    panic1.expect = Expectation::Fail;
    specs.push(panic1);

    let mut repeat = ScenarioSpec::builtin(
        "repeat-offender",
        BuiltinOp::Panic {
            message: "panics every attempt".into(),
        },
    );
    repeat.expect = Expectation::Fail;
    repeat.retries = 2;
    repeat.backoff_ms = 1;
    specs.push(repeat);

    let mut hang = ScenarioSpec::builtin("injected-hang", BuiltinOp::Hang);
    hang.expect = Expectation::Timeout;
    hang.timeout_secs = 1.0;
    specs.push(hang);

    let mut diverging = kernel("injected-divergence", 128);
    diverging.expect = Expectation::GoldenMismatch;
    diverging.golden.cycles = Some(1);
    specs.push(diverging);

    assert_eq!(specs.len(), 20);
    specs
}

#[test]
fn injected_failures_are_contained_classified_and_summarized() {
    let specs = matrix();
    let report = run_fleet(
        &specs,
        &Registry::new(),
        &FleetConfig {
            workers: 6,
            ..FleetConfig::default()
        },
    );

    // Every cell produced a result row, in spec order.
    assert_eq!(report.results.len(), 20);
    for (spec, res) in specs.iter().zip(&report.results) {
        assert_eq!(spec.name, res.name, "result rows out of order");
    }

    let by_name = |n: &str| {
        report
            .results
            .iter()
            .find(|r| r.name == n)
            .unwrap_or_else(|| panic!("no result for {n}"))
    };

    // The injected panic is a contained failure carrying its message.
    let p = by_name("injected-panic");
    assert!(matches!(&p.status, Status::Fail { error } if error.contains("injected panic")));
    assert!(p.as_expected && !p.quarantined);

    // The repeat offender exhausted its retries and was quarantined.
    let q = by_name("repeat-offender");
    assert!(matches!(q.status, Status::Fail { .. }));
    assert_eq!(q.attempts, 3, "retries=2 means three attempts");
    assert!(q.quarantined, "exhausting retries must quarantine the cell");
    assert!(q.as_expected);

    // The hang was cancelled by the wall-clock supervisor.
    let h = by_name("injected-hang");
    assert!(matches!(h.status, Status::Timeout));
    assert!(h.as_expected);

    // The golden divergence is a structured diff, not a panic.
    let g = by_name("injected-divergence");
    match &g.status {
        Status::GoldenMismatch { diffs } => {
            assert_eq!(diffs.len(), 1);
            assert_eq!(diffs[0].0, "cycles");
            assert_eq!(diffs[0].1, 1, "expected side of the diff");
            assert!(diffs[0].2 > 1, "got side carries the real cycle count");
        }
        other => panic!("expected a golden mismatch, got {other:?}"),
    }

    // Healthy neighbours were untouched by the misbehaving cells.
    let (pass, fail, timeout, mismatch, quarantined) = report.counts();
    assert_eq!(
        (pass, fail, timeout, mismatch, quarantined),
        (16, 2, 1, 1, 1),
        "summary counters"
    );
    assert!(
        report.all_as_expected(),
        "every outcome matched its declared expect"
    );

    // The summary renders every classification.
    let rendered = report.render();
    for needle in [
        "injected-panic",
        "injected-hang",
        "injected-divergence",
        "ALL AS EXPECTED",
    ] {
        assert!(
            rendered.contains(needle),
            "summary missing {needle:?}:\n{rendered}"
        );
    }
}

#[test]
fn fleet_reports_are_deterministic_across_runs_and_worker_counts() {
    let specs = matrix();
    let a = run_fleet(
        &specs,
        &Registry::new(),
        &FleetConfig {
            workers: 6,
            ..FleetConfig::default()
        },
    );
    let b = run_fleet(
        &specs,
        &Registry::new(),
        &FleetConfig {
            workers: 2,
            ..FleetConfig::default()
        },
    );
    // Wall-clock seconds vary run to run; the JSON deliberately
    // excludes them, so the reports must be byte-identical even
    // across different worker counts.
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn an_unexpected_outcome_fails_the_fleet_but_still_reports() {
    let mut specs = matrix();
    // Flip one expectation: the panicking cell now claims it passes.
    specs[16].expect = Expectation::Pass;
    assert_eq!(specs[16].name, "injected-panic");

    let report = run_fleet(
        &specs,
        &Registry::new(),
        &FleetConfig {
            workers: 4,
            ..FleetConfig::default()
        },
    );
    assert_eq!(report.results.len(), 20, "report still complete");
    assert!(!report.all_as_expected());
    let p = report
        .results
        .iter()
        .find(|r| r.name == "injected-panic")
        .unwrap();
    assert!(!p.as_expected);
    assert!(
        report.render().contains("UNEXPECTED"),
        "{}",
        report.render()
    );
}
