//! Property: scenario specs survive parse → serialize → parse.
//!
//! For every valid [`ScenarioSpec`] the canonical serializer and the
//! parser are exact inverses: `from_toml_str(to_toml_string(s)) == s`,
//! and the canonical form is a fixpoint (serializing the reparsed
//! spec yields byte-identical TOML). Specs are generated across every
//! kind, app, placement, schedule, fault-event variant, golden field
//! subset, and float-valued knob.

use proptest::prelude::*;
use proptest::TestRng;
use spp_core::FaultEvent;
use spp_scenario::{
    BuiltinOp, Expectation, PlacementPolicy, ScenarioKind, ScenarioSpec, SchedulePolicySpec,
    WorkloadApp,
};

/// Draw a valid spec from the rng — every field randomized within the
/// rules `validate()` enforces.
fn arbitrary_spec(rng: &mut TestRng) -> ScenarioSpec {
    let name: String = (0..1 + rng.below(12))
        .map(|_| {
            let charset = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";
            charset[rng.below(charset.len() as u64) as usize] as char
        })
        .collect();

    let mut spec = match rng.below(3) {
        0 => {
            let op = match rng.below(3) {
                0 => BuiltinOp::Noop,
                1 => BuiltinOp::Hang,
                _ => BuiltinOp::Panic {
                    message: format!("boom {}", rng.below(1000)),
                },
            };
            ScenarioSpec::builtin(&name, op)
        }
        1 => {
            let ids = ["latency", "fig2", "table1", "race", "chaos"];
            let mut s = ScenarioSpec::experiment(&name, ids[rng.below(5) as usize]);
            if let ScenarioKind::Experiment(ref mut e) = s.kind {
                e.full = rng.below(2) == 1;
                e.steps = 1 + rng.below(10) as usize;
                e.backend = if rng.below(2) == 0 { "cycle" } else { "fast" }.to_string();
            }
            s
        }
        _ => {
            let app = match rng.below(6) {
                0 => WorkloadApp::Pic {
                    mesh: (
                        1 + rng.below(16) as usize,
                        1 + rng.below(16) as usize,
                        1 + rng.below(8) as usize,
                    ),
                },
                1 => WorkloadApp::Nbody {
                    bodies: 1 + rng.below(512) as usize,
                },
                2 => WorkloadApp::Fem {
                    nx: 1 + rng.below(32) as usize,
                    ny: 1 + rng.below(32) as usize,
                },
                3 => WorkloadApp::Ppm,
                4 => WorkloadApp::PicPvm {
                    mesh: (
                        1 + rng.below(16) as usize,
                        1 + rng.below(16) as usize,
                        1 + rng.below(8) as usize,
                    ),
                },
                _ => WorkloadApp::KernelStream {
                    elems: 1 + rng.below(8192) as usize,
                },
            };
            let is_kernel = matches!(app, WorkloadApp::KernelStream { .. });
            let mut s = ScenarioSpec::workload(&name, app);
            if let ScenarioKind::Workload(ref mut w) = s.kind {
                w.steps = 1 + rng.below(8) as usize;
                w.hypernodes = 1 + rng.below(128) as usize;
                w.threads = 1 + rng.below(32) as usize;
                w.protocol = match rng.below(3) {
                    0 => spp_core::ProtocolKind::DashSci,
                    1 => spp_core::ProtocolKind::Mesi,
                    _ => spp_core::ProtocolKind::Dragon,
                };
                w.placement = if rng.below(2) == 0 {
                    PlacementPolicy::Uniform
                } else {
                    PlacementPolicy::HighLocality
                };
                w.schedule = match rng.below(3) {
                    0 => SchedulePolicySpec::Identity,
                    1 => SchedulePolicySpec::Reversed,
                    _ => SchedulePolicySpec::Shuffled {
                        seed: rng.next_u64(),
                    },
                };
                w.fault_seed = rng.next_u64();
                for _ in 0..rng.below(4) {
                    w.faults.push(match rng.below(6) {
                        0 => FaultEvent::RingStalls {
                            prob: rng.unit_f64(),
                            stall: rng.below(10_000),
                        },
                        1 => FaultEvent::MsgFaults {
                            drop: rng.unit_f64(),
                            dup: rng.unit_f64(),
                        },
                        2 => FaultEvent::SpawnFail {
                            prob: rng.unit_f64(),
                        },
                        3 => FaultEvent::CpuFail {
                            cpu: rng.below(128) as u16,
                            at_cycle: rng.next_u64() >> 20,
                        },
                        4 => FaultEvent::LinkFail {
                            ring: rng.below(5) as u8,
                            at_cycle: rng.next_u64() >> 20,
                            reroute_cycles: rng.below(5_000),
                        },
                        _ => FaultEvent::GcbDegrade {
                            node: rng.below(16) as u8,
                            at_cycle: rng.next_u64() >> 20,
                        },
                    });
                }
                w.trace = rng.below(2) == 1;
                if w.trace {
                    // Capacity is only serialized (and only meaningful)
                    // when tracing is enabled.
                    w.trace_capacity = 1 << (8 + rng.below(12)) as usize;
                }
                if is_kernel && rng.below(2) == 1 {
                    w.checkpoint_every = 1 + rng.below(4) as usize;
                }
            }
            // Golden gates only attach to workload cells.
            let mut set = |slot: &mut Option<u64>| {
                if rng.below(2) == 1 {
                    *slot = Some(rng.next_u64() >> 16);
                }
            };
            set(&mut s.golden.cycles);
            set(&mut s.golden.reads);
            set(&mut s.golden.writes);
            set(&mut s.golden.hits);
            set(&mut s.golden.sci_fetches);
            set(&mut s.golden.ring_stalls);
            set(&mut s.golden.uncached_ops);
            s
        }
    };

    // Whole and fractional timeouts both hit the float writer.
    spec.timeout_secs = match rng.below(3) {
        0 => (1 + rng.below(600)) as f64,
        1 => (1 + rng.below(600)) as f64 + 0.5,
        _ => (1 + rng.below(600_000)) as f64 / 1000.0,
    };
    spec.retries = rng.below(5) as u32;
    spec.backoff_ms = rng.below(5_000);
    spec.expect = match rng.below(4) {
        0 => Expectation::Pass,
        1 => Expectation::Fail,
        2 => Expectation::Timeout,
        _ if matches!(spec.kind, ScenarioKind::Workload(_)) => Expectation::GoldenMismatch,
        _ => Expectation::Pass,
    };
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_serialize_parse_is_identity(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let spec = arbitrary_spec(&mut rng);
        spec.validate().expect("generated spec must be valid");

        let toml = spec.to_toml_string();
        let reparsed = ScenarioSpec::from_toml_str(&toml)
            .unwrap_or_else(|e| panic!("canonical TOML failed to reparse: {e}\n{toml}"));
        prop_assert_eq!(&reparsed, &spec);

        // Canonical form is a fixpoint.
        let again = reparsed.to_toml_string();
        prop_assert_eq!(again, toml);
    }
}
