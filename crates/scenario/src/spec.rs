//! The declarative scenario spec.
//!
//! One TOML file describes one cell of the evaluation matrix: the
//! machine topology, the workload, the thread placement, the fault
//! plan, the schedule policy, the trace sink, the supervision limits,
//! and optional golden expectations. [`ScenarioSpec::from_toml_str`]
//! parses and validates a file; [`ScenarioSpec::to_toml_string`]
//! emits the canonical form (parse → serialize → parse round-trips,
//! property-tested in `tests/roundtrip.rs`).

use crate::toml::{self, Table, Value};
use spp_core::{FaultEvent, ProtocolKind};
use std::fmt;

/// The spec schema this build reads and writes.
pub const SPEC_SCHEMA: i64 = 1;

/// A spec-level error (parse or validation).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn serr<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// What kind of cell this scenario is.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioKind {
    /// One of the registered legacy experiments (`fig2` … `race`),
    /// dispatched through the caller-supplied registry.
    Experiment(ExperimentSpec),
    /// A direct simulator run assembled from the spec's topology /
    /// workload / placement / faults / schedule sections.
    Workload(WorkloadSpec),
    /// A deliberately misbehaving cell for supervision tests and the
    /// CI containment gate.
    Builtin(BuiltinOp),
}

/// Parameters for an experiment-kind scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Registered experiment id (`"fig2"`, `"latency"`, …).
    pub id: String,
    /// Run paper-size workloads (the harness `--full` flag).
    pub full: bool,
    /// Measured steps per configuration (the harness `--steps` flag).
    pub steps: usize,
    /// Port backend (`"cycle"` or `"fast"`).
    pub backend: String,
}

/// The applications a workload-kind scenario can run.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadApp {
    /// Shared-memory particle-in-cell on an `nx × ny × nz` mesh.
    Pic {
        /// Mesh shape.
        mesh: (usize, usize, usize),
    },
    /// Shared-memory N-body tree code.
    Nbody {
        /// Body count.
        bodies: usize,
    },
    /// Shared-memory FEM on an `nx × ny` structured mesh.
    Fem {
        /// Mesh columns.
        nx: usize,
        /// Mesh rows.
        ny: usize,
    },
    /// Shared-memory PPM gas dynamics (the tiny problem).
    Ppm,
    /// Message-passing PIC over the PVM layer.
    PicPvm {
        /// Mesh shape.
        mesh: (usize, usize, usize),
    },
    /// A seeded streaming kernel whose entire state is the machine
    /// itself — the one workload that supports SPPSNAP1
    /// checkpoint/resume (see the engine docs).
    KernelStream {
        /// Elements swept per step.
        elems: usize,
    },
}

impl WorkloadApp {
    /// Short stable label.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadApp::Pic { .. } => "pic",
            WorkloadApp::Nbody { .. } => "nbody",
            WorkloadApp::Fem { .. } => "fem",
            WorkloadApp::Ppm => "ppm",
            WorkloadApp::PicPvm { .. } => "pic-pvm",
            WorkloadApp::KernelStream { .. } => "kernel-stream",
        }
    }
}

/// Thread placement policy (mirrors `spp_runtime::Placement`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Fill one hypernode before spilling to the next.
    HighLocality,
    /// Round-robin across hypernodes.
    Uniform,
}

/// Fork/join replay-order policy (mirrors
/// `spp_runtime::SchedulePolicy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicySpec {
    /// Historical order (bit-identical default).
    Identity,
    /// Reversed order.
    Reversed,
    /// Seeded pseudo-random permutation.
    Shuffled {
        /// Permutation seed.
        seed: u64,
    },
}

/// A workload-kind scenario: everything needed to assemble and run
/// one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// The application.
    pub app: WorkloadApp,
    /// Measured steps (after one untimed warm-up step; the
    /// kernel-stream workload has no warm-up).
    pub steps: usize,
    /// Hypernode count of the simulated machine.
    pub hypernodes: usize,
    /// Coherence protocol the machine runs
    /// (`dash-sci` when the spec has no `[protocol]` table).
    pub protocol: ProtocolKind,
    /// Team size (threads or PVM tasks).
    pub threads: usize,
    /// Thread placement.
    pub placement: PlacementPolicy,
    /// Fork/join replay order.
    pub schedule: SchedulePolicySpec,
    /// Fault-plan seed.
    pub fault_seed: u64,
    /// Fault-plan ingredients (empty = no plan installed).
    pub faults: Vec<FaultEvent>,
    /// Record a trace into a deterministic ring sink.
    pub trace: bool,
    /// Ring-sink capacity when tracing.
    pub trace_capacity: usize,
    /// Mount the cycle-attribution heatmap (`[insight] enabled =
    /// true`). Attribution never changes cycles or counters; the
    /// runner asserts `heat_partition_check` at workload end.
    pub insight: bool,
    /// Write an SPPSNAP1 checkpoint every N steps (0 = off; only the
    /// kernel-stream workload supports it).
    pub checkpoint_every: usize,
    /// In-run checkpoint rollbacks allowed when a transient coherence
    /// fault exhausts its scrub budget (`[recovery] rollbacks = N`;
    /// 0 = escalation fails the cell). Requires `checkpoint_every`,
    /// which sets the rollback granularity.
    pub rollbacks: u32,
}

/// Deliberately misbehaving builtin cells.
#[derive(Debug, Clone, PartialEq)]
pub enum BuiltinOp {
    /// Panic with the given message.
    Panic {
        /// The panic payload.
        message: String,
    },
    /// Never finish: spin (sleeping) until the supervisor cancels.
    Hang,
    /// Return immediately.
    Noop,
}

impl BuiltinOp {
    /// Short stable label.
    pub fn label(&self) -> &'static str {
        match self {
            BuiltinOp::Panic { .. } => "panic",
            BuiltinOp::Hang => "hang",
            BuiltinOp::Noop => "noop",
        }
    }
}

/// What the scenario author expects the supervisor to observe — the
/// CI containment gate runs deliberately panicking / hanging /
/// golden-diverging cells and passes when each is *contained and
/// classified as declared*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The cell completes and (if golden expectations are present)
    /// matches them.
    Pass,
    /// The cell fails (panic or reported error).
    Fail,
    /// The cell exceeds its wall-clock timeout.
    Timeout,
    /// The cell completes but diverges from its golden expectations.
    GoldenMismatch,
}

impl Expectation {
    /// Stable spelling used in specs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Expectation::Pass => "pass",
            Expectation::Fail => "fail",
            Expectation::Timeout => "timeout",
            Expectation::GoldenMismatch => "golden-mismatch",
        }
    }
}

/// Bit-exact expectations on a workload cell's final cycles and
/// memory-system counters. Only the fields present in the spec are
/// gated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GoldenSpec {
    /// Expected elapsed simulated cycles.
    pub cycles: Option<u64>,
    /// Expected issued reads.
    pub reads: Option<u64>,
    /// Expected issued writes.
    pub writes: Option<u64>,
    /// Expected cache hits.
    pub hits: Option<u64>,
    /// Expected SCI fetches.
    pub sci_fetches: Option<u64>,
    /// Expected injected ring stalls.
    pub ring_stalls: Option<u64>,
    /// Expected uncached operations.
    pub uncached_ops: Option<u64>,
}

impl GoldenSpec {
    /// The gated fields as `(name, expected)` pairs, in stable order.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        let mut out = Vec::new();
        let mut push = |name, v: Option<u64>| {
            if let Some(x) = v {
                out.push((name, x));
            }
        };
        push("cycles", self.cycles);
        push("reads", self.reads);
        push("writes", self.writes);
        push("hits", self.hits);
        push("sci_fetches", self.sci_fetches);
        push("ring_stalls", self.ring_stalls);
        push("uncached_ops", self.uncached_ops);
        out
    }

    /// True when no field is gated.
    pub fn is_empty(&self) -> bool {
        self.fields().is_empty()
    }
}

/// One declarative scenario (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Unique scenario name (the quarantine and report key).
    pub name: String,
    /// What to run.
    pub kind: ScenarioKind,
    /// Wall-clock budget per attempt, in seconds.
    pub timeout_secs: f64,
    /// Retries after a failed or timed-out attempt.
    pub retries: u32,
    /// Base backoff between retries, milliseconds (doubles per
    /// attempt).
    pub backoff_ms: u64,
    /// The outcome the author declares correct.
    pub expect: Expectation,
    /// Golden expectations (workload cells only).
    pub golden: GoldenSpec,
}

impl ScenarioSpec {
    /// A minimal passing workload spec (used as a base by tests and
    /// builders).
    pub fn workload(name: &str, app: WorkloadApp) -> Self {
        ScenarioSpec {
            name: name.to_string(),
            kind: ScenarioKind::Workload(WorkloadSpec {
                app,
                steps: 1,
                hypernodes: 2,
                protocol: ProtocolKind::DashSci,
                threads: 8,
                placement: PlacementPolicy::Uniform,
                schedule: SchedulePolicySpec::Identity,
                fault_seed: 0,
                faults: Vec::new(),
                trace: false,
                trace_capacity: 1 << 16,
                insight: false,
                checkpoint_every: 0,
                rollbacks: 0,
            }),
            timeout_secs: 300.0,
            retries: 0,
            backoff_ms: 100,
            expect: Expectation::Pass,
            golden: GoldenSpec::default(),
        }
    }

    /// A builtin cell.
    pub fn builtin(name: &str, op: BuiltinOp) -> Self {
        ScenarioSpec {
            name: name.to_string(),
            kind: ScenarioKind::Builtin(op),
            timeout_secs: 300.0,
            retries: 0,
            backoff_ms: 100,
            expect: Expectation::Pass,
            golden: GoldenSpec::default(),
        }
    }

    /// An experiment cell with harness defaults.
    pub fn experiment(name: &str, id: &str) -> Self {
        ScenarioSpec {
            name: name.to_string(),
            kind: ScenarioKind::Experiment(ExperimentSpec {
                id: id.to_string(),
                full: false,
                steps: 2,
                backend: "cycle".to_string(),
            }),
            timeout_secs: 3600.0,
            retries: 0,
            backoff_ms: 100,
            expect: Expectation::Pass,
            golden: GoldenSpec::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// TOML binding
// ---------------------------------------------------------------------------

fn get_str(t: &Table, key: &str) -> Result<Option<String>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => match v.as_str() {
            Some(s) => Ok(Some(s.to_string())),
            None => serr(format!("{key} must be a string")),
        },
    }
}

fn get_usize(t: &Table, key: &str) -> Result<Option<usize>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => match v.as_int() {
            Some(i) if i >= 0 => Ok(Some(i as usize)),
            _ => serr(format!("{key} must be a non-negative integer")),
        },
    }
}

fn get_u64(t: &Table, key: &str) -> Result<Option<u64>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => match v.as_int() {
            Some(i) if i >= 0 => Ok(Some(i as u64)),
            _ => serr(format!("{key} must be a non-negative integer")),
        },
    }
}

/// Seeds are full-range `u64`; TOML integers are `i64`. The canonical
/// serializer writes the seed's bit pattern (so seeds above
/// `i64::MAX` appear negative), and this reader reverses the cast —
/// an exact round trip for every seed.
fn get_seed(t: &Table, key: &str) -> Result<Option<u64>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => match v.as_int() {
            Some(i) => Ok(Some(i as u64)),
            None => serr(format!("{key} must be an integer seed")),
        },
    }
}

fn get_f64(t: &Table, key: &str) -> Result<Option<f64>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => match v.as_float() {
            Some(x) if x.is_finite() => Ok(Some(x)),
            _ => serr(format!("{key} must be a finite number")),
        },
    }
}

fn get_bool(t: &Table, key: &str) -> Result<Option<bool>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => match v.as_bool() {
            Some(b) => Ok(Some(b)),
            None => serr(format!("{key} must be a boolean")),
        },
    }
}

fn get_table<'a>(t: &'a Table, key: &str) -> Result<Option<&'a Table>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => match v.as_table() {
            Some(tt) => Ok(Some(tt)),
            None => serr(format!("[{key}] must be a table")),
        },
    }
}

fn mesh3(t: &Table, key: &str) -> Result<Option<(usize, usize, usize)>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => {
            let a = v
                .as_array()
                .ok_or_else(|| SpecError(format!("{key} must be an array of 3 integers")))?;
            let dims: Vec<usize> = a
                .iter()
                .map(|x| x.as_int().filter(|i| *i > 0).map(|i| i as usize))
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| SpecError(format!("{key} must hold positive integers")))?;
            if dims.len() != 3 {
                return serr(format!("{key} must have exactly 3 entries"));
            }
            Ok(Some((dims[0], dims[1], dims[2])))
        }
    }
}

fn parse_fault_event(t: &Table) -> Result<FaultEvent, SpecError> {
    let kind = get_str(t, "kind")?.ok_or_else(|| SpecError("fault event needs a kind".into()))?;
    let need_f64 =
        |key: &str| get_f64(t, key)?.ok_or_else(|| SpecError(format!("{kind} event needs {key}")));
    let need_u64 =
        |key: &str| get_u64(t, key)?.ok_or_else(|| SpecError(format!("{kind} event needs {key}")));
    Ok(match kind.as_str() {
        "ring-stalls" => FaultEvent::RingStalls {
            prob: need_f64("prob")?,
            stall: need_u64("stall_cycles")?,
        },
        "msg-faults" => FaultEvent::MsgFaults {
            drop: need_f64("drop")?,
            dup: need_f64("dup")?,
        },
        "spawn-fail" => FaultEvent::SpawnFail {
            prob: need_f64("prob")?,
        },
        "cpu-fail" => FaultEvent::CpuFail {
            cpu: need_u64("cpu")? as u16,
            at_cycle: need_u64("at_cycle")?,
        },
        "link-fail" => FaultEvent::LinkFail {
            ring: need_u64("ring")? as u8,
            at_cycle: need_u64("at_cycle")?,
            reroute_cycles: need_u64("reroute_cycles")?,
        },
        "gcb-degrade" => FaultEvent::GcbDegrade {
            node: need_u64("node")? as u8,
            at_cycle: need_u64("at_cycle")?,
        },
        "inval-drop" => FaultEvent::InvalDrop {
            prob: need_f64("prob")?,
        },
        "inval-dup" => FaultEvent::InvalDup {
            prob: need_f64("prob")?,
        },
        "inval-delay" => FaultEvent::InvalDelay {
            prob: need_f64("prob")?,
        },
        "update-loss" => FaultEvent::UpdateLoss {
            prob: need_f64("prob")?,
        },
        "ack-stale" => FaultEvent::AckStale {
            prob: need_f64("prob")?,
        },
        "line-corrupt" => FaultEvent::LineCorrupt {
            prob: need_f64("prob")?,
        },
        "transient-persist" => FaultEvent::TransientPersist {
            prob: need_f64("prob")?,
        },
        other => return serr(format!("unknown fault event kind {other:?}")),
    })
}

impl ScenarioSpec {
    /// Parse and validate one scenario from TOML text.
    pub fn from_toml_str(text: &str) -> Result<Self, SpecError> {
        let root = toml::parse(text).map_err(|e| SpecError(e.to_string()))?;
        Self::from_table(&root)
    }

    /// Parse and validate one scenario from an already-parsed root
    /// table.
    pub fn from_table(root: &Table) -> Result<Self, SpecError> {
        match root.get("schema").and_then(Value::as_int) {
            Some(SPEC_SCHEMA) => {}
            Some(v) => {
                return serr(format!(
                    "schema {v} not supported (this build reads {SPEC_SCHEMA})"
                ))
            }
            None => return serr("missing `schema = 1` at top level"),
        }
        let sc = get_table(root, "scenario")?
            .ok_or_else(|| SpecError("missing [scenario] section".into()))?;
        let name =
            get_str(sc, "name")?.ok_or_else(|| SpecError("[scenario] needs a name".into()))?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c))
        {
            return serr(format!(
                "scenario name {name:?} must be non-empty [A-Za-z0-9._-]"
            ));
        }
        let kind_label =
            get_str(sc, "kind")?.ok_or_else(|| SpecError("[scenario] needs a kind".into()))?;

        let expect = match get_str(sc, "expect")?.as_deref() {
            None | Some("pass") => Expectation::Pass,
            Some("fail") => Expectation::Fail,
            Some("timeout") => Expectation::Timeout,
            Some("golden-mismatch") => Expectation::GoldenMismatch,
            Some(other) => return serr(format!("unknown expect {other:?}")),
        };

        let golden = match get_table(root, "golden")? {
            None => GoldenSpec::default(),
            Some(g) => GoldenSpec {
                cycles: get_u64(g, "cycles")?,
                reads: get_u64(g, "reads")?,
                writes: get_u64(g, "writes")?,
                hits: get_u64(g, "hits")?,
                sci_fetches: get_u64(g, "sci_fetches")?,
                ring_stalls: get_u64(g, "ring_stalls")?,
                uncached_ops: get_u64(g, "uncached_ops")?,
            },
        };

        let kind = match kind_label.as_str() {
            "experiment" => {
                let e = get_table(root, "experiment")?.ok_or_else(|| {
                    SpecError("experiment scenarios need an [experiment] section".into())
                })?;
                let backend = get_str(e, "backend")?.unwrap_or_else(|| "cycle".into());
                if backend != "cycle" && backend != "fast" {
                    return serr(format!("backend must be cycle or fast, got {backend:?}"));
                }
                ScenarioKind::Experiment(ExperimentSpec {
                    id: get_str(e, "id")?
                        .ok_or_else(|| SpecError("[experiment] needs an id".into()))?,
                    full: get_bool(e, "full")?.unwrap_or(false),
                    steps: get_usize(e, "steps")?.unwrap_or(2).max(1),
                    backend,
                })
            }
            "workload" => {
                let w = get_table(root, "workload")?.ok_or_else(|| {
                    SpecError("workload scenarios need a [workload] section".into())
                })?;
                let app_label = get_str(w, "app")?
                    .ok_or_else(|| SpecError("[workload] needs an app".into()))?;
                let app = match app_label.as_str() {
                    "pic" => WorkloadApp::Pic {
                        mesh: mesh3(w, "mesh")?.unwrap_or((8, 8, 8)),
                    },
                    "nbody" => WorkloadApp::Nbody {
                        bodies: get_usize(w, "bodies")?.unwrap_or(1024),
                    },
                    "fem" => WorkloadApp::Fem {
                        nx: get_usize(w, "nx")?.unwrap_or(32),
                        ny: get_usize(w, "ny")?.unwrap_or(32),
                    },
                    "ppm" => WorkloadApp::Ppm,
                    "pic-pvm" => WorkloadApp::PicPvm {
                        mesh: mesh3(w, "mesh")?.unwrap_or((8, 8, 8)),
                    },
                    "kernel-stream" => WorkloadApp::KernelStream {
                        elems: get_usize(w, "elems")?.unwrap_or(1 << 14),
                    },
                    other => return serr(format!("unknown workload app {other:?}")),
                };

                let topo = get_table(root, "topology")?;
                let hypernodes = topo
                    .map(|t| get_usize(t, "hypernodes"))
                    .transpose()?
                    .flatten()
                    .unwrap_or(2);

                let protocol = match get_table(root, "protocol")? {
                    None => ProtocolKind::DashSci,
                    Some(p) => {
                        let pname = get_str(p, "name")?
                            .ok_or_else(|| SpecError("[protocol] needs a name".into()))?;
                        ProtocolKind::from_label(&pname).ok_or_else(|| {
                            SpecError(format!(
                                "unknown protocol {pname:?} (valid: dash-sci, mesi, dragon)"
                            ))
                        })?
                    }
                };

                let pl = get_table(root, "placement")?;
                let threads = pl
                    .map(|t| get_usize(t, "threads"))
                    .transpose()?
                    .flatten()
                    .unwrap_or(8);
                let placement = match pl
                    .map(|t| get_str(t, "policy"))
                    .transpose()?
                    .flatten()
                    .as_deref()
                {
                    None | Some("uniform") => PlacementPolicy::Uniform,
                    Some("high-locality") => PlacementPolicy::HighLocality,
                    Some(other) => return serr(format!("unknown placement policy {other:?}")),
                };

                let sch = get_table(root, "schedule")?;
                let schedule = match sch
                    .map(|t| get_str(t, "policy"))
                    .transpose()?
                    .flatten()
                    .as_deref()
                {
                    None | Some("identity") => SchedulePolicySpec::Identity,
                    Some("reversed") => SchedulePolicySpec::Reversed,
                    Some("shuffled") => SchedulePolicySpec::Shuffled {
                        seed: sch
                            .map(|t| get_seed(t, "seed"))
                            .transpose()?
                            .flatten()
                            .unwrap_or(1),
                    },
                    Some(other) => return serr(format!("unknown schedule policy {other:?}")),
                };

                let (fault_seed, faults) = match get_table(root, "faults")? {
                    None => (0, Vec::new()),
                    Some(ft) => {
                        let seed = get_seed(ft, "seed")?.unwrap_or(0);
                        let events = match ft.get("events") {
                            None => Vec::new(),
                            Some(v) => {
                                let a = v.as_array().ok_or_else(|| {
                                    SpecError("[[faults.events]] must be an array of tables".into())
                                })?;
                                a.iter()
                                    .map(|x| {
                                        x.as_table()
                                            .ok_or_else(|| {
                                                SpecError("fault events must be tables".into())
                                            })
                                            .and_then(parse_fault_event)
                                    })
                                    .collect::<Result<Vec<_>, _>>()?
                            }
                        };
                        (seed, events)
                    }
                };

                let tr = get_table(root, "trace")?;
                let trace = tr
                    .map(|t| get_bool(t, "enabled"))
                    .transpose()?
                    .flatten()
                    .unwrap_or(false);
                let trace_capacity = tr
                    .map(|t| get_usize(t, "capacity"))
                    .transpose()?
                    .flatten()
                    .unwrap_or(1 << 16);

                let insight = get_table(root, "insight")?
                    .map(|t| get_bool(t, "enabled"))
                    .transpose()?
                    .flatten()
                    .unwrap_or(false);

                let rollbacks = get_table(root, "recovery")?
                    .map(|t| get_u64(t, "rollbacks"))
                    .transpose()?
                    .flatten()
                    .unwrap_or(0) as u32;

                ScenarioKind::Workload(WorkloadSpec {
                    app,
                    steps: get_usize(sc, "steps")?.unwrap_or(1).max(1),
                    hypernodes,
                    protocol,
                    threads,
                    placement,
                    schedule,
                    fault_seed,
                    faults,
                    trace,
                    trace_capacity,
                    insight,
                    checkpoint_every: get_usize(sc, "checkpoint_every")?.unwrap_or(0),
                    rollbacks,
                })
            }
            "builtin" => {
                let b = get_table(root, "builtin")?.ok_or_else(|| {
                    SpecError("builtin scenarios need a [builtin] section".into())
                })?;
                let op = match get_str(b, "op")?.as_deref() {
                    Some("panic") => BuiltinOp::Panic {
                        message: get_str(b, "message")?.unwrap_or_else(|| "injected panic".into()),
                    },
                    Some("hang") => BuiltinOp::Hang,
                    Some("noop") => BuiltinOp::Noop,
                    Some(other) => return serr(format!("unknown builtin op {other:?}")),
                    None => return serr("[builtin] needs an op"),
                };
                ScenarioKind::Builtin(op)
            }
            other => return serr(format!("unknown scenario kind {other:?}")),
        };

        let spec = ScenarioSpec {
            name,
            kind,
            timeout_secs: get_f64(sc, "timeout_secs")?.unwrap_or(300.0),
            retries: get_u64(sc, "retries")?.unwrap_or(0) as u32,
            backoff_ms: get_u64(sc, "backoff_ms")?.unwrap_or(100),
            expect,
            golden,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Structural validation beyond what parsing enforces.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.timeout_secs <= 0.0 {
            return serr("timeout_secs must be positive");
        }
        match &self.kind {
            ScenarioKind::Workload(w) => {
                if w.threads == 0 {
                    return serr("placement threads must be at least 1");
                }
                if w.hypernodes == 0 || w.hypernodes > 128 {
                    return serr("topology hypernodes must be in 1..=128");
                }
                if w.checkpoint_every > 0 && !matches!(w.app, WorkloadApp::KernelStream { .. }) {
                    return serr(format!(
                        "checkpoint_every is only supported by the kernel-stream workload, not {}",
                        w.app.label()
                    ));
                }
                if matches!(w.app, WorkloadApp::KernelStream { elems: 0 }) {
                    return serr("kernel-stream elems must be at least 1");
                }
                if w.rollbacks > 0 && !matches!(w.app, WorkloadApp::KernelStream { .. }) {
                    return serr(format!(
                        "[recovery] rollbacks is only supported by the kernel-stream \
                         workload, not {}",
                        w.app.label()
                    ));
                }
                if w.rollbacks > 0 && w.checkpoint_every == 0 {
                    return serr(
                        "[recovery] rollbacks needs checkpoint_every > 0 \
                         (checkpoints set the rollback granularity)",
                    );
                }
            }
            ScenarioKind::Experiment(e) => {
                if !self.golden.is_empty() {
                    return serr(format!(
                        "experiment scenario {:?} cannot carry [golden] expectations \
                         (experiments gate themselves)",
                        e.id
                    ));
                }
            }
            ScenarioKind::Builtin(_) => {}
        }
        Ok(())
    }

    /// Serialize back to canonical TOML.
    pub fn to_toml_string(&self) -> String {
        let mut root = Table::new();
        root.insert("schema".into(), Value::Int(SPEC_SCHEMA));

        let mut sc = Table::new();
        sc.insert("name".into(), Value::Str(self.name.clone()));
        sc.insert("timeout_secs".into(), Value::Float(self.timeout_secs));
        sc.insert("retries".into(), Value::Int(self.retries as i64));
        sc.insert("backoff_ms".into(), Value::Int(self.backoff_ms as i64));
        sc.insert("expect".into(), Value::Str(self.expect.label().into()));

        match &self.kind {
            ScenarioKind::Experiment(e) => {
                sc.insert("kind".into(), Value::Str("experiment".into()));
                let mut t = Table::new();
                t.insert("id".into(), Value::Str(e.id.clone()));
                t.insert("full".into(), Value::Bool(e.full));
                t.insert("steps".into(), Value::Int(e.steps as i64));
                t.insert("backend".into(), Value::Str(e.backend.clone()));
                root.insert("experiment".into(), Value::Table(t));
            }
            ScenarioKind::Builtin(op) => {
                sc.insert("kind".into(), Value::Str("builtin".into()));
                let mut t = Table::new();
                t.insert("op".into(), Value::Str(op.label().into()));
                if let BuiltinOp::Panic { message } = op {
                    t.insert("message".into(), Value::Str(message.clone()));
                }
                root.insert("builtin".into(), Value::Table(t));
            }
            ScenarioKind::Workload(w) => {
                sc.insert("kind".into(), Value::Str("workload".into()));
                sc.insert("steps".into(), Value::Int(w.steps as i64));
                if w.checkpoint_every > 0 {
                    sc.insert(
                        "checkpoint_every".into(),
                        Value::Int(w.checkpoint_every as i64),
                    );
                }

                let mut wt = Table::new();
                wt.insert("app".into(), Value::Str(w.app.label().into()));
                match &w.app {
                    WorkloadApp::Pic { mesh } | WorkloadApp::PicPvm { mesh } => {
                        wt.insert(
                            "mesh".into(),
                            Value::Array(vec![
                                Value::Int(mesh.0 as i64),
                                Value::Int(mesh.1 as i64),
                                Value::Int(mesh.2 as i64),
                            ]),
                        );
                    }
                    WorkloadApp::Nbody { bodies } => {
                        wt.insert("bodies".into(), Value::Int(*bodies as i64));
                    }
                    WorkloadApp::Fem { nx, ny } => {
                        wt.insert("nx".into(), Value::Int(*nx as i64));
                        wt.insert("ny".into(), Value::Int(*ny as i64));
                    }
                    WorkloadApp::Ppm => {}
                    WorkloadApp::KernelStream { elems } => {
                        wt.insert("elems".into(), Value::Int(*elems as i64));
                    }
                }
                root.insert("workload".into(), Value::Table(wt));

                let mut topo = Table::new();
                topo.insert("hypernodes".into(), Value::Int(w.hypernodes as i64));
                root.insert("topology".into(), Value::Table(topo));

                // The default protocol stays implicit so pre-protocol
                // specs round-trip byte-identically.
                if w.protocol != ProtocolKind::DashSci {
                    let mut pt = Table::new();
                    pt.insert("name".into(), Value::Str(w.protocol.label().into()));
                    root.insert("protocol".into(), Value::Table(pt));
                }

                let mut pl = Table::new();
                pl.insert("threads".into(), Value::Int(w.threads as i64));
                pl.insert(
                    "policy".into(),
                    Value::Str(
                        match w.placement {
                            PlacementPolicy::Uniform => "uniform",
                            PlacementPolicy::HighLocality => "high-locality",
                        }
                        .into(),
                    ),
                );
                root.insert("placement".into(), Value::Table(pl));

                let mut st = Table::new();
                match w.schedule {
                    SchedulePolicySpec::Identity => {
                        st.insert("policy".into(), Value::Str("identity".into()));
                    }
                    SchedulePolicySpec::Reversed => {
                        st.insert("policy".into(), Value::Str("reversed".into()));
                    }
                    SchedulePolicySpec::Shuffled { seed } => {
                        st.insert("policy".into(), Value::Str("shuffled".into()));
                        st.insert("seed".into(), Value::Int(seed as i64));
                    }
                }
                root.insert("schedule".into(), Value::Table(st));

                if w.fault_seed != 0 || !w.faults.is_empty() {
                    let mut ft = Table::new();
                    ft.insert("seed".into(), Value::Int(w.fault_seed as i64));
                    if !w.faults.is_empty() {
                        let events: Vec<Value> = w
                            .faults
                            .iter()
                            .map(|e| Value::Table(fault_event_table(e)))
                            .collect();
                        ft.insert("events".into(), Value::Array(events));
                    }
                    root.insert("faults".into(), Value::Table(ft));
                }

                if w.trace {
                    let mut tt = Table::new();
                    tt.insert("enabled".into(), Value::Bool(true));
                    tt.insert("capacity".into(), Value::Int(w.trace_capacity as i64));
                    root.insert("trace".into(), Value::Table(tt));
                }

                if w.insight {
                    let mut it = Table::new();
                    it.insert("enabled".into(), Value::Bool(true));
                    root.insert("insight".into(), Value::Table(it));
                }

                if w.rollbacks > 0 {
                    let mut rt = Table::new();
                    rt.insert("rollbacks".into(), Value::Int(w.rollbacks as i64));
                    root.insert("recovery".into(), Value::Table(rt));
                }
            }
        }
        root.insert("scenario".into(), Value::Table(sc));

        if !self.golden.is_empty() {
            let mut g = Table::new();
            for (name, v) in self.golden.fields() {
                g.insert(name.into(), Value::Int(v as i64));
            }
            root.insert("golden".into(), Value::Table(g));
        }

        toml::to_toml(&root)
    }
}

fn fault_event_table(e: &FaultEvent) -> Table {
    let mut t = Table::new();
    t.insert("kind".into(), Value::Str(e.label().into()));
    match *e {
        FaultEvent::RingStalls { prob, stall } => {
            t.insert("prob".into(), Value::Float(prob));
            t.insert("stall_cycles".into(), Value::Int(stall as i64));
        }
        FaultEvent::MsgFaults { drop, dup } => {
            t.insert("drop".into(), Value::Float(drop));
            t.insert("dup".into(), Value::Float(dup));
        }
        FaultEvent::SpawnFail { prob } => {
            t.insert("prob".into(), Value::Float(prob));
        }
        FaultEvent::CpuFail { cpu, at_cycle } => {
            t.insert("cpu".into(), Value::Int(cpu as i64));
            t.insert("at_cycle".into(), Value::Int(at_cycle as i64));
        }
        FaultEvent::LinkFail {
            ring,
            at_cycle,
            reroute_cycles,
        } => {
            t.insert("ring".into(), Value::Int(ring as i64));
            t.insert("at_cycle".into(), Value::Int(at_cycle as i64));
            t.insert("reroute_cycles".into(), Value::Int(reroute_cycles as i64));
        }
        FaultEvent::GcbDegrade { node, at_cycle } => {
            t.insert("node".into(), Value::Int(node as i64));
            t.insert("at_cycle".into(), Value::Int(at_cycle as i64));
        }
        // All transient coherence-fault kinds carry one probability.
        FaultEvent::InvalDrop { prob }
        | FaultEvent::InvalDup { prob }
        | FaultEvent::InvalDelay { prob }
        | FaultEvent::UpdateLoss { prob }
        | FaultEvent::AckStale { prob }
        | FaultEvent::LineCorrupt { prob }
        | FaultEvent::TransientPersist { prob } => {
            t.insert("prob".into(), Value::Float(prob));
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL_WORKLOAD: &str = r#"
schema = 1

[scenario]
name = "pic-faulty-8"
kind = "workload"
steps = 2
timeout_secs = 60.0
retries = 1
backoff_ms = 50
expect = "pass"

[workload]
app = "pic"
mesh = [8, 8, 8]

[topology]
hypernodes = 2

[placement]
threads = 8
policy = "uniform"

[schedule]
policy = "shuffled"
seed = 9

[faults]
seed = 7

[[faults.events]]
kind = "ring-stalls"
prob = 0.01
stall_cycles = 500

[[faults.events]]
kind = "cpu-fail"
cpu = 2
at_cycle = 400000

[golden]
cycles = 123456
reads = 1000
"#;

    #[test]
    fn parses_a_full_workload_spec() {
        let s = ScenarioSpec::from_toml_str(FULL_WORKLOAD).unwrap();
        assert_eq!(s.name, "pic-faulty-8");
        assert_eq!(s.retries, 1);
        assert_eq!(s.expect, Expectation::Pass);
        let ScenarioKind::Workload(w) = &s.kind else {
            panic!("expected workload kind");
        };
        assert_eq!(w.app, WorkloadApp::Pic { mesh: (8, 8, 8) });
        assert_eq!(w.schedule, SchedulePolicySpec::Shuffled { seed: 9 });
        assert_eq!(w.fault_seed, 7);
        assert_eq!(w.faults.len(), 2);
        assert_eq!(w.faults[1].label(), "cpu-fail");
        assert_eq!(s.golden.cycles, Some(123456));
        assert_eq!(s.golden.fields().len(), 2);
    }

    #[test]
    fn round_trips_canonical_toml() {
        let s = ScenarioSpec::from_toml_str(FULL_WORKLOAD).unwrap();
        let text = s.to_toml_string();
        let s2 = ScenarioSpec::from_toml_str(&text).unwrap();
        assert_eq!(s, s2, "canonical form:\n{text}");
    }

    #[test]
    fn insight_table_round_trips_and_stays_out_of_plain_specs() {
        // insight defaults off and an off spec serializes without the table,
        // so pre-existing spec files keep their exact bytes.
        let plain = ScenarioSpec::from_toml_str(FULL_WORKLOAD).unwrap();
        let ScenarioKind::Workload(ref w) = plain.kind else {
            panic!("expected workload kind");
        };
        assert!(!w.insight);
        assert!(!plain.to_toml_string().contains("[insight]"));

        let text = format!("{FULL_WORKLOAD}\n[insight]\nenabled = true\n");
        let s = ScenarioSpec::from_toml_str(&text).unwrap();
        let ScenarioKind::Workload(ref w) = s.kind else {
            panic!("expected workload kind");
        };
        assert!(w.insight);
        let canon = s.to_toml_string();
        assert!(canon.contains("[insight]"), "{canon}");
        let s2 = ScenarioSpec::from_toml_str(&canon).unwrap();
        assert_eq!(s, s2, "canonical form:\n{canon}");
    }

    #[test]
    fn experiment_and_builtin_specs_parse() {
        let e = ScenarioSpec::from_toml_str(
            "schema = 1\n[scenario]\nname = \"fig2\"\nkind = \"experiment\"\n[experiment]\nid = \"fig2\"\n",
        )
        .unwrap();
        assert!(matches!(e.kind, ScenarioKind::Experiment(ref x) if x.id == "fig2"));
        let b = ScenarioSpec::from_toml_str(
            "schema = 1\n[scenario]\nname = \"boom\"\nkind = \"builtin\"\nexpect = \"fail\"\n[builtin]\nop = \"panic\"\nmessage = \"pow\"\n",
        )
        .unwrap();
        assert!(matches!(
            b.kind,
            ScenarioKind::Builtin(BuiltinOp::Panic { ref message }) if message == "pow"
        ));
        assert_eq!(b.expect, Expectation::Fail);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        // Missing schema.
        assert!(ScenarioSpec::from_toml_str(
            "[scenario]\nname = \"x\"\nkind = \"builtin\"\n[builtin]\nop = \"noop\"\n"
        )
        .is_err());
        // Unknown kind.
        assert!(ScenarioSpec::from_toml_str(
            "schema = 1\n[scenario]\nname = \"x\"\nkind = \"magic\"\n"
        )
        .is_err());
        // Checkpoint on a non-kernel workload.
        let e = ScenarioSpec::from_toml_str(
            "schema = 1\n[scenario]\nname = \"x\"\nkind = \"workload\"\ncheckpoint_every = 1\n[workload]\napp = \"pic\"\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("kernel-stream"), "{e}");
        // Golden on an experiment.
        let e = ScenarioSpec::from_toml_str(
            "schema = 1\n[scenario]\nname = \"x\"\nkind = \"experiment\"\n[experiment]\nid = \"fig2\"\n[golden]\ncycles = 1\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("golden"), "{e}");
        // Bad fault event.
        let e = ScenarioSpec::from_toml_str(
            "schema = 1\n[scenario]\nname = \"x\"\nkind = \"workload\"\n[workload]\napp = \"pic\"\n[faults]\nseed = 1\n[[faults.events]]\nkind = \"meteor\"\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("meteor"), "{e}");
    }

    #[test]
    fn protocol_table_selects_backend_and_round_trips() {
        let text = "schema = 1\n[scenario]\nname = \"w\"\nkind = \"workload\"\n\
                    [workload]\napp = \"nbody\"\n[topology]\nhypernodes = 32\n\
                    [protocol]\nname = \"dragon\"\n";
        let s = ScenarioSpec::from_toml_str(text).unwrap();
        let ScenarioKind::Workload(w) = &s.kind else {
            panic!()
        };
        assert_eq!(w.protocol, ProtocolKind::Dragon);
        assert_eq!(w.hypernodes, 32);
        let canonical = s.to_toml_string();
        assert!(canonical.contains("[protocol]"), "{canonical}");
        assert_eq!(ScenarioSpec::from_toml_str(&canonical).unwrap(), s);
    }

    #[test]
    fn default_protocol_stays_implicit_in_canonical_form() {
        let s = ScenarioSpec::from_toml_str(FULL_WORKLOAD).unwrap();
        let ScenarioKind::Workload(w) = &s.kind else {
            panic!()
        };
        assert_eq!(w.protocol, ProtocolKind::DashSci);
        assert!(!s.to_toml_string().contains("[protocol]"));
    }

    #[test]
    fn unknown_protocol_name_is_rejected_with_valid_labels() {
        let e = ScenarioSpec::from_toml_str(
            "schema = 1\n[scenario]\nname = \"w\"\nkind = \"workload\"\n\
             [workload]\napp = \"nbody\"\n[protocol]\nname = \"moesi\"\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("moesi"), "{e}");
        assert!(e.to_string().contains("dash-sci"), "{e}");
    }

    #[test]
    fn hypernodes_bound_extends_to_128() {
        let at = |n: usize| {
            ScenarioSpec::from_toml_str(&format!(
                "schema = 1\n[scenario]\nname = \"w\"\nkind = \"workload\"\n\
                 [workload]\napp = \"nbody\"\n[topology]\nhypernodes = {n}\n"
            ))
        };
        assert!(at(128).is_ok());
        let e = at(129).unwrap_err();
        assert!(e.to_string().contains("1..=128"), "{e}");
    }

    #[test]
    fn recovery_table_parses_validates_and_round_trips() {
        let text = "schema = 1\n[scenario]\nname = \"k\"\nkind = \"workload\"\n\
                    steps = 8\ncheckpoint_every = 2\n\
                    [workload]\napp = \"kernel-stream\"\nelems = 64\n\
                    [faults]\nseed = 3\n\
                    [[faults.events]]\nkind = \"inval-dup\"\nprob = 0.01\n\
                    [[faults.events]]\nkind = \"transient-persist\"\nprob = 1.0\n\
                    [recovery]\nrollbacks = 4\n";
        let s = ScenarioSpec::from_toml_str(text).unwrap();
        let ScenarioKind::Workload(w) = &s.kind else {
            panic!()
        };
        assert_eq!(w.rollbacks, 4);
        assert_eq!(w.faults.len(), 2);
        assert_eq!(w.faults[0].label(), "inval-dup");
        let canonical = s.to_toml_string();
        assert!(canonical.contains("[recovery]"), "{canonical}");
        assert_eq!(ScenarioSpec::from_toml_str(&canonical).unwrap(), s);

        // No budget → no table in canonical form.
        let ScenarioKind::Workload(w) = &ScenarioSpec::from_toml_str(FULL_WORKLOAD).unwrap().kind
        else {
            panic!()
        };
        assert_eq!(w.rollbacks, 0);

        // Rollbacks demand a kernel-stream workload…
        let e = ScenarioSpec::from_toml_str(
            "schema = 1\n[scenario]\nname = \"x\"\nkind = \"workload\"\n\
             [workload]\napp = \"pic\"\n[recovery]\nrollbacks = 1\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("kernel-stream"), "{e}");
        // …and a checkpoint cadence to roll back to.
        let e = ScenarioSpec::from_toml_str(
            "schema = 1\n[scenario]\nname = \"x\"\nkind = \"workload\"\n\
             [workload]\napp = \"kernel-stream\"\nelems = 8\n\
             [recovery]\nrollbacks = 1\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("checkpoint_every"), "{e}");
    }

    #[test]
    fn defaults_are_sane() {
        let s = ScenarioSpec::from_toml_str(
            "schema = 1\n[scenario]\nname = \"w\"\nkind = \"workload\"\n[workload]\napp = \"nbody\"\n",
        )
        .unwrap();
        let ScenarioKind::Workload(w) = &s.kind else {
            panic!()
        };
        assert_eq!(w.hypernodes, 2);
        assert_eq!(w.threads, 8);
        assert_eq!(w.placement, PlacementPolicy::Uniform);
        assert_eq!(w.schedule, SchedulePolicySpec::Identity);
        assert!(w.faults.is_empty());
        assert!(!w.trace);
        assert_eq!(s.timeout_secs, 300.0);
        assert_eq!(s.retries, 0);
    }
}
