//! A minimal TOML reader/writer for scenario specs.
//!
//! The build environment has no registry access, so the spec format
//! is parsed by this small in-tree implementation instead of the
//! crates.io `toml` crate. It covers the subset the scenario files
//! use — and `to_toml` emits exactly that subset, so parse →
//! serialize → parse round-trips (property-tested in the crate's
//! round-trip suite):
//!
//! * `[table]` and nested `[table.subtable]` headers
//! * `[[array-of-tables]]` headers
//! * `key = value` with bare keys
//! * basic strings with `\"`, `\\`, `\n`, `\t` escapes
//! * integers (optional sign and `_` separators), floats, booleans
//! * single-line arrays of scalars
//! * `#` comments and blank lines
//!
//! Not supported (rejected with a parse error, never misread):
//! dotted keys, inline tables, multi-line strings and arrays,
//! literal/raw strings, dates.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A single-line array of scalars (or, internally, of tables for
    /// `[[...]]` sections).
    Array(Vec<Value>),
    /// A table of key → value.
    Table(Table),
}

/// A TOML table (sorted for deterministic serialization).
pub type Table = BTreeMap<String, Value>;

/// A parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based source line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TOML parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TomlError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError {
        line,
        message: message.into(),
    })
}

impl Value {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float (integers coerce, as TOML readers
    /// conventionally allow for numeric options).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a table, if it is one.
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }
}

/// Strip a trailing comment, honoring string quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn is_bare_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Split a `[a.b.c]` header path into components.
fn parse_path(path: &str, line: usize) -> Result<Vec<String>, TomlError> {
    let parts: Vec<&str> = path.split('.').map(str::trim).collect();
    if parts.iter().any(|p| !is_bare_key(p)) {
        return err(line, format!("bad table path {path:?}"));
    }
    Ok(parts.iter().map(|p| p.to_string()).collect())
}

/// Walk (creating as needed) to the table at `path`. The final
/// component may address an array-of-tables, in which case the walk
/// continues in its last element.
fn descend<'a>(
    root: &'a mut Table,
    path: &[String],
    line: usize,
) -> Result<&'a mut Table, TomlError> {
    let mut cur = root;
    for comp in path {
        let entry = cur
            .entry(comp.clone())
            .or_insert_with(|| Value::Table(Table::new()));
        cur = match entry {
            Value::Table(t) => t,
            Value::Array(a) => match a.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return err(line, format!("{comp:?} is not a table")),
            },
            _ => return err(line, format!("{comp:?} is not a table")),
        };
    }
    Ok(cur)
}

fn parse_string(s: &str, line: usize) -> Result<(String, usize), TomlError> {
    // s starts at the opening quote; returns (content, bytes consumed).
    let bytes = s.as_bytes();
    debug_assert_eq!(bytes[0], b'"');
    let mut out = String::new();
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                i += 1;
                match bytes.get(i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(c) => return err(line, format!("unsupported escape \\{}", *c as char)),
                    None => return err(line, "dangling escape at end of string"),
                }
                i += 1;
            }
            _ => {
                // Multi-byte UTF-8: copy the full character.
                let c = s[i..].chars().next().unwrap();
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
    err(line, "unterminated string")
}

fn parse_scalar(s: &str, line: usize) -> Result<Value, TomlError> {
    let s = s.trim();
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    let numeric = s.replace('_', "");
    if numeric.contains('.') || numeric.contains(['e', 'E']) {
        if let Ok(x) = numeric.parse::<f64>() {
            return Ok(Value::Float(x));
        }
    }
    if let Ok(i) = numeric.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    err(line, format!("cannot parse value {s:?}"))
}

fn parse_value(s: &str, line: usize) -> Result<Value, TomlError> {
    let s = s.trim();
    if s.is_empty() {
        return err(line, "missing value");
    }
    if s.starts_with('"') {
        let (content, used) = parse_string(s, line)?;
        if !s[used..].trim().is_empty() {
            return err(
                line,
                format!("trailing characters after string: {:?}", &s[used..]),
            );
        }
        return Ok(Value::Str(content));
    }
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| TomlError {
            line,
            message: "unterminated array (multi-line arrays are not supported)".into(),
        })?;
        let mut items = Vec::new();
        for piece in split_array_items(inner, line)? {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            items.push(parse_value(piece, line)?);
        }
        return Ok(Value::Array(items));
    }
    if s == "{" || s.starts_with('{') {
        return err(line, "inline tables are not supported");
    }
    parse_scalar(s, line)
}

/// Split array contents on commas, respecting strings and nesting.
fn split_array_items(s: &str, line: usize) -> Result<Vec<&str>, TomlError> {
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => {
                depth = depth.checked_sub(1).ok_or_else(|| TomlError {
                    line,
                    message: "unbalanced brackets in array".into(),
                })?;
            }
            ',' if !in_str && depth == 0 => {
                items.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_str || depth != 0 {
        return err(line, "unbalanced quotes or brackets in array");
    }
    items.push(&s[start..]);
    Ok(items)
}

/// Parse a TOML document into its root table.
pub fn parse(text: &str) -> Result<Table, TomlError> {
    let mut root = Table::new();
    let mut current_path: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            let path = parse_path(inner, lineno)?;
            let (last, parents) = path.split_last().unwrap();
            let parent = descend(&mut root, parents, lineno)?;
            let entry = parent
                .entry(last.clone())
                .or_insert_with(|| Value::Array(Vec::new()));
            match entry {
                Value::Array(a) => a.push(Value::Table(Table::new())),
                _ => return err(lineno, format!("{last:?} is not an array of tables")),
            }
            current_path = path;
            continue;
        }
        if let Some(inner) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let path = parse_path(inner, lineno)?;
            // Materialize the table (errors if a scalar sits there).
            descend(&mut root, &path, lineno)?;
            current_path = path;
            continue;
        }
        let Some(eq) = find_unquoted_eq(line) else {
            return err(lineno, format!("expected `key = value`, got {line:?}"));
        };
        let (key, value) = (line[..eq].trim(), &line[eq + 1..]);
        let key = if key.starts_with('"') {
            let (content, used) = parse_string(key, lineno)?;
            if !key[used..].trim().is_empty() {
                return err(lineno, "trailing characters after quoted key");
            }
            content
        } else {
            if !is_bare_key(key) {
                return err(
                    lineno,
                    format!("bad key {key:?} (dotted keys are not supported)"),
                );
            }
            key.to_string()
        };
        let value = parse_value(value, lineno)?;
        let table = descend(&mut root, &current_path.clone(), lineno)?;
        if table.insert(key.clone(), value).is_some() {
            return err(lineno, format!("duplicate key {key:?}"));
        }
    }
    Ok(root)
}

fn find_unquoted_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '=' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

fn scalar_to_toml(v: &Value) -> String {
    match v {
        Value::Str(s) => escape(s),
        Value::Int(i) => i.to_string(),
        // {:?} is the shortest representation that round-trips, and
        // always contains a `.` or an exponent, so it re-parses as a
        // float.
        Value::Float(x) => format!("{x:?}"),
        Value::Bool(b) => b.to_string(),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(scalar_to_toml).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Table(_) => unreachable!("tables are serialized via headers"),
    }
}

fn is_table_array(v: &Value) -> bool {
    matches!(v, Value::Array(a) if a.iter().all(|x| matches!(x, Value::Table(_))) && !a.is_empty())
}

fn emit_table(out: &mut String, path: &[String], table: &Table) {
    // Scalars and scalar arrays first, then subtables, then arrays of
    // tables — each with a full-path header.
    for (k, v) in table {
        if matches!(v, Value::Table(_)) || is_table_array(v) {
            continue;
        }
        out.push_str(&format!("{k} = {}\n", scalar_to_toml(v)));
    }
    for (k, v) in table {
        if let Value::Table(t) = v {
            let mut sub = path.to_vec();
            sub.push(k.clone());
            out.push_str(&format!("\n[{}]\n", sub.join(".")));
            emit_table(out, &sub, t);
        }
    }
    for (k, v) in table {
        if is_table_array(v) {
            let Value::Array(a) = v else { unreachable!() };
            let mut sub = path.to_vec();
            sub.push(k.clone());
            for item in a {
                let Value::Table(t) = item else {
                    unreachable!()
                };
                out.push_str(&format!("\n[[{}]]\n", sub.join(".")));
                emit_table(out, &sub, t);
            }
        }
    }
}

/// Serialize a root table back to TOML (the canonical subset this
/// module parses; keys come out sorted, so serialization is
/// deterministic).
pub fn to_toml(root: &Table) -> String {
    let mut out = String::new();
    emit_table(&mut out, &[], root);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_scenario_shape() {
        let text = r#"
# a scenario
schema = 1

[scenario]
name = "pic-uniform"
kind = "workload"   # trailing comment
timeout_secs = 12.5
retries = 2

[workload]
app = "pic"
mesh = [8, 8, 8]

[faults]
seed = 7

[[faults.events]]
kind = "ring-stalls"
prob = 0.01
stall_cycles = 500

[[faults.events]]
kind = "cpu-fail"
cpu = 2
at_cycle = 400000
"#;
        let t = parse(text).unwrap();
        assert_eq!(t["schema"].as_int(), Some(1));
        let sc = t["scenario"].as_table().unwrap();
        assert_eq!(sc["name"].as_str(), Some("pic-uniform"));
        assert_eq!(sc["timeout_secs"].as_float(), Some(12.5));
        let wl = t["workload"].as_table().unwrap();
        let mesh: Vec<i64> = wl["mesh"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(mesh, vec![8, 8, 8]);
        let events = t["faults"].as_table().unwrap()["events"]
            .as_array()
            .unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[1].as_table().unwrap()["kind"].as_str(),
            Some("cpu-fail")
        );
    }

    #[test]
    fn strings_with_escapes_and_hashes() {
        let t = parse(r#"msg = "a \"quoted\" # not a comment\n""#).unwrap();
        assert_eq!(t["msg"].as_str(), Some("a \"quoted\" # not a comment\n"));
    }

    #[test]
    fn rejects_what_it_does_not_support() {
        assert!(parse("a.b = 1").is_err(), "dotted keys");
        assert!(parse("a = { b = 1 }").is_err(), "inline tables");
        assert!(parse("a = [1,\n2]").is_err(), "multi-line arrays");
        assert!(parse("a = 1\na = 2").is_err(), "duplicate keys");
        assert!(parse("a = ").is_err(), "missing value");
        assert!(parse("just text").is_err(), "bare text");
        assert!(parse("a = \"unterminated").is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"), "{e}");
    }

    #[test]
    fn round_trips_through_to_toml() {
        let text = r#"
schema = 1
[scenario]
name = "x"
ratio = 0.25
big = 1e300
flags = [true, false]
names = ["a", "b c"]
[scenario.sub]
k = -4
[[rows]]
v = 1
[[rows]]
v = 2
"#;
        let t = parse(text).unwrap();
        let emitted = to_toml(&t);
        let t2 = parse(&emitted).unwrap();
        assert_eq!(t, t2, "serialized form:\n{emitted}");
    }

    #[test]
    fn integers_allow_underscores_and_signs() {
        let t = parse("a = 1_200_000\nb = -3\nc = +5").unwrap();
        assert_eq!(t["a"].as_int(), Some(1_200_000));
        assert_eq!(t["b"].as_int(), Some(-3));
        assert_eq!(t["c"].as_int(), Some(5));
    }
}
