//! The supervised fleet runner.
//!
//! [`run_fleet`] executes a matrix of [`ScenarioSpec`]s across host
//! worker threads. Supervision is the point:
//!
//! * every cell runs under a [`HostSupervisor`] — a panic is caught
//!   and classified, a wall-clock overrun cancels the cell's
//!   [`CancelToken`] and detaches it;
//! * failed or timed-out cells are retried with exponential backoff,
//!   up to the spec's `retries`; cells that exhaust their retries are
//!   **quarantined** so the report calls out repeat offenders;
//! * kernel-stream cells that died mid-run resume from their latest
//!   SPPSNAP1 checkpoint on retry instead of starting over;
//! * golden expectations are gated bit-exactly, producing structured
//!   mismatch reports (field, expected, got) rather than panics;
//! * the fleet always finishes: `BENCH_scenarios.json` and the
//!   PASS/FAIL summary are produced even when every cell dies.
//!
//! The JSON report is deterministic — results are emitted in spec
//! order and host wall-clock times are kept out of it — so CI can
//! diff two runs byte-for-byte.

use crate::spec::{Expectation, GoldenSpec, ScenarioKind, ScenarioSpec};
use crate::workload::{run_builtin, run_workload, CheckpointPaths, WorkloadOutcome};
use spp_core::{CancelToken, HostSupervisor, MemStats, Supervised};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Report schema of `BENCH_scenarios.json`.
pub const REPORT_SCHEMA: i64 = 1;

/// A registered experiment runner: the legacy harness experiments are
/// injected by the caller (the bench crate) so the engine does not
/// depend on them.
pub type ExperimentFn = fn(&ExperimentOpts) -> String;

/// The knobs an experiment-kind scenario forwards to its runner
/// (mirrors the bench harness `Opts` without depending on it).
#[derive(Debug, Clone)]
pub struct ExperimentOpts {
    /// Paper-size workloads.
    pub full: bool,
    /// Measured steps per configuration.
    pub steps: usize,
    /// Port backend (`"cycle"` or `"fast"`).
    pub backend: String,
}

/// The experiment registry: ordered `(id, runner)` pairs.
#[derive(Default)]
pub struct Registry {
    entries: Vec<(String, ExperimentFn)>,
}

impl Registry {
    /// An empty registry (workload/builtin-only fleets).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `id`, replacing any previous binding.
    pub fn register(&mut self, id: &str, f: ExperimentFn) {
        self.entries.retain(|(n, _)| n != id);
        self.entries.push((id.to_string(), f));
    }

    /// Look up `id`.
    pub fn get(&self, id: &str) -> Option<ExperimentFn> {
        self.entries.iter().find(|(n, _)| n == id).map(|(_, f)| *f)
    }

    /// Registered ids, in registration order.
    pub fn ids(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }
}

/// How a cell's final attempt ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Status {
    /// Completed and matched its golden expectations (if any).
    Pass,
    /// Panicked or returned an error.
    Fail {
        /// The panic payload or error string.
        error: String,
    },
    /// Exceeded its wall-clock budget.
    Timeout,
    /// Completed but diverged from its golden expectations.
    GoldenMismatch {
        /// Structured `(field, expected, got)` rows.
        diffs: Vec<(String, u64, u64)>,
    },
}

impl Status {
    /// Stable label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Status::Pass => "pass",
            Status::Fail { .. } => "fail",
            Status::Timeout => "timeout",
            Status::GoldenMismatch { .. } => "golden-mismatch",
        }
    }

    /// The expectation this status fulfils.
    fn as_expectation(&self) -> Expectation {
        match self {
            Status::Pass => Expectation::Pass,
            Status::Fail { .. } => Expectation::Fail,
            Status::Timeout => Expectation::Timeout,
            Status::GoldenMismatch { .. } => Expectation::GoldenMismatch,
        }
    }
}

/// The full record of one scenario's execution.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Final status.
    pub status: Status,
    /// Attempts made (1 = no retries needed).
    pub attempts: u32,
    /// True when the cell exhausted its retries and was quarantined.
    pub quarantined: bool,
    /// True when the final status matches the spec's declared
    /// expectation — the fleet's pass criterion.
    pub as_expected: bool,
    /// Deterministic observables of the last completed run (workload
    /// cells only).
    pub outcome: Option<WorkloadOutcome>,
    /// True when some attempt resumed from a checkpoint.
    pub resumed: bool,
    /// Host seconds for the cell (all attempts; reported in the text
    /// summary only, never in the JSON).
    pub host_secs: f64,
}

/// The whole fleet's report.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-scenario results, in spec order.
    pub results: Vec<ScenarioResult>,
}

/// Fleet-level configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Host worker threads executing cells (min 1).
    pub workers: usize,
    /// Directory for checkpoints (kernel-stream resume); `None`
    /// disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Cap applied on top of each spec's own timeout, seconds
    /// (`None` = spec timeouts used as-is).
    pub max_timeout_secs: Option<f64>,
    /// When set, the fleet appends one JSON line per cell lifecycle
    /// event (`start`, `retry`, `end`) to this file as it runs, so
    /// long fleets are observable live, not just post-mortem. The
    /// stream carries host wall-clock times and therefore never feeds
    /// `BENCH_scenarios.json`.
    pub heartbeat_path: Option<PathBuf>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 4,
            checkpoint_dir: None,
            max_timeout_secs: None,
            heartbeat_path: None,
        }
    }
}

/// Shared JSONL telemetry sink: one fleet-wide file, one line per
/// event, each line written whole under a mutex so concurrent worker
/// threads never interleave bytes mid-line. IO failures are swallowed
/// — telemetry must never fail a cell.
struct HeartbeatLog {
    file: Mutex<std::fs::File>,
    t0: Instant,
}

impl HeartbeatLog {
    fn create(path: &Path) -> Option<HeartbeatLog> {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let file = std::fs::File::create(path).ok()?;
        Some(HeartbeatLog {
            file: Mutex::new(file),
            t0: Instant::now(),
        })
    }

    /// Emit one heartbeat. `progress` is the cell's simulated clock as
    /// last published through its [`CancelToken`] — the watchdog clock
    /// made host-visible — and `wall_ms` is derived from the fleet's
    /// start so events from different cells share one timeline.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        cell: &str,
        event: &str,
        state: &str,
        attempt: u32,
        retries: u32,
        progress: u64,
        quarantined: Option<bool>,
    ) {
        let wall_ms = self.t0.elapsed().as_millis();
        let mut line = format!(
            "{{\"cell\": \"{}\", \"event\": \"{event}\", \"state\": \"{state}\", \
             \"attempt\": {attempt}, \"retries\": {retries}, \
             \"progress_cycles\": {progress}, \"wall_ms\": {wall_ms}",
            esc(cell)
        );
        if let Some(q) = quarantined {
            line.push_str(&format!(", \"quarantined\": {q}"));
        }
        line.push('}');
        if let Ok(mut f) = self.file.lock() {
            let _ = writeln!(f, "{line}");
        }
    }
}

/// Minimal JSON string escaping shared by the report and the
/// heartbeat stream.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn golden_diffs(golden: &GoldenSpec, out: &WorkloadOutcome) -> Vec<(String, u64, u64)> {
    let got = |name: &str| -> u64 {
        let s: &MemStats = &out.stats;
        match name {
            "cycles" => out.cycles,
            "reads" => s.reads,
            "writes" => s.writes,
            "hits" => s.hits,
            "sci_fetches" => s.sci_fetches,
            "ring_stalls" => s.ring_stalls,
            "uncached_ops" => s.uncached_ops,
            _ => unreachable!("unknown golden field {name}"),
        }
    };
    golden
        .fields()
        .into_iter()
        .filter_map(|(name, want)| {
            let have = got(name);
            (have != want).then(|| (name.to_string(), want, have))
        })
        .collect()
}

/// Execute one attempt of one scenario under supervision.
fn run_attempt(
    spec: &ScenarioSpec,
    registry: &Registry,
    ckpt: Option<&CheckpointPaths>,
    timeout: Duration,
    cancel: &CancelToken,
) -> (Status, Option<WorkloadOutcome>) {
    let supervisor = HostSupervisor::new(timeout);

    // Clone what the worker closure needs; specs are cheap.
    let spec2 = spec.clone();
    let ckpt2 = ckpt.cloned();
    let exp = match &spec.kind {
        ScenarioKind::Experiment(e) => {
            let Some(f) = registry.get(&e.id) else {
                return (
                    Status::Fail {
                        error: format!("no experiment {:?} in the registry", e.id),
                    },
                    None,
                );
            };
            Some((
                f,
                ExperimentOpts {
                    full: e.full,
                    steps: e.steps,
                    backend: e.backend.clone(),
                },
            ))
        }
        _ => None,
    };

    let cancel2 = cancel.clone();
    let supervised = supervisor.supervise(
        cancel,
        move || -> Result<Option<WorkloadOutcome>, String> {
            match &spec2.kind {
                ScenarioKind::Workload(w) => run_workload(w, &cancel2, ckpt2.as_ref()).map(Some),
                ScenarioKind::Builtin(op) => run_builtin(op, &cancel2).map(|_| None),
                ScenarioKind::Experiment(_) => {
                    let (f, opts) = exp.expect("experiment runner resolved above");
                    f(&opts);
                    Ok(None)
                }
            }
        },
    );

    match supervised {
        Supervised::Finished(Ok(outcome)) => {
            if let Some(out) = outcome {
                let diffs = golden_diffs(&spec.golden, &out);
                if diffs.is_empty() {
                    (Status::Pass, Some(out))
                } else {
                    (Status::GoldenMismatch { diffs }, Some(out))
                }
            } else {
                (Status::Pass, None)
            }
        }
        Supervised::Finished(Err(e)) => (Status::Fail { error: e }, None),
        Supervised::Panicked(msg) => (Status::Fail { error: msg }, None),
        Supervised::TimedOut { .. } => (Status::Timeout, None),
    }
}

/// Run the whole matrix. Always returns a complete report — a
/// panicking, hanging, or diverging cell is contained and classified,
/// never allowed to abort the fleet.
pub fn run_fleet(specs: &[ScenarioSpec], registry: &Registry, cfg: &FleetConfig) -> FleetReport {
    let n = specs.len();
    let slots: Vec<Mutex<Option<ScenarioResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = cfg.workers.max(1).min(n.max(1));
    let heartbeat = cfg.heartbeat_path.as_deref().and_then(HeartbeatLog::create);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = run_cell(&specs[i], registry, cfg, heartbeat.as_ref());
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });

    FleetReport {
        results: slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("every cell ran"))
            .collect(),
    }
}

/// Run one cell: attempts, backoff, checkpoint resume, quarantine.
fn run_cell(
    spec: &ScenarioSpec,
    registry: &Registry,
    cfg: &FleetConfig,
    heartbeat: Option<&HeartbeatLog>,
) -> ScenarioResult {
    let t0 = std::time::Instant::now();
    let mut timeout_secs = spec.timeout_secs;
    if let Some(cap) = cfg.max_timeout_secs {
        timeout_secs = timeout_secs.min(cap);
    }
    let timeout = Duration::from_secs_f64(timeout_secs);

    let wants_checkpoint = matches!(
        &spec.kind,
        ScenarioKind::Workload(w) if w.checkpoint_every > 0
    );
    let ckpt = match (&cfg.checkpoint_dir, wants_checkpoint) {
        (Some(dir), true) => {
            let _ = std::fs::create_dir_all(dir);
            let paths = CheckpointPaths::new(dir, &spec.name);
            // A stale checkpoint from a previous fleet must not seed
            // attempt 1.
            paths.remove();
            Some(paths)
        }
        _ => None,
    };

    let mut attempts = 0;
    let mut resumed = false;
    let mut progress = 0u64;
    let mut last = (
        Status::Fail {
            error: "scenario never attempted".into(),
        },
        None,
    );
    if let Some(hb) = heartbeat {
        hb.emit(&spec.name, "start", "running", 1, 0, 0, None);
    }
    while attempts <= spec.retries {
        if attempts > 0 {
            let backoff = spp_core::retry_backoff(spec.backoff_ms, attempts - 1);
            std::thread::sleep(Duration::from_millis(backoff));
        }
        attempts += 1;
        // A fresh token per attempt: a cancelled token from a
        // timed-out attempt must not abort the retry. Its progress
        // clock survives the attempt for telemetry.
        let cancel = CancelToken::new();
        last = run_attempt(spec, registry, ckpt.as_ref(), timeout, &cancel);
        progress = cancel.progress();
        if let Some(out) = &last.1 {
            if out.resumed_from.is_some() {
                resumed = true;
            }
        }
        match &last.0 {
            // Pass and golden-mismatch are both *completed* runs —
            // deterministic cells won't golden-diverge differently on
            // retry, so only failures and timeouts retry.
            Status::Pass | Status::GoldenMismatch { .. } => break,
            Status::Fail { .. } | Status::Timeout => {
                if attempts <= spec.retries {
                    if let Some(hb) = heartbeat {
                        hb.emit(
                            &spec.name,
                            "retry",
                            last.0.label(),
                            attempts,
                            attempts - 1,
                            progress,
                            None,
                        );
                    }
                }
            }
        }
    }
    if let Some(c) = &ckpt {
        c.remove();
    }

    let (status, outcome) = last;
    let exhausted =
        attempts > spec.retries && matches!(status, Status::Fail { .. } | Status::Timeout);
    let quarantined = exhausted && spec.retries > 0;
    if let Some(hb) = heartbeat {
        hb.emit(
            &spec.name,
            "end",
            status.label(),
            attempts,
            attempts - 1,
            progress,
            Some(quarantined),
        );
    }
    ScenarioResult {
        as_expected: status.as_expectation() == spec.expect,
        quarantined,
        name: spec.name.clone(),
        status,
        attempts,
        resumed,
        outcome,
        host_secs: t0.elapsed().as_secs_f64(),
    }
}

impl FleetReport {
    /// True when every cell's final status matches its declared
    /// expectation — the fleet's (and CI's) pass criterion.
    pub fn all_as_expected(&self) -> bool {
        self.results.iter().all(|r| r.as_expected)
    }

    /// Counts by final status label, plus quarantines:
    /// `(pass, fail, timeout, golden_mismatch, quarantined)`.
    pub fn counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for r in &self.results {
            match r.status {
                Status::Pass => c.0 += 1,
                Status::Fail { .. } => c.1 += 1,
                Status::Timeout => c.2 += 1,
                Status::GoldenMismatch { .. } => c.3 += 1,
            }
            if r.quarantined {
                c.4 += 1;
            }
        }
        c
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<28} {:>16} {:>9} {:>8} {:>6} {:>8}  notes\n",
            "scenario", "status", "attempts", "retries", "ok?", "secs"
        ));
        for r in &self.results {
            let mut notes = Vec::new();
            if r.quarantined {
                notes.push("QUARANTINED".to_string());
            }
            if r.resumed {
                notes.push("resumed-from-checkpoint".to_string());
            }
            if let Some(out) = &r.outcome {
                if out.rollbacks > 0 {
                    notes.push(format!("rolled-back-{}x", out.rollbacks));
                }
            }
            match &r.status {
                Status::Fail { error } => {
                    let mut e = error.replace('\n', " ");
                    if e.len() > 60 {
                        e.truncate(60);
                        e.push('…');
                    }
                    notes.push(e);
                }
                Status::GoldenMismatch { diffs } => {
                    for (f, want, got) in diffs {
                        notes.push(format!("{f}: want {want}, got {got}"));
                    }
                }
                _ => {}
            }
            s.push_str(&format!(
                "{:<28} {:>16} {:>9} {:>8} {:>6} {:>8.2}  {}\n",
                r.name,
                r.status.label(),
                r.attempts,
                r.attempts.saturating_sub(1),
                if r.as_expected { "yes" } else { "NO" },
                r.host_secs,
                notes.join("; ")
            ));
        }
        let (p, f, t, g, q) = self.counts();
        s.push_str(&format!(
            "\n{} scenarios: {p} pass, {f} fail, {t} timeout, {g} golden-mismatch, {q} quarantined — {}\n",
            self.results.len(),
            if self.all_as_expected() {
                "ALL AS EXPECTED"
            } else {
                "UNEXPECTED OUTCOMES"
            }
        ));
        s
    }

    /// Deterministic JSON for `BENCH_scenarios.json`: spec order, no
    /// host wall-clock, stable field order — two identical fleets
    /// produce byte-identical files.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {REPORT_SCHEMA},\n"));
        s.push_str("  \"experiment\": \"scenarios\",\n");
        let (p, f, t, g, q) = self.counts();
        s.push_str(&format!(
            "  \"summary\": {{\"total\": {}, \"pass\": {p}, \"fail\": {f}, \"timeout\": {t}, \"golden_mismatch\": {g}, \"quarantined\": {q}, \"all_as_expected\": {}}},\n",
            self.results.len(),
            self.all_as_expected()
        ));
        s.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"name\": \"{}\", ", esc(&r.name)));
            s.push_str(&format!("\"status\": \"{}\", ", r.status.label()));
            s.push_str(&format!("\"attempts\": {}, ", r.attempts));
            s.push_str(&format!("\"as_expected\": {}, ", r.as_expected));
            s.push_str(&format!("\"quarantined\": {}, ", r.quarantined));
            s.push_str(&format!("\"resumed\": {}", r.resumed));
            match &r.status {
                Status::Fail { error } => {
                    s.push_str(&format!(", \"error\": \"{}\"", esc(error)));
                }
                Status::GoldenMismatch { diffs } => {
                    s.push_str(", \"golden_diffs\": [");
                    for (j, (field, want, got)) in diffs.iter().enumerate() {
                        if j > 0 {
                            s.push_str(", ");
                        }
                        s.push_str(&format!(
                            "{{\"field\": \"{field}\", \"expected\": {want}, \"got\": {got}}}"
                        ));
                    }
                    s.push(']');
                }
                _ => {}
            }
            if let Some(out) = &r.outcome {
                s.push_str(&format!(
                    ", \"cycles\": {}, \"reads\": {}, \"writes\": {}, \"hits\": {}, \"sci_fetches\": {}, \"ring_stalls\": {}, \"uncached_ops\": {}",
                    out.cycles,
                    out.stats.reads,
                    out.stats.writes,
                    out.stats.hits,
                    out.stats.sci_fetches,
                    out.stats.ring_stalls,
                    out.stats.uncached_ops,
                ));
                // Appended only when nonzero so pre-recovery reports
                // stay byte-identical.
                if out.stats.recoveries > 0 || out.rollbacks > 0 {
                    s.push_str(&format!(
                        ", \"recoveries\": {}, \"rollbacks\": {}",
                        out.stats.recoveries, out.rollbacks
                    ));
                }
            }
            s.push('}');
            if i + 1 < self.results.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BuiltinOp, ScenarioSpec, WorkloadApp};

    fn quick(mut spec: ScenarioSpec, timeout: f64) -> ScenarioSpec {
        spec.timeout_secs = timeout;
        spec
    }

    #[test]
    fn a_panicking_cell_is_contained_and_classified() {
        let specs = vec![
            {
                let mut s = ScenarioSpec::builtin(
                    "boom",
                    BuiltinOp::Panic {
                        message: "deliberate".into(),
                    },
                );
                s.expect = Expectation::Fail;
                s
            },
            ScenarioSpec::builtin("fine", BuiltinOp::Noop),
        ];
        let report = run_fleet(&specs, &Registry::new(), &FleetConfig::default());
        assert_eq!(report.results.len(), 2);
        let boom = &report.results[0];
        assert!(matches!(&boom.status, Status::Fail { error } if error.contains("deliberate")));
        assert!(boom.as_expected);
        assert!(report.results[1].as_expected);
        assert!(report.all_as_expected());
    }

    #[test]
    fn a_hanging_cell_times_out_without_stalling_the_fleet() {
        let mut hang = quick(ScenarioSpec::builtin("hang", BuiltinOp::Hang), 0.2);
        hang.expect = Expectation::Timeout;
        let specs = vec![hang, ScenarioSpec::builtin("ok", BuiltinOp::Noop)];
        let report = run_fleet(&specs, &Registry::new(), &FleetConfig::default());
        assert_eq!(report.results[0].status, Status::Timeout);
        assert!(report.all_as_expected());
    }

    #[test]
    fn golden_mismatch_is_a_structured_diff_not_a_panic() {
        let mut s = ScenarioSpec::workload("tiny-kernel", WorkloadApp::KernelStream { elems: 64 });
        s.golden.cycles = Some(1); // wrong on purpose
        s.expect = Expectation::GoldenMismatch;
        let report = run_fleet(&[s], &Registry::new(), &FleetConfig::default());
        let r = &report.results[0];
        let Status::GoldenMismatch { diffs } = &r.status else {
            panic!("expected golden mismatch, got {:?}", r.status);
        };
        assert_eq!(diffs[0].0, "cycles");
        assert_eq!(diffs[0].1, 1);
        assert!(diffs[0].2 > 1);
        assert!(r.as_expected);
    }

    #[test]
    fn retries_exhausted_means_quarantine() {
        let mut s = ScenarioSpec::builtin(
            "flaky",
            BuiltinOp::Panic {
                message: "always".into(),
            },
        );
        s.retries = 2;
        s.backoff_ms = 1;
        s.expect = Expectation::Fail;
        let report = run_fleet(&[s], &Registry::new(), &FleetConfig::default());
        let r = &report.results[0];
        assert_eq!(r.attempts, 3);
        assert!(r.quarantined);
        assert!(r.as_expected);
        let (_, _, _, _, q) = report.counts();
        assert_eq!(q, 1);
    }

    #[test]
    fn json_is_deterministic_across_runs() {
        let specs = vec![
            ScenarioSpec::workload("k64", WorkloadApp::KernelStream { elems: 64 }),
            ScenarioSpec::builtin("nop", BuiltinOp::Noop),
        ];
        let a = run_fleet(&specs, &Registry::new(), &FleetConfig::default()).to_json();
        let b = run_fleet(&specs, &Registry::new(), &FleetConfig::default()).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema_version\": 1"));
    }

    #[test]
    fn heartbeats_cover_every_cell_and_leave_the_json_untouched() {
        let dir = std::env::temp_dir().join("spp-scenario-heartbeat-test");
        std::fs::create_dir_all(&dir).unwrap();
        let hb_path = dir.join("heartbeat.jsonl");

        let mut flaky = ScenarioSpec::builtin(
            "flaky",
            BuiltinOp::Panic {
                message: "always".into(),
            },
        );
        flaky.retries = 2;
        flaky.backoff_ms = 1;
        flaky.expect = Expectation::Fail;
        let specs = vec![
            flaky,
            ScenarioSpec::workload("k64", WorkloadApp::KernelStream { elems: 64 }),
            ScenarioSpec::builtin("nop", BuiltinOp::Noop),
        ];

        let silent = run_fleet(&specs, &Registry::new(), &FleetConfig::default()).to_json();
        let cfg = FleetConfig {
            heartbeat_path: Some(hb_path.clone()),
            ..FleetConfig::default()
        };
        let observed = run_fleet(&specs, &Registry::new(), &cfg);
        // Telemetry never perturbs the deterministic report.
        assert_eq!(observed.to_json(), silent);

        let stream = std::fs::read_to_string(&hb_path).unwrap();
        let lines: Vec<&str> = stream.lines().collect();
        for l in &lines {
            assert!(l.starts_with("{\"cell\": \""), "unparseable line: {l}");
            assert!(l.ends_with('}'), "unparseable line: {l}");
            for field in [
                "\"event\": ",
                "\"state\": ",
                "\"retries\": ",
                "\"progress_cycles\": ",
                "\"wall_ms\": ",
            ] {
                assert!(l.contains(field), "line missing {field}: {l}");
            }
        }
        let of = |cell: &str, event: &str| -> Vec<&&str> {
            lines
                .iter()
                .filter(|l| {
                    l.contains(&format!("\"cell\": \"{cell}\""))
                        && l.contains(&format!("\"event\": \"{event}\""))
                })
                .collect()
        };
        // Every cell starts and ends, including the quarantined one.
        for cell in ["flaky", "k64", "nop"] {
            assert_eq!(of(cell, "start").len(), 1, "{stream}");
            assert_eq!(of(cell, "end").len(), 1, "{stream}");
        }
        // Two retries show up as two retry heartbeats, and the end
        // event records the quarantine.
        assert_eq!(of("flaky", "retry").len(), 2, "{stream}");
        let end = of("flaky", "end")[0];
        assert!(end.contains("\"state\": \"fail\""), "{end}");
        assert!(end.contains("\"retries\": 2"), "{end}");
        assert!(end.contains("\"quarantined\": true"), "{end}");
        // The workload published its simulated clock on the way out.
        let kend = of("k64", "end")[0];
        assert!(!kend.contains("\"progress_cycles\": 0,"), "{kend}");
        std::fs::remove_file(&hb_path).unwrap();
    }

    #[test]
    fn summary_has_host_columns_the_json_never_sees() {
        let mut s = ScenarioSpec::builtin(
            "flaky",
            BuiltinOp::Panic {
                message: "always".into(),
            },
        );
        s.retries = 1;
        s.backoff_ms = 1;
        s.expect = Expectation::Fail;
        let report = run_fleet(&[s], &Registry::new(), &FleetConfig::default());
        let text = report.render();
        assert!(text.contains("retries"), "{text}");
        assert!(text.contains("secs"), "{text}");
        // One retry consumed, rendered in its own column.
        let row = text.lines().nth(1).unwrap();
        assert!(row.contains("flaky"), "{row}");
        let cols: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(cols[2], "2", "attempts column: {row}");
        assert_eq!(cols[3], "1", "retries column: {row}");
        // Host wall-clock stays out of the byte-stable JSON.
        let json = report.to_json();
        assert!(!json.contains("secs"), "{json}");
        assert!(!json.contains("wall_ms"), "{json}");
    }

    #[test]
    fn report_json_bytes_are_pinned() {
        let report = FleetReport {
            results: vec![
                ScenarioResult {
                    name: "alpha".into(),
                    status: Status::Pass,
                    attempts: 1,
                    quarantined: false,
                    as_expected: true,
                    outcome: None,
                    resumed: false,
                    host_secs: 12.5,
                },
                ScenarioResult {
                    name: "beta".into(),
                    status: Status::Fail {
                        error: "boom".into(),
                    },
                    attempts: 3,
                    quarantined: true,
                    as_expected: false,
                    outcome: None,
                    resumed: false,
                    host_secs: 0.25,
                },
            ],
        };
        let expected = "{\n\
            \x20 \"schema_version\": 1,\n\
            \x20 \"experiment\": \"scenarios\",\n\
            \x20 \"summary\": {\"total\": 2, \"pass\": 1, \"fail\": 1, \"timeout\": 0, \"golden_mismatch\": 0, \"quarantined\": 1, \"all_as_expected\": false},\n\
            \x20 \"results\": [\n\
            \x20   {\"name\": \"alpha\", \"status\": \"pass\", \"attempts\": 1, \"as_expected\": true, \"quarantined\": false, \"resumed\": false},\n\
            \x20   {\"name\": \"beta\", \"status\": \"fail\", \"attempts\": 3, \"as_expected\": false, \"quarantined\": true, \"resumed\": false, \"error\": \"boom\"}\n\
            \x20 ]\n}\n";
        assert_eq!(report.to_json(), expected);
    }

    #[test]
    fn experiment_cells_go_through_the_registry() {
        fn fake(_o: &ExperimentOpts) -> String {
            "ran".into()
        }
        let mut reg = Registry::new();
        reg.register("fake", fake);
        let spec = ScenarioSpec::experiment("fake-cell", "fake");
        let report = run_fleet(&[spec], &reg, &FleetConfig::default());
        assert_eq!(report.results[0].status, Status::Pass);

        let missing = ScenarioSpec::experiment("ghost", "not-there");
        let report = run_fleet(&[missing], &reg, &FleetConfig::default());
        assert!(
            matches!(&report.results[0].status, Status::Fail { error } if error.contains("registry"))
        );
    }
}
