//! # spp-scenario — declarative scenario specs and the supervised fleet
//!
//! The evaluation matrix of this repo — which application, on which
//! topology, under which fault plan, with which schedule and
//! placement, gated against which golden counters — used to live as
//! hand-rolled `repro-*` binaries. This crate turns each cell into a
//! **declarative TOML spec** ([`spec`]) and runs matrices of them
//! under a **supervised fleet** ([`engine`]):
//!
//! * crash isolation: a panicking cell is caught and classified, not
//!   allowed to take the fleet down;
//! * wall-clock supervision: a hanging cell is cancelled and recorded
//!   as a timeout;
//! * self-healing: failed cells retry with exponential backoff,
//!   kernel-stream cells resume from their latest SPPSNAP1
//!   checkpoint, and repeat offenders are quarantined;
//! * golden gating: bit-exact cycle/counter expectations produce
//!   structured diffs, never panics;
//! * the report (`BENCH_scenarios.json`) is deterministic and always
//!   written, even when every cell fails.
//!
//! ```
//! use spp_scenario::{run_fleet, FleetConfig, Registry, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_toml_str(r#"
//!     schema = 1
//!     [scenario]
//!     name = "smoke"
//!     kind = "workload"
//!     steps = 1
//!     [workload]
//!     app = "kernel-stream"
//!     elems = 64
//! "#).unwrap();
//! let report = run_fleet(&[spec], &Registry::new(), &FleetConfig::default());
//! assert!(report.all_as_expected());
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod spec;
pub mod toml;
pub mod workload;

pub use engine::{
    run_fleet, ExperimentFn, ExperimentOpts, FleetConfig, FleetReport, Registry, ScenarioResult,
    Status, REPORT_SCHEMA,
};
pub use spec::{
    BuiltinOp, Expectation, ExperimentSpec, GoldenSpec, PlacementPolicy, ScenarioKind,
    ScenarioSpec, SchedulePolicySpec, SpecError, WorkloadApp, WorkloadSpec, SPEC_SCHEMA,
};
pub use workload::{run_builtin, run_workload, CheckpointPaths, WorkloadOutcome};
