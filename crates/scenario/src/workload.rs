//! Workload runners: turn a [`WorkloadSpec`] into an assembled
//! simulation and run it to completion.
//!
//! Every runner is a pure function of its spec (plus an optional
//! checkpoint to resume from), returning the final simulated cycles
//! and memory-system counters — the quantities the golden gate
//! compares bit-exactly. Runners poll the supervisor's
//! [`CancelToken`] between steps so a timed-out cell winds down
//! instead of leaking a busy thread.

use crate::spec::{BuiltinOp, PlacementPolicy, SchedulePolicySpec, WorkloadApp, WorkloadSpec};
use fem::{Coding, SharedFem};
use nbody::{NbodyProblem, SharedNbody};
use pic::pvm::PvmPic;
use pic::{PicProblem, SharedPic};
use ppm::{PpmProblem, SharedPpm};
use spp_core::{
    CancelToken, CpuId, FaultPlan, Machine, MachineConfig, MemClass, MemStats, RingSink, SimError,
    Snapshot,
};
use spp_pvm::Pvm;
use spp_runtime::{Placement, Runtime, SchedulePolicy, Team};
use std::path::{Path, PathBuf};

/// The deterministic observables of one workload run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadOutcome {
    /// Elapsed simulated cycles over the measured steps.
    pub cycles: u64,
    /// Final memory-system counters of the simulated machine.
    pub stats: MemStats,
    /// Steps actually executed in this process (fewer than
    /// `spec.steps` after a resume).
    pub steps_run: usize,
    /// Step index this run resumed from, if it restored a checkpoint.
    pub resumed_from: Option<usize>,
    /// Checkpoints written during this run.
    pub checkpoints_written: usize,
    /// Checkpoint rollbacks performed in-run after a transient
    /// coherence fault exhausted its scrub budget.
    pub rollbacks: u32,
}

/// The checkpoint pair for a scenario: the SPPSNAP1 machine image and
/// a tiny sidecar carrying the host-side loop state (step counter and
/// accumulated cycles), which the machine snapshot intentionally does
/// not cover.
///
/// The sidecar's third field is the workload array's **region base
/// address**: restoring a snapshot replays the machine's allocation
/// sequence, so the region already exists in the restored machine and
/// must *not* be allocated a second time — the resume path reads the
/// base from the sidecar instead of calling `alloc` again. A sidecar
/// without its snapshot (or vice versa) is treated as no checkpoint
/// at all; always gate resume on [`CheckpointPaths::exists`].
#[derive(Debug, Clone)]
pub struct CheckpointPaths {
    /// SPPSNAP1 snapshot file.
    pub snap: PathBuf,
    /// Sidecar (`<step> <cycles> <region base>` as text).
    pub side: PathBuf,
}

impl CheckpointPaths {
    /// The conventional pair under `dir` for scenario `name`.
    pub fn new(dir: &Path, name: &str) -> Self {
        CheckpointPaths {
            snap: dir.join(format!("{name}.snap")),
            side: dir.join(format!("{name}.step")),
        }
    }

    /// True when both halves exist.
    #[must_use]
    pub fn exists(&self) -> bool {
        self.snap.is_file() && self.side.is_file()
    }

    /// Remove both halves (ignoring missing files).
    pub fn remove(&self) {
        let _ = std::fs::remove_file(&self.snap);
        let _ = std::fs::remove_file(&self.side);
    }
}

fn placement(p: PlacementPolicy) -> Placement {
    match p {
        PlacementPolicy::Uniform => Placement::Uniform,
        PlacementPolicy::HighLocality => Placement::HighLocality,
    }
}

fn schedule(s: SchedulePolicySpec) -> SchedulePolicy {
    match s {
        SchedulePolicySpec::Identity => SchedulePolicy::Identity,
        SchedulePolicySpec::Reversed => SchedulePolicy::Reversed,
        SchedulePolicySpec::Shuffled { seed } => SchedulePolicy::Shuffled { seed },
    }
}

fn build_machine(spec: &WorkloadSpec) -> Machine {
    let mut m = Machine::spp1000(spec.hypernodes).with_protocol(spec.protocol);
    if !spec.faults.is_empty() {
        m = m.with_faults(FaultPlan::from_events(spec.fault_seed, &spec.faults));
    }
    if spec.trace {
        m = m.with_trace_sink(Box::new(RingSink::new(spec.trace_capacity)));
    }
    if spec.insight {
        m = m.with_heatmap();
    }
    m
}

/// Enforce the attribution partition invariant at workload end: when
/// `[insight]` mounted a heatmap, its cycles and counters must sum
/// bit-exactly to the machine's. A violation is a cell failure, not a
/// silent report artifact.
fn check_insight(spec: &WorkloadSpec, m: &Machine) -> Result<(), String> {
    if spec.insight && !m.heat_partition_check() {
        return Err(
            "heat_partition_check failed: attributed cycles/counters do not sum \
                    to the machine totals"
                .to_string(),
        );
    }
    Ok(())
}

fn cancelled<T>() -> Result<T, String> {
    Err("cancelled by supervisor".to_string())
}

/// Run a workload spec to completion.
///
/// `ckpt` enables checkpoint/resume for the kernel-stream workload:
/// when the pair exists the run resumes from it, and when
/// `spec.checkpoint_every > 0` the run rewrites it every N steps.
/// Other workloads ignore `ckpt` (spec validation already rejects
/// `checkpoint_every` on them).
pub fn run_workload(
    spec: &WorkloadSpec,
    cancel: &CancelToken,
    ckpt: Option<&CheckpointPaths>,
) -> Result<WorkloadOutcome, String> {
    match spec.app {
        WorkloadApp::KernelStream { elems } => kernel_stream(spec, elems, cancel, ckpt),
        WorkloadApp::PicPvm { mesh } => pic_pvm(spec, mesh, cancel),
        _ => shared_app(spec, cancel),
    }
}

/// Run a builtin cell. `panic` panics (by design — the supervisor
/// must contain it), `hang` sleeps until cancelled, `noop` returns.
pub fn run_builtin(op: &BuiltinOp, cancel: &CancelToken) -> Result<(), String> {
    match op {
        BuiltinOp::Panic { message } => panic!("{message}"),
        BuiltinOp::Hang => {
            while !cancel.is_cancelled() {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            cancelled()
        }
        BuiltinOp::Noop => Ok(()),
    }
}

fn shared_app(spec: &WorkloadSpec, cancel: &CancelToken) -> Result<WorkloadOutcome, String> {
    let mut rt = Runtime::new(build_machine(spec)).with_schedule(schedule(spec.schedule));
    let team = Team::try_place(
        rt.machine.config(),
        spec.threads,
        &placement(spec.placement),
    )
    .map_err(|e| e.to_string())?;

    let mut cycles: u64 = 0;
    match spec.app {
        WorkloadApp::Pic { mesh } => {
            let mut app = SharedPic::new(
                &mut rt,
                PicProblem::with_mesh(mesh.0, mesh.1, mesh.2),
                &team,
            );
            app.step(&mut rt, &team); // warm-up
            for _ in 0..spec.steps {
                cancel.note_progress(rt.machine.clock());
                if cancel.is_cancelled() {
                    return cancelled();
                }
                cycles += app.step(&mut rt, &team).elapsed;
            }
        }
        WorkloadApp::Nbody { bodies } => {
            let mut app = SharedNbody::new(&mut rt, NbodyProblem::with_n(bodies), &team);
            app.step(&mut rt, &team);
            for _ in 0..spec.steps {
                cancel.note_progress(rt.machine.clock());
                if cancel.is_cancelled() {
                    return cancelled();
                }
                cycles += app.step(&mut rt, &team).0;
            }
        }
        WorkloadApp::Fem { nx, ny } => {
            let mut app =
                SharedFem::new(&mut rt, fem::structured(nx, ny), Coding::ScatterAdd, &team);
            app.step(&mut rt, &team, 0.2);
            for _ in 0..spec.steps {
                cancel.note_progress(rt.machine.clock());
                if cancel.is_cancelled() {
                    return cancelled();
                }
                cycles += app.step(&mut rt, &team, 0.2).0;
            }
        }
        WorkloadApp::Ppm => {
            let mut app = SharedPpm::new(&mut rt, PpmProblem::tiny(), &team);
            app.step(&mut rt, &team);
            for _ in 0..spec.steps {
                cancel.note_progress(rt.machine.clock());
                if cancel.is_cancelled() {
                    return cancelled();
                }
                cycles += app.step(&mut rt, &team).0;
            }
        }
        WorkloadApp::PicPvm { .. } | WorkloadApp::KernelStream { .. } => unreachable!(),
    }

    cancel.note_progress(rt.machine.clock());
    check_insight(spec, &rt.machine)?;
    Ok(WorkloadOutcome {
        cycles,
        stats: rt.machine.stats,
        steps_run: spec.steps,
        resumed_from: None,
        checkpoints_written: 0,
        rollbacks: 0,
    })
}

fn pic_pvm(
    spec: &WorkloadSpec,
    mesh: (usize, usize, usize),
    cancel: &CancelToken,
) -> Result<WorkloadOutcome, String> {
    let machine = build_machine(spec);
    let team = Team::try_place(machine.config(), spec.threads, &placement(spec.placement))
        .map_err(|e| e.to_string())?;
    let cpus: Vec<CpuId> = team.cpus().to_vec();
    let mut pvm = Pvm::new(machine, &cpus);
    let mut app = PvmPic::new(&mut pvm, PicProblem::with_mesh(mesh.0, mesh.1, mesh.2));
    app.step(&mut pvm); // warm-up
    let mut cycles = 0;
    for _ in 0..spec.steps {
        cancel.note_progress(pvm.machine.clock());
        if cancel.is_cancelled() {
            return cancelled();
        }
        cycles += app.step(&mut pvm).0;
    }
    cancel.note_progress(pvm.machine.clock());
    check_insight(spec, &pvm.machine)?;
    Ok(WorkloadOutcome {
        cycles,
        stats: pvm.machine.stats,
        steps_run: spec.steps,
        resumed_from: None,
        checkpoints_written: 0,
        rollbacks: 0,
    })
}

/// The kernel-stream workload: a seeded strided read-modify-write
/// sweep over a far-shared array, round-robined across the team's
/// CPUs. Its entire state is (machine, step counter, cycle
/// accumulator), so an SPPSNAP1 checkpoint plus the tiny sidecar is a
/// complete resume point and resumed runs are bit-identical to
/// uninterrupted ones (asserted in `tests/supervision.rs`).
fn kernel_stream(
    spec: &WorkloadSpec,
    elems: usize,
    cancel: &CancelToken,
    ckpt: Option<&CheckpointPaths>,
) -> Result<WorkloadOutcome, String> {
    let cfg = MachineConfig::spp1000(spec.hypernodes);
    let team = Team::try_place(&cfg, spec.threads, &placement(spec.placement))
        .map_err(|e| e.to_string())?;
    let plan =
        (!spec.faults.is_empty()).then(|| FaultPlan::from_events(spec.fault_seed, &spec.faults));

    let mut start_step = 0usize;
    let mut cycles: u64 = 0;
    let mut resumed_from = None;
    let mut machine;
    let base;
    match ckpt.filter(|c| c.exists()) {
        Some(c) => {
            // Restore replays the allocation sequence, so the region
            // already exists in the restored machine; its base comes
            // from the sidecar rather than a second alloc.
            let snap = Snapshot::load(&c.snap).map_err(|e| e.to_string())?;
            machine = snap
                .restore_expecting(cfg.clone(), plan.clone(), spec.protocol)
                .map_err(|e| e.to_string())?;
            let side = std::fs::read_to_string(&c.side)
                .map_err(|e| format!("checkpoint sidecar {}: {e}", c.side.display()))?;
            let mut it = side.split_whitespace();
            let mut parse = || {
                it.next()
                    .and_then(|x| x.parse::<u64>().ok())
                    .ok_or_else(|| format!("malformed checkpoint sidecar {}", c.side.display()))
            };
            start_step = parse()? as usize;
            cycles = parse()?;
            base = parse()?;
            resumed_from = Some(start_step);
        }
        None => {
            machine = build_machine(spec);
            base = machine.alloc(MemClass::FarShared, (elems * 8) as u64).base;
        }
    }

    let cpus = team.cpus();
    let mut checkpoints_written = 0;
    // In-memory rollback point for transient-fault escalations: the
    // latest checkpoint snapshot plus the host-side loop state it
    // corresponds to. Seeded from the start of the run so the first
    // checkpoint interval is covered too.
    let mut rollback_point =
        (spec.rollbacks > 0).then(|| (Snapshot::capture(&machine), start_step, cycles));
    let mut rollbacks: u32 = 0;
    let mut step = start_step;
    'steps: while step < spec.steps {
        cancel.note_progress(machine.clock());
        if cancel.is_cancelled() {
            return cancelled();
        }
        // A deterministic strided sweep: each element is read and
        // rewritten by a CPU chosen by (step, index), so lines
        // migrate between caches and the coherence machinery earns
        // its keep.
        for i in 0..elems {
            let cpu = cpus[(i + step) % cpus.len()];
            let addr = base + (i as u64) * 8;
            let access = machine
                .try_read(cpu, addr)
                .and_then(|r| machine.try_write(cpu, addr).map(|w| r + w));
            match access {
                Ok(c) => cycles += c,
                Err(e @ SimError::RecoveryExhausted { .. }) => {
                    // Detect-and-retry inside the machine gave up on
                    // this line; escalate to checkpoint rollback.
                    let Some((snap, rb_step, rb_cycles)) = &rollback_point else {
                        return Err(format!("{e} (no [recovery] rollback budget)"));
                    };
                    if rollbacks >= spec.rollbacks {
                        return Err(format!(
                            "{e} (rollback budget of {} exhausted)",
                            spec.rollbacks
                        ));
                    }
                    rollbacks += 1;
                    // Replaying the same draw positions would re-fire
                    // the exact same escalation: advance the restored
                    // plan's per-site counters past every decision
                    // the failed attempt consumed.
                    let floor = machine
                        .fault_plan()
                        .expect("escalation implies a fault plan")
                        .draws();
                    machine = snap
                        .restore_expecting(cfg.clone(), plan.clone(), spec.protocol)
                        .map_err(|e| format!("rollback restore: {e}"))?;
                    machine
                        .faults_mut()
                        .expect("restored machine keeps its plan")
                        .advance_draws(floor);
                    cycles = *rb_cycles;
                    step = *rb_step;
                    continue 'steps;
                }
                Err(e) => return Err(e.to_string()),
            }
        }
        step += 1;
        if spec.checkpoint_every > 0 && step.is_multiple_of(spec.checkpoint_every) {
            if let Some(rb) = rollback_point.as_mut() {
                *rb = (Snapshot::capture(&machine), step, cycles);
            }
            if let Some(c) = ckpt {
                Snapshot::capture(&machine)
                    .save(&c.snap)
                    .map_err(|e| format!("checkpoint {}: {e}", c.snap.display()))?;
                std::fs::write(&c.side, format!("{} {} {}\n", step, cycles, base))
                    .map_err(|e| format!("checkpoint sidecar {}: {e}", c.side.display()))?;
                checkpoints_written += 1;
            }
        }
    }

    cancel.note_progress(machine.clock());
    check_insight(spec, &machine)?;
    Ok(WorkloadOutcome {
        cycles,
        stats: machine.stats,
        steps_run: spec.steps - start_step,
        resumed_from,
        checkpoints_written,
        rollbacks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ScenarioKind, ScenarioSpec};

    fn kernel_spec(steps: usize, checkpoint_every: usize) -> WorkloadSpec {
        let mut s = ScenarioSpec::workload("k", WorkloadApp::KernelStream { elems: 256 });
        let ScenarioKind::Workload(ref mut w) = s.kind else {
            unreachable!()
        };
        w.steps = steps;
        w.checkpoint_every = checkpoint_every;
        w.threads = 4;
        w.clone()
    }

    #[test]
    fn kernel_stream_is_deterministic() {
        let spec = kernel_spec(3, 0);
        let cancel = CancelToken::new();
        let a = run_workload(&spec, &cancel, None).unwrap();
        let b = run_workload(&spec, &cancel, None).unwrap();
        assert_eq!(a, b);
        assert!(a.cycles > 0);
        assert!(a.stats.reads > 0);
    }

    #[test]
    fn kernel_stream_resume_is_bit_identical() {
        let dir = std::env::temp_dir().join("spp-scenario-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let paths = CheckpointPaths::new(&dir, "resume-test");
        paths.remove();

        let spec = kernel_spec(4, 2);
        let cancel = CancelToken::new();
        let uninterrupted = run_workload(&spec, &cancel, None).unwrap();

        // First run: stop after the step-2 checkpoint by cancelling
        // via a truncated spec.
        let mut half = spec.clone();
        half.steps = 2;
        let first = run_workload(&half, &cancel, Some(&paths)).unwrap();
        assert_eq!(first.checkpoints_written, 1);
        assert!(paths.exists());

        // Second run resumes from the checkpoint and finishes.
        let resumed = run_workload(&spec, &cancel, Some(&paths)).unwrap();
        assert_eq!(resumed.resumed_from, Some(2));
        assert_eq!(resumed.steps_run, 2);
        assert_eq!(resumed.cycles, uninterrupted.cycles);
        assert_eq!(resumed.stats, uninterrupted.stats);
        paths.remove();
    }

    /// A kernel-stream spec whose transient faults always persist, so
    /// every detected injection exhausts its scrub budget and the only
    /// way to finish is checkpoint rollback-and-replay.
    fn recovering_spec(rollbacks: u32) -> WorkloadSpec {
        use spp_core::FaultEvent;
        let mut w = kernel_spec(4, 2);
        w.app = WorkloadApp::KernelStream { elems: 64 };
        w.fault_seed = 61;
        w.faults = vec![
            FaultEvent::InvalDup { prob: 0.002 },
            FaultEvent::TransientPersist { prob: 1.0 },
        ];
        w.rollbacks = rollbacks;
        w
    }

    #[test]
    fn rollback_recovers_bit_identically_to_the_fault_free_run() {
        let cancel = CancelToken::new();
        let mut clean = recovering_spec(50);
        clean.faults.clear();
        clean.fault_seed = 0;
        clean.rollbacks = 0;
        let baseline = run_workload(&clean, &cancel, None).unwrap();

        let recovered = run_workload(&recovering_spec(50), &cancel, None).unwrap();
        assert!(recovered.rollbacks > 0, "no escalation ever happened");
        assert_eq!(recovered.cycles, baseline.cycles);
        assert!(
            recovered.stats.eq_modulo_recovery(&baseline.stats),
            "recovered stats diverged beyond recovery counters"
        );
        // Deterministic end to end: same spec, same rollbacks.
        let again = run_workload(&recovering_spec(50), &cancel, None).unwrap();
        assert_eq!(recovered, again);
    }

    #[test]
    fn exhausted_rollback_budget_is_a_typed_cell_failure() {
        let cancel = CancelToken::new();
        let err = run_workload(&recovering_spec(0), &cancel, None).unwrap_err();
        assert!(err.contains("scrub attempts"), "{err}");
        assert!(err.contains("no [recovery] rollback budget"), "{err}");

        let mut one_shot = recovering_spec(1);
        // Guarantee more than one escalation: every access detects.
        let Some(spp_core::FaultEvent::InvalDup { prob }) = one_shot.faults.first_mut() else {
            unreachable!()
        };
        *prob = 1.0;
        let err = run_workload(&one_shot, &cancel, None).unwrap_err();
        assert!(err.contains("rollback budget of 1 exhausted"), "{err}");
    }

    #[test]
    fn insight_runs_pass_the_partition_check_and_stay_bit_identical() {
        let cancel = CancelToken::new();
        let plain = kernel_spec(3, 0);
        let mut attributed = plain.clone();
        attributed.insight = true;

        let off = run_workload(&plain, &cancel, None).unwrap();
        let on = run_workload(&attributed, &cancel, None).unwrap();
        // Attribution observes the run; it must not perturb it.
        assert_eq!(off, on);
    }

    #[test]
    fn builtin_noop_passes_and_hang_honours_cancel() {
        let cancel = CancelToken::new();
        assert!(run_builtin(&BuiltinOp::Noop, &cancel).is_ok());
        cancel.cancel();
        let r = run_builtin(&BuiltinOp::Hang, &cancel);
        assert!(r.is_err());
    }

    #[test]
    fn cancelled_shared_app_returns_early() {
        let spec = match ScenarioSpec::workload("p", WorkloadApp::Ppm).kind {
            ScenarioKind::Workload(w) => w,
            _ => unreachable!(),
        };
        let cancel = CancelToken::new();
        cancel.cancel();
        let r = run_workload(&spec, &cancel, None);
        assert!(r.is_err());
    }
}
