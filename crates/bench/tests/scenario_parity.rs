//! Ported-experiment parity: a `kind = "experiment"` scenario cell
//! dispatches to exactly the same runner function the legacy
//! `repro-*` binary called, so its report text is bit-identical to a
//! direct module invocation — the porting satellite's acceptance
//! criterion, checked here on the cheap experiments.

use spp_bench::scenario_cli::registry;
use spp_bench::{Backend, Opts};
use spp_scenario::{run_fleet, ExperimentOpts, FleetConfig, ScenarioSpec, Status};

fn opts(steps: usize) -> Opts {
    Opts {
        full: false,
        steps,
        backend: Backend::Cycle,
    }
}

fn eopts(steps: usize) -> ExperimentOpts {
    ExperimentOpts {
        full: false,
        steps,
        backend: "cycle".into(),
    }
}

type DirectRunner = fn(&Opts) -> String;

#[test]
fn registry_dispatch_is_bit_identical_to_direct_module_calls() {
    // (id, direct runner) pairs for the cheap experiments; the
    // registry adapter must reproduce their output byte for byte.
    let cases: [(&str, DirectRunner); 3] = [
        ("latency", spp_bench::latency::run),
        ("fig2", spp_bench::fig2::run),
        ("table1", spp_bench::table1::run),
    ];
    let reg = registry();
    for (id, direct) in cases {
        let adapter = reg.get(id).unwrap_or_else(|| panic!("{id} not registered"));
        let via_engine = adapter(&eopts(2));
        let direct_out = direct(&opts(2));
        assert_eq!(via_engine, direct_out, "{id}: engine output diverged");
        assert!(!direct_out.is_empty(), "{id}: empty report");
        // Determinism across invocations, not just across call paths.
        assert_eq!(adapter(&eopts(2)), via_engine, "{id}: non-deterministic");
    }
}

#[test]
fn experiment_scenario_cells_run_under_the_fleet() {
    let specs = [
        ScenarioSpec::experiment("latency-cell", "latency"),
        ScenarioSpec::experiment("fig2-cell", "fig2"),
    ];
    let report = run_fleet(
        &specs,
        &registry(),
        &FleetConfig {
            workers: 2,
            ..FleetConfig::default()
        },
    );
    assert_eq!(report.results.len(), 2);
    for r in &report.results {
        assert!(
            matches!(r.status, Status::Pass),
            "{}: {:?}",
            r.name,
            r.status
        );
        assert!(r.as_expected);
    }
}

#[test]
fn an_unknown_experiment_id_is_a_contained_failure() {
    let spec = ScenarioSpec::experiment("ghost", "no-such-experiment");
    let report = run_fleet(
        &[spec],
        &registry(),
        &FleetConfig {
            workers: 1,
            ..FleetConfig::default()
        },
    );
    match &report.results[0].status {
        Status::Fail { error } => assert!(error.contains("no-such-experiment"), "{error}"),
        other => panic!("expected contained failure, got {other:?}"),
    }
}
