//! The §6 micro-claims: global-vs-local cache miss ratio (~8x),
//! in-cache vs. out-of-cache application speed (~3x on one hypernode),
//! and the local-vs-global primitive cost spectrum (2x to 10x).

use crate::{emit, f, Opts, Table};
use spp_core::{CpuId, Machine, MemClass, NodeId};

/// Average cycles per access when CPU 0 streams reads over `bytes`
/// of memory in `class`, after one warm-up sweep.
pub fn stream_cycles(m: &mut Machine, class: MemClass, bytes: u64, sweeps: usize) -> f64 {
    let r = m.alloc(class, bytes);
    let n = bytes / 8;
    let mut total = 0u64;
    for _ in 0..sweeps.max(1) {
        for i in 0..n {
            total += m.read(CpuId(0), r.addr(i * 8));
        }
    }
    total as f64 / (n * sweeps.max(1) as u64) as f64
}

/// Cold-miss latency of one line in `class` as seen from CPU 0.
pub fn cold_miss(m: &mut Machine, class: MemClass) -> u64 {
    let r = m.alloc(class, 4096);
    m.read(CpuId(0), r.addr(0))
}

/// Regenerate the §6 latency characterization.
pub fn run(_o: &Opts) -> String {
    let mut m = Machine::spp1000(2);
    let local = cold_miss(&mut m, MemClass::NearShared { node: NodeId(0) });
    let remote = cold_miss(&mut m, MemClass::NearShared { node: NodeId(1) });
    // GCB hit: second CPU of the same node touching the remote line.
    let r = m.alloc(MemClass::NearShared { node: NodeId(1) }, 4096);
    m.read(CpuId(0), r.addr(64));
    let gcb = m.read(CpuId(1), r.addr(64));

    // In-cache vs out-of-cache streaming (one hypernode).
    let mut m1 = Machine::spp1000(1);
    let near = MemClass::NearShared { node: NodeId(0) };
    let in_cache = stream_cycles(&mut m1, near, 256 << 10, 4); // fits 1 MB
    let mut m2 = Machine::spp1000(1);
    let out_cache = stream_cycles(&mut m2, near, 8 << 20, 2); // 8x the cache

    let mut t = Table::new(&["quantity", "measured", "paper"]);
    t.row(vec![
        "hypernode-local miss (cycles)".into(),
        local.to_string(),
        "50-60".into(),
    ]);
    t.row(vec![
        "global (SCI) miss (cycles)".into(),
        remote.to_string(),
        "~8x local".into(),
    ]);
    t.row(vec![
        "global:local miss ratio".into(),
        f(remote as f64 / local as f64, 2),
        "~8".into(),
    ]);
    t.row(vec![
        "global cache buffer hit (cycles)".into(),
        gcb.to_string(),
        "50-60".into(),
    ]);
    t.row(vec![
        "out-of-cache vs in-cache streaming".into(),
        f(out_cache / in_cache, 2),
        "~3 (application level)".into(),
    ]);
    emit("Section 6: latency characterization", &t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_is_about_8() {
        let mut m = Machine::spp1000(2);
        let l = cold_miss(&mut m, MemClass::NearShared { node: NodeId(0) });
        let r = cold_miss(&mut m, MemClass::NearShared { node: NodeId(1) });
        let ratio = r as f64 / l as f64;
        assert!((6.0..=10.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn streaming_ratio_is_a_few_x() {
        let near = MemClass::NearShared { node: NodeId(0) };
        let mut m1 = Machine::spp1000(1);
        let fast = stream_cycles(&mut m1, near, 128 << 10, 4);
        let mut m2 = Machine::spp1000(1);
        let slow = stream_cycles(&mut m2, near, 4 << 20, 2);
        let ratio = slow / fast;
        assert!((2.0..=15.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gcb_hits_are_local_speed() {
        let mut m = Machine::spp1000(2);
        let r = m.alloc(MemClass::NearShared { node: NodeId(1) }, 4096);
        m.read(CpuId(0), r.addr(0));
        let gcb = m.read(CpuId(1), r.addr(0));
        assert!((50..=60).contains(&gcb), "gcb hit {gcb}");
    }
}
