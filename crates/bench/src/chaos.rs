//! Chaos campaign (`repro-chaos`): sweep seeds × fault intensities ×
//! failure sites over the PIC, N-body, and FEM applications, running
//! every cell under the coherence-invariant checker and a
//! simulated-cycle watchdog. A failing cell's fault-event list is
//! *shrunk* by greedy delta debugging to a minimal reproducer, so a
//! degraded-mode bug arrives as "these ≤N events break invariant X on
//! workload Y at seed Z" instead of a 40-cell wall of red.
//!
//! The campaign's machine-readable summary is `BENCH_chaos.json`
//! (written by the `repro-chaos` binary under `target/repro`, or
//! `SPP_REPRO_DIR`), following the `BENCH_repro.json` convention.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::harness::panic_message;
use crate::{emit, Opts, Table};
use fem::{Coding, SharedFem};
use nbody::{NbodyProblem, SharedNbody};
use pic::{PicProblem, SharedPic};
use spp_core::{Cycles, FaultPlan, Machine, ProtocolKind, StallKind, Watchdog};
use spp_runtime::{Placement, Runtime, Team};

/// One injectable fault event of the campaign grid — the unit the
/// shrinker removes when minimizing a failing plan. Now the shared
/// [`spp_core::FaultEvent`] (the scenario engine's spec files and the
/// `repro-faults` sweep build plans from the same type); the old
/// `ChaosEvent` name is kept as an alias.
pub type ChaosEvent = spp_core::FaultEvent;

/// Assemble a seeded fault plan from an event list (the campaign's
/// plan constructor, also what the shrinker re-runs subsets through).
/// Delegates to the shared [`FaultPlan::from_events`] constructor.
pub fn build_plan(seed: u64, events: &[ChaosEvent]) -> FaultPlan {
    FaultPlan::from_events(seed, events)
}

/// The applications the campaign sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Shared-memory particle-in-cell (8x8x8 mesh, 8 CPUs, 2 nodes).
    Pic,
    /// Shared-memory N-body tree code (1024 bodies, 8 CPUs, 2 nodes).
    Nbody,
    /// Shared-memory FEM (32x32 structured mesh, 8 CPUs, 2 nodes).
    Fem,
}

impl Workload {
    /// Short stable label.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Pic => "pic",
            Workload::Nbody => "nbody",
            Workload::Fem => "fem",
        }
    }
}

/// Simulated-state observations from one completed cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellStats {
    /// Elapsed simulated cycles of the measured steps.
    pub elapsed: Cycles,
    /// SCI ring stalls injected.
    pub ring_stalls: u64,
    /// Transactions rerouted around a failed link.
    pub link_reroutes: u64,
    /// CPUs dead at the end of the run.
    pub dead_cpus: usize,
    /// Bitmask of severed rings at the end of the run.
    pub failed_rings: u8,
    /// Bitmask of GCB-degraded nodes at the end of the run.
    pub degraded_nodes: u128,
}

fn workload_run(w: Workload, proto: ProtocolKind, plan: FaultPlan, steps: usize) -> CellStats {
    let mut rt = Runtime::new(Machine::spp1000(2).with_protocol(proto).with_faults(plan));
    let elapsed = match w {
        Workload::Pic => {
            let team = Team::place(rt.machine.config(), 8, &Placement::Uniform);
            let mut sim = SharedPic::new(&mut rt, PicProblem::with_mesh(8, 8, 8), &team);
            sim.step(&mut rt, &team); // warm-up
            sim.run(&mut rt, &team, steps).elapsed
        }
        Workload::Nbody => {
            let team = Team::place(rt.machine.config(), 8, &Placement::Uniform);
            let mut sim = SharedNbody::new(&mut rt, NbodyProblem::with_n(1024), &team);
            sim.step(&mut rt, &team);
            sim.run(&mut rt, &team, steps).elapsed
        }
        Workload::Fem => {
            let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
            let mut sim =
                SharedFem::new(&mut rt, fem::structured(32, 32), Coding::ScatterAdd, &team);
            sim.step(&mut rt, &team, 0.3);
            sim.run(&mut rt, &team, 0.3, steps).elapsed
        }
    };
    let m = &rt.machine;
    CellStats {
        elapsed,
        ring_stalls: m.stats.ring_stalls,
        link_reroutes: m.stats.link_reroutes,
        dead_cpus: m.dead_cpu_list().len(),
        failed_rings: m.failed_rings(),
        degraded_nodes: m.degraded_nodes(),
    }
}

/// Run one campaign cell: `workload` under `build_plan(seed, events)`,
/// inside `catch_unwind` (the coherence checker's violations and any
/// other panic become the error string) and under a simulated-cycle
/// budget (a run blowing past it is reported as a watchdog trip, not
/// left to crawl forever).
pub fn run_cell(
    w: Workload,
    proto: ProtocolKind,
    seed: u64,
    events: &[ChaosEvent],
    steps: usize,
    budget: &Watchdog,
) -> Result<CellStats, String> {
    let plan = build_plan(seed, events);
    let out = catch_unwind(AssertUnwindSafe(|| workload_run(w, proto, plan, steps)));
    match out {
        Err(p) => Err(panic_message(p)),
        Ok(stats) => {
            if budget.expired(stats.elapsed) {
                Err(budget
                    .trip(
                        StallKind::RetryLoop,
                        stats.elapsed,
                        format!("{} cell exceeded its simulated-cycle budget", w.label()),
                    )
                    .to_string())
            } else {
                Ok(stats)
            }
        }
    }
}

/// Greedy delta-debugging shrinker: drop one item at a time, keeping
/// each removal that preserves the failure, until no single removal
/// does. `fails` must be deterministic (the campaign's cells are).
/// The input must itself fail; the result is a locally-minimal failing
/// subset in the original order. Shared with the race campaign, which
/// shrinks schedule transpositions instead of fault events.
pub fn shrink<T: Clone>(items: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut cur = items.to_vec();
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < cur.len() {
            let mut candidate = cur.clone();
            candidate.remove(i);
            if fails(&candidate) {
                cur = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
    }
    cur
}

/// [`shrink`] specialised to fault-event lists (the chaos campaign's
/// historical entry point).
pub fn shrink_events(
    events: &[ChaosEvent],
    fails: impl FnMut(&[ChaosEvent]) -> bool,
) -> Vec<ChaosEvent> {
    shrink(events, fails)
}

/// One grid cell (what to run).
#[derive(Debug, Clone)]
pub struct Cell {
    /// The application.
    pub workload: Workload,
    /// The coherence protocol the simulated machine runs.
    pub protocol: ProtocolKind,
    /// Fault-plan seed.
    pub seed: u64,
    /// Fault events layered onto the plan.
    pub events: Vec<ChaosEvent>,
}

/// One grid cell's outcome (what happened).
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: Cell,
    /// Observations on success.
    pub stats: Option<CellStats>,
    /// Panic / watchdog message on failure.
    pub failure: Option<String>,
    /// Minimal failing event subset (present only on failure).
    pub shrunk: Option<Vec<ChaosEvent>>,
}

impl CellResult {
    /// Did the cell pass?
    pub fn pass(&self) -> bool {
        self.failure.is_none()
    }
}

/// A completed campaign.
pub struct Campaign {
    /// Per-cell outcomes, in grid order.
    pub results: Vec<CellResult>,
    /// Measured steps per cell.
    pub steps: usize,
    /// Whether the full grid ran.
    pub full: bool,
}

impl Campaign {
    /// True when every cell passed.
    pub fn passed(&self) -> bool {
        self.results.iter().all(|r| r.pass())
    }

    /// The human-readable campaign table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "workload", "seed", "events", "result", "cycles", "stalls", "reroutes", "dead",
            "rings", "gcb",
        ]);
        for r in &self.results {
            let wl = match r.cell.protocol {
                ProtocolKind::DashSci => r.cell.workload.label().to_string(),
                p => format!("{}:{}", r.cell.workload.label(), p.label()),
            };
            let events = r
                .cell
                .events
                .iter()
                .map(|e| e.label())
                .collect::<Vec<_>>()
                .join("+");
            match (&r.stats, &r.failure) {
                (Some(s), None) => t.row(vec![
                    wl.clone(),
                    r.cell.seed.to_string(),
                    events,
                    "pass".to_string(),
                    s.elapsed.to_string(),
                    s.ring_stalls.to_string(),
                    s.link_reroutes.to_string(),
                    s.dead_cpus.to_string(),
                    format!("{:04b}", s.failed_rings),
                    format!("{:02b}", s.degraded_nodes),
                ]),
                (_, Some(msg)) => {
                    let shrunk = r
                        .shrunk
                        .as_ref()
                        .map(|ev| ev.iter().map(|e| e.desc()).collect::<Vec<_>>().join(" + "))
                        .unwrap_or_default();
                    t.row(vec![
                        wl,
                        r.cell.seed.to_string(),
                        events,
                        format!("FAIL [{shrunk}] {msg}"),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                    ]);
                }
                (None, None) => unreachable!("cell with neither stats nor failure"),
            }
        }
        t.render()
    }

    /// Machine-readable form (the `BENCH_chaos.json` ci.sh asserts on,
    /// following the `BENCH_repro.json` convention). Event
    /// descriptions contain no characters needing JSON escaping.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {},\n  \"experiment\": \"chaos\",\n",
            crate::BENCH_SCHEMA_VERSION
        ));
        out.push_str(&format!(
            "  \"full\": {},\n  \"steps\": {},\n  \"cells\": {},\n  \"passed\": {},\n",
            self.full,
            self.steps,
            self.results.len(),
            self.passed()
        ));
        out.push_str("  \"grid\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            // Only non-default backends carry a protocol field, so the
            // historical DASH+SCI rows keep their exact bytes.
            let proto = match r.cell.protocol {
                ProtocolKind::DashSci => String::new(),
                p => format!("\"protocol\": \"{}\", ", p.label()),
            };
            let events = r
                .cell
                .events
                .iter()
                .map(|e| format!("\"{}\"", e.desc()))
                .collect::<Vec<_>>()
                .join(", ");
            match &r.stats {
                Some(s) => out.push_str(&format!(
                    "    {{\"workload\": \"{}\", {proto}\"seed\": {}, \"events\": [{events}], \
                     \"pass\": true, \"elapsed\": {}, \"ring_stalls\": {}, \
                     \"link_reroutes\": {}, \"dead_cpus\": {}, \"failed_rings\": {}, \
                     \"degraded_nodes\": {}}}{comma}\n",
                    r.cell.workload.label(),
                    r.cell.seed,
                    s.elapsed,
                    s.ring_stalls,
                    s.link_reroutes,
                    s.dead_cpus,
                    s.failed_rings,
                    s.degraded_nodes
                )),
                None => {
                    let msg = r
                        .failure
                        .as_deref()
                        .unwrap_or("")
                        .replace('\\', "\\\\")
                        .replace('"', "\\\"")
                        .replace('\n', " ");
                    let shrunk = r
                        .shrunk
                        .as_ref()
                        .map(|ev| {
                            ev.iter()
                                .map(|e| format!("\"{}\"", e.desc()))
                                .collect::<Vec<_>>()
                                .join(", ")
                        })
                        .unwrap_or_default();
                    out.push_str(&format!(
                        "    {{\"workload\": \"{}\", {proto}\"seed\": {}, \"events\": [{events}], \
                         \"pass\": false, \"failure\": \"{msg}\", \
                         \"reproducer\": [{shrunk}]}}{comma}\n",
                        r.cell.workload.label(),
                        r.cell.seed,
                    ));
                }
            }
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_chaos.json` under `dir` (created if needed).
    /// Returns the JSON path.
    pub fn write_report(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let json = dir.join("BENCH_chaos.json");
        std::fs::write(&json, self.to_json())?;
        Ok(json)
    }
}

/// The event lists the grid layers onto each (workload, seed) pair.
/// Low intensity: transient stalls plus one mid-run CPU death. High
/// intensity: every failure site at once.
fn intensities() -> Vec<Vec<ChaosEvent>> {
    vec![
        vec![
            ChaosEvent::RingStalls {
                prob: 0.01,
                stall: 500,
            },
            ChaosEvent::CpuFail {
                cpu: 2,
                at_cycle: 400_000,
            },
        ],
        vec![
            ChaosEvent::RingStalls {
                prob: 0.05,
                stall: 1_000,
            },
            ChaosEvent::MsgFaults {
                drop: 0.05,
                dup: 0.02,
            },
            ChaosEvent::SpawnFail { prob: 0.05 },
            ChaosEvent::CpuFail {
                cpu: 2,
                at_cycle: 500_000,
            },
            ChaosEvent::LinkFail {
                ring: 0,
                at_cycle: 300_000,
                reroute_cycles: 600,
            },
            ChaosEvent::GcbDegrade {
                node: 1,
                at_cycle: 1_200_000,
            },
        ],
    ]
}

/// The campaign grid: workloads × seeds × fault intensities. The
/// default grid keeps ci.sh's smoke run under half a minute; `full`
/// doubles the seed set.
pub fn default_grid(full: bool) -> Vec<Cell> {
    let seeds: &[u64] = if full { &[11, 23, 47, 61] } else { &[11, 23] };
    let mut cells = Vec::new();
    for w in [Workload::Pic, Workload::Nbody, Workload::Fem] {
        for &seed in seeds {
            for events in intensities() {
                cells.push(Cell {
                    workload: w,
                    protocol: ProtocolKind::DashSci,
                    seed,
                    events,
                });
            }
        }
    }
    // The alternative backends ride along after the historical
    // DASH+SCI rows (appending keeps those rows byte-stable in
    // BENCH_chaos.json) with a reduced seed set so the smoke grid
    // stays fast.
    let alt_seeds: &[u64] = if full { &[11, 23] } else { &[11] };
    for proto in [ProtocolKind::Mesi, ProtocolKind::Dragon] {
        for w in [Workload::Pic, Workload::Nbody, Workload::Fem] {
            for &seed in alt_seeds {
                for events in intensities() {
                    cells.push(Cell {
                        workload: w,
                        protocol: proto,
                        seed,
                        events,
                    });
                }
            }
        }
    }
    cells
}

/// Run a campaign over `cells`. Each workload's clean (fault-free)
/// elapsed time seeds a per-cell simulated-cycle budget — a faulty run
/// taking over `BUDGET_FACTOR`× the clean run is livelocked, not slow.
/// Failing cells are shrunk to minimal reproducers before returning.
pub fn run_campaign(cells: &[Cell], steps: usize, full: bool) -> Campaign {
    const BUDGET_FACTOR: u64 = 50;
    type CleanKey = (Workload, ProtocolKind);
    let mut clean: Vec<(CleanKey, Cycles)> = Vec::new();
    let budget_for = |key: CleanKey, clean: &mut Vec<(CleanKey, Cycles)>| -> Watchdog {
        let base = match clean.iter().find(|(ck, _)| *ck == key) {
            Some((_, c)) => *c,
            None => {
                let c = workload_run(key.0, key.1, FaultPlan::new(0), steps).elapsed;
                clean.push((key, c));
                c
            }
        };
        Watchdog::new(base.saturating_mul(BUDGET_FACTOR))
    };
    let results = cells
        .iter()
        .map(|cell| {
            let budget = budget_for((cell.workload, cell.protocol), &mut clean);
            match run_cell(
                cell.workload,
                cell.protocol,
                cell.seed,
                &cell.events,
                steps,
                &budget,
            ) {
                Ok(stats) => CellResult {
                    cell: cell.clone(),
                    stats: Some(stats),
                    failure: None,
                    shrunk: None,
                },
                Err(msg) => {
                    let shrunk = shrink_events(&cell.events, |ev| {
                        run_cell(cell.workload, cell.protocol, cell.seed, ev, steps, &budget)
                            .is_err()
                    });
                    CellResult {
                        cell: cell.clone(),
                        stats: None,
                        failure: Some(msg),
                        shrunk: Some(shrunk),
                    }
                }
            }
        })
        .collect();
    Campaign {
        results,
        steps,
        full,
    }
}

/// Run the default campaign for `o` (used by the `repro-chaos` binary
/// and tests).
pub fn campaign(o: &Opts) -> Campaign {
    run_campaign(&default_grid(o.full), o.steps, o.full)
}

/// Regenerate the chaos-campaign report. Writes `BENCH_chaos.json`
/// so a `repro-all` or scenario-engine sweep leaves the same artifact
/// as the standalone binary, then panics when the campaign fails so
/// the harness records a FAIL.
pub fn run(o: &Opts) -> String {
    let c = campaign(o);
    let report = match c.write_report(&crate::repro_dir()) {
        Ok(json) => format!("[report written to {}]", json.display()),
        Err(e) => format!("[could not write report: {e}]"),
    };
    let text = emit(
        "repro-chaos: degraded-mode chaos campaign",
        &format!(
            "{}\nEvery cell runs a real application under transient + hard faults\n\
             with the coherence checker armed and a {}x-clean cycle budget; a\n\
             failing cell's event list is delta-debugged to a minimal reproducer.\n\
             campaign passed: {}\n{report}",
            c.render(),
            50,
            c.passed()
        ),
    );
    assert!(c.passed(), "chaos campaign failed:\n{}", c.render());
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_events() -> Vec<ChaosEvent> {
        vec![
            ChaosEvent::RingStalls {
                prob: 0.02,
                stall: 500,
            },
            ChaosEvent::CpuFail {
                cpu: 2,
                at_cycle: 100_000,
            },
            ChaosEvent::LinkFail {
                ring: 1,
                at_cycle: 200_000,
                reroute_cycles: 600,
            },
            ChaosEvent::GcbDegrade {
                node: 1,
                at_cycle: 300_000,
            },
        ]
    }

    #[test]
    fn healthy_cells_pass_under_checker_and_budget() {
        let wd = Watchdog::new(u64::MAX - 1);
        for w in [Workload::Pic, Workload::Fem] {
            let s = run_cell(w, ProtocolKind::DashSci, 11, &short_events(), 1, &wd)
                .unwrap_or_else(|e| panic!("{} cell failed: {e}", w.label()));
            assert!(s.elapsed > 0);
            assert_eq!(s.dead_cpus, 1, "{}: cpu 2 must have died", w.label());
            assert_eq!(s.failed_rings, 0b10, "{}", w.label());
            assert_eq!(s.degraded_nodes, 0b10, "{}", w.label());
        }
    }

    #[test]
    fn cells_are_deterministic() {
        let wd = Watchdog::new(u64::MAX - 1);
        let a = run_cell(
            Workload::Nbody,
            ProtocolKind::DashSci,
            23,
            &short_events(),
            1,
            &wd,
        )
        .unwrap();
        let b = run_cell(
            Workload::Nbody,
            ProtocolKind::DashSci,
            23,
            &short_events(),
            1,
            &wd,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn budget_overrun_is_reported_as_a_watchdog_trip() {
        // A 1-cycle budget: any real run exceeds it.
        let err = run_cell(
            Workload::Pic,
            ProtocolKind::DashSci,
            11,
            &[],
            1,
            &Watchdog::new(1),
        )
        .expect_err("1-cycle budget must trip");
        assert!(err.contains("watchdog trip [retry-loop]"), "{err}");
        assert!(err.contains("simulated-cycle budget"), "{err}");
    }

    #[test]
    fn shrinker_finds_the_minimal_failing_subset() {
        // Failure predicate: the "bug" triggers whenever a CPU failure
        // and a GCB degrade are both present (a planted two-event
        // interaction inside a six-event plan).
        let events = intensities().remove(1);
        assert_eq!(events.len(), 6);
        let fails = |ev: &[ChaosEvent]| {
            ev.iter().any(|e| matches!(e, ChaosEvent::CpuFail { .. }))
                && ev
                    .iter()
                    .any(|e| matches!(e, ChaosEvent::GcbDegrade { .. }))
        };
        assert!(fails(&events));
        let min = shrink_events(&events, fails);
        assert_eq!(min.len(), 2, "minimal reproducer: {min:?}");
        assert!(matches!(min[0], ChaosEvent::CpuFail { .. }));
        assert!(matches!(min[1], ChaosEvent::GcbDegrade { .. }));
    }

    #[test]
    fn an_injected_invariant_bug_is_caught_and_shrunk_small() {
        // End-to-end through the campaign machinery: a cell runner
        // stand-in panics (as the coherence checker would) whenever the
        // planted event pair is present. The campaign-side predicate —
        // catch_unwind + shrink — must catch it and reduce the
        // six-event plan to the ≤3-event reproducer.
        let events = intensities().remove(1);
        let buggy = |ev: &[ChaosEvent]| -> Result<(), String> {
            let trips = ev.iter().any(|e| matches!(e, ChaosEvent::LinkFail { .. }))
                && ev.iter().any(|e| matches!(e, ChaosEvent::SpawnFail { .. }));
            let out = catch_unwind(AssertUnwindSafe(|| {
                if trips {
                    panic!("coherence violation: sci-well-formed (injected test bug)");
                }
            }));
            out.map_err(panic_message)
        };
        let msg = buggy(&events).expect_err("the planted bug must fire on the full plan");
        assert!(msg.contains("coherence violation"), "{msg}");
        let min = shrink_events(&events, |ev| buggy(ev).is_err());
        assert!(min.len() <= 3, "reproducer too large: {min:?}");
        assert!(buggy(&min).is_err(), "shrunk plan must still fail");
    }

    #[test]
    fn grid_appends_protocol_cells_after_the_historical_rows() {
        let grid = default_grid(false);
        // The historical DASH+SCI prefix is untouched: 3 workloads ×
        // 2 seeds × 2 intensities, all on the default backend.
        assert_eq!(grid.len(), 24);
        assert!(grid[..12]
            .iter()
            .all(|c| c.protocol == ProtocolKind::DashSci));
        assert!(grid[12..]
            .iter()
            .all(|c| c.protocol != ProtocolKind::DashSci));
        for proto in [ProtocolKind::Mesi, ProtocolKind::Dragon] {
            assert_eq!(grid.iter().filter(|c| c.protocol == proto).count(), 6);
        }
    }

    #[test]
    fn protocol_cells_run_and_tag_their_json_rows() {
        let cells = vec![
            Cell {
                workload: Workload::Pic,
                protocol: ProtocolKind::DashSci,
                seed: 11,
                events: short_events(),
            },
            Cell {
                workload: Workload::Pic,
                protocol: ProtocolKind::Mesi,
                seed: 11,
                events: short_events(),
            },
        ];
        let c = run_campaign(&cells, 1, false);
        assert!(c.passed(), "{}", c.render());
        let j = c.to_json();
        // The default-backend row keeps its historical shape…
        assert!(j.contains("{\"workload\": \"pic\", \"seed\": 11"), "{j}");
        // …and the alternative backend is tagged.
        assert!(
            j.contains("{\"workload\": \"pic\", \"protocol\": \"mesi\", \"seed\": 11"),
            "{j}"
        );
        assert!(c.render().contains("pic:mesi"), "{}", c.render());
    }

    #[test]
    fn json_report_is_well_formed() {
        let cells = vec![Cell {
            workload: Workload::Pic,
            protocol: ProtocolKind::DashSci,
            seed: 11,
            events: short_events(),
        }];
        let c = run_campaign(&cells, 1, false);
        assert!(c.passed());
        let j = c.to_json();
        assert!(j.contains("\"passed\": true"), "{j}");
        assert!(j.contains("\"workload\": \"pic\""), "{j}");
        assert!(j.contains("cpu-fail(cpu=2@100000)"), "{j}");
        assert!(j.trim_end().ends_with('}'));
    }

    #[test]
    fn failing_cells_carry_a_reproducer_in_the_json() {
        // Force a failure with an absurd budget by running the
        // campaign plumbing against a cell whose budget the clean
        // baseline cannot satisfy: a zero-event cell is its own clean
        // baseline, so instead exercise the failure path through
        // run_cell directly and assemble the result by hand.
        let cell = Cell {
            workload: Workload::Pic,
            protocol: ProtocolKind::DashSci,
            seed: 11,
            events: short_events(),
        };
        let failure = run_cell(
            cell.workload,
            cell.protocol,
            cell.seed,
            &cell.events,
            1,
            &Watchdog::new(1),
        )
        .expect_err("must trip");
        let shrunk = shrink_events(&cell.events, |ev| {
            run_cell(
                cell.workload,
                cell.protocol,
                cell.seed,
                ev,
                1,
                &Watchdog::new(1),
            )
            .is_err()
        });
        // Every subset trips a 1-cycle budget, so the greedy pass
        // shrinks all the way to the empty list.
        assert!(shrunk.is_empty());
        let c = Campaign {
            results: vec![CellResult {
                cell,
                stats: None,
                failure: Some(failure),
                shrunk: Some(shrunk),
            }],
            steps: 1,
            full: false,
        };
        assert!(!c.passed());
        let j = c.to_json();
        assert!(j.contains("\"pass\": false"), "{j}");
        assert!(j.contains("\"reproducer\": []"), "{j}");
        assert!(c.render().contains("FAIL"));
    }
}
