//! Cache-behaviour study — §7's second named piece of future work:
//! "more detailed characteristics of the range of cache behaviors
//! need to be revealed".
//!
//! Sweeps the per-CPU cache geometry (size x line length) and reruns a
//! serial FEM step on each configuration; with the machine in hand,
//! what the paper could only ask for is a parameter sweep.

use crate::{emit, f, Opts, Table};
use fem::{Coding, SharedFem};
use spp_core::{Machine, MachineConfig};
use spp_runtime::{Placement, Runtime, Team};

/// Cache sizes swept (bytes).
pub const SIZES: [usize; 5] = [256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20];
/// Line sizes swept (bytes).
pub const LINES: [usize; 3] = [32, 64, 128];

/// Serial FEM cycles per point update under a given cache geometry.
pub fn fem_cycles_per_update(cache_bytes: usize, line_bytes: usize) -> f64 {
    let mut cfg = MachineConfig::spp1000(1);
    cfg.cache_bytes = cache_bytes;
    cfg.line_bytes = line_bytes;
    let mut rt = Runtime::new(Machine::new(cfg));
    let team = Team::place(rt.machine.config(), 1, &Placement::HighLocality);
    let mesh = fem::structured(128, 128);
    let points = mesh.num_points() as f64;
    let mut sim = SharedFem::new(&mut rt, mesh, Coding::ScatterAdd, &team);
    sim.step(&mut rt, &team, 0.3); // warm-up
    let (cycles, _) = sim.step(&mut rt, &team, 0.3);
    cycles as f64 / points
}

/// Run the cache study.
pub fn run(_o: &Opts) -> String {
    let mut t = Table::new(&["cache", "32 B lines", "64 B lines", "128 B lines"]);
    let mut base = 0.0;
    for &size in &SIZES {
        let mut row = vec![format!("{} KB", size >> 10)];
        for &line in &LINES {
            let c = fem_cycles_per_update(size, line);
            if size == 1 << 20 && line == 32 {
                base = c;
            }
            row.push(f(c, 0));
        }
        t.row(row);
    }
    let body = format!(
        "{}\n(cycles per FEM point update, serial, 128x128 mesh; the machine\n\
         shipped with 1 MB caches and 32 B lines = {} cy/update)\n\
         Longer lines exploit the Morton-ordered gathers' spatial locality;\n\
         larger caches relieve the multi-pass capacity misses. Both knobs the\n\
         paper wished it could turn, turned.",
        t.render(),
        f(base, 0)
    );
    emit("Cache-behaviour study (section 7 future work)", &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_caches_are_monotonically_better() {
        let small = fem_cycles_per_update(256 << 10, 32);
        let big = fem_cycles_per_update(4 << 20, 32);
        assert!(big < small, "4 MB should beat 256 KB: {big} vs {small}");
    }

    #[test]
    fn longer_lines_help_this_workload() {
        let short = fem_cycles_per_update(1 << 20, 32);
        let long = fem_cycles_per_update(1 << 20, 128);
        assert!(long < short, "128 B lines {long} vs 32 B {short}");
    }
}
