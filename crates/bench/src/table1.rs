//! Table 1 — PIC performance on one C90 processor.

use crate::{emit, f, Opts, Table};
use pic::c90::run_c90;
use pic::PicProblem;

/// Regenerate Table 1.
pub fn run(_o: &Opts) -> String {
    let mut t = Table::new(&[
        "Mesh",
        "particles",
        "Mflop/s",
        "paper",
        "CPU s (500 steps)",
        "paper",
    ]);
    for (p, name, paper_mf, paper_s) in [
        (PicProblem::small(), "32 x 32 x 32", 355.0, 112.9),
        (PicProblem::large(), "64 x 64 x 32", 369.0, 436.4),
    ] {
        let r = run_c90(&p, 500);
        t.row(vec![
            name.to_string(),
            p.num_particles().to_string(),
            f(r.mflops, 0),
            f(paper_mf, 0),
            f(r.total_seconds, 1),
            f(paper_s, 1),
        ]);
    }
    emit("Table 1: PIC on one C90 processor", &t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_in_band() {
        let s = run_c90(&PicProblem::small(), 500);
        assert!((300.0..=420.0).contains(&s.mflops));
        assert!((90.0..=140.0).contains(&s.total_seconds));
    }
}
