//! Race campaign (`repro-race`): every application runs under the
//! happens-before race detector (which must report zero races), and
//! the fork/join replay order is fuzzed with seeded [`SchedulePolicy`]
//! permutations — final memory state, results, and memory-system
//! counters must be permutation-invariant. A deliberately racy
//! negative-control kernel (the proptest shim's `racy_sum`) must be
//! flagged by the detector AND diverge under permutation; its failing
//! schedule is shrunk with the chaos delta-debug machinery
//! ([`crate::chaos::shrink`]) over adjacent transpositions, then the
//! team is reduced, yielding a ≤ 2-thread minimal reproducer written
//! as a replayable artifact (`race_repro.json`).
//!
//! The campaign's machine-readable summary is `BENCH_race.json`
//! (written by the `repro-race` binary under `target/repro`, or
//! `SPP_REPRO_DIR`), following the `BENCH_repro.json` convention.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::harness::panic_message;
use crate::{emit, Opts, Table};
use fem::{Coding, SharedFem};
use nbody::{NbodyProblem, SharedNbody};
use pic::{PicProblem, SharedPic};
use ppm::{PpmProblem, SharedPpm};
use proptest::racy;
use spp_core::{Machine, MemStats, RaceReport};
use spp_runtime::{Placement, Runtime, SchedulePolicy, Team};

/// The applications the campaign sweeps (all four shared-memory
/// codes, at the chaos-campaign sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Particle-in-cell (8x8x8 mesh, 8 CPUs, 2 nodes).
    Pic,
    /// N-body tree code (1024 bodies, 8 CPUs, 2 nodes).
    Nbody,
    /// FEM, scatter-add coding (32x32 structured mesh, 8 CPUs).
    Fem,
    /// PPM hydrodynamics (24x48 grid, 2x4 tiles, 8 CPUs).
    Ppm,
}

impl Workload {
    /// Short stable label.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Pic => "pic",
            Workload::Nbody => "nbody",
            Workload::Fem => "fem",
            Workload::Ppm => "ppm",
        }
    }

    /// Every workload, in campaign order.
    pub fn all() -> [Workload; 4] {
        [Workload::Pic, Workload::Nbody, Workload::Fem, Workload::Ppm]
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: &mut u64, word: u64) {
    for shift in [0, 8, 16, 24, 32, 40, 48, 56] {
        *h ^= (word >> shift) & 0xff;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn fnv_f64s(h: &mut u64, vals: &[f64]) {
    for v in vals {
        fnv(h, v.to_bits());
    }
}

/// What one run leaves behind: an FNV-1a digest of the final simulated
/// memory state and the run's result counters, plus the machine's
/// cumulative [`MemStats`].
///
/// The permutation invariant has three tiers:
/// 1. `digest` must match bit-for-bit — the program's answer cannot
///    depend on the replay order.
/// 2. Issued traffic (`reads`, `writes`, `uncached_ops`) must match
///    exactly — what the program *asks* the memory system is a
///    property of the program, not the schedule.
/// 3. The service-kind attribution (hit vs c2c vs GCB vs remote-dirty
///    fetch, …) legitimately depends on which CPU touches a line
///    first, so those counters only have to stay within a scale-aware
///    drift bound ([`drift_limit`]). Elapsed cycles are not compared
///    at all — the critical path genuinely shifts with the order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// Digest of final memory state + results.
    pub digest: u64,
    /// Machine-wide memory-system counters.
    pub stats: MemStats,
}

/// The exactly-invariant issued-traffic projection of [`MemStats`].
fn issued(s: &MemStats) -> [u64; 3] {
    [s.reads, s.writes, s.uncached_ops]
}

/// The order-attributed service-kind counters (everything else).
fn attribution(s: &MemStats) -> [(&'static str, u64); 12] {
    [
        ("hits", s.hits),
        ("local_misses", s.local_misses),
        ("gcb_hits", s.gcb_hits),
        ("sci_fetches", s.sci_fetches),
        ("remote_dirty_fetches", s.remote_dirty_fetches),
        ("c2c_transfers", s.c2c_transfers),
        ("upgrades", s.upgrades),
        ("invalidations", s.invalidations),
        ("sci_invalidations", s.sci_invalidations),
        ("evictions", s.evictions),
        ("writebacks", s.writebacks),
        ("gcb_rollouts", s.gcb_rollouts),
    ]
}

/// Allowed per-counter attribution drift for a run issuing this much
/// traffic: one per mille of the issued accesses, floored at 64. Far
/// below any double-counted phase, far above observed first-toucher
/// noise.
pub fn drift_limit(baseline: &MemStats) -> u64 {
    (baseline.reads + baseline.writes) / 1000 + 64
}

/// Compare a permuted run against the identity baseline. Returns the
/// maximum attribution drift on success, or a human-readable mismatch
/// description when the invariant is violated.
pub fn invariant_check(id: &Outcome, o: &Outcome) -> Result<u64, String> {
    if o.digest != id.digest {
        return Err("final state/results digest differs".to_string());
    }
    if issued(&o.stats) != issued(&id.stats) {
        return Err(format!(
            "issued traffic differs: {:?} vs {:?}",
            issued(&id.stats),
            issued(&o.stats)
        ));
    }
    let limit = drift_limit(&id.stats);
    let mut max_drift = 0;
    for ((name, a), (_, b)) in attribution(&id.stats)
        .into_iter()
        .zip(attribution(&o.stats))
    {
        let drift = a.abs_diff(b);
        if drift > limit {
            return Err(format!("{name} drifted past {limit}: {a} vs {b}"));
        }
        max_drift = max_drift.max(drift);
    }
    Ok(max_drift)
}

/// Run one workload to completion under `policy` and digest its
/// observable outcome. `detect` mounts the race detector (which must
/// not perturb the priced stream — the campaign cross-checks this).
pub fn run_app(
    w: Workload,
    policy: &SchedulePolicy,
    steps: usize,
    detect: bool,
) -> (Outcome, RaceReport) {
    let mut m = Machine::spp1000(2);
    if detect {
        m = m.with_race_detection();
    }
    let mut rt = Runtime::new(m).with_schedule(policy.clone());
    let mut h = FNV_OFFSET;
    match w {
        Workload::Pic => {
            let team = Team::place(rt.machine.config(), 8, &Placement::Uniform);
            let mut sim = SharedPic::new(&mut rt, PicProblem::with_mesh(8, 8, 8), &team);
            sim.step(&mut rt, &team); // warm-up
            let rep = sim.run(&mut rt, &team, steps);
            let (x, y, z) = sim.positions();
            let (vx, vy, vz) = sim.velocities();
            for s in [x, y, z, vx, vy, vz] {
                fnv_f64s(&mut h, s);
            }
            fnv(&mut h, sim.field_energy().to_bits());
            fnv(&mut h, rep.flops);
        }
        Workload::Nbody => {
            let team = Team::place(rt.machine.config(), 8, &Placement::Uniform);
            let mut sim = SharedNbody::new(&mut rt, NbodyProblem::with_n(1024), &team);
            sim.step(&mut rt, &team);
            let rep = sim.run(&mut rt, &team, steps);
            let b = sim.bodies();
            for s in [&b.x, &b.y, &b.z, &b.vx, &b.vy, &b.vz, &b.m] {
                fnv_f64s(&mut h, s);
            }
            let (ax, ay, az) = sim.accelerations();
            for s in [ax, ay, az] {
                fnv_f64s(&mut h, s);
            }
            fnv(&mut h, rep.flops);
            fnv(&mut h, rep.interactions);
        }
        Workload::Fem => {
            let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
            let mut sim =
                SharedFem::new(&mut rt, fem::structured(32, 32), Coding::ScatterAdd, &team);
            sim.step(&mut rt, &team, 0.3);
            let rep = sim.run(&mut rt, &team, 0.3, steps);
            let s = sim.state();
            for a in [&s.rho, &s.mu, &s.mv, &s.e] {
                fnv_f64s(&mut h, a);
            }
            fnv(&mut h, rep.point_updates);
        }
        Workload::Ppm => {
            let p = PpmProblem::tiny();
            let (nx, ny) = (p.nx, p.ny);
            let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
            let mut sim = SharedPpm::new(&mut rt, p, &team);
            sim.step(&mut rt, &team);
            let rep = sim.run(&mut rt, &team, steps);
            for y in 0..ny {
                for x in 0..nx {
                    let q = sim.prim(x, y);
                    for v in [q.rho, q.u, q.v, q.p] {
                        fnv(&mut h, v.to_bits());
                    }
                }
            }
            fnv(&mut h, sim.total_mass().to_bits());
            fnv(&mut h, rep.flops);
        }
    }
    (
        Outcome {
            digest: h,
            stats: rt.machine.stats,
        },
        rt.machine.race_report(),
    )
}

/// The campaign's schedule set: identity, reversed, and seeded
/// shuffles (6 by default, 12 under `--full`) — at least 8 schedules
/// total either way.
pub fn schedules(full: bool) -> Vec<(String, SchedulePolicy)> {
    let mut out = vec![
        ("identity".to_string(), SchedulePolicy::Identity),
        ("reversed".to_string(), SchedulePolicy::Reversed),
    ];
    let nshuffles = if full { 12 } else { 6 };
    for seed in 1..=nshuffles {
        out.push((
            format!("shuffled-{seed}"),
            SchedulePolicy::Shuffled { seed },
        ));
    }
    out
}

/// One application's verdict.
#[derive(Debug, Clone)]
pub struct AppResult {
    /// The application.
    pub workload: Workload,
    /// Races the detector reported on the identity schedule.
    pub races: u64,
    /// False-sharing warnings (informational; do not fail the cell).
    pub warnings: u64,
    /// Parallel regions analysed.
    pub regions: u64,
    /// Accesses the detector observed.
    pub accesses: u64,
    /// Schedules compared against the identity baseline.
    pub schedules: usize,
    /// `label: reason` for schedules that violated the invariant.
    pub divergent: Vec<String>,
    /// Worst attribution drift seen across passing schedules.
    pub max_drift: u64,
    /// The drift bound those counters were held to.
    pub drift_limit: u64,
    /// Panic message when any run crashed.
    pub failure: Option<String>,
}

impl AppResult {
    /// Did this application pass (no crash, zero races, permutation-
    /// invariant)?
    pub fn pass(&self) -> bool {
        self.failure.is_none() && self.races == 0 && self.divergent.is_empty()
    }
}

/// Run one application cell: detector-on identity run (race check +
/// zero-overhead cross-check), then the detector-off permutation
/// sweep, all inside `catch_unwind`.
pub fn check_app(w: Workload, steps: usize, full: bool) -> AppResult {
    let sched = schedules(full);
    let out = catch_unwind(AssertUnwindSafe(|| {
        let (detected_outcome, report) = run_app(w, &SchedulePolicy::Identity, steps, true);
        let (baseline, _) = run_app(w, &SchedulePolicy::Identity, steps, false);
        if detected_outcome != baseline {
            panic!(
                "{}: race detector perturbed the run (outcome differs with detection on)",
                w.label()
            );
        }
        let mut divergent = Vec::new();
        let mut max_drift = 0;
        for (label, policy) in sched.iter().skip(1) {
            let (o, _) = run_app(w, policy, steps, false);
            match invariant_check(&baseline, &o) {
                Ok(drift) => max_drift = max_drift.max(drift),
                Err(reason) => divergent.push(format!("{label}: {reason}")),
            }
        }
        (report, divergent, max_drift, drift_limit(&baseline.stats))
    }));
    match out {
        Ok((report, divergent, max_drift, limit)) => AppResult {
            workload: w,
            races: report.total_races,
            warnings: report.total_warnings,
            regions: report.regions,
            accesses: report.accesses,
            schedules: sched.len(),
            divergent,
            max_drift,
            drift_limit: limit,
            failure: None,
        },
        Err(p) => AppResult {
            workload: w,
            races: 0,
            warnings: 0,
            regions: 0,
            accesses: 0,
            schedules: sched.len(),
            divergent: Vec::new(),
            max_drift: 0,
            drift_limit: 0,
            failure: Some(panic_message(p)),
        },
    }
}

/// Negative-control geometry: the racy sum runs 8 threads over 256
/// adversarial (mixed-magnitude) values, so schedule permutations
/// change the floating-point fold order.
pub const CONTROL_THREADS: usize = 8;
/// Values summed by the control kernel.
pub const CONTROL_VALUES: usize = 256;
/// Seed of the adversarial value stream.
pub const CONTROL_SEED: u64 = 2;

/// Bit pattern of the racy sum under `policy` with `nthreads` threads
/// (detector off; single hypernode — the kernel is tiny).
fn racy_bits(policy: SchedulePolicy, nthreads: usize, values: &[f64]) -> u64 {
    let mut rt = Runtime::new(Machine::spp1000(1)).with_schedule(policy);
    racy::racy_sum(&mut rt, nthreads, values).to_bits()
}

/// Decompose a permutation into adjacent transpositions: applying
/// `swap(i, i+1)` for each returned `i`, in order, to the identity
/// yields `perm` (bubble-sort decomposition).
pub fn adjacent_decomposition(perm: &[usize]) -> Vec<usize> {
    let mut cur = perm.to_vec();
    let mut ops = Vec::new();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..cur.len().saturating_sub(1) {
            if cur[i] > cur[i + 1] {
                cur.swap(i, i + 1);
                ops.push(i);
                changed = true;
            }
        }
    }
    ops.reverse();
    ops
}

/// Apply an adjacent-transposition list to the identity permutation.
pub fn apply_transpositions(n: usize, ops: &[usize]) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for &i in ops {
        p.swap(i, i + 1);
    }
    p
}

/// The replayable minimal reproducer the shrinker emits: enough to
/// re-run the diverging pair from scratch (`race_repro.json`).
#[derive(Debug, Clone)]
pub struct MinimalRepro {
    /// The kernel (currently always the racy sum).
    pub kernel: &'static str,
    /// Number of values summed.
    pub nvalues: usize,
    /// Seed of the adversarial value stream.
    pub values_seed: u64,
    /// Team size after shrinking.
    pub threads: usize,
    /// The minimal diverging replay order.
    pub schedule: Vec<usize>,
    /// `f64::to_bits` of the identity-order sum.
    pub identity_bits: u64,
    /// `f64::to_bits` of the permuted-order sum.
    pub permuted_bits: u64,
}

impl MinimalRepro {
    /// Re-run both orders from the recorded fields alone and confirm
    /// the divergence reproduces.
    pub fn replay_diverges(&self) -> bool {
        let values = racy::adversarial_values(self.nvalues, self.values_seed);
        let id = racy_bits(SchedulePolicy::Identity, self.threads, &values);
        let perm = racy_bits(
            SchedulePolicy::Explicit(self.schedule.clone()),
            self.threads,
            &values,
        );
        id == self.identity_bits && perm == self.permuted_bits && id != perm
    }

    /// Machine-readable form (`race_repro.json`).
    pub fn to_json(&self) -> String {
        let sched = self
            .schedule
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\n  \"kernel\": \"{}\",\n  \"nvalues\": {},\n  \"values_seed\": {},\n  \
             \"threads\": {},\n  \"schedule\": [{sched}],\n  \"identity_bits\": {},\n  \
             \"permuted_bits\": {}\n}}\n",
            self.kernel,
            self.nvalues,
            self.values_seed,
            self.threads,
            self.identity_bits,
            self.permuted_bits
        )
    }
}

/// The negative control's verdict.
#[derive(Debug, Clone)]
pub struct ControlResult {
    /// Races the detector reported (must be > 0).
    pub races: u64,
    /// Whether a finding names the `racy_acc` array.
    pub flagged_array: bool,
    /// Schedules whose sum diverged from identity (must be nonempty).
    pub diverged: Vec<String>,
    /// The shrunk reproducer.
    pub repro: Option<MinimalRepro>,
    /// Whether the reproducer replays from its recorded fields.
    pub replay_ok: bool,
    /// Panic message when the control crashed.
    pub failure: Option<String>,
}

impl ControlResult {
    /// Did the control behave as a negative control must: flagged by
    /// the detector, schedule-divergent, shrunk to ≤ 2 threads, and
    /// replayable?
    pub fn pass(&self) -> bool {
        self.failure.is_none()
            && self.races > 0
            && self.flagged_array
            && !self.diverged.is_empty()
            && self
                .repro
                .as_ref()
                .is_some_and(|r| r.threads <= 2 && !r.schedule.is_empty())
            && self.replay_ok
    }
}

/// Run the negative control: detect, fuzz, shrink, replay.
pub fn check_control(full: bool) -> ControlResult {
    let sched = schedules(full);
    let out = catch_unwind(AssertUnwindSafe(|| {
        let values = racy::adversarial_values(CONTROL_VALUES, CONTROL_SEED);

        // 1. The detector must flag the unprotected read-modify-write.
        let mut rt = Runtime::new(Machine::spp1000(1).with_race_detection());
        racy::racy_sum(&mut rt, CONTROL_THREADS, &values);
        let report = rt.machine.race_report();
        let flagged_array = report.races.iter().any(|f| f.array == "racy_acc");

        // 2. The fuzzer must observe diverging sums under permutation.
        let identity_bits = racy_bits(SchedulePolicy::Identity, CONTROL_THREADS, &values);
        let mut diverged = Vec::new();
        let mut first_diverging: Option<SchedulePolicy> = None;
        for (label, policy) in sched.iter().skip(1) {
            let bits = racy_bits(policy.clone(), CONTROL_THREADS, &values);
            if bits != identity_bits {
                diverged.push(label.clone());
                if first_diverging.is_none() {
                    first_diverging = Some(policy.clone());
                }
            }
        }

        // 3. Shrink the failing permutation to a minimal transposition
        //    set with the chaos delta-debugger, then reduce the team:
        //    the smallest team where a single adjacent swap still
        //    diverges is the minimal reproducer.
        let repro = first_diverging.map(|policy| {
            let ops = adjacent_decomposition(&policy.order(CONTROL_THREADS));
            let shrunk = crate::chaos::shrink(&ops, |subset| {
                let perm = apply_transpositions(CONTROL_THREADS, subset);
                racy_bits(SchedulePolicy::Explicit(perm), CONTROL_THREADS, &values) != identity_bits
            });
            let mut best: Option<(usize, Vec<usize>, u64, u64)> = None;
            for nt in 2..=CONTROL_THREADS {
                let perm = apply_transpositions(nt, &[0]);
                let id = racy_bits(SchedulePolicy::Identity, nt, &values);
                let swapped = racy_bits(SchedulePolicy::Explicit(perm.clone()), nt, &values);
                if swapped != id {
                    best = Some((nt, perm, id, swapped));
                    break;
                }
            }
            let (threads, schedule, id_bits, perm_bits) = best.unwrap_or_else(|| {
                // Fallback: keep the shrunk permutation at full size.
                let perm = apply_transpositions(CONTROL_THREADS, &shrunk);
                let bits = racy_bits(
                    SchedulePolicy::Explicit(perm.clone()),
                    CONTROL_THREADS,
                    &values,
                );
                (CONTROL_THREADS, perm, identity_bits, bits)
            });
            MinimalRepro {
                kernel: "racy-sum",
                nvalues: CONTROL_VALUES,
                values_seed: CONTROL_SEED,
                threads,
                schedule,
                identity_bits: id_bits,
                permuted_bits: perm_bits,
            }
        });
        let replay_ok = repro.as_ref().is_some_and(|r| r.replay_diverges());
        (report, flagged_array, diverged, repro, replay_ok)
    }));
    match out {
        Ok((report, flagged_array, diverged, repro, replay_ok)) => ControlResult {
            races: report.total_races,
            flagged_array,
            diverged,
            repro,
            replay_ok,
            failure: None,
        },
        Err(p) => ControlResult {
            races: 0,
            flagged_array: false,
            diverged: Vec::new(),
            repro: None,
            replay_ok: false,
            failure: Some(panic_message(p)),
        },
    }
}

/// A completed race campaign.
pub struct Campaign {
    /// Per-application verdicts.
    pub apps: Vec<AppResult>,
    /// The negative control's verdict.
    pub control: ControlResult,
    /// Measured steps per application.
    pub steps: usize,
    /// Whether the full schedule set ran.
    pub full: bool,
}

impl Campaign {
    /// True when every application passed and the control behaved.
    pub fn passed(&self) -> bool {
        self.apps.iter().all(|a| a.pass()) && self.control.pass()
    }

    /// The human-readable campaign table plus the control summary.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "workload",
            "races",
            "warnings",
            "regions",
            "accesses",
            "schedules",
            "drift",
            "limit",
            "divergent",
            "result",
        ]);
        for a in &self.apps {
            let result = match (&a.failure, a.pass()) {
                (Some(msg), _) => format!("FAIL {msg}"),
                (None, true) => "pass".to_string(),
                (None, false) => "FAIL".to_string(),
            };
            t.row(vec![
                a.workload.label().to_string(),
                a.races.to_string(),
                a.warnings.to_string(),
                a.regions.to_string(),
                a.accesses.to_string(),
                a.schedules.to_string(),
                a.max_drift.to_string(),
                a.drift_limit.to_string(),
                if a.divergent.is_empty() {
                    "none".to_string()
                } else {
                    a.divergent.join(" | ")
                },
                result,
            ]);
        }
        let mut out = t.render();
        let c = &self.control;
        out.push_str(&format!(
            "\nnegative control: racy-sum, {} threads, {} values, seed {}\n",
            CONTROL_THREADS, CONTROL_VALUES, CONTROL_SEED
        ));
        if let Some(msg) = &c.failure {
            out.push_str(&format!("  FAIL: {msg}\n"));
            return out;
        }
        out.push_str(&format!(
            "  detector: {} race(s){}\n",
            c.races,
            if c.flagged_array {
                " on racy_acc"
            } else {
                " (racy_acc NOT named)"
            }
        ));
        out.push_str(&format!(
            "  fuzzer:   diverged on {} of {} permuted schedules\n",
            c.diverged.len(),
            self.apps.first().map_or(0, |a| a.schedules - 1)
        ));
        match &c.repro {
            Some(r) => out.push_str(&format!(
                "  shrunk:   {} thread(s), schedule {:?}, replay {}\n",
                r.threads,
                r.schedule,
                if c.replay_ok {
                    "diverges"
                } else {
                    "DID NOT reproduce"
                }
            )),
            None => out.push_str("  shrunk:   no reproducer (fuzzer saw no divergence)\n"),
        }
        out.push_str(&format!(
            "  verdict:  {}\n",
            if c.pass() { "pass" } else { "FAIL" }
        ));
        out
    }

    /// Machine-readable form (the `BENCH_race.json` ci.sh asserts on,
    /// following the `BENCH_repro.json` convention).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {},\n  \"experiment\": \"race\",\n",
            crate::BENCH_SCHEMA_VERSION
        ));
        out.push_str(&format!(
            "  \"full\": {},\n  \"steps\": {},\n  \"passed\": {},\n",
            self.full,
            self.steps,
            self.passed()
        ));
        out.push_str("  \"apps\": [\n");
        for (i, a) in self.apps.iter().enumerate() {
            let comma = if i + 1 < self.apps.len() { "," } else { "" };
            let divergent = a
                .divergent
                .iter()
                .map(|d| format!("\"{d}\""))
                .collect::<Vec<_>>()
                .join(", ");
            let failure = match &a.failure {
                Some(msg) => format!(
                    ", \"failure\": \"{}\"",
                    msg.replace('\\', "\\\\")
                        .replace('"', "\\\"")
                        .replace('\n', " ")
                ),
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"pass\": {}, \"races\": {}, \"warnings\": {}, \
                 \"regions\": {}, \"accesses\": {}, \"schedules\": {}, \
                 \"max_drift\": {}, \"drift_limit\": {}, \
                 \"divergent\": [{divergent}]{failure}}}{comma}\n",
                a.workload.label(),
                a.pass(),
                a.races,
                a.warnings,
                a.regions,
                a.accesses,
                a.schedules,
                a.max_drift,
                a.drift_limit,
            ));
        }
        out.push_str("  ],\n");
        let c = &self.control;
        let diverged = c
            .diverged
            .iter()
            .map(|d| format!("\"{d}\""))
            .collect::<Vec<_>>()
            .join(", ");
        let (threads, schedule) = match &c.repro {
            Some(r) => (
                r.threads.to_string(),
                r.schedule
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            ),
            None => ("0".to_string(), String::new()),
        };
        out.push_str(&format!(
            "  \"control\": {{\"pass\": {}, \"races\": {}, \"flagged_array\": {}, \
             \"diverged\": [{diverged}], \"repro_threads\": {threads}, \
             \"repro_schedule\": [{schedule}], \"replay_diverges\": {}}}\n",
            c.pass(),
            c.races,
            c.flagged_array,
            c.replay_ok
        ));
        out.push_str("}\n");
        out
    }

    /// Write `BENCH_race.json` (and, when the control produced one,
    /// the `race_repro.json` replay artifact) under `dir`. Returns the
    /// campaign JSON path.
    pub fn write_report(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let json = dir.join("BENCH_race.json");
        std::fs::write(&json, self.to_json())?;
        if let Some(r) = &self.control.repro {
            std::fs::write(dir.join("race_repro.json"), r.to_json())?;
        }
        Ok(json)
    }
}

/// Run the full campaign at the harness options.
pub fn campaign(o: &Opts) -> Campaign {
    let apps = Workload::all()
        .into_iter()
        .map(|w| check_app(w, o.steps, o.full))
        .collect();
    Campaign {
        apps,
        control: check_control(o.full),
        steps: o.steps,
        full: o.full,
    }
}

/// The report directory (`target/repro`, or `SPP_REPRO_DIR`); now the
/// crate-wide [`crate::repro_dir`], kept here for compatibility.
pub fn repro_dir() -> std::path::PathBuf {
    crate::repro_dir()
}

/// Experiment entry point (`repro-race`, and the `race` row of
/// `repro-all`). Writes `BENCH_race.json` (plus `race_repro.json`
/// when a reproducer was shrunk) so a `repro-all` sweep leaves the
/// same artifacts as the standalone binary, then panics when the
/// campaign fails so the harness records a FAIL.
pub fn run(o: &Opts) -> String {
    let c = campaign(o);
    let report = match c.write_report(&repro_dir()) {
        Ok(json) => format!("[report written to {}]", json.display()),
        Err(e) => format!("[could not write report: {e}]"),
    };
    let text = emit(
        "race: happens-before detection + schedule-permutation fuzzing",
        &format!("{}\n{report}", c.render()),
    );
    assert!(c.passed(), "race campaign failed:\n{}", c.render());
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_decomposition_round_trips() {
        for policy in [
            SchedulePolicy::Reversed,
            SchedulePolicy::Shuffled { seed: 3 },
            SchedulePolicy::Shuffled { seed: 7 },
        ] {
            for n in [2, 5, 8] {
                let perm = policy.order(n);
                let ops = adjacent_decomposition(&perm);
                assert_eq!(apply_transpositions(n, &ops), perm, "{policy:?} n={n}");
            }
        }
    }

    #[test]
    fn the_schedule_set_has_at_least_eight_entries() {
        assert!(schedules(false).len() >= 8);
        assert!(schedules(true).len() > schedules(false).len());
        assert_eq!(schedules(false)[0].1, SchedulePolicy::Identity);
    }

    #[test]
    fn the_negative_control_is_flagged_diverging_and_shrinks_to_two_threads() {
        let c = check_control(false);
        assert!(c.failure.is_none(), "control crashed: {:?}", c.failure);
        assert!(c.races > 0, "detector missed the racy sum");
        assert!(c.flagged_array, "finding does not name racy_acc");
        assert!(!c.diverged.is_empty(), "no schedule diverged");
        let r = c.repro.as_ref().expect("no reproducer");
        assert!(
            r.threads <= 2,
            "reproducer not minimal: {} threads",
            r.threads
        );
        assert!(c.replay_ok, "reproducer does not replay");
        assert!(c.pass());
    }

    #[test]
    fn ppm_is_race_free_and_permutation_invariant_at_one_step() {
        let a = check_app(Workload::Ppm, 1, false);
        assert!(a.failure.is_none(), "ppm crashed: {:?}", a.failure);
        assert_eq!(a.races, 0, "ppm reported races");
        assert!(a.divergent.is_empty(), "ppm diverged: {:?}", a.divergent);
    }

    #[test]
    fn repro_json_has_the_replay_fields() {
        let r = MinimalRepro {
            kernel: "racy-sum",
            nvalues: 4,
            values_seed: 9,
            threads: 2,
            schedule: vec![1, 0],
            identity_bits: 1,
            permuted_bits: 2,
        };
        let j = r.to_json();
        assert!(j.contains("\"threads\": 2"));
        assert!(j.contains("\"schedule\": [1, 0]"));
        assert!(j.contains("\"values_seed\": 9"));
    }
}
